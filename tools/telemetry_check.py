#!/usr/bin/env python3
"""CI telemetry soak checker: assert the continuous-telemetry layer behaves.

Consumes the artifacts of a `bench_pipeline_profile --soak-seconds N` run
with telemetry on (src/telemetry) and asserts three properties:

  * bounded memory: the telemetry.rss_bytes series sampled into the soak
    artifact (--json) must not grow by more than --max-rss-growth-mb between
    its first steady sample and its last — the rolling ring, the streamer's
    seen-set and the watchdog are all fixed-capacity, so RSS flattens once
    the ring has filled;
  * well-formed stream: the --telemetry-stream file must load as a Chrome
    trace-event JSON array (the streaming writer may legitimately leave it
    unterminated if the process died mid-soak — a trailing ']' is optional
    on load) and its event count must equal the artifact's stream_flushed
    counter; flushed + stream_dropped must equal the spans the source ring
    retired (drops are accounted, never silent);
  * bounded overhead: given --baseline (a second soak artifact produced with
    telemetry OFF), the telemetry-on throughput must be within
    --max-overhead-pct of the baseline kqps (default 2%).

Optionally --expect-dumps N pins the retrospective-dump count (the SLO
watchdog acceptance: one injected breach == exactly one dump) and verifies
the last dump file loads as a self-contained Perfetto bundle whose
"telemetry" metadata names the tripped rule.

Stdlib only. Exit code 0 = pass, 1 = assertion failed, 2 = usage/IO error.

Usage:
  python3 tools/telemetry_check.py --artifact soak_on.json \
      --stream stream.json --baseline soak_off.json --expect-dumps 1
"""

import argparse
import json
import sys


def fail(msg):
    print(f"telemetry_check: FAIL: {msg}")
    return 1


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"telemetry_check: cannot load {what} {path}: {e}")
        sys.exit(2)


def load_stream(path):
    """Loads a streaming trace-event array, tolerating a missing terminator.

    The streaming exporter appends events and only writes the closing ']' on
    clean shutdown; the Chrome JSON Array Format explicitly allows the
    unterminated form, so we repair it before parsing.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"telemetry_check: cannot read stream {path}: {e}")
        sys.exit(2)
    stripped = text.rstrip().rstrip(",")
    if not stripped.endswith("]"):
        stripped += "]"
    try:
        return json.loads(stripped)
    except ValueError as e:
        print(f"telemetry_check: stream {path} is not a JSON array: {e}")
        sys.exit(2)


def rss_series(artifact):
    """Extracts [(t_ns, rss_bytes)] from the artifact's telemetry.rss ring."""
    series = []
    for sample in artifact.get("telemetry", {}).get("rss", {}).get("samples", []):
        metric = sample.get("metrics", {}).get("telemetry.rss_bytes")
        if metric and metric.get("type") == "gauge":
            series.append((sample["t_ns"], metric["value"]))
    return series


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--artifact", required=True,
                   help="soak --json artifact from the telemetry-on run")
    p.add_argument("--stream", help="--telemetry-stream file to validate")
    p.add_argument("--baseline",
                   help="soak --json artifact from the telemetry-off run (overhead gate)")
    p.add_argument("--max-overhead-pct", type=float, default=2.0,
                   help="max throughput cost of telemetry vs baseline (default 2%%)")
    p.add_argument("--max-rss-growth-mb", type=float, default=64.0,
                   help="max RSS growth over the sampled series (default 64 MiB)")
    p.add_argument("--skip-head-samples", type=int, default=2,
                   help="RSS samples ignored at the head (warmup/ring fill; default 2)")
    p.add_argument("--expect-dumps", type=int, default=None,
                   help="exact retrospective-dump count to require")
    args = p.parse_args()

    artifact = load_json(args.artifact, "artifact")
    if not artifact.get("telemetry_enabled"):
        print("telemetry_check: artifact was produced with telemetry off "
              "(need the telemetry-on run)")
        return 2
    tel = artifact["telemetry"]
    failures = 0

    # 1. Bounded RSS growth across the sampled series.
    series = rss_series(artifact)
    if len(series) < 2:
        failures += fail(f"rss series has {len(series)} sample(s); "
                         "need at least 2 (soak too short or sampler dead)")
    else:
        head = min(args.skip_head_samples, len(series) - 2)
        start = series[head][1]
        end = series[-1][1]
        growth_mb = (end - start) / (1024.0 * 1024.0)
        print(f"telemetry_check: rss {start / 1e6:.1f} MB -> {end / 1e6:.1f} MB "
              f"over {len(series) - head} samples (growth {growth_mb:.1f} MiB, "
              f"limit {args.max_rss_growth_mb:.1f})")
        if growth_mb > args.max_rss_growth_mb:
            failures += fail(f"rss grew {growth_mb:.1f} MiB > "
                             f"{args.max_rss_growth_mb:.1f} MiB limit")

    # 2. Stream well-formedness and flush/drop accounting.
    if args.stream:
        events = load_stream(args.stream)
        flushed = tel.get("stream_flushed", 0)
        dropped = tel.get("stream_dropped", 0)
        print(f"telemetry_check: stream has {len(events)} events; "
              f"artifact says flushed={flushed} dropped={dropped}")
        if len(events) != flushed:
            failures += fail(f"stream event count {len(events)} != "
                             f"flushed counter {flushed}")
        bad = [e for e in events[:1000]
               if not ("name" in e and "ph" in e and "ts" in e)]
        if bad:
            failures += fail(f"{len(bad)} malformed trace events (missing "
                             "name/ph/ts) in the first 1000")

    # 3. Retrospective-dump count and bundle integrity.
    if args.expect_dumps is not None:
        dumps = tel.get("retro_dumps", 0)
        print(f"telemetry_check: {dumps} retrospective dump(s), "
              f"expected {args.expect_dumps}")
        if dumps != args.expect_dumps:
            failures += fail(f"retro_dumps {dumps} != expected {args.expect_dumps}")
        elif dumps > 0:
            bundle = load_json(tel["last_dump"], "retrospective dump")
            meta = bundle.get("telemetry")
            if not isinstance(bundle.get("traceEvents"), list):
                failures += fail("retrospective dump has no traceEvents array")
            elif not meta or "rule" not in meta:
                failures += fail("retrospective dump has no telemetry.rule metadata")
            else:
                print(f"telemetry_check: dump ok — {len(bundle['traceEvents'])} "
                      f"spans, rule \"{meta['rule']}\"")

    # 4. Throughput overhead vs the telemetry-off baseline.
    if args.baseline:
        baseline = load_json(args.baseline, "baseline artifact")
        base_kqps = baseline.get("kqps", 0.0)
        run_kqps = artifact.get("kqps", 0.0)
        if base_kqps <= 0:
            failures += fail("baseline kqps is zero/absent")
        else:
            overhead = 100.0 * (base_kqps - run_kqps) / base_kqps
            print(f"telemetry_check: throughput {run_kqps:.2f} Kq/s vs baseline "
                  f"{base_kqps:.2f} Kq/s (overhead {overhead:+.2f}%, "
                  f"limit {args.max_overhead_pct:.1f}%)")
            if overhead > args.max_overhead_pct:
                failures += fail(f"telemetry overhead {overhead:.2f}% > "
                                 f"{args.max_overhead_pct:.1f}% limit")

    if failures:
        return 1
    print("telemetry_check: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI perf gate: compare smoke-bench stats snapshots against a baseline.

Reads the JSON files that `tagmatch_cli bench --stats-json` dumps (the same
payload the STATS wire verb returns) and fails the build only on a *sustained*
latency regression:

  * gated metrics: every `stage.*_ns` histogram's p95 and `query.latency_ns`'s
    p99 present in the baseline with a nonzero value;
  * a run regresses a metric when run >= ratio * baseline (default 1.5x) AND
    run - baseline >= min-delta-ns (absolute noise floor — a 1.5x blowup of a
    2 us stage is scheduler noise, not a regression);
  * the gate fails only when a metric regresses in the MAJORITY of the run
    files given (2-of-3 with three reruns), so a single noisy run passes.

A second mode gates throughput instead of latency: `--fig7-baseline` compares
a bench_fig7_maxp --json artifact (per-signature-scheme MAX_P sweeps) against
a checked-in baseline. For every scheme present in the baseline, the run's
best match throughput must not fall below baseline_best_kqps / ratio; schemes
new in the run (not yet in the baseline) are reported but never fail.

A third mode gates task-pool scaling: `--fig5-baseline` checks a
`bench_fig5_threads --workers --json` artifact (CPU-fallback throughput vs
worker count). The gate is relative to the run's own single-worker
throughput and the host's real core count: at W workers the run must reach
at least min_scaling_fraction * min(W, hardware_threads) * kqps(1). On a
single-core container min(W, hw) is 1, so the gate degenerates to "the pool
must not cost more than (1 - fraction) of single-worker throughput"; with
real cores it demands near-linear scaling (fraction 0.5 = half of ideal).

A fourth mode gates liveness under churn: `--churn-baseline` checks a
`bench_churn --json` artifact. Two properties are gated, both per run:

  * query p99 under churn must stay within max_churn_over_nochurn_p99 (from
    the baseline file, default 1.5) of the SAME run's quiescent p99 — the
    yardstick is self-relative, so machine speed cancels out and the gate
    measures exactly what the epoch-published index promises: consolidation
    never stalls the query path;
  * publish-visibility p95 (add_set -> first query observing it) must not
    exceed the baseline's recorded p95 by more than --ratio.

Both use --min-delta-ns as the absolute noise floor, and fail only in the
majority of run files.

A fifth mode gates replica hedging: `--replica-baseline` checks a
`bench_replica_tail --json` artifact. The yardstick is self-relative — the
run's hedged-phase query p99 (one replica injected-slow, hedged reads on)
must stay within max_hedged_over_unhedged_p99 (from the baseline file,
default 0.5, i.e. hedging must cut the slow-replica tail at least 2x) of the
SAME run's unhedged p99 — so machine speed and the injected stall magnitude
both cancel out. Runs where the two phases differ by less than
--min-delta-ns carry no tail signal and pass; failure needs the majority of
run files.

Stdlib only. Exit code 0 = pass, 1 = sustained regression, 2 = usage/IO error.

Usage:
  python3 tools/perf_gate.py --baseline bench/baselines/smoke.json \
      run1.json run2.json run3.json
  python3 tools/perf_gate.py --fig7-baseline bench/baselines/fig7_bloom192.json \
      fig7_run.json
  python3 tools/perf_gate.py --fig5-baseline bench/baselines/fig5_workers.json \
      fig5_workers_run.json
  python3 tools/perf_gate.py --churn-baseline bench/baselines/churn.json \
      churn_run.json
  python3 tools/perf_gate.py --replica-baseline bench/baselines/replica_tail.json \
      replica_tail_run.json

Refreshing the baseline after an intentional perf change: re-run the smoke
bench (see .github/workflows/ci.yml) and copy its stats JSON over
bench/baselines/smoke.json; likewise `bench_fig7_maxp --json` over
bench/baselines/fig7_bloom192.json and `bench_fig5_threads --workers --json`
over bench/baselines/fig5_workers.json (keeping its min_scaling_fraction).
For bench/baselines/churn.json, refresh publish_visibility_ns.p95 from a
`bench_churn --json` run at the baseline's TAGMATCH_BENCH_USERS scale and
keep max_churn_over_nochurn_p99 (it is a contract, not a measurement); the
same applies to bench/baselines/replica_tail.json and its
max_hedged_over_unhedged_p99.
"""

import argparse
import json
import sys

GATED = [
    # (histogram-name pattern, percentile key)
    ("stage.*_ns", "p95"),
    ("query.latency_ns", "p99"),
]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def gated_metrics(baseline):
    """Yield (metric-name, percentile, baseline-value) for every gated metric
    that has signal in the baseline (count > 0 and value > 0)."""
    hists = baseline.get("histograms", {})
    for name, hist in sorted(hists.items()):
        for pattern, pct in GATED:
            if pattern.startswith("stage.") and "*" in pattern:
                matched = name.startswith("stage.") and name.endswith("_ns")
            else:
                matched = name == pattern
            if not matched:
                continue
            value = hist.get(pct, 0)
            if hist.get("count", 0) > 0 and value > 0:
                yield name, pct, float(value)
            break


def run_value(run, name, pct):
    hist = run.get("histograms", {}).get(name)
    if not hist or hist.get("count", 0) == 0:
        return None
    return float(hist.get(pct, 0))


def fig7_gate(args):
    """Throughput gate over bench_fig7_maxp --json artifacts. The run passes
    when, for every scheme the baseline knows, best_kqps >= baseline / ratio
    in the majority of run files. db_size mismatches are a hard error: Kq/s
    at different database scales are not comparable."""
    baseline = load(args.fig7_baseline)
    runs = [(path, load(path)) for path in args.runs]
    majority = len(runs) // 2 + 1

    base_schemes = baseline.get("schemes", {})
    if not base_schemes:
        print(f"perf_gate: no schemes in {args.fig7_baseline}", file=sys.stderr)
        return 2
    for path, run in runs:
        if run.get("db_size") != baseline.get("db_size"):
            print(f"perf_gate: db_size mismatch: {path} has {run.get('db_size')}, "
                  f"baseline has {baseline.get('db_size')} "
                  f"(set TAGMATCH_BENCH_USERS to the baseline's scale)",
                  file=sys.stderr)
            return 2

    failures = []
    for scheme, base_entry in sorted(base_schemes.items()):
        base = float(base_entry.get("best_kqps", 0))
        if base <= 0:
            continue
        floor = base / args.ratio
        regressed_in = []
        values = []
        for path, run in runs:
            entry = run.get("schemes", {}).get(scheme)
            if entry is None:
                continue  # Scheme absent in this run; don't count either way.
            value = float(entry.get("best_kqps", 0))
            values.append(value)
            if value < floor:
                regressed_in.append((path, value))
        status = "FAIL" if len(regressed_in) >= majority else "ok"
        run_list = " ".join(f"{v:.1f}" for v in values) or "absent"
        print(f"  [{status:4}] fig7 {scheme}: baseline {base:.1f} Kq/s, "
              f"floor {floor:.1f}, runs [{run_list}]")
        if len(regressed_in) >= majority:
            failures.append((scheme, base, regressed_in))
    for scheme, entry in sorted(runs[0][1].get("schemes", {}).items()):
        if scheme not in base_schemes:
            print(f"  [new ] fig7 {scheme}: {float(entry.get('best_kqps', 0)):.1f} Kq/s "
                  f"(no baseline yet — informational)")

    if failures:
        print(f"\nperf_gate: FAIL — {len(failures)} scheme(s) below "
              f"baseline/{args.ratio:.1f} in >= {majority}/{len(runs)} runs:",
              file=sys.stderr)
        for scheme, base, regressed_in in failures:
            worst = min(v for _, v in regressed_in)
            print(f"  {scheme}: {base:.1f} Kq/s -> down to {worst:.1f} Kq/s "
                  f"({base / worst if worst > 0 else float('inf'):.2f}x slower)",
                  file=sys.stderr)
        return 1
    print(f"perf_gate: pass ({len(runs)} run(s) vs {args.fig7_baseline})")
    return 0


def fig5_gate(args):
    """Scaling gate over bench_fig5_threads --workers --json artifacts. For
    every worker count in a run, match throughput must reach at least
    min_scaling_fraction * min(workers, hardware_threads) * that run's
    single-worker throughput — the yardstick adapts to the cores the host
    actually has, so a single-core CI container gates pool overhead while a
    multi-core host gates near-linear scaling."""
    baseline = load(args.fig5_baseline)
    runs = [(path, load(path)) for path in args.runs]
    majority = len(runs) // 2 + 1
    fraction = float(baseline.get("min_scaling_fraction", 0.5))

    for path, run in runs:
        if run.get("db_size") != baseline.get("db_size"):
            print(f"perf_gate: db_size mismatch: {path} has {run.get('db_size')}, "
                  f"baseline has {baseline.get('db_size')} "
                  f"(set TAGMATCH_BENCH_USERS to the baseline's scale)",
                  file=sys.stderr)
            return 2
        if float(run.get("workers", {}).get("1", {}).get("match_kqps", 0)) <= 0:
            print(f"perf_gate: {path} has no single-worker reference point",
                  file=sys.stderr)
            return 2

    failures = []
    worker_keys = sorted(runs[0][1].get("workers", {}), key=int)
    for wkey in worker_keys:
        workers = int(wkey)
        regressed_in = []
        detail = []
        for path, run in runs:
            entry = run.get("workers", {}).get(wkey)
            if entry is None:
                continue  # Count absent in this run; don't count either way.
            base1 = float(run["workers"]["1"]["match_kqps"])
            hw = max(1, int(run.get("hardware_threads", 1)))
            floor = fraction * min(workers, hw) * base1
            value = float(entry.get("match_kqps", 0))
            detail.append(f"{value:.1f}/{floor:.1f}")
            if value < floor:
                regressed_in.append((path, value, floor))
        status = "FAIL" if len(regressed_in) >= majority else "ok"
        print(f"  [{status:4}] fig5 workers={workers}: runs [kqps/floor: "
              f"{' '.join(detail) or 'absent'}] (fraction {fraction})")
        if len(regressed_in) >= majority:
            failures.append((workers, regressed_in))

    if failures:
        print(f"\nperf_gate: FAIL — {len(failures)} worker count(s) below the "
              f"scaling floor in >= {majority}/{len(runs)} runs:", file=sys.stderr)
        for workers, regressed_in in failures:
            for path, value, floor in regressed_in:
                print(f"  workers={workers}: {value:.1f} Kq/s < floor {floor:.1f} ({path})",
                      file=sys.stderr)
        return 1
    print(f"perf_gate: pass ({len(runs)} run(s) vs {args.fig5_baseline})")
    return 0


def churn_gate(args):
    """Liveness gate over bench_churn --json artifacts: churn-phase query p99
    self-relative to the run's quiescent p99, plus publish-visibility p95
    against the baseline's recorded value."""
    baseline = load(args.churn_baseline)
    runs = [(path, load(path)) for path in args.runs]
    majority = len(runs) // 2 + 1
    max_ratio = float(baseline.get("max_churn_over_nochurn_p99", 1.5))
    base_vis = float(baseline.get("publish_visibility_ns", {}).get("p95", 0))

    for path, run in runs:
        if run.get("db_size") != baseline.get("db_size"):
            print(f"perf_gate: db_size mismatch: {path} has {run.get('db_size')}, "
                  f"baseline has {baseline.get('db_size')} "
                  f"(set TAGMATCH_BENCH_USERS to the baseline's scale)",
                  file=sys.stderr)
            return 2
        if float(run.get("nochurn", {}).get("p99_ns", 0)) <= 0:
            print(f"perf_gate: {path} has no quiescent reference point", file=sys.stderr)
            return 2

    failures = []
    regressed_in = []
    detail = []
    for path, run in runs:
        nochurn = float(run["nochurn"]["p99_ns"])
        churn = float(run.get("churn", {}).get("p99_ns", 0))
        ceiling = max_ratio * nochurn
        detail.append(f"{churn:.0f}/{ceiling:.0f}")
        if churn > ceiling and churn - nochurn >= args.min_delta_ns:
            regressed_in.append((path, churn, ceiling))
    status = "FAIL" if len(regressed_in) >= majority else "ok"
    print(f"  [{status:4}] churn query p99 vs own quiescent p99: runs "
          f"[ns/ceiling: {' '.join(detail)}] (max ratio {max_ratio})")
    if len(regressed_in) >= majority:
        failures.append(("query p99 under churn", regressed_in))

    if base_vis > 0:
        regressed_in = []
        detail = []
        for path, run in runs:
            vis = float(run.get("publish_visibility_ns", {}).get("p95", 0))
            ceiling = args.ratio * base_vis
            detail.append(f"{vis:.0f}/{ceiling:.0f}")
            if vis > ceiling and vis - base_vis >= args.min_delta_ns:
                regressed_in.append((path, vis, ceiling))
        status = "FAIL" if len(regressed_in) >= majority else "ok"
        print(f"  [{status:4}] publish visibility p95: baseline {base_vis:.0f} ns, "
              f"runs [ns/ceiling: {' '.join(detail)}]")
        if len(regressed_in) >= majority:
            failures.append(("publish visibility p95", regressed_in))

    if failures:
        print(f"\nperf_gate: FAIL — {len(failures)} churn-liveness regression(s) "
              f"in >= {majority}/{len(runs)} runs:", file=sys.stderr)
        for what, regressed_in in failures:
            for path, value, ceiling in regressed_in:
                print(f"  {what}: {value:.0f} ns > ceiling {ceiling:.0f} ns ({path})",
                      file=sys.stderr)
        return 1
    print(f"perf_gate: pass ({len(runs)} run(s) vs {args.churn_baseline})")
    return 0


def replica_gate(args):
    """Hedging gate over bench_replica_tail --json artifacts: the hedged
    phase's query p99 self-relative to the same run's unhedged p99, both
    measured with one replica injected-slow. Runs whose phases differ by
    less than --min-delta-ns carry no tail signal and never fail."""
    baseline = load(args.replica_baseline)
    runs = [(path, load(path)) for path in args.runs]
    majority = len(runs) // 2 + 1
    max_ratio = float(baseline.get("max_hedged_over_unhedged_p99", 0.5))

    for path, run in runs:
        if float(run.get("unhedged", {}).get("p99_ns", 0)) <= 0:
            print(f"perf_gate: {path} has no unhedged reference point", file=sys.stderr)
            return 2
        if float(run.get("hedged", {}).get("p99_ns", 0)) <= 0:
            print(f"perf_gate: {path} has no hedged phase measurement", file=sys.stderr)
            return 2

    failures = []
    regressed_in = []
    detail = []
    for path, run in runs:
        unhedged = float(run["unhedged"]["p99_ns"])
        hedged = float(run["hedged"]["p99_ns"])  # Presence validated above.
        ceiling = max_ratio * unhedged
        detail.append(f"{hedged:.0f}/{ceiling:.0f}")
        if hedged > ceiling and hedged - ceiling >= args.min_delta_ns:
            regressed_in.append((path, hedged, ceiling))
    status = "FAIL" if len(regressed_in) >= majority else "ok"
    print(f"  [{status:4}] hedged query p99 vs own unhedged p99: runs "
          f"[ns/ceiling: {' '.join(detail)}] (max ratio {max_ratio})")
    if len(regressed_in) >= majority:
        failures.append(("hedged p99 over slow replica", regressed_in))

    if failures:
        print(f"\nperf_gate: FAIL — hedging no longer cuts the slow-replica tail "
              f"in >= {majority}/{len(runs)} runs:", file=sys.stderr)
        for what, regressed_in in failures:
            for path, value, ceiling in regressed_in:
                print(f"  {what}: {value:.0f} ns > ceiling {ceiling:.0f} ns ({path})",
                      file=sys.stderr)
        return 1
    print(f"perf_gate: pass ({len(runs)} run(s) vs {args.replica_baseline})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="baseline stats JSON (latency mode)")
    parser.add_argument("--fig7-baseline",
                        help="baseline bench_fig7_maxp --json artifact (throughput mode)")
    parser.add_argument("--fig5-baseline",
                        help="baseline bench_fig5_threads --workers artifact (scaling mode)")
    parser.add_argument("--churn-baseline",
                        help="baseline bench_churn --json artifact (churn-liveness mode)")
    parser.add_argument("--replica-baseline",
                        help="baseline bench_replica_tail --json artifact (hedging mode)")
    parser.add_argument("runs", nargs="+", help="stats JSON from this build's reruns")
    parser.add_argument("--ratio", type=float, default=1.5,
                        help="regression threshold multiplier (default 1.5)")
    parser.add_argument("--min-delta-ns", type=float, default=100_000,
                        help="absolute noise floor in ns (default 100000 = 0.1 ms)")
    args = parser.parse_args()

    modes = [m for m in (args.baseline, args.fig7_baseline, args.fig5_baseline,
                         args.churn_baseline, args.replica_baseline)
             if m is not None]
    if len(modes) != 1:
        print("perf_gate: pass exactly one of --baseline / --fig7-baseline / "
              "--fig5-baseline / --churn-baseline / --replica-baseline", file=sys.stderr)
        return 2
    if args.fig7_baseline:
        return fig7_gate(args)
    if args.fig5_baseline:
        return fig5_gate(args)
    if args.churn_baseline:
        return churn_gate(args)
    if args.replica_baseline:
        return replica_gate(args)

    baseline = load(args.baseline)
    runs = [(path, load(path)) for path in args.runs]
    majority = len(runs) // 2 + 1

    failures = []
    for name, pct, base in gated_metrics(baseline):
        regressed_in = []
        for path, run in runs:
            value = run_value(run, name, pct)
            if value is None:
                continue  # Metric absent in this run; don't count either way.
            if value >= args.ratio * base and value - base >= args.min_delta_ns:
                regressed_in.append((path, value))
        status = "FAIL" if len(regressed_in) >= majority else "ok"
        values = " ".join(
            f"{run_value(run, name, pct) or 0:.0f}" for _, run in runs)
        print(f"  [{status:4}] {name} {pct}: baseline {base:.0f} ns, runs [{values}]"
              f" ({len(regressed_in)}/{len(runs)} over {args.ratio}x)")
        if len(regressed_in) >= majority:
            failures.append((name, pct, base, regressed_in))

    if failures:
        print(f"\nperf_gate: FAIL — {len(failures)} sustained regression(s) "
              f"(>= {args.ratio}x baseline in >= {majority}/{len(runs)} runs):",
              file=sys.stderr)
        for name, pct, base, regressed_in in failures:
            worst = max(v for _, v in regressed_in)
            print(f"  {name} {pct}: {base:.0f} ns -> up to {worst:.0f} ns "
                  f"({worst / base:.2f}x)", file=sys.stderr)
        return 1
    print(f"perf_gate: pass ({len(runs)} run(s) vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

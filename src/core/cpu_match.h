// CPU subset match over one partition of the consolidated tagset table,
// mirroring the GPU kernel (Algorithms 3-4) including the per-block
// common-prefix shortcut. Shared by TagMatch's cpu_only/overflow paths and
// GpuEngine's all-devices-down brute-force fallback, so every degraded mode
// computes bit-identical results to the kernel.
#ifndef TAGMATCH_CORE_CPU_MATCH_H_
#define TAGMATCH_CORE_CPU_MATCH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/core/packed_output.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch {

// Matches `queries` against table slots [begin, end): emits a ResultPair
// {query index, set_ids[slot]} for every slot whose filter is a subset of
// the query. `block_dim` bounds the common-prefix blocks exactly as the
// kernel's grid does, so the emission order matches the sorted table walk.
// `variant` selects the scheme's subset-test instruction pattern
// (branch chain vs branch-free OR-reduce); results are identical either way.
inline std::vector<ResultPair> cpu_subset_match(
    std::span<const BitVector192> filters, std::span<const uint32_t> set_ids, uint32_t begin,
    uint32_t end, std::span<const BitVector192> queries, uint32_t block_dim,
    bool enable_prefix_filter,
    sig::KernelVariant variant = sig::KernelVariant::kBranchChain) {
  std::vector<ResultPair> pairs;
  std::vector<uint8_t> active;
  active.reserve(queries.size());
  for (uint32_t base = begin; base < end; base += block_dim) {
    const uint32_t last = std::min(base + block_dim, end) - 1;
    unsigned len = BitVector192::common_prefix_len(filters[base], filters[last]);
    BitVector192 prefix = filters[base].prefix(len);
    active.clear();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (enable_prefix_filter && !sig::subset_test(variant, prefix, queries[qi])) {
        continue;
      }
      active.push_back(static_cast<uint8_t>(qi));
    }
    if (active.empty()) {
      continue;
    }
    for (uint32_t i = base; i <= last; ++i) {
      for (uint8_t qi : active) {
        if (sig::subset_test(variant, filters[i], queries[qi])) {
          pairs.push_back(ResultPair{qi, set_ids[i]});
        }
      }
    }
  }
  return pairs;
}

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_CPU_MATCH_H_

// The GPU kernel's result layout (§3.3.1).
//
// Each result is a (query id, set id) pair: the query id is 8 bits (position
// of the query within its batch — hence batch_size <= 256), the set id 32
// bits. A naive struct costs 8 bytes per pair (38% padding waste); the packed
// layout stores groups of four pairs as
//     | q1 q2 q3 q4 | s1 s2 s3 s4 |
// i.e. 4 packed query ids followed by 4 packed set ids — 20 bytes per group,
// 5 bytes per pair, with at most 3 wasted bytes in the final partial group.
//
// The unpacked layout is kept behind the same interface as the §3.3.1
// ablation baseline.
#ifndef TAGMATCH_CORE_PACKED_OUTPUT_H_
#define TAGMATCH_CORE_PACKED_OUTPUT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace tagmatch {

struct ResultPair {
  uint8_t query;
  uint32_t set_id;
};

class PackedResultCodec {
 public:
  static constexpr size_t kGroupPairs = 4;
  static constexpr size_t kGroupBytes = 4 * sizeof(uint8_t) + 4 * sizeof(uint32_t);  // 20

  // Bytes needed to store `n` pairs (whole groups; a partial final group
  // still occupies a full group's query-id block plus its used set ids).
  static constexpr size_t bytes_for(size_t n) {
    return ((n + kGroupPairs - 1) / kGroupPairs) * kGroupBytes;
  }

  static void write(std::byte* base, size_t index, ResultPair pair) {
    size_t group = index / kGroupPairs;
    size_t off = index % kGroupPairs;
    std::byte* g = base + group * kGroupBytes;
    g[off] = static_cast<std::byte>(pair.query);
    std::memcpy(g + 4 + off * sizeof(uint32_t), &pair.set_id, sizeof(uint32_t));
  }

  static ResultPair read(const std::byte* base, size_t index) {
    size_t group = index / kGroupPairs;
    size_t off = index % kGroupPairs;
    const std::byte* g = base + group * kGroupBytes;
    ResultPair p;
    p.query = static_cast<uint8_t>(g[off]);
    std::memcpy(&p.set_id, g + 4 + off * sizeof(uint32_t), sizeof(uint32_t));
    return p;
  }
};

// Ablation baseline: one aligned 8-byte struct per pair.
class UnpackedResultCodec {
 public:
  static constexpr size_t kPairBytes = 8;

  static constexpr size_t bytes_for(size_t n) { return n * kPairBytes; }

  static void write(std::byte* base, size_t index, ResultPair pair) {
    std::byte* p = base + index * kPairBytes;
    p[0] = static_cast<std::byte>(pair.query);
    std::memcpy(p + 4, &pair.set_id, sizeof(uint32_t));
  }

  static ResultPair read(const std::byte* base, size_t index) {
    const std::byte* p = base + index * kPairBytes;
    ResultPair r;
    r.query = static_cast<uint8_t>(p[0]);
    std::memcpy(&r.set_id, p + 4, sizeof(uint32_t));
    return r;
  }
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_PACKED_OUTPUT_H_

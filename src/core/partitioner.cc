#include "src/core/partitioner.h"

#include <cstdlib>
#include <deque>

#include "src/common/check.h"

namespace tagmatch {

namespace {

struct WorkItem {
  BitVector192 mask;
  std::vector<uint32_t> members;
  BitVector192 used_bits;
};

// Picks the unused bit whose one-frequency over `members` is closest to 50%.
// Returns BitVector192::kBits if no unused bit discriminates (all unused bits
// have frequency 0 or |members|), in which case the partition cannot be
// split any further.
unsigned pick_pivot(std::span<const BitVector192> filters, const WorkItem& item) {
  const size_t n = item.members.size();
  std::array<uint32_t, BitVector192::kBits> freq{};
  for (uint32_t idx : item.members) {
    const BitVector192& f = filters[idx];
    for (unsigned blk = 0; blk < BitVector192::kBlocks; ++blk) {
      uint64_t bits = f.block(blk);
      while (bits != 0) {
        unsigned lead = static_cast<unsigned>(std::countl_zero(bits));
        ++freq[blk * 64 + lead];
        bits &= ~(uint64_t{1} << (63 - lead));
      }
    }
  }
  unsigned best = BitVector192::kBits;
  int64_t best_dist = INT64_MAX;
  const int64_t half = static_cast<int64_t>(n);  // distances scaled by 2
  for (unsigned pos = 0; pos < BitVector192::kBits; ++pos) {
    if (item.used_bits.test(pos)) {
      continue;
    }
    if (freq[pos] == 0 || freq[pos] == n) {
      continue;  // Would not split the partition at all.
    }
    int64_t dist = std::llabs(2 * static_cast<int64_t>(freq[pos]) - half);
    if (dist < best_dist) {
      best_dist = dist;
      best = pos;
    }
  }
  return best;
}

}  // namespace

std::vector<Partition> balance_partitions(std::span<const BitVector192> filters,
                                          uint32_t max_partition_size) {
  TAGMATCH_CHECK(max_partition_size > 0);
  std::vector<Partition> result;
  if (filters.empty()) {
    return result;
  }

  std::deque<WorkItem> queue;
  WorkItem root;
  root.members.reserve(filters.size());
  for (uint32_t i = 0; i < filters.size(); ++i) {
    root.members.push_back(i);
  }
  queue.push_back(std::move(root));

  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();
    if (item.members.empty()) {
      continue;
    }

    const bool small_enough = item.members.size() <= max_partition_size;
    if (small_enough && !item.mask.empty()) {
      result.push_back(Partition{item.mask, std::move(item.members)});
      continue;
    }

    unsigned pivot = (small_enough && item.mask.empty()) || !small_enough
                         ? pick_pivot(filters, item)
                         : BitVector192::kBits;
    if (pivot == BitVector192::kBits) {
      // No bit discriminates: emit as-is (possibly oversized, possibly with
      // an empty mask — the residual partition).
      result.push_back(Partition{item.mask, std::move(item.members)});
      continue;
    }

    WorkItem zero, one;
    zero.mask = item.mask;
    one.mask = item.mask;
    one.mask.set(pivot);
    zero.used_bits = item.used_bits;
    zero.used_bits.set(pivot);
    one.used_bits = zero.used_bits;
    for (uint32_t idx : item.members) {
      (filters[idx].test(pivot) ? one : zero).members.push_back(idx);
    }
    queue.push_back(std::move(zero));
    queue.push_back(std::move(one));
  }
  return result;
}

}  // namespace tagmatch

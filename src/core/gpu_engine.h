// GPU side of TagMatch (§3.3): the tagset tables uploaded to every device,
// the subset-match kernel with block-level prefix pre-filtering (Algorithms
// 3-4), and the stream workflow of §3.3.2 — a pool of streams per device,
// each with even/odd result buffers so that one exact-size device-to-host
// copy per batch carries both the previous batch's results and the current
// batch's result length.
//
// Protocol (double-buffered mode). Kernel of cycle n writes its result pairs
// into buffer[n%2]'s payload and uses buffer[(n-1)%2]'s header as its atomic
// output counter. The D2H copy of cycle n transfers buffer[(n-1)%2] in one
// piece: its header (the count of batch n, needed to size cycle n+1's copy)
// plus its payload (the results of batch n-1, whose count arrived with cycle
// n-1's copy). Results therefore trail their batch by one cycle per stream;
// `drain()` flushes the trailing batch with a payload-only copy.
#ifndef TAGMATCH_CORE_GPU_ENGINE_H_
#define TAGMATCH_CORE_GPU_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/common/mpmc_queue.h"
#include "src/core/config.h"
#include "src/core/packed_output.h"
#include "src/core/partition_table.h"
#include "src/gpusim/device.h"
#include "src/gpusim/stream.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch {

// Host-side description of the consolidated, partitioned tagset table.
// Filters are sorted lexicographically within each partition (the prefix
// pre-filter depends on this); `set_ids[i]` is the global unique-set id of
// `filters[i]`.
struct TagsetTableView {
  std::span<const BitVector192> filters;
  std::span<const uint32_t> set_ids;
  // Partition p occupies [offsets[p], offsets[p+1]) of the two arrays.
  std::span<const uint32_t> offsets;
};

// Delivered once per submitted batch, on a stream executor thread (or on the
// engine's retry worker after a fault). `token` is the opaque batch handle
// passed to submit(). When `overflow` is true the result buffer capacity was
// exceeded and `pairs` is incomplete; the caller must re-match the batch on
// the CPU. Injected/observed GPU faults never reach this callback: the
// engine retries, re-dispatches to a surviving device, or brute-forces the
// batch on its host table mirror, so the pairs delivered are always the full
// result set for the batch.
using BatchResultFn = std::function<void(void* token, std::span<const ResultPair> pairs,
                                         bool overflow)>;

// Per-device health state machine. A device starts kHealthy; enough
// consecutive failed cycles (or one device-loss error) quarantines it; after
// the quarantine period the next submission probes it; a passing probe
// returns it to service as kRecovered, and its next successful cycle makes
// it kHealthy again. Gauge values (device.health.<d>) use these integers.
enum class DeviceHealth : uint32_t {
  kHealthy = 0,
  kQuarantined = 1,
  kProbing = 2,
  kRecovered = 3,
};

const char* device_health_name(DeviceHealth health);

class GpuEngine {
 public:
  GpuEngine(const TagMatchConfig& config, BatchResultFn on_result);
  ~GpuEngine();

  GpuEngine(const GpuEngine&) = delete;
  GpuEngine& operator=(const GpuEngine&) = delete;

  // Uploads the full tagset table to every device (full replication — the
  // paper's default multi-GPU mode). Blocks until the copies complete. Must
  // be called before submit(); may be called again to replace the table once
  // all in-flight batches have drained.
  void upload(const TagsetTableView& table);

  // Submits one batch of queries against one partition. `queries` must stay
  // valid until the batch result is delivered. Blocks while all streams are
  // busy (back-pressure). Thread-safe. A valid `ctx` makes the submission's
  // stream ops (H2D, kernel, and the D2H issued with this cycle) record
  // their spans under it — by the double-buffering protocol that D2H
  // physically carries the *previous* batch's payload, but it is attributed
  // to the submitting batch, whose pipeline it serves.
  void submit(PartitionId partition, std::span<const BitVector192> queries, void* token,
              const obs::TraceContext& ctx = {});

  // Delivers the trailing undelivered batch of every stream.
  void drain();

  uint64_t device_memory_used() const;
  std::vector<uint64_t> device_memory_used_per_device() const;

  // Merged profiling data across all devices (empty unless
  // config.gpu_profiling). The summary quantifies copy/kernel busy time and
  // cross-stream overlap; the trace is chrome://tracing JSON.
  gpusim::Profiler::Summary profile_summary() const;
  bool write_gpu_trace(const std::string& path) const;
  unsigned num_devices() const { return static_cast<unsigned>(devices_.size()); }
  // Device that owns a partition (kPartition mode; in kReplicate mode every
  // device holds every partition and this returns 0).
  unsigned partition_device(PartitionId p) const;

  // Number of batches whose results have not been delivered yet.
  uint64_t in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  // --- Resilience introspection ---
  DeviceHealth device_health(unsigned device) const;
  // Health transitions in occurrence order: (device, new state). The initial
  // kHealthy state is not logged.
  std::vector<std::pair<unsigned, DeviceHealth>> health_history() const;
  // Failed cycles requeued for another attempt.
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  // Retries that landed on a different device than the one that failed.
  uint64_t redispatches() const { return redispatches_.load(std::memory_order_relaxed); }
  // Batches brute-forced on the host table mirror (no eligible device, or
  // retry budget exhausted).
  uint64_t cpu_fallback_batches() const {
    return cpu_fallback_batches_.load(std::memory_order_relaxed);
  }

 private:
  struct DeviceTable {
    gpusim::DeviceBuffer filters;  // BitVector192[n]
    gpusim::DeviceBuffer set_ids;  // uint32_t[n]
  };

  struct PendingBatch {
    void* token = nullptr;
    uint64_t count = 0;      // Valid once the cycle that launched it completes its D2H.
    bool overflow = false;
    bool live = false;
    obs::TraceContext ctx;   // Trace context of the batch (drain's payload copy records under it).
    // Resubmission state: the original submission arguments (the caller
    // guarantees `queries` stays valid until delivery, which has not
    // happened for a live batch) and how many attempts already failed.
    PartitionId partition = 0;
    std::span<const BitVector192> queries;
    uint32_t attempts = 0;
  };

  struct StreamCtx {
    unsigned device_index = 0;
    std::unique_ptr<gpusim::Stream> stream;
    gpusim::DeviceBuffer query_buf;
    gpusim::DeviceBuffer result_buf[2];
    std::vector<std::byte> host_result[2];
    uint64_t cycle = 0;
    PendingBatch pending;  // The batch whose results the next cycle's copy will deliver.
    std::shared_ptr<gpusim::Event> last_event;
    // False when a construction-time buffer allocation failed (injected
    // alloc fault / real OOM); an unusable context never enters the pool.
    bool usable = true;
  };

  // A batch pulled off a failed cycle, waiting for the retry worker.
  struct RetryItem {
    PartitionId partition = 0;
    std::span<const BitVector192> queries;
    void* token = nullptr;
    obs::TraceContext ctx;
    uint32_t attempts = 0;
    int failed_device = -1;
  };

  struct DeviceState {
    std::atomic<uint32_t> health{static_cast<uint32_t>(DeviceHealth::kHealthy)};
    std::atomic<uint32_t> failure_streak{0};
    std::atomic<int64_t> quarantine_until_ns{0};
    std::atomic<bool> table_ok{false};  // True once upload() succeeded on this device.
  };

  static constexpr size_t kHeaderBytes = 16;  // u64 count, u64 overflow flag.

  // Where a partition lives: owning device (kPartition) plus its start slot
  // within that device's flat arrays. In kReplicate mode, `begin` is the
  // same on every device.
  struct PartitionLocation {
    unsigned device = 0;
    uint32_t begin = 0;
    uint32_t size = 0;
  };

  size_t payload_capacity_bytes() const;
  size_t bytes_for_pairs(uint64_t n) const;
  gpusim::Kernel make_kernel(unsigned device_index, PartitionId partition,
                             const BitVector192* queries_dev, uint32_t num_queries,
                             std::byte* counter_header, std::byte* payload);
  void deliver(const PendingBatch& batch, std::span<const std::byte> payload_bytes);
  void drain_stream(StreamCtx& ctx);
  void drain_streams_once();

  // --- Resilience internals ---
  // Ready to serve: table uploaded, not lost, has usable streams, and not
  // inside an unexpired quarantine (an expired one triggers an inline probe).
  bool device_eligible(unsigned device);
  // Picks a device for the batch: the owning device in kPartition mode,
  // round-robin over eligible devices (skipping `exclude` when another
  // choice exists) in kReplicate mode. -1 when no device can serve.
  int choose_device(PartitionId partition, int exclude);
  void set_health(unsigned device, DeviceHealth health);
  void note_device_failure(unsigned device, gpusim::OpError error);
  void note_device_success(unsigned device);
  // Hands a failed batch to the retry worker (counts engine.retries).
  void requeue(const PendingBatch& batch, unsigned failed_device);
  void retry_loop();
  // Full submission path against a chosen device; the public submit() and
  // the retry worker both land here.
  void submit_attempt(PartitionId partition, std::span<const BitVector192> queries, void* token,
                      const obs::TraceContext& ctx, unsigned device, uint32_t attempts);
  // Brute-force the batch on the host table mirror and deliver.
  void cpu_fallback_deliver(PartitionId partition, std::span<const BitVector192> queries,
                            void* token, const obs::TraceContext& ctx);

  TagMatchConfig config_;
  // Subset-test instruction pattern of the configured signature scheme,
  // captured by every kernel and by the CPU fallback (identical results).
  sig::KernelVariant variant_;
  BatchResultFn on_result_;
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<DeviceTable> device_tables_;
  std::vector<PartitionLocation> locations_;  // Per partition.
  std::vector<std::unique_ptr<StreamCtx>> streams_;
  // One stream pool per device: in kReplicate mode submissions rotate over
  // devices; in kPartition mode they go to the owning device's pool.
  std::vector<std::unique_ptr<MpmcQueue<StreamCtx*>>> available_;
  // Contexts actually in each pool (== usable streams); drain pops exactly
  // this many per device.
  std::vector<unsigned> pool_size_;
  std::mutex drain_mu_;  // See drain(): concurrent whole-pool drains deadlock.
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<uint64_t> in_flight_{0};

  // Host mirror of the uploaded table (global offsets), for the CPU
  // brute-force fallback when no device can serve a batch.
  std::vector<BitVector192> host_filters_;
  std::vector<uint32_t> host_set_ids_;
  std::vector<uint32_t> host_offsets_;

  std::vector<std::unique_ptr<DeviceState>> device_states_;
  mutable std::mutex health_mu_;  // Guards transitions + history_ (fault path only).
  std::vector<std::pair<unsigned, DeviceHealth>> history_;
  std::vector<obs::Gauge*> health_gauges_;  // Per device; null without metrics.

  MpmcQueue<RetryItem> retry_queue_;
  // Items accepted by requeue() and not yet resubmitted/delivered by the
  // retry worker; drain() and the destructor wait for this to reach zero.
  std::atomic<uint64_t> retry_pending_{0};
  std::thread retry_worker_;

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> redispatches_{0};
  std::atomic<uint64_t> cpu_fallback_batches_{0};
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* redispatches_counter_ = nullptr;
  obs::Counter* cpu_fallback_counter_ = nullptr;
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_GPU_ENGINE_H_

// TagMatch — the subset-matching engine of the paper (§2-§3).
//
// A database of tag sets, each associated with application keys, against
// which a stream of query sets is matched: match(q) returns the keys of
// every indexed set s with s ⊆ q (a multiset — one instance per matching
// set), match_unique(q) the deduplicated set of keys.
//
// Sets are represented as 192-bit Bloom filters (k = 7); all matching is on
// the bitwise-subset relation of the filters, which implies set inclusion
// with false-positive probability around 1e-11 for typical workloads
// (BloomFilter192::false_positive_probability).
//
// add_set/remove_set stage changes; consolidate() makes them effective by
// running the balanced partitioning (Algorithm 1), rebuilding the partition
// table (Algorithm 2) and uploading the tagset tables to every GPU.
//
// Matching runs through the four-stage pipeline of Figure 1: pre-process
// (CPU), subset match (GPU, batched), key lookup/reduce (CPU), merge (CPU).
// match_async feeds the pipeline without blocking; match/match_unique are
// synchronous conveniences that flush the pipeline.
#ifndef TAGMATCH_CORE_TAGMATCH_H_
#define TAGMATCH_CORE_TAGMATCH_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/config.h"
#include "src/core/matcher.h"

namespace tagmatch {

class TagMatchImpl;

class TagMatch : public Matcher {
 public:
  // Key, MatchKind, MatchCallback and Stats are inherited from Matcher (the
  // interface extracted from this class); TagMatch::Key etc. keep working.

  explicit TagMatch(TagMatchConfig config = TagMatchConfig{});
  ~TagMatch() override;

  TagMatch(const TagMatch&) = delete;
  TagMatch& operator=(const TagMatch&) = delete;

  // --- Table maintenance (staged; effective after consolidate) ---
  // The string-tag overloads also record per-tag hashes when
  // config.exact_check is on, enabling exact verification (no Bloom false
  // positives). The filter-only overloads register sets that skip
  // verification.
  void add_set(std::span<const std::string> tags, Key key) override;
  void add_set(const BloomFilter192& filter, Key key) override;
  // Pre-hashed variant for applications with non-string tag identifiers:
  // `tag_hashes` must be the stable per-tag hashes (one per tag, any order)
  // that queries will also supply.
  void add_set_hashed(const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
                      Key key);
  void remove_set(std::span<const std::string> tags, Key key) override;
  void remove_set(const BloomFilter192& filter, Key key) override;
  void consolidate() override;

  // Stable hash used by the string-tag convenience APIs for exact checking.
  static uint64_t tag_hash(std::string_view tag);

  // --- Matching ---
  void match_async(const BloomFilter192& query, MatchKind kind, MatchCallback callback) override;
  // Exact-check-capable variant: `query_tag_hashes` are the hashes of the
  // query's tags (same hash space as add_set_hashed / tag_hash).
  // `deadline_ns` (absolute, now_ns() domain; 0 = none) arms deadline-aware
  // batch close for this query (config.deadline_batch_close).
  void match_async_hashed(const BloomFilter192& query,
                          std::span<const uint64_t> query_tag_hashes, MatchKind kind,
                          MatchCallback callback, int64_t deadline_ns = 0,
                          const obs::TraceContext& trace_ctx = {});
  void match_async(std::span<const std::string> tags, MatchKind kind,
                   MatchCallback callback) override;
  // Deadline-carrying overloads (see Matcher): batches holding this query
  // are flushed early as deadline_ns approaches, bounding the time the query
  // can sit in a partial batch.
  void match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                   MatchCallback callback) override;
  void match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                   MatchCallback callback) override;
  // Trace-context-carrying overloads (see Matcher): the query's stage spans
  // record under ctx.trace_id, parented on ctx.parent_span_id, and the
  // GPU stream ops inherit the batch's context.
  void match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                   const obs::TraceContext& ctx, MatchCallback callback) override;
  void match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                   const obs::TraceContext& ctx, MatchCallback callback) override;
  std::vector<Key> match(const BloomFilter192& query) override;
  std::vector<Key> match_unique(const BloomFilter192& query) override;
  std::vector<Key> match(std::span<const std::string> tags) override;
  std::vector<Key> match_unique(std::span<const std::string> tags) override;

  // --- Persistence ---
  // Saves the consolidated index (tagset table, partition masks, key table,
  // exact-check hashes) to a file; load_index restores it, replacing the
  // current database — after which matching and further add/remove +
  // consolidate cycles work as usual. Returns false on I/O or format error.
  // The format is native-endian and version-checked.
  bool save_index(const std::string& path) const override;
  bool load_index(const std::string& path) override;

  // Pushes every partially-filled batch through the pipeline and blocks
  // until all in-flight queries have completed.
  void flush() override;

  // --- Introspection ---
  Stats stats() const override;
  // Snapshot of the engine's metrics registry / trace ring (src/obs). The
  // registry covers the full pipeline: engine counters and gauges, per-stage
  // latency histograms (including the GPU H2D/kernel/D2H stages recorded by
  // the simulated devices) and the end-to-end query latency histogram.
  obs::MetricsSnapshot metrics_snapshot() const override;
  std::vector<obs::Span> trace_snapshot() const override;
  uint64_t trace_dropped() const override;

  // Enumerates the consolidated database: one invocation per unique set,
  // with the set's filter, its key multiset and its exact-check tag hashes
  // (empty span when the set was registered filter-only). Staged (not yet
  // consolidated) changes are not visited. Used by the sharded serving
  // layer to redistribute a saved index across a different shard count.
  void for_each_set(
      const std::function<void(const BloomFilter192& filter, std::span<const Key> keys,
                               std::span<const uint64_t> tag_hashes)>& fn) const;

 private:
  std::unique_ptr<TagMatchImpl> impl_;
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_TAGMATCH_H_

// TagMatch — the subset-matching engine of the paper (§2-§3).
//
// A database of tag sets, each associated with application keys, against
// which a stream of query sets is matched: match(q) returns the keys of
// every indexed set s with s ⊆ q (a multiset — one instance per matching
// set), match_unique(q) the deduplicated set of keys.
//
// Sets are represented as 192-bit Bloom filters (k = 7); all matching is on
// the bitwise-subset relation of the filters, which implies set inclusion
// with false-positive probability around 1e-11 for typical workloads
// (BloomFilter192::false_positive_probability).
//
// add_set/remove_set stage changes; consolidate() makes them effective by
// running the balanced partitioning (Algorithm 1), rebuilding the partition
// table (Algorithm 2) and uploading the tagset tables to every GPU.
//
// Matching runs through the four-stage pipeline of Figure 1: pre-process
// (CPU), subset match (GPU, batched), key lookup/reduce (CPU), merge (CPU).
// match_async feeds the pipeline without blocking; match/match_unique are
// synchronous conveniences that flush the pipeline.
#ifndef TAGMATCH_CORE_TAGMATCH_H_
#define TAGMATCH_CORE_TAGMATCH_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/config.h"

namespace tagmatch {

class TagMatchImpl;

class TagMatch {
 public:
  using Key = uint32_t;
  enum class MatchKind { kMatch, kMatchUnique };
  // Invoked exactly once per query with its final key list (multiset for
  // kMatch, deduplicated and sorted for kMatchUnique). Runs on a pipeline
  // worker thread.
  using MatchCallback = std::function<void(std::vector<Key>)>;

  explicit TagMatch(TagMatchConfig config = TagMatchConfig{});
  ~TagMatch();

  TagMatch(const TagMatch&) = delete;
  TagMatch& operator=(const TagMatch&) = delete;

  // --- Table maintenance (staged; effective after consolidate) ---
  // The string-tag overloads also record per-tag hashes when
  // config.exact_check is on, enabling exact verification (no Bloom false
  // positives). The filter-only overloads register sets that skip
  // verification.
  void add_set(std::span<const std::string> tags, Key key);
  void add_set(const BloomFilter192& filter, Key key);
  // Pre-hashed variant for applications with non-string tag identifiers:
  // `tag_hashes` must be the stable per-tag hashes (one per tag, any order)
  // that queries will also supply.
  void add_set_hashed(const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
                      Key key);
  void remove_set(std::span<const std::string> tags, Key key);
  void remove_set(const BloomFilter192& filter, Key key);
  void consolidate();

  // Stable hash used by the string-tag convenience APIs for exact checking.
  static uint64_t tag_hash(std::string_view tag);

  // --- Matching ---
  void match_async(const BloomFilter192& query, MatchKind kind, MatchCallback callback);
  // Exact-check-capable variant: `query_tag_hashes` are the hashes of the
  // query's tags (same hash space as add_set_hashed / tag_hash).
  void match_async_hashed(const BloomFilter192& query,
                          std::span<const uint64_t> query_tag_hashes, MatchKind kind,
                          MatchCallback callback);
  void match_async(std::span<const std::string> tags, MatchKind kind, MatchCallback callback);
  std::vector<Key> match(const BloomFilter192& query);
  std::vector<Key> match_unique(const BloomFilter192& query);
  std::vector<Key> match(std::span<const std::string> tags);
  std::vector<Key> match_unique(std::span<const std::string> tags);

  // --- Persistence ---
  // Saves the consolidated index (tagset table, partition masks, key table,
  // exact-check hashes) to a file; load_index restores it, replacing the
  // current database — after which matching and further add/remove +
  // consolidate cycles work as usual. Returns false on I/O or format error.
  // The format is native-endian and version-checked.
  bool save_index(const std::string& path) const;
  bool load_index(const std::string& path);

  // Pushes every partially-filled batch through the pipeline and blocks
  // until all in-flight queries have completed.
  void flush();

  // --- Introspection ---
  struct Stats {
    uint64_t unique_sets = 0;
    uint64_t total_keys = 0;
    uint64_t partitions = 0;
    double last_consolidate_seconds = 0;
    uint64_t queries_processed = 0;
    uint64_t batches_submitted = 0;
    uint64_t batch_overflows = 0;        // GPU result-buffer overflows (CPU fallback taken)
    uint64_t exact_rejections = 0;       // Bloom false positives caught by the exact check
    // --- Pipeline telemetry ---
    uint64_t partitions_forwarded = 0;   // Total query->partition forwards (pre-process).
    uint64_t batch_queries = 0;          // Queries over all submitted batches.
    uint64_t result_pairs = 0;           // (query, set) pairs from the subset-match stage.
    // Derived: partitions_forwarded / queries_processed = avg partitions per
    // query; batch_queries / batches_submitted = avg batch fill.
    double avg_partitions_per_query() const {
      return queries_processed ? static_cast<double>(partitions_forwarded) /
                                     static_cast<double>(queries_processed)
                               : 0;
    }
    double avg_batch_fill() const {
      return batches_submitted ? static_cast<double>(batch_queries) /
                                     static_cast<double>(batches_submitted)
                               : 0;
    }

    uint64_t host_key_table_bytes = 0;   // The key table (Fig. 9's dominant host component).
    uint64_t host_partition_table_bytes = 0;
    uint64_t host_buffer_bytes = 0;      // CPU<->GPU communication buffers.
    uint64_t gpu_bytes = 0;              // Tagset tables + device buffers across all GPUs.
  };
  Stats stats() const;

 private:
  std::unique_ptr<TagMatchImpl> impl_;
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_TAGMATCH_H_

// Parallel wrapper over cpu_subset_match: splits the partition slot range
// into block_dim-aligned chunks and fans them out over the task scheduler,
// concatenating per-chunk results in chunk order.
//
// Because cpu_subset_match walks the table in blocks of block_dim counted
// from `begin`, a block_dim-aligned split sees exactly the same blocks —
// same prefixes, same emission order within each chunk — so the
// concatenated output is byte-identical to the single-threaded walk. That
// identity is what the chaos tier's differential oracles assert: every
// degraded mode (all devices quarantined, result-buffer overflow, cpu_only)
// still computes the kernel's exact result set regardless of worker count.
#ifndef TAGMATCH_CORE_CPU_MATCH_PARALLEL_H_
#define TAGMATCH_CORE_CPU_MATCH_PARALLEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/cpu_match.h"
#include "src/task/task_scheduler.h"

namespace tagmatch {

inline std::vector<ResultPair> parallel_subset_match(
    task::TaskScheduler* scheduler, std::span<const BitVector192> filters,
    std::span<const uint32_t> set_ids, uint32_t begin, uint32_t end,
    std::span<const BitVector192> queries, uint32_t block_dim, bool enable_prefix_filter,
    sig::KernelVariant variant) {
  const uint32_t slots = end - begin;
  if (scheduler == nullptr || scheduler->num_workers() <= 1 || slots <= block_dim) {
    return cpu_subset_match(filters, set_ids, begin, end, queries, block_dim,
                            enable_prefix_filter, variant);
  }
  // Aim for a couple of chunks per worker so stealing can smooth uneven
  // chunk costs (the prefix filter makes block costs data-dependent).
  const uint32_t blocks = (slots + block_dim - 1) / block_dim;
  const uint32_t target_chunks = scheduler->num_workers() * 2;
  const uint32_t blocks_per_chunk = std::max(1u, (blocks + target_chunks - 1) / target_chunks);
  const uint32_t chunk_slots = blocks_per_chunk * block_dim;
  const uint32_t num_chunks = (slots + chunk_slots - 1) / chunk_slots;
  std::vector<std::vector<ResultPair>> parts(num_chunks);
  scheduler->parallel_for(num_chunks, [&](size_t c) {
    const uint32_t b = begin + static_cast<uint32_t>(c) * chunk_slots;
    const uint32_t e = std::min(end, b + chunk_slots);
    parts[c] = cpu_subset_match(filters, set_ids, b, e, queries, block_dim,
                                enable_prefix_filter, variant);
  });
  size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
  }
  std::vector<ResultPair> pairs;
  pairs.reserve(total);
  for (auto& part : parts) {
    pairs.insert(pairs.end(), part.begin(), part.end());
  }
  return pairs;
}

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_CPU_MATCH_PARALLEL_H_

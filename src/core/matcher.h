// Matcher — the abstract subset-matching engine interface, extracted from
// TagMatch so that consumers (Broker, tagmatch_cli, tagmatch_server) can run
// against either a single engine or a sharded deployment (src/shard/)
// without caring which.
//
// The contract is TagMatch's (§2-§3 of the paper): add_set/remove_set stage
// changes that become effective at consolidate(); match(q) returns the keys
// of every indexed set s with s ⊆ q as a multiset, match_unique(q) the
// deduplicated sorted key set; match_async feeds the pipeline without
// blocking and invokes its callback exactly once per query on an internal
// worker thread; flush() blocks until every in-flight query has completed.
#ifndef TAGMATCH_CORE_MATCHER_H_
#define TAGMATCH_CORE_MATCHER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tagmatch {

class Matcher {
 public:
  using Key = uint32_t;
  enum class MatchKind { kMatch, kMatchUnique };
  // Invoked exactly once per query with its final key list (multiset for
  // kMatch, deduplicated and sorted for kMatchUnique). Runs on a pipeline
  // worker thread.
  using MatchCallback = std::function<void(std::vector<Key>)>;

  virtual ~Matcher() = default;

  // --- Table maintenance (staged; effective after consolidate) ---
  virtual void add_set(std::span<const std::string> tags, Key key) = 0;
  virtual void add_set(const BloomFilter192& filter, Key key) = 0;
  virtual void remove_set(std::span<const std::string> tags, Key key) = 0;
  virtual void remove_set(const BloomFilter192& filter, Key key) = 0;
  virtual void consolidate() = 0;

  // --- Matching ---
  virtual void match_async(const BloomFilter192& query, MatchKind kind,
                           MatchCallback callback) = 0;
  virtual void match_async(std::span<const std::string> tags, MatchKind kind,
                           MatchCallback callback) = 0;

  // Deadline-carrying variants. `deadline_ns` is an absolute steady-clock
  // timestamp in the now_ns() domain (src/common/stats.h); 0 means no
  // deadline. A deadline is a latency hint, not a result contract: engines
  // that understand it push the query through the pipeline early as the
  // deadline nears (deadline-aware batch close in TagMatch, per-shard
  // propagation in ShardedTagMatch) but still deliver complete results.
  // Deadline-driven result shedding is only available through
  // ShardedTagMatch::match_result_async, which can express a partial result.
  // The default implementations ignore the deadline.
  virtual void match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                           MatchCallback callback) {
    (void)deadline_ns;
    match_async(query, kind, std::move(callback));
  }
  virtual void match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                           MatchCallback callback) {
    (void)deadline_ns;
    match_async(tags, kind, std::move(callback));
  }

  // Trace-context-carrying variants. The context rides the same hand-offs
  // the deadline does (publish -> enqueue -> batch -> shard fan-out -> GPU
  // stream ops); engines that understand it record their stage spans under
  // ctx.trace_id with causal parent links, so one publish reassembles into a
  // connected trace. A default-constructed (invalid) context — and these
  // default implementations — disable tracing for the query.
  virtual void match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                           const obs::TraceContext& ctx, MatchCallback callback) {
    (void)ctx;
    match_async(query, kind, deadline_ns, std::move(callback));
  }
  virtual void match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                           const obs::TraceContext& ctx, MatchCallback callback) {
    (void)ctx;
    match_async(tags, kind, deadline_ns, std::move(callback));
  }
  virtual std::vector<Key> match(const BloomFilter192& query) = 0;
  virtual std::vector<Key> match_unique(const BloomFilter192& query) = 0;
  virtual std::vector<Key> match(std::span<const std::string> tags) = 0;
  virtual std::vector<Key> match_unique(std::span<const std::string> tags) = 0;

  // --- Persistence ---
  // Returns false on I/O or format error, leaving the live engine unchanged.
  virtual bool save_index(const std::string& path) const = 0;
  virtual bool load_index(const std::string& path) = 0;

  // Pushes every partially-filled batch through the pipeline and blocks
  // until all in-flight queries have completed.
  virtual void flush() = 0;

  // --- Introspection ---
  struct Stats {
    // Name of the signature scheme (src/sig) the engine encodes and matches
    // under; empty for matchers that predate the scheme abstraction.
    std::string signature_scheme;
    uint64_t unique_sets = 0;
    uint64_t total_keys = 0;
    uint64_t partitions = 0;
    double last_consolidate_seconds = 0;
    uint64_t queries_processed = 0;
    uint64_t batches_submitted = 0;
    uint64_t batch_overflows = 0;        // GPU result-buffer overflows (CPU fallback taken)
    uint64_t exact_rejections = 0;       // Bloom false positives caught by the exact check
    // --- Fault resilience (src/inject + GpuEngine health machinery) ---
    uint64_t engine_retries = 0;         // Failed GPU cycles requeued for another attempt.
    uint64_t engine_redispatches = 0;    // Retries that moved to a different device.
    uint64_t cpu_fallback_batches = 0;   // Batches brute-forced on the host table mirror.
    // --- Pipeline telemetry ---
    uint64_t partitions_forwarded = 0;   // Total query->partition forwards (pre-process).
    uint64_t batch_queries = 0;          // Queries over all submitted batches.
    uint64_t result_pairs = 0;           // (query, set) pairs from the subset-match stage.
    // Derived: partitions_forwarded / queries_processed = avg partitions per
    // query; batch_queries / batches_submitted = avg batch fill.
    double avg_partitions_per_query() const {
      return queries_processed ? static_cast<double>(partitions_forwarded) /
                                     static_cast<double>(queries_processed)
                               : 0;
    }
    double avg_batch_fill() const {
      return batches_submitted ? static_cast<double>(batch_queries) /
                                     static_cast<double>(batches_submitted)
                               : 0;
    }

    uint64_t host_key_table_bytes = 0;   // The key table (Fig. 9's dominant host component).
    uint64_t host_partition_table_bytes = 0;
    uint64_t host_buffer_bytes = 0;      // CPU<->GPU communication buffers.
    uint64_t gpu_bytes = 0;              // Tagset tables + device buffers across all GPUs.

    // Aggregation across independent shards: counters and byte fields sum;
    // last_consolidate_seconds takes the max (shards consolidate
    // concurrently, so the slowest shard is the wall time).
    Stats& operator+=(const Stats& o) {
      // All shards of a deployment run the same scheme; keep the first
      // non-empty name.
      if (signature_scheme.empty()) {
        signature_scheme = o.signature_scheme;
      }
      unique_sets += o.unique_sets;
      total_keys += o.total_keys;
      partitions += o.partitions;
      last_consolidate_seconds = std::max(last_consolidate_seconds, o.last_consolidate_seconds);
      queries_processed += o.queries_processed;
      batches_submitted += o.batches_submitted;
      batch_overflows += o.batch_overflows;
      exact_rejections += o.exact_rejections;
      engine_retries += o.engine_retries;
      engine_redispatches += o.engine_redispatches;
      cpu_fallback_batches += o.cpu_fallback_batches;
      partitions_forwarded += o.partitions_forwarded;
      batch_queries += o.batch_queries;
      result_pairs += o.result_pairs;
      host_key_table_bytes += o.host_key_table_bytes;
      host_partition_table_bytes += o.host_partition_table_bytes;
      host_buffer_bytes += o.host_buffer_bytes;
      gpu_bytes += o.gpu_bytes;
      return *this;
    }
  };
  virtual Stats stats() const = 0;

  // Point-in-time copy of the engine's metrics registry (src/obs):
  // counters, gauges and per-stage latency histograms. Sharded deployments
  // return the merge of every shard's registry (MetricsSnapshot::operator+=).
  // The default is empty for matchers that predate the observability layer.
  virtual obs::MetricsSnapshot metrics_snapshot() const { return {}; }

  // Most recent pipeline stage spans (bounded ring), oldest first.
  virtual std::vector<obs::Span> trace_snapshot() const { return {}; }

  // Spans lost to ring wrap-around since startup — nonzero means
  // trace_snapshot() is a truncated view (see the trace.dropped counter).
  virtual uint64_t trace_dropped() const { return 0; }
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_MATCHER_H_

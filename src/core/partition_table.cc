#include "src/core/partition_table.h"

namespace tagmatch {

void PartitionTable::add(const BitVector192& mask, PartitionId id) {
  unsigned lead = mask.leftmost_one();
  if (lead == BitVector192::kBits) {
    always_matched_.push_back(id);
  } else {
    buckets_[lead].push_back(Entry{mask, id});
  }
  ++count_;
}

void PartitionTable::find_matches(const BitVector192& query,
                                  const std::function<void(PartitionId)>& fn,
                                  sig::KernelVariant variant, ProbeStats* stats) const {
  for (PartitionId id : always_matched_) {
    fn(id);
  }
  // Always-matched partitions count as examined-and-forwarded so the
  // discard ratio (1 - forwarded/examined) stays in [0, 1].
  uint64_t examined = always_matched_.size();
  uint64_t forwarded = always_matched_.size();
  // Scan the one-bit positions of the query (Algorithm 2's outer loop).
  for (unsigned blk = 0; blk < BitVector192::kBlocks; ++blk) {
    uint64_t bits = query.block(blk);
    while (bits != 0) {
      unsigned lead = static_cast<unsigned>(std::countl_zero(bits));
      for (const Entry& e : buckets_[blk * 64 + lead]) {
        ++examined;
        if (sig::subset_test(variant, e.mask, query)) {
          ++forwarded;
          fn(e.id);
        }
      }
      bits &= ~(uint64_t{1} << (63 - lead));
    }
  }
  if (stats != nullptr) {
    stats->examined += examined;
    stats->forwarded += forwarded;
  }
}

uint64_t PartitionTable::memory_bytes() const {
  uint64_t total = sizeof(*this);
  for (const auto& bucket : buckets_) {
    total += bucket.capacity() * sizeof(Entry);
  }
  total += always_matched_.capacity() * sizeof(PartitionId);
  return total;
}

}  // namespace tagmatch

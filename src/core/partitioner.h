// Off-line balanced partitioning of the tag-set database — Algorithm 1 of
// the paper. Splits the database into partitions of at most MAX_P sets, each
// identified by a bit mask shared (as a bitwise subset) by all its members.
#ifndef TAGMATCH_CORE_PARTITIONER_H_
#define TAGMATCH_CORE_PARTITIONER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bit_vector.h"

namespace tagmatch {

struct Partition {
  BitVector192 mask;
  // Indices into the input filter array.
  std::vector<uint32_t> members;
};

// Recursively splits `filters` into balanced partitions of size at most
// `max_partition_size`. Pivot bits are chosen (among bits not yet used on
// that branch) with one-frequency closest to 50%, so the two halves are as
// even as possible.
//
// Divergences from the paper's pseudocode, which leaves two corner cases
// implicit (see DESIGN.md §5):
//  * a partition that cannot be split further (every unused bit has uniform
//    value across members — e.g. all members identical) is emitted even if
//    larger than max_partition_size;
//  * sets whose remaining mask is empty when the partition is already small
//    (notably the all-zero filter of the empty tag set) are emitted in a
//    single "residual" partition with the empty mask, which the pre-process
//    stage always forwards to.
std::vector<Partition> balance_partitions(std::span<const BitVector192> filters,
                                          uint32_t max_partition_size);

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_PARTITIONER_H_

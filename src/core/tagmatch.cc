#include "src/core/tagmatch.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/stats.h"
#include "src/core/cpu_match_parallel.h"
#include "src/core/gpu_engine.h"
#include "src/core/partition_table.h"
#include "src/core/partitioner.h"
#include "src/epoch/epoch_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch {

namespace {

using Key = TagMatch::Key;
using MatchKind = TagMatch::MatchKind;

// Per-query pipeline state (§3.4). `pending` counts the batches the query
// has been forwarded to, plus one guard held while pre-processing is still
// running; when it drops to zero all results are in and the merge stage
// fires.
struct QueryState {
  BitVector192 filter;
  MatchKind kind;
  TagMatch::MatchCallback callback;
  std::atomic<uint32_t> pending{1};
  std::mutex mu;
  std::vector<Key> keys;
  // Sorted tag hashes for the exact subset check; empty when the query was
  // submitted filter-only (verification skipped).
  std::vector<uint64_t> tag_hashes;
  // Observability: engine-unique query sequence number (the flow id of this
  // query's enqueue/prefilter stages) and the match_async accept timestamp
  // (start of the enqueue span and of the end-to-end latency histogram).
  uint64_t trace_id = 0;
  int64_t enqueue_ns = 0;
  // Absolute completion deadline (now_ns() domain; 0 = none). Batches
  // holding this query are flushed early as the deadline nears.
  int64_t deadline_ns = 0;
  // Causal trace context handed in by the caller (invalid = not traced).
  // The enqueue span parents on ctx.parent_span_id; prefilter on enqueue;
  // the batch span on prefilter (see Batch::ctx).
  obs::TraceContext ctx;
};

struct IndexSnapshot;

// A batch of queries bound for one partition. Owns the contiguous filter
// array handed to the GPU (it must outlive the asynchronous copy) and an
// owning reference to the index snapshot its partition id is defined
// against — completion (key lookup, CPU re-match) reads that snapshot even
// if a newer one has been published meanwhile.
struct Batch {
  PartitionId partition = 0;
  std::shared_ptr<const IndexSnapshot> snapshot;
  std::vector<BitVector192> filters;
  std::vector<std::shared_ptr<QueryState>> queries;
  int64_t created_ns = 0;
  uint64_t trace_id = 0;  // Engine-unique batch sequence (reduce flow id).
  // Earliest deadline over member queries (0 = none); the flusher submits
  // the batch early when it nears.
  int64_t min_deadline_ns = 0;
  // Causal trace context of the batch: adopted from the first traced member
  // query (trace id + that query's prefilter span as parent). The batch span
  // id is pre-allocated so the GPU stream ops — which enqueue before the
  // reduce span is recorded — can parent on it.
  obs::TraceContext ctx;
  uint64_t batch_span_id = 0;
};

struct PartialSlot {
  std::mutex mu;
  std::unique_ptr<Batch> batch;
};

// One published generation of the consolidated index. Immutable once
// published (the only mutable parts are the per-partition partial-batch
// slots, which have their own locks): readers pin an epoch, load the
// published pointer and traverse without further synchronization. The old
// generation is retired to the epoch manager and freed once every reader
// pinned before publication has drained.
struct IndexSnapshot : std::enable_shared_from_this<IndexSnapshot> {
  // Monotone publication sequence; compared against the engine's
  // gpu_version_ to decide whether a batch may use the GPU-resident table.
  uint64_t version = 0;

  // CSR flat index: keys of unique set i occupy
  // keys_flat[key_offsets[i] .. key_offsets[i+1]); exact-check hashes are
  // aligned the same way (empty range = verification skipped).
  std::vector<BitVector192> filters_sorted;  // Host mirror of the GPU tagset table.
  std::vector<uint32_t> set_ids;
  std::vector<uint32_t> offsets;
  std::vector<BitVector192> masks;  // Partition masks, aligned with offsets.
  std::vector<uint32_t> key_offsets;
  std::vector<Key> keys_flat;
  std::vector<uint64_t> exact_offsets;  // Per unique set, into exact_hashes.
  std::vector<uint64_t> exact_hashes;
  PartitionTable partition_table;

  // Per-partition open batches. Partition ids are meaningful only against
  // this snapshot's table, so the assembly slots live in the snapshot: a
  // query that pinned this snapshot appends here, and publication sweeps
  // the outgoing snapshot's slots after readers drain.
  std::vector<std::unique_ptr<PartialSlot>> partials;

  // Wall seconds the consolidation (or index load) that produced this
  // snapshot took. Part of the snapshot so stats() reads it tear-free.
  double build_seconds = 0;

  size_t unique_sets() const { return key_offsets.empty() ? 0 : key_offsets.size() - 1; }
  size_t partitions() const { return offsets.empty() ? 0 : offsets.size() - 1; }
};

}  // namespace

class TagMatchImpl {
 public:
  explicit TagMatchImpl(TagMatchConfig config)
      : config_(std::move(config)),
        scheme_(&sig::resolve(config_.signature_scheme)),
        variant_(scheme_->kernel_variant()) {
    TAGMATCH_CHECK(config_.batch_size >= 1 && config_.batch_size <= 256);
    TAGMATCH_CHECK(config_.num_threads >= 1);
    // Pin the resolved scheme so every layer below (GPU engine, persistence,
    // shard manifests) sees the same choice even if the environment changes.
    config_.signature_scheme = scheme_;
    if (!config_.metrics) {
      config_.metrics = std::make_shared<obs::PipelineObs>();
    }
    obs_ = config_.metrics.get();
    obs::Registry& registry = obs_->registry();
    queries_processed_ = registry.counter("engine.queries_processed");
    batches_submitted_ = registry.counter("engine.batches_submitted");
    batch_overflows_ = registry.counter("engine.batch_overflows");
    exact_rejections_ = registry.counter("engine.exact_rejections");
    partitions_forwarded_ = registry.counter("engine.partitions_forwarded");
    batch_queries_ = registry.counter("engine.batch_queries");
    result_pairs_ = registry.counter("engine.result_pairs");
    deadline_closes_ = registry.counter("engine.deadline_closes");
    consolidations_ = registry.counter("engine.consolidations");
    stale_snapshot_batches_ = registry.counter("engine.stale_snapshot_batches");
    query_latency_ = registry.histogram("query.latency_ns");
    unique_sets_gauge_ = registry.gauge("engine.unique_sets");
    partitions_gauge_ = registry.gauge("engine.partitions");
    scheme_id_gauge_ = registry.gauge("sig.scheme_id", obs::GaugeMode::kLast);
    scheme_id_gauge_->set(static_cast<int64_t>(scheme_->id()));
    fpr_observed_gauge_ = registry.gauge("sig.fpr_observed", obs::GaugeMode::kLast);
    encode_ns_ = registry.histogram("sig.encode_ns");
    discard_ratio_ = registry.histogram("prefilter.discard_ratio");
    epoch_ = std::make_unique<epoch::EpochManager>(&registry);
    // Publish the empty generation so readers never see a null index.
    {
      auto initial = std::make_shared<IndexSnapshot>();
      published_owner_ = initial;
      published_.store(initial.get(), std::memory_order_seq_cst);
    }
    // The task scheduler runs every host-side stage (docs/CONCURRENCY.md).
    // A supplied scheduler is shared (the supplier owns its lifetime);
    // otherwise the engine creates a private one and shuts it down in the
    // destructor. Either way the GPU engine below sees it via config_.
    if (config_.scheduler) {
      scheduler_ = config_.scheduler;
      owns_scheduler_ = false;
    } else {
      task::SchedulerConfig sched_config;
      sched_config.num_workers = task::resolve_workers(config_.num_workers, config_.num_threads);
      sched_config.pin_workers = config_.pin_workers;
      sched_config.metrics = config_.metrics;
      scheduler_ = std::make_shared<task::TaskScheduler>(std::move(sched_config));
      config_.scheduler = scheduler_;
      owns_scheduler_ = true;
    }
    if (!config_.cpu_only) {
      engine_ = std::make_unique<GpuEngine>(
          config_, [this](void* token, std::span<const ResultPair> pairs, bool overflow) {
            // Stage 3 runs as a task; the batch's trace context rides along
            // so the reduce span stays causally attached to the query.
            Batch* batch = static_cast<Batch*>(token);
            std::vector<ResultPair> owned(pairs.begin(), pairs.end());
            const obs::TraceContext ctx = batch->ctx;
            scheduler_->submit(
                [this, batch, owned = std::move(owned), overflow]() mutable {
                  process_completion(std::unique_ptr<Batch>(batch), std::move(owned), overflow);
                },
                ctx);
          });
    }
    if (config_.batch_timeout.count() > 0) {
      timeout_thread_ = std::thread([this] { timeout_loop(); });
    }
  }

  ~TagMatchImpl() {
    flush();
    {
      std::lock_guard lock(timeout_mu_);
      stopping_ = true;
    }
    timeout_cv_.notify_all();
    if (timeout_thread_.joinable()) {
      timeout_thread_.join();
    }
    // flush() returned with outstanding_ == 0, which only happens after
    // every queued pre-process and completion task has run its last
    // impl-touching statement — so a shared scheduler holds no tasks that
    // reference this engine, and an owned one drains trivially.
    if (owns_scheduler_) {
      scheduler_->shutdown();
    }
    engine_.reset();
    // Readers are quiesced; ~EpochManager runs any still-pending snapshot
    // retirements.
  }

  void stage_add(const BitVector192& filter, Key key, std::vector<uint64_t> tag_hashes,
                 bool has_hashes) {
    std::sort(tag_hashes.begin(), tag_hashes.end());
    tag_hashes.erase(std::unique(tag_hashes.begin(), tag_hashes.end()), tag_hashes.end());
    std::lock_guard lock(staging_mu_);
    staged_adds_.push_back(StagedAdd{filter, key, std::move(tag_hashes), has_hashes});
  }

  void stage_remove(const BitVector192& filter, Key key) {
    std::lock_guard lock(staging_mu_);
    staged_removes_.emplace_back(filter, key);
  }

  // Builds a fresh IndexSnapshot from the staged changes and publishes it
  // with one atomic pointer swap. Queries keep flowing throughout: they
  // drain on the previous snapshot under their epoch pins and never block
  // here. Deliberately does NOT flush() first — under sustained concurrent
  // query load a flush's outstanding_ == 0 wait might never terminate, and
  // publication doesn't need it.
  void consolidate() {
    std::lock_guard writer_lock(consolidate_mu_);
    StopWatch watch;
    const int64_t consolidate_start_ns = now_ns();

    {
      std::lock_guard lock(staging_mu_);
      for (const auto& add : staged_adds_) {
        SetEntry& entry = table_[add.filter];
        // Dedupe on apply: staging the same (filter, key) twice must not
        // duplicate the key in the flat key table.
        if (std::find(entry.keys.begin(), entry.keys.end(), add.key) == entry.keys.end()) {
          entry.keys.push_back(add.key);
        }
        if (add.has_hashes && !entry.has_hashes) {
          // First tag-carrying add of this filter defines the exact-check
          // set. (Two different tag sets sharing a filter is a ~1e-11
          // Bloom collision; first-wins then.) Copied, not moved: the add
          // stays scannable in applying_adds_ below.
          entry.tag_hashes = add.tag_hashes;
          entry.has_hashes = true;
        }
      }
      for (const auto& [filter, key] : staged_removes_) {
        auto it = table_.find(filter);
        if (it == table_.end()) {
          continue;
        }
        auto& keys = it->second.keys;
        // Erase every occurrence: legacy tables (built before the dedupe
        // above) may hold the key more than once, and a remove must not
        // leave a phantom copy matching.
        keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
        if (keys.empty()) {
          table_.erase(it);
        }
      }
      // The applied adds must stay visible to match_staged until the
      // snapshot that contains them is published: moving them to
      // applying_adds_ (cleared after publication) closes the window where
      // a query would find them in neither the staged scan nor the index.
      std::move(staged_adds_.begin(), staged_adds_.end(), std::back_inserter(applying_adds_));
      staged_adds_.clear();
      staged_removes_.clear();
    }

    publish_snapshot(build_snapshot(), watch);
    consolidations_->inc();
    obs_->record_stage(obs::Stage::kConsolidate, consolidations_->value(), consolidate_start_ns,
                       now_ns());
  }

  void match_async(const BloomFilter192& query, MatchKind kind, TagMatch::MatchCallback callback,
                   std::vector<uint64_t> tag_hashes = {}, int64_t deadline_ns = 0,
                   const obs::TraceContext& trace_ctx = {}) {
    std::sort(tag_hashes.begin(), tag_hashes.end());
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    auto query_state = std::make_shared<QueryState>();
    query_state->filter = query.bits();
    query_state->kind = kind;
    query_state->callback = std::move(callback);
    query_state->tag_hashes = std::move(tag_hashes);
    query_state->trace_id = query_seq_.fetch_add(1, std::memory_order_relaxed);
    query_state->enqueue_ns = now_ns();
    query_state->deadline_ns = config_.deadline_batch_close ? deadline_ns : 0;
    query_state->ctx = trace_ctx;
    scheduler_->submit(
        [this, query_state]() mutable { preprocess(std::move(query_state)); }, trace_ctx);
  }

  void flush() {
    std::lock_guard flush_lock(flush_mu_);
    for (;;) {
      flush_partials();
      if (engine_) {
        engine_->drain();
      }
      std::unique_lock lock(done_mu_);
      if (outstanding_.load(std::memory_order_acquire) == 0) {
        return;
      }
      done_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
      // Loop: late pre-processing may have formed new partial batches.
    }
  }

  // Enumerates the consolidated database from the current snapshot: one
  // invocation per unique set in set-id order. Staged (not yet published)
  // changes are not visited.
  void for_each_set(
      const std::function<void(const BloomFilter192& filter, std::span<const Key> keys,
                               std::span<const uint64_t> tag_hashes)>& fn) const {
    std::shared_ptr<const IndexSnapshot> snap = acquire_snapshot();
    const size_t n_unique = snap->unique_sets();
    std::vector<const BitVector192*> filter_of_sid(n_unique, nullptr);
    for (size_t slot = 0; slot < snap->set_ids.size(); ++slot) {
      filter_of_sid[snap->set_ids[slot]] = &snap->filters_sorted[slot];
    }
    for (size_t sid = 0; sid < n_unique; ++sid) {
      TAGMATCH_CHECK(filter_of_sid[sid] != nullptr);
      fn(BloomFilter192(*filter_of_sid[sid]),
         std::span<const Key>(snap->keys_flat.data() + snap->key_offsets[sid],
                              snap->key_offsets[sid + 1] - snap->key_offsets[sid]),
         std::span<const uint64_t>(
             snap->exact_hashes.data() + snap->exact_offsets[sid],
             snap->exact_offsets[sid + 1] - snap->exact_offsets[sid]));
    }
  }

  // Signature of a string-tag set under this engine's scheme; every string
  // API funnels through here so build and query sides always agree.
  BloomFilter192 encode(std::span<const std::string> tags) const {
    const int64_t start_ns = now_ns();
    BloomFilter192 f(scheme_->encode(tags));
    encode_ns_->record(static_cast<uint64_t>(std::max<int64_t>(0, now_ns() - start_ns)), 0);
    return f;
  }

  const sig::SignatureScheme& scheme() const { return *scheme_; }

  TagMatch::Stats stats() const {
    TagMatch::Stats s;
    s.signature_scheme = std::string(scheme_->name());
    {
      // Pinned snapshot read: sizes, partition table and the consolidate
      // timing are all from one generation — no torn mixture even while a
      // concurrent consolidate() publishes.
      epoch::EpochManager::Pin pin(*epoch_);
      const IndexSnapshot* snap = published_.load(std::memory_order_seq_cst);
      s.unique_sets = snap->unique_sets();
      s.total_keys = snap->keys_flat.size();
      s.partitions = snap->partitions();
      s.last_consolidate_seconds = snap->build_seconds;
      s.host_key_table_bytes = snap->keys_flat.capacity() * sizeof(Key) +
                               snap->key_offsets.capacity() * sizeof(uint32_t);
      s.host_partition_table_bytes = snap->partition_table.memory_bytes();
    }
    s.queries_processed = queries_processed_->value();
    s.batches_submitted = batches_submitted_->value();
    s.batch_overflows = batch_overflows_->value();
    s.exact_rejections = exact_rejections_->value();
    s.partitions_forwarded = partitions_forwarded_->value();
    s.batch_queries = batch_queries_->value();
    s.result_pairs = result_pairs_->value();
    if (engine_) {
      s.host_buffer_bytes = host_buffer_bytes();
      s.gpu_bytes = engine_->device_memory_used();
      s.engine_retries = engine_->retries();
      s.engine_redispatches = engine_->redispatches();
      s.cpu_fallback_batches = engine_->cpu_fallback_batches();
    }
    return s;
  }

  obs::MetricsSnapshot metrics_snapshot() const { return obs_->registry().snapshot(); }
  std::vector<obs::Span> trace_snapshot() const { return obs_->tracer().snapshot(); }
  uint64_t trace_dropped() const { return obs_->tracer().dropped(); }

 private:
  uint64_t host_buffer_bytes() const {
    // Two result buffers per stream plus the query staging area.
    const uint64_t per_stream =
        2 * (16 + std::max(PackedResultCodec::bytes_for(config_.result_buffer_entries),
                           UnpackedResultCodec::bytes_for(config_.result_buffer_entries))) +
        config_.batch_size * sizeof(BitVector192);
    return static_cast<uint64_t>(config_.num_gpus) * config_.streams_per_gpu * per_stream;
  }

  // Owning reference to the currently published snapshot. The epoch pin
  // closes the load-to-refcount gap: a writer cannot free the snapshot
  // between our pointer load and the shared_from_this bump, because we are
  // pinned for that whole window.
  std::shared_ptr<const IndexSnapshot> acquire_snapshot() const {
    epoch::EpochManager::Pin pin(*epoch_);
    return published_.load(std::memory_order_seq_cst)->shared_from_this();
  }

  // Builds the flat CSR index, partition table and partial slots from the
  // master table into a fresh snapshot. Runs under consolidate_mu_; table_
  // is only ever mutated by writers holding that lock, so reading it here
  // without staging_mu_ is safe.
  std::shared_ptr<IndexSnapshot> build_snapshot() {
    auto snap = std::make_shared<IndexSnapshot>();
    snap->version = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;

    std::vector<BitVector192> unique_filters;
    unique_filters.reserve(table_.size());
    snap->key_offsets.reserve(table_.size() + 1);
    snap->key_offsets.push_back(0);
    snap->exact_offsets.push_back(0);
    for (const auto& [filter, entry] : table_) {
      unique_filters.push_back(filter);
      snap->keys_flat.insert(snap->keys_flat.end(), entry.keys.begin(), entry.keys.end());
      snap->key_offsets.push_back(static_cast<uint32_t>(snap->keys_flat.size()));
      if (entry.has_hashes) {
        snap->exact_hashes.insert(snap->exact_hashes.end(), entry.tag_hashes.begin(),
                                  entry.tag_hashes.end());
      }
      snap->exact_offsets.push_back(static_cast<uint64_t>(snap->exact_hashes.size()));
    }

    // Algorithm 1: balanced partitioning.
    std::vector<Partition> partitions =
        balance_partitions(unique_filters, config_.max_partition_size);

    // Per-partition lexicographic sort (required by the kernel's prefix
    // pre-filter) and flattening into the tagset table arrays.
    snap->filters_sorted.reserve(unique_filters.size());
    snap->set_ids.reserve(unique_filters.size());
    snap->offsets.reserve(partitions.size() + 1);
    snap->offsets.push_back(0);
    for (PartitionId pid = 0; pid < partitions.size(); ++pid) {
      Partition& p = partitions[pid];
      std::sort(p.members.begin(), p.members.end(), [&](uint32_t a, uint32_t b) {
        return unique_filters[a] < unique_filters[b];
      });
      for (uint32_t member : p.members) {
        snap->filters_sorted.push_back(unique_filters[member]);
        snap->set_ids.push_back(member);
      }
      snap->offsets.push_back(static_cast<uint32_t>(snap->filters_sorted.size()));
      snap->masks.push_back(p.mask);
    }
    for (PartitionId pid = 0; pid < snap->masks.size(); ++pid) {
      snap->partition_table.add(snap->masks[pid], pid);
    }
    snap->partials.reserve(snap->masks.size());
    for (size_t i = 0; i < snap->masks.size(); ++i) {
      snap->partials.push_back(std::make_unique<PartialSlot>());
    }
    return snap;
  }

  // Publishes a built snapshot (from consolidate() or load_index(); caller
  // holds consolidate_mu_):
  //   1. switch the GPU-resident table over under the exclusive gpu gate —
  //      in-flight stream batches are drained first (upload requires a
  //      quiescent pool) while concurrent submitters divert to the CPU path;
  //   2. swap the published pointer (one seq_cst store — the only thing a
  //      query-path reader ever waits on, which is to say: nothing);
  //   3. wait for readers still pinned on the old snapshot, then sweep its
  //      open partial batches (they complete on the CPU against the old
  //      arrays) and retire it.
  void publish_snapshot(std::shared_ptr<IndexSnapshot> next, const StopWatch& watch) {
    if (engine_) {
      std::unique_lock gpu_lock(gpu_table_mu_);
      for (;;) {
        engine_->drain();
        if (engine_->in_flight() == 0) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      TagsetTableView view;
      view.filters = next->filters_sorted;
      view.set_ids = next->set_ids;
      view.offsets = next->offsets;
      engine_->upload(view);
      gpu_version_ = next->version;
    }
    next->build_seconds = watch.elapsed_s();
    unique_sets_gauge_->set(static_cast<int64_t>(next->unique_sets()));
    partitions_gauge_->set(static_cast<int64_t>(next->partitions()));

    std::shared_ptr<const IndexSnapshot> old_owner = std::move(published_owner_);
    published_owner_ = std::move(next);
    published_.store(published_owner_.get(), std::memory_order_seq_cst);

    // Readers that pinned before the store may still be appending to the
    // old snapshot's partial slots; wait them out, then hand the stranded
    // batches to the pipeline (version mismatch routes them to the CPU).
    epoch_->synchronize();
    if (old_owner) {
      for (const auto& slot_ptr : old_owner->partials) {
        std::unique_ptr<Batch> stranded;
        {
          std::lock_guard lock(slot_ptr->mu);
          stranded = std::move(slot_ptr->batch);
        }
        if (stranded && !stranded->filters.empty()) {
          submit_batch(std::move(stranded));
        }
      }
    }
    {
      // The new snapshot is visible to everyone who could miss the applied
      // adds, so the temporary-index copies can go.
      std::lock_guard lock(staging_mu_);
      applying_adds_.clear();
    }
    epoch_->retire([keep = std::move(old_owner)]() mutable { keep.reset(); });
    epoch_->reclaim();
  }

  // Stage 1 (§3.2): find the partitions whose mask is a subset of the query
  // and append the query to their pending batches. With match_staged_adds,
  // also scan the temporary (staged) index so un-consolidated sets match.
  void preprocess(std::shared_ptr<QueryState> query) {
    // The enqueue span covers match_async acceptance to worker pickup (queue
    // wait); the prefilter span covers the partition-table walk itself. For
    // traced queries both span ids are pre-allocated: the batch append below
    // parents on the prefilter span before it is recorded.
    const int64_t prefilter_start_ns = now_ns();
    uint64_t enqueue_span = 0;
    uint64_t prefilter_span = 0;
    obs::TraceContext prefilter_ctx;
    if (query->ctx.valid()) {
      enqueue_span = obs::new_span_id();
      prefilter_span = obs::new_span_id();
      prefilter_ctx = obs::TraceContext{query->ctx.trace_id, enqueue_span, query->ctx.sampled};
    }
    obs_->record_stage(obs::Stage::kEnqueue, query->trace_id, query->enqueue_ns,
                       prefilter_start_ns, query->ctx, enqueue_span);
    if (config_.match_staged_adds) {
      match_staged(*query);
    }
    {
      // Pin for the whole partition walk: the snapshot (table, masks,
      // partial slots) stays alive even if a consolidate publishes a
      // successor meanwhile; the appends below land before publication's
      // synchronize() returns, so the sweep there sees them.
      epoch::EpochManager::Pin pin(*epoch_);
      const IndexSnapshot* snap = published_.load(std::memory_order_seq_cst);
      PartitionTable::ProbeStats probe_stats;
      snap->partition_table.find_matches(
          query->filter,
          [&](PartitionId pid) {
        partitions_forwarded_->inc();
        std::unique_ptr<Batch> full;
        {
          PartialSlot& slot = *snap->partials[pid];
          std::lock_guard lock(slot.mu);
          if (!slot.batch) {
            slot.batch = std::make_unique<Batch>();
            slot.batch->partition = pid;
            slot.batch->snapshot = snap->shared_from_this();
            slot.batch->created_ns = now_ns();
            slot.batch->trace_id = batch_seq_.fetch_add(1, std::memory_order_relaxed);
            slot.batch->filters.reserve(config_.batch_size);
          }
          if (!slot.batch->ctx.valid() && query->ctx.valid()) {
            // First traced member adopts the batch into its trace.
            slot.batch->ctx =
                obs::TraceContext{query->ctx.trace_id, prefilter_span, query->ctx.sampled};
            slot.batch->batch_span_id = obs::new_span_id();
          }
          query->pending.fetch_add(1, std::memory_order_acq_rel);
          slot.batch->filters.push_back(query->filter);
          slot.batch->queries.push_back(query);
          if (query->deadline_ns != 0 && (slot.batch->min_deadline_ns == 0 ||
                                          query->deadline_ns < slot.batch->min_deadline_ns)) {
            slot.batch->min_deadline_ns = query->deadline_ns;
          }
          if (slot.batch->filters.size() >= config_.batch_size) {
            full = std::move(slot.batch);
          }
        }
        if (full) {
          submit_batch(std::move(full));
        }
          },
          variant_, &probe_stats);
      if (probe_stats.examined > 0) {
        // Basis points of examined partition masks the prefilter discarded
        // (10000 = everything discarded, 0 = everything forwarded).
        discard_ratio_->record(
            (probe_stats.examined - probe_stats.forwarded) * 10000 / probe_stats.examined,
            query->trace_id);
      }
    }
    obs_->record_stage(obs::Stage::kPreFilter, query->trace_id, prefilter_start_ns, now_ns(),
                       prefilter_ctx, prefilter_span);
    finish_if_done(*query);  // Drop the pre-processing guard.
  }

  // Linear scan of the temporary index for one query; runs on the
  // pre-processing worker under the staging lock. Covers both the staged
  // adds and the applying_adds_ copies a concurrent consolidate is folding
  // into the next snapshot — an add is always findable in exactly one of
  // {staged scan, published index}, except for a transient window right
  // after publication where it can appear in both (a duplicate in kMatch
  // results; kMatchUnique dedupes — see docs/CONCURRENCY.md).
  void match_staged(QueryState& qs) {
    std::lock_guard staging_lock(staging_mu_);
    const auto scan = [&](const std::vector<StagedAdd>& adds) {
      for (const StagedAdd& add : adds) {
        if (!sig::subset_test(variant_, add.filter, qs.filter)) {
          continue;
        }
        if (config_.exact_check && !qs.tag_hashes.empty() && add.has_hashes &&
            !std::includes(qs.tag_hashes.begin(), qs.tag_hashes.end(), add.tag_hashes.begin(),
                           add.tag_hashes.end())) {
          exact_rejections_->inc();
          continue;
        }
        std::lock_guard lock(qs.mu);
        qs.keys.push_back(add.key);
      }
    };
    scan(staged_adds_);
    scan(applying_adds_);
  }

  void submit_batch(std::unique_ptr<Batch> batch) {
    batches_submitted_->inc();
    batch_queries_->add(batch->queries.size());
    last_submit_ns_.store(now_ns(), std::memory_order_relaxed);
    if (engine_) {
      // The GPU-resident table belongs to exactly one snapshot generation
      // (gpu_version_). A batch built against that generation rides the
      // GPU; anything else — a publication in progress (gate held
      // exclusive) or a batch stranded on a retired snapshot — is matched
      // on the CPU against its own snapshot's arrays, so queries never
      // block on consolidation.
      std::shared_lock gpu_lock(gpu_table_mu_, std::try_to_lock);
      if (gpu_lock.owns_lock() && batch->snapshot->version == gpu_version_) {
        // GPU stream ops (H2D/kernel/D2H) become children of the batch span.
        const obs::TraceContext gpu_ctx =
            batch->ctx.valid()
                ? obs::TraceContext{batch->ctx.trace_id, batch->batch_span_id, batch->ctx.sampled}
                : obs::TraceContext{};
        Batch* raw = batch.release();
        engine_->submit(raw->partition, raw->filters, raw, gpu_ctx);
        return;
      }
      stale_snapshot_batches_->inc();
    }
    // CPU-only mode, or the divert path above: stage 2 runs inline on the
    // calling thread.
    std::vector<ResultPair> pairs = cpu_match(*batch);
    process_completion(std::move(batch), std::move(pairs), /*overflow=*/false);
  }

  // CPU subset match over one partition (shared with GpuEngine's device-loss
  // fallback, src/core/cpu_match.h). Used for cpu_only mode and as the exact
  // fallback when a GPU result buffer overflows. Fans out in block-aligned
  // chunks over the scheduler — byte-identical to the single-threaded walk
  // (src/core/cpu_match_parallel.h).
  std::vector<ResultPair> cpu_match(const Batch& batch) const {
    const IndexSnapshot& snap = *batch.snapshot;
    return parallel_subset_match(scheduler_.get(), snap.filters_sorted, snap.set_ids,
                                 snap.offsets[batch.partition], snap.offsets[batch.partition + 1],
                                 batch.filters, config_.gpu_block_dim,
                                 config_.enable_prefix_filter, variant_);
  }

  // Stage 3 (§3.4): key lookup/reduce — map set ids to keys and group the
  // keys by query — followed, per finished query, by the merge stage. Reads
  // the batch's own snapshot: set ids are only meaningful against the
  // generation the batch was built from.
  void process_completion(std::unique_ptr<Batch> batch, std::vector<ResultPair> pairs,
                          bool overflow) {
    // Reduce span per batch; the overflow CPU re-match is part of it (it is
    // work this stage performs on this thread). This is the batch span of
    // the causal trace — its id was pre-allocated so GPU children could
    // reference it before it lands here.
    obs::StageTimer reduce_timer(obs_, obs::Stage::kReduce, batch->trace_id, batch->ctx,
                                 batch->batch_span_id);
    if (overflow) {
      batch_overflows_->inc();
      pairs = cpu_match(*batch);  // Recompute exactly; GPU output was truncated.
    }
    const IndexSnapshot& snap = *batch->snapshot;
    result_pairs_->add(pairs.size());
    for (const ResultPair& pair : pairs) {
      QueryState& qs = *batch->queries[pair.query];
      if (config_.exact_check && !qs.tag_hashes.empty()) {
        // §3's optional exact subset check: reject Bloom false positives by
        // verifying the set's tag hashes against the query's.
        const uint64_t h0 = snap.exact_offsets[pair.set_id];
        const uint64_t h1 = snap.exact_offsets[pair.set_id + 1];
        if (h1 > h0 && !std::includes(qs.tag_hashes.begin(), qs.tag_hashes.end(),
                                      snap.exact_hashes.begin() + static_cast<ptrdiff_t>(h0),
                                      snap.exact_hashes.begin() + static_cast<ptrdiff_t>(h1))) {
          exact_rejections_->inc();
          continue;
        }
      }
      const uint32_t k0 = snap.key_offsets[pair.set_id];
      const uint32_t k1 = snap.key_offsets[pair.set_id + 1];
      std::lock_guard lock(qs.mu);
      qs.keys.insert(qs.keys.end(), snap.keys_flat.begin() + k0, snap.keys_flat.begin() + k1);
    }
    // Observed false-positive rate of the signature scheme, in parts per
    // million of forwarded result pairs. Only the exact check can tell a
    // Bloom false positive from a true match, so the gauge stays 0 without
    // it; under exact_check it is the live counterpart of the scheme's
    // false_positive_probability model.
    if (config_.exact_check) {
      const uint64_t pairs_total = result_pairs_->value();
      if (pairs_total > 0) {
        fpr_observed_gauge_->set(
            static_cast<int64_t>(exact_rejections_->value() * 1'000'000 / pairs_total));
      }
    }
    // Record the reduce span before the completion callbacks run: a caller
    // assembling the trace at query finish (the broker's flight recorder)
    // must find the batch span already in the ring.
    reduce_timer.stop();
    for (const auto& qs : batch->queries) {
      finish_if_done(*qs);
    }
  }

  void finish_if_done(QueryState& qs) {
    if (qs.pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    // Merge stage: nothing to do for kMatch; dedupe for kMatchUnique.
    std::vector<Key> keys = std::move(qs.keys);
    if (qs.kind == MatchKind::kMatchUnique) {
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    }
    if (qs.callback) {
      qs.callback(std::move(keys));
    }
    queries_processed_->inc();
    query_latency_->record(
        static_cast<uint64_t>(std::max<int64_t>(0, now_ns() - qs.enqueue_ns)),
        qs.ctx.trace_id);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(done_mu_);
      done_cv_.notify_all();
    }
  }

  void flush_partials() {
    std::shared_ptr<const IndexSnapshot> snap = acquire_snapshot();
    for (const auto& slot_ptr : snap->partials) {
      std::unique_ptr<Batch> batch;
      {
        std::lock_guard lock(slot_ptr->mu);
        batch = std::move(slot_ptr->batch);
      }
      if (batch && !batch->filters.empty()) {
        submit_batch(std::move(batch));
      }
    }
  }

  // Background flusher enforcing the batch timeout (§3, Fig. 6) and, for
  // deadline-carrying queries, the deadline-aware batch close: a batch whose
  // oldest member deadline would expire before the next tick is submitted
  // now instead of waiting out the full batch timeout. Each tick works on an
  // owning reference to the then-current snapshot; a concurrent publication
  // sweeps whatever the flusher doesn't take (slot handoff is serialized by
  // the per-slot mutex, so a batch is submitted exactly once).
  void timeout_loop() {
    const auto timeout = config_.batch_timeout;
    const auto tick = std::max(timeout / 4, std::chrono::milliseconds(1));
    const int64_t tick_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(tick).count();
    std::unique_lock lock(timeout_mu_);
    while (!stopping_) {
      timeout_cv_.wait_for(lock, tick, [&] { return stopping_; });
      if (stopping_) {
        return;
      }
      lock.unlock();
      {
        std::shared_ptr<const IndexSnapshot> snap = acquire_snapshot();
        const int64_t now = now_ns();
        const int64_t cutoff =
            now - std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
        bool any_deadline_close = false;
        for (const auto& slot_ptr : snap->partials) {
          std::unique_ptr<Batch> expired;
          bool deadline_close = false;
          {
            std::lock_guard slot_lock(slot_ptr->mu);
            if (slot_ptr->batch) {
              const bool aged = slot_ptr->batch->created_ns <= cutoff;
              deadline_close = !aged && slot_ptr->batch->min_deadline_ns != 0 &&
                               slot_ptr->batch->min_deadline_ns <= now + tick_ns;
              if (aged || deadline_close) {
                expired = std::move(slot_ptr->batch);
              }
            }
          }
          if (expired && !expired->filters.empty()) {
            if (deadline_close) {
              deadline_closes_->inc();
              any_deadline_close = true;
            }
            submit_batch(std::move(expired));
          }
        }
        // Results of the last batch on each stream wait for the stream's
        // next batch (double buffering); if submission has gone quiet, drain
        // them. A deadline close drains unconditionally: its whole point is
        // that the query cannot afford to wait for the stream's next batch.
        if (engine_ && engine_->in_flight() > 0 &&
            (any_deadline_close ||
             now_ns() - last_submit_ns_.load(std::memory_order_relaxed) >
                 std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count())) {
          engine_->drain();
        }
      }
      lock.lock();
    }
  }

  TagMatchConfig config_;

  // Resolved signature scheme (process-lifetime singleton) and its kernel
  // subset-test variant, fixed for the engine's lifetime.
  const sig::SignatureScheme* scheme_;
  sig::KernelVariant variant_;

  struct StagedAdd {
    BitVector192 filter;
    Key key;
    std::vector<uint64_t> tag_hashes;
    bool has_hashes;
  };
  struct SetEntry {
    std::vector<Key> keys;
    std::vector<uint64_t> tag_hashes;  // Sorted; valid when has_hashes.
    bool has_hashes = false;
  };

  // Staged updates. The master table (filter -> keys + exact hashes) is
  // mutated only by writers serialized on consolidate_mu_ (its apply step
  // holds staging_mu_ for the staged-list handoff); applying_adds_ keeps
  // the staged adds scannable between apply and publication.
  mutable std::mutex staging_mu_;
  std::vector<StagedAdd> staged_adds_;
  std::vector<StagedAdd> applying_adds_;
  std::vector<std::pair<BitVector192, Key>> staged_removes_;
  std::unordered_map<BitVector192, SetEntry, BitVector192Hash> table_;

  // Epoch-published consolidated index (docs/CONCURRENCY.md, "Epoch
  // lifecycle & reclamation"). Readers pin epoch_ and load published_;
  // writers (consolidate / load_index, serialized by consolidate_mu_) build
  // a fresh snapshot, swap the pointer and retire the old generation.
  std::unique_ptr<epoch::EpochManager> epoch_;
  std::mutex consolidate_mu_;
  std::atomic<const IndexSnapshot*> published_{nullptr};  // Never null after ctor.
  std::shared_ptr<const IndexSnapshot> published_owner_;  // Writer-side, consolidate_mu_.
  std::atomic<uint64_t> snapshot_seq_{0};

  // GPU-resident table switchover. Submitters take the gate shared
  // (try_lock — never blocking a query) and compare their batch's snapshot
  // version against gpu_version_; publication takes it exclusive, drains
  // the streams, uploads the new table and bumps the version.
  std::shared_mutex gpu_table_mu_;
  uint64_t gpu_version_ = 0;  // Guarded by gpu_table_mu_.

  std::unique_ptr<GpuEngine> engine_;
  // Task execution core running pre-process, reduce/merge and the CPU
  // brute-force fan-out. Owned unless config_.scheduler supplied one.
  std::shared_ptr<task::TaskScheduler> scheduler_;
  bool owns_scheduler_ = true;

  std::thread timeout_thread_;
  std::mutex timeout_mu_;
  std::condition_variable timeout_cv_;
  bool stopping_ = false;

  std::mutex flush_mu_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<int64_t> last_submit_ns_{0};

  // Observability (src/obs): the engine's registry + trace ring, shared
  // with its devices via config_.metrics. The instrument pointers are stable
  // for the registry's lifetime; recording through them is lock-free.
  obs::PipelineObs* obs_ = nullptr;
  obs::Counter* queries_processed_ = nullptr;
  obs::Counter* batches_submitted_ = nullptr;
  obs::Counter* batch_overflows_ = nullptr;
  obs::Counter* exact_rejections_ = nullptr;
  obs::Counter* partitions_forwarded_ = nullptr;
  obs::Counter* batch_queries_ = nullptr;
  obs::Counter* result_pairs_ = nullptr;
  obs::Counter* deadline_closes_ = nullptr;
  obs::Counter* consolidations_ = nullptr;
  obs::Counter* stale_snapshot_batches_ = nullptr;
  obs::Histogram* query_latency_ = nullptr;
  obs::Gauge* unique_sets_gauge_ = nullptr;
  obs::Gauge* partitions_gauge_ = nullptr;
  obs::Gauge* scheme_id_gauge_ = nullptr;
  obs::Gauge* fpr_observed_gauge_ = nullptr;
  obs::Histogram* encode_ns_ = nullptr;
  obs::Histogram* discard_ratio_ = nullptr;
  std::atomic<uint64_t> query_seq_{0};
  std::atomic<uint64_t> batch_seq_{0};

 public:
  bool save_index(const std::string& path) const;
  bool load_index(const std::string& path);
};

// ---------------------------------------------------------------------------
// Index persistence. Flat native-endian dump of the consolidated arrays plus
// the master table's key/hash data (so add/remove/consolidate keep working
// after a load).

namespace {

constexpr uint32_t kIndexMagic = 0x584d4754;  // "TGMX"
// v3 appends the signature-scheme id after the version word; v2 indexes are
// still accepted and imply the bloom192 baseline.
constexpr uint32_t kIndexVersion = 3;
constexpr uint32_t kIndexVersionPreScheme = 2;

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  uint64_t n = v.size();
  std::fwrite(&n, sizeof(n), 1, f);
  if (n > 0) {
    std::fwrite(v.data(), sizeof(T), n, f);
  }
}

template <typename T>
bool read_vec(std::FILE* f, std::vector<T>& v) {
  uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    return false;
  }
  v.resize(n);
  return n == 0 || std::fread(v.data(), sizeof(T), n, f) == n;
}

}  // namespace

bool TagMatchImpl::save_index(const std::string& path) const {
  // One pinned snapshot for the whole dump: the file is internally
  // consistent even if a consolidate publishes mid-save.
  std::shared_ptr<const IndexSnapshot> snap = acquire_snapshot();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::fwrite(&kIndexMagic, sizeof(kIndexMagic), 1, f);
  std::fwrite(&kIndexVersion, sizeof(kIndexVersion), 1, f);
  const uint32_t scheme_id = static_cast<uint32_t>(scheme_->id());
  std::fwrite(&scheme_id, sizeof(scheme_id), 1, f);
  write_vec(f, snap->filters_sorted);
  write_vec(f, snap->set_ids);
  write_vec(f, snap->offsets);
  write_vec(f, snap->masks);
  write_vec(f, snap->key_offsets);
  write_vec(f, snap->keys_flat);
  write_vec(f, snap->exact_offsets);
  write_vec(f, snap->exact_hashes);
  // ferror catches short fwrites from any write_vec above (they set the
  // stream error flag); fflush alone would miss them.
  bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(path.c_str());  // A truncated index must not be loadable.
  }
  return ok;
}

bool TagMatchImpl::load_index(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint32_t magic = 0, version = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&version, sizeof(version), 1, f) == 1 && magic == kIndexMagic &&
            (version == kIndexVersion || version == kIndexVersionPreScheme);
  // Pre-scheme indexes were always built under the bloom192 baseline.
  uint32_t scheme_id = static_cast<uint32_t>(sig::SchemeId::kBloom192);
  if (ok && version == kIndexVersion) {
    ok = std::fread(&scheme_id, sizeof(scheme_id), 1, f) == 1;
  }
  if (ok && scheme_id != static_cast<uint32_t>(scheme_->id())) {
    const sig::SignatureScheme* built_under = sig::scheme_by_id(scheme_id);
    std::fprintf(stderr,
                 "tagmatch: index %s was built under signature scheme %s but this "
                 "engine runs %s; rebuild the index or pass --signature-scheme %s\n",
                 path.c_str(), built_under ? std::string(built_under->name()).c_str() : "<unknown>",
                 std::string(scheme_->name()).c_str(),
                 built_under ? std::string(built_under->name()).c_str() : "<unknown>");
    ok = false;
  }
  std::vector<BitVector192> filters_sorted, masks;
  std::vector<uint32_t> set_ids, offsets, key_offsets, keys_flat;
  std::vector<uint64_t> exact_offsets, exact_hashes;
  ok = ok && read_vec(f, filters_sorted) && read_vec(f, set_ids) && read_vec(f, offsets) &&
       read_vec(f, masks) && read_vec(f, key_offsets) && read_vec(f, keys_flat) &&
       read_vec(f, exact_offsets) && read_vec(f, exact_hashes);
  std::fclose(f);
  // Structural sanity before committing anything.
  ok = ok && filters_sorted.size() == set_ids.size() &&
       offsets.size() == masks.size() + 1 && !offsets.empty() &&
       offsets.back() == filters_sorted.size() &&
       key_offsets.size() == exact_offsets.size() &&
       (key_offsets.empty() || (key_offsets.back() == keys_flat.size() &&
                                exact_offsets.back() == exact_hashes.size()));
  if (!ok) {
    return false;
  }

  // Writer path: build the loaded snapshot and publish it exactly like a
  // consolidate. No flush needed — in-flight queries drain on the snapshot
  // they pinned; only the staged state has to be reset atomically with the
  // master-table rebuild.
  std::lock_guard writer_lock(consolidate_mu_);
  StopWatch watch;
  auto snap = std::make_shared<IndexSnapshot>();
  snap->version = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap->filters_sorted = std::move(filters_sorted);
  snap->set_ids = std::move(set_ids);
  snap->offsets = std::move(offsets);
  snap->masks = std::move(masks);
  snap->key_offsets = std::move(key_offsets);
  snap->keys_flat.assign(keys_flat.begin(), keys_flat.end());
  snap->exact_offsets = std::move(exact_offsets);
  snap->exact_hashes = std::move(exact_hashes);
  for (PartitionId pid = 0; pid < snap->masks.size(); ++pid) {
    snap->partition_table.add(snap->masks[pid], pid);
  }
  snap->partials.reserve(snap->masks.size());
  for (size_t i = 0; i < snap->masks.size(); ++i) {
    snap->partials.push_back(std::make_unique<PartialSlot>());
  }

  // Rebuild the master table so later add/remove + consolidate cycles see
  // the loaded contents.
  {
    std::lock_guard lock(staging_mu_);
    staged_adds_.clear();
    applying_adds_.clear();
    staged_removes_.clear();
    table_.clear();
    const size_t n_unique = snap->unique_sets();
    std::vector<const BitVector192*> filter_of_sid(n_unique, nullptr);
    for (size_t slot = 0; slot < snap->set_ids.size(); ++slot) {
      filter_of_sid[snap->set_ids[slot]] = &snap->filters_sorted[slot];
    }
    for (size_t sid = 0; sid < n_unique; ++sid) {
      TAGMATCH_CHECK(filter_of_sid[sid] != nullptr);
      SetEntry& entry = table_[*filter_of_sid[sid]];
      entry.keys.assign(snap->keys_flat.begin() + snap->key_offsets[sid],
                        snap->keys_flat.begin() + snap->key_offsets[sid + 1]);
      entry.has_hashes = snap->exact_offsets[sid + 1] > snap->exact_offsets[sid];
      entry.tag_hashes.assign(
          snap->exact_hashes.begin() + static_cast<ptrdiff_t>(snap->exact_offsets[sid]),
          snap->exact_hashes.begin() + static_cast<ptrdiff_t>(snap->exact_offsets[sid + 1]));
    }
  }
  publish_snapshot(std::move(snap), watch);
  return true;
}

TagMatch::TagMatch(TagMatchConfig config) : impl_(std::make_unique<TagMatchImpl>(config)) {}
TagMatch::~TagMatch() = default;

uint64_t TagMatch::tag_hash(std::string_view tag) { return mix64(fnv1a64(tag) ^ 0x7447414758ull); }

namespace {
std::vector<uint64_t> hash_tags(std::span<const std::string> tags) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  return hashes;
}
}  // namespace

void TagMatch::add_set(std::span<const std::string> tags, Key key) {
  impl_->stage_add(impl_->encode(tags).bits(), key, hash_tags(tags), /*has_hashes=*/true);
}
void TagMatch::add_set(const BloomFilter192& filter, Key key) {
  impl_->stage_add(filter.bits(), key, {}, /*has_hashes=*/false);
}
void TagMatch::add_set_hashed(const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
                              Key key) {
  impl_->stage_add(filter.bits(), key,
                   std::vector<uint64_t>(tag_hashes.begin(), tag_hashes.end()),
                   /*has_hashes=*/true);
}
void TagMatch::remove_set(std::span<const std::string> tags, Key key) {
  impl_->stage_remove(impl_->encode(tags).bits(), key);
}
void TagMatch::remove_set(const BloomFilter192& filter, Key key) {
  impl_->stage_remove(filter.bits(), key);
}
void TagMatch::consolidate() { impl_->consolidate(); }

void TagMatch::match_async(const BloomFilter192& query, MatchKind kind, MatchCallback callback) {
  impl_->match_async(query, kind, std::move(callback));
}
void TagMatch::match_async_hashed(const BloomFilter192& query,
                                  std::span<const uint64_t> query_tag_hashes, MatchKind kind,
                                  MatchCallback callback, int64_t deadline_ns,
                                  const obs::TraceContext& trace_ctx) {
  impl_->match_async(query, kind, std::move(callback),
                     std::vector<uint64_t>(query_tag_hashes.begin(), query_tag_hashes.end()),
                     deadline_ns, trace_ctx);
}
void TagMatch::match_async(std::span<const std::string> tags, MatchKind kind,
                           MatchCallback callback) {
  impl_->match_async(impl_->encode(tags), kind, std::move(callback), hash_tags(tags));
}
void TagMatch::match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                           MatchCallback callback) {
  impl_->match_async(query, kind, std::move(callback), {}, deadline_ns);
}
void TagMatch::match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                           MatchCallback callback) {
  impl_->match_async(impl_->encode(tags), kind, std::move(callback), hash_tags(tags),
                     deadline_ns);
}
void TagMatch::match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                           const obs::TraceContext& ctx, MatchCallback callback) {
  impl_->match_async(query, kind, std::move(callback), {}, deadline_ns, ctx);
}
void TagMatch::match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                           const obs::TraceContext& ctx, MatchCallback callback) {
  impl_->match_async(impl_->encode(tags), kind, std::move(callback), hash_tags(tags),
                     deadline_ns, ctx);
}

namespace {
std::vector<Key> match_sync(TagMatchImpl& impl, const BloomFilter192& query, MatchKind kind,
                            std::vector<uint64_t> tag_hashes = {}) {
  std::promise<std::vector<Key>> promise;
  auto future = promise.get_future();
  impl.match_async(
      query, kind, [&promise](std::vector<Key> keys) { promise.set_value(std::move(keys)); },
      std::move(tag_hashes));
  impl.flush();
  return future.get();
}
}  // namespace

std::vector<TagMatch::Key> TagMatch::match(const BloomFilter192& query) {
  return match_sync(*impl_, query, MatchKind::kMatch);
}
std::vector<TagMatch::Key> TagMatch::match_unique(const BloomFilter192& query) {
  return match_sync(*impl_, query, MatchKind::kMatchUnique);
}
std::vector<TagMatch::Key> TagMatch::match(std::span<const std::string> tags) {
  return match_sync(*impl_, impl_->encode(tags), MatchKind::kMatch, hash_tags(tags));
}
std::vector<TagMatch::Key> TagMatch::match_unique(std::span<const std::string> tags) {
  return match_sync(*impl_, impl_->encode(tags), MatchKind::kMatchUnique, hash_tags(tags));
}

void TagMatch::flush() { impl_->flush(); }
TagMatch::Stats TagMatch::stats() const { return impl_->stats(); }
obs::MetricsSnapshot TagMatch::metrics_snapshot() const { return impl_->metrics_snapshot(); }
std::vector<obs::Span> TagMatch::trace_snapshot() const { return impl_->trace_snapshot(); }
uint64_t TagMatch::trace_dropped() const { return impl_->trace_dropped(); }
void TagMatch::for_each_set(
    const std::function<void(const BloomFilter192&, std::span<const Key>,
                             std::span<const uint64_t>)>& fn) const {
  impl_->for_each_set(fn);
}
bool TagMatch::save_index(const std::string& path) const { return impl_->save_index(path); }
bool TagMatch::load_index(const std::string& path) { return impl_->load_index(path); }

}  // namespace tagmatch

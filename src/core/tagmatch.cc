#include "src/core/tagmatch.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/stats.h"
#include "src/core/cpu_match_parallel.h"
#include "src/core/gpu_engine.h"
#include "src/core/partition_table.h"
#include "src/core/partitioner.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch {

namespace {

using Key = TagMatch::Key;
using MatchKind = TagMatch::MatchKind;

// Per-query pipeline state (§3.4). `pending` counts the batches the query
// has been forwarded to, plus one guard held while pre-processing is still
// running; when it drops to zero all results are in and the merge stage
// fires.
struct QueryState {
  BitVector192 filter;
  MatchKind kind;
  TagMatch::MatchCallback callback;
  std::atomic<uint32_t> pending{1};
  std::mutex mu;
  std::vector<Key> keys;
  // Sorted tag hashes for the exact subset check; empty when the query was
  // submitted filter-only (verification skipped).
  std::vector<uint64_t> tag_hashes;
  // Observability: engine-unique query sequence number (the flow id of this
  // query's enqueue/prefilter stages) and the match_async accept timestamp
  // (start of the enqueue span and of the end-to-end latency histogram).
  uint64_t trace_id = 0;
  int64_t enqueue_ns = 0;
  // Absolute completion deadline (now_ns() domain; 0 = none). Batches
  // holding this query are flushed early as the deadline nears.
  int64_t deadline_ns = 0;
  // Causal trace context handed in by the caller (invalid = not traced).
  // The enqueue span parents on ctx.parent_span_id; prefilter on enqueue;
  // the batch span on prefilter (see Batch::ctx).
  obs::TraceContext ctx;
};

// A batch of queries bound for one partition. Owns the contiguous filter
// array handed to the GPU (it must outlive the asynchronous copy).
struct Batch {
  PartitionId partition = 0;
  std::vector<BitVector192> filters;
  std::vector<std::shared_ptr<QueryState>> queries;
  int64_t created_ns = 0;
  uint64_t trace_id = 0;  // Engine-unique batch sequence (reduce flow id).
  // Earliest deadline over member queries (0 = none); the flusher submits
  // the batch early when it nears.
  int64_t min_deadline_ns = 0;
  // Causal trace context of the batch: adopted from the first traced member
  // query (trace id + that query's prefilter span as parent). The batch span
  // id is pre-allocated so the GPU stream ops — which enqueue before the
  // reduce span is recorded — can parent on it.
  obs::TraceContext ctx;
  uint64_t batch_span_id = 0;
};

}  // namespace

class TagMatchImpl {
 public:
  explicit TagMatchImpl(TagMatchConfig config)
      : config_(std::move(config)),
        scheme_(&sig::resolve(config_.signature_scheme)),
        variant_(scheme_->kernel_variant()) {
    TAGMATCH_CHECK(config_.batch_size >= 1 && config_.batch_size <= 256);
    TAGMATCH_CHECK(config_.num_threads >= 1);
    // Pin the resolved scheme so every layer below (GPU engine, persistence,
    // shard manifests) sees the same choice even if the environment changes.
    config_.signature_scheme = scheme_;
    if (!config_.metrics) {
      config_.metrics = std::make_shared<obs::PipelineObs>();
    }
    obs_ = config_.metrics.get();
    obs::Registry& registry = obs_->registry();
    queries_processed_ = registry.counter("engine.queries_processed");
    batches_submitted_ = registry.counter("engine.batches_submitted");
    batch_overflows_ = registry.counter("engine.batch_overflows");
    exact_rejections_ = registry.counter("engine.exact_rejections");
    partitions_forwarded_ = registry.counter("engine.partitions_forwarded");
    batch_queries_ = registry.counter("engine.batch_queries");
    result_pairs_ = registry.counter("engine.result_pairs");
    deadline_closes_ = registry.counter("engine.deadline_closes");
    consolidations_ = registry.counter("engine.consolidations");
    query_latency_ = registry.histogram("query.latency_ns");
    unique_sets_gauge_ = registry.gauge("engine.unique_sets");
    partitions_gauge_ = registry.gauge("engine.partitions");
    scheme_id_gauge_ = registry.gauge("sig.scheme_id");
    scheme_id_gauge_->set(static_cast<int64_t>(scheme_->id()));
    fpr_observed_gauge_ = registry.gauge("sig.fpr_observed");
    encode_ns_ = registry.histogram("sig.encode_ns");
    discard_ratio_ = registry.histogram("prefilter.discard_ratio");
    // The task scheduler runs every host-side stage (docs/CONCURRENCY.md).
    // A supplied scheduler is shared (the supplier owns its lifetime);
    // otherwise the engine creates a private one and shuts it down in the
    // destructor. Either way the GPU engine below sees it via config_.
    if (config_.scheduler) {
      scheduler_ = config_.scheduler;
      owns_scheduler_ = false;
    } else {
      task::SchedulerConfig sched_config;
      sched_config.num_workers = task::resolve_workers(config_.num_workers, config_.num_threads);
      sched_config.pin_workers = config_.pin_workers;
      sched_config.metrics = config_.metrics;
      scheduler_ = std::make_shared<task::TaskScheduler>(std::move(sched_config));
      config_.scheduler = scheduler_;
      owns_scheduler_ = true;
    }
    if (!config_.cpu_only) {
      engine_ = std::make_unique<GpuEngine>(
          config_, [this](void* token, std::span<const ResultPair> pairs, bool overflow) {
            // Stage 3 runs as a task; the batch's trace context rides along
            // so the reduce span stays causally attached to the query.
            Batch* batch = static_cast<Batch*>(token);
            std::vector<ResultPair> owned(pairs.begin(), pairs.end());
            const obs::TraceContext ctx = batch->ctx;
            scheduler_->submit(
                [this, batch, owned = std::move(owned), overflow]() mutable {
                  process_completion(std::unique_ptr<Batch>(batch), std::move(owned), overflow);
                },
                ctx);
          });
    }
    if (config_.batch_timeout.count() > 0) {
      timeout_thread_ = std::thread([this] { timeout_loop(); });
    }
  }

  ~TagMatchImpl() {
    flush();
    {
      std::lock_guard lock(timeout_mu_);
      stopping_ = true;
    }
    timeout_cv_.notify_all();
    if (timeout_thread_.joinable()) {
      timeout_thread_.join();
    }
    // flush() returned with outstanding_ == 0, which only happens after
    // every queued pre-process and completion task has run its last
    // impl-touching statement — so a shared scheduler holds no tasks that
    // reference this engine, and an owned one drains trivially.
    if (owns_scheduler_) {
      scheduler_->shutdown();
    }
    engine_.reset();
  }

  void stage_add(const BitVector192& filter, Key key, std::vector<uint64_t> tag_hashes,
                 bool has_hashes) {
    std::sort(tag_hashes.begin(), tag_hashes.end());
    tag_hashes.erase(std::unique(tag_hashes.begin(), tag_hashes.end()), tag_hashes.end());
    std::lock_guard lock(staging_mu_);
    staged_adds_.push_back(StagedAdd{filter, key, std::move(tag_hashes), has_hashes});
  }

  void stage_remove(const BitVector192& filter, Key key) {
    std::lock_guard lock(staging_mu_);
    staged_removes_.emplace_back(filter, key);
  }

  void consolidate() {
    flush();
    StopWatch watch;
    const int64_t consolidate_start_ns = now_ns();

    {
      std::lock_guard lock(staging_mu_);
      for (auto& add : staged_adds_) {
        SetEntry& entry = table_[add.filter];
        entry.keys.push_back(add.key);
        if (add.has_hashes && !entry.has_hashes) {
          // First tag-carrying add of this filter defines the exact-check
          // set. (Two different tag sets sharing a filter is a ~1e-11
          // Bloom collision; first-wins then.)
          entry.tag_hashes = std::move(add.tag_hashes);
          entry.has_hashes = true;
        }
      }
      for (const auto& [filter, key] : staged_removes_) {
        auto it = table_.find(filter);
        if (it == table_.end()) {
          continue;
        }
        auto& keys = it->second.keys;
        auto pos = std::find(keys.begin(), keys.end(), key);
        if (pos != keys.end()) {
          keys.erase(pos);
        }
        if (keys.empty()) {
          table_.erase(it);
        }
      }
      staged_adds_.clear();
      staged_removes_.clear();
    }

    // Unique-set array + key table (CSR layout: keys of set i occupy
    // keys_flat_[key_offsets_[i] .. key_offsets_[i+1])), plus the aligned
    // exact-check hash table (empty range = verification skipped).
    std::vector<BitVector192> unique_filters;
    unique_filters.reserve(table_.size());
    key_offsets_.clear();
    keys_flat_.clear();
    exact_offsets_.clear();
    exact_hashes_.clear();
    key_offsets_.reserve(table_.size() + 1);
    key_offsets_.push_back(0);
    exact_offsets_.push_back(0);
    for (const auto& [filter, entry] : table_) {
      unique_filters.push_back(filter);
      keys_flat_.insert(keys_flat_.end(), entry.keys.begin(), entry.keys.end());
      key_offsets_.push_back(static_cast<uint32_t>(keys_flat_.size()));
      if (entry.has_hashes) {
        exact_hashes_.insert(exact_hashes_.end(), entry.tag_hashes.begin(),
                             entry.tag_hashes.end());
      }
      exact_offsets_.push_back(static_cast<uint64_t>(exact_hashes_.size()));
    }

    // Algorithm 1: balanced partitioning.
    std::vector<Partition> partitions =
        balance_partitions(unique_filters, config_.max_partition_size);

    // Per-partition lexicographic sort (required by the kernel's prefix
    // pre-filter) and flattening into the tagset table arrays.
    filters_sorted_.clear();
    set_ids_.clear();
    offsets_.clear();
    masks_.clear();
    filters_sorted_.reserve(unique_filters.size());
    set_ids_.reserve(unique_filters.size());
    offsets_.reserve(partitions.size() + 1);
    offsets_.push_back(0);
    for (PartitionId pid = 0; pid < partitions.size(); ++pid) {
      Partition& p = partitions[pid];
      std::sort(p.members.begin(), p.members.end(), [&](uint32_t a, uint32_t b) {
        return unique_filters[a] < unique_filters[b];
      });
      for (uint32_t member : p.members) {
        filters_sorted_.push_back(unique_filters[member]);
        set_ids_.push_back(member);
      }
      offsets_.push_back(static_cast<uint32_t>(filters_sorted_.size()));
      masks_.push_back(p.mask);
    }

    install_index();
    last_consolidate_seconds_ = watch.elapsed_s();
    consolidations_->inc();
    obs_->record_stage(obs::Stage::kConsolidate, consolidations_->value(), consolidate_start_ns,
                       now_ns());
  }

  // Installs the already-built flat index (from consolidate() or
  // load_index()): partition table, partial-batch slots, GPU upload.
  // Excludes the background timeout flusher, which walks partials_ and
  // touches the engine from its own thread (matching by user threads is
  // excluded by the consolidate() contract, but the flusher is internal).
  void install_index() {
    std::lock_guard flusher_lock(flusher_work_mu_);
    partition_table_ = PartitionTable();
    for (PartitionId pid = 0; pid < masks_.size(); ++pid) {
      partition_table_.add(masks_[pid], pid);
    }
    partials_.clear();
    for (size_t i = 0; i < masks_.size(); ++i) {
      partials_.push_back(std::make_unique<PartialSlot>());
    }
    if (engine_) {
      TagsetTableView view;
      view.filters = filters_sorted_;
      view.set_ids = set_ids_;
      view.offsets = offsets_;
      engine_->upload(view);
    }
    unique_sets_gauge_->set(
        key_offsets_.empty() ? 0 : static_cast<int64_t>(key_offsets_.size() - 1));
    partitions_gauge_->set(offsets_.empty() ? 0 : static_cast<int64_t>(offsets_.size() - 1));
  }

  void match_async(const BloomFilter192& query, MatchKind kind, TagMatch::MatchCallback callback,
                   std::vector<uint64_t> tag_hashes = {}, int64_t deadline_ns = 0,
                   const obs::TraceContext& trace_ctx = {}) {
    std::sort(tag_hashes.begin(), tag_hashes.end());
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    auto query_state = std::make_shared<QueryState>();
    query_state->filter = query.bits();
    query_state->kind = kind;
    query_state->callback = std::move(callback);
    query_state->tag_hashes = std::move(tag_hashes);
    query_state->trace_id = query_seq_.fetch_add(1, std::memory_order_relaxed);
    query_state->enqueue_ns = now_ns();
    query_state->deadline_ns = config_.deadline_batch_close ? deadline_ns : 0;
    query_state->ctx = trace_ctx;
    scheduler_->submit(
        [this, query_state]() mutable { preprocess(std::move(query_state)); }, trace_ctx);
  }

  void flush() {
    std::lock_guard flush_lock(flush_mu_);
    for (;;) {
      flush_partials();
      if (engine_) {
        engine_->drain();
      }
      std::unique_lock lock(done_mu_);
      if (outstanding_.load(std::memory_order_acquire) == 0) {
        return;
      }
      done_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
      // Loop: late pre-processing may have formed new partial batches.
    }
  }

  void for_each_set(
      const std::function<void(const BloomFilter192& filter, std::span<const Key> keys,
                               std::span<const uint64_t> tag_hashes)>& fn) const {
    std::lock_guard lock(staging_mu_);
    for (const auto& [filter, entry] : table_) {
      fn(BloomFilter192(filter), std::span<const Key>(entry.keys),
         entry.has_hashes ? std::span<const uint64_t>(entry.tag_hashes)
                          : std::span<const uint64_t>());
    }
  }

  // Signature of a string-tag set under this engine's scheme; every string
  // API funnels through here so build and query sides always agree.
  BloomFilter192 encode(std::span<const std::string> tags) const {
    const int64_t start_ns = now_ns();
    BloomFilter192 f(scheme_->encode(tags));
    encode_ns_->record(static_cast<uint64_t>(std::max<int64_t>(0, now_ns() - start_ns)), 0);
    return f;
  }

  const sig::SignatureScheme& scheme() const { return *scheme_; }

  TagMatch::Stats stats() const {
    TagMatch::Stats s;
    s.signature_scheme = std::string(scheme_->name());
    s.unique_sets = key_offsets_.empty() ? 0 : key_offsets_.size() - 1;
    s.total_keys = keys_flat_.size();
    s.partitions = offsets_.empty() ? 0 : offsets_.size() - 1;
    s.last_consolidate_seconds = last_consolidate_seconds_;
    s.queries_processed = queries_processed_->value();
    s.batches_submitted = batches_submitted_->value();
    s.batch_overflows = batch_overflows_->value();
    s.exact_rejections = exact_rejections_->value();
    s.partitions_forwarded = partitions_forwarded_->value();
    s.batch_queries = batch_queries_->value();
    s.result_pairs = result_pairs_->value();
    s.host_key_table_bytes =
        keys_flat_.capacity() * sizeof(Key) + key_offsets_.capacity() * sizeof(uint32_t);
    s.host_partition_table_bytes = partition_table_.memory_bytes();
    if (engine_) {
      s.host_buffer_bytes = host_buffer_bytes();
      s.gpu_bytes = engine_->device_memory_used();
      s.engine_retries = engine_->retries();
      s.engine_redispatches = engine_->redispatches();
      s.cpu_fallback_batches = engine_->cpu_fallback_batches();
    }
    return s;
  }

  obs::MetricsSnapshot metrics_snapshot() const { return obs_->registry().snapshot(); }
  std::vector<obs::Span> trace_snapshot() const { return obs_->tracer().snapshot(); }
  uint64_t trace_dropped() const { return obs_->tracer().dropped(); }

 private:
  struct PartialSlot {
    std::mutex mu;
    std::unique_ptr<Batch> batch;
  };

  uint64_t host_buffer_bytes() const {
    // Two result buffers per stream plus the query staging area.
    const uint64_t per_stream =
        2 * (16 + std::max(PackedResultCodec::bytes_for(config_.result_buffer_entries),
                           UnpackedResultCodec::bytes_for(config_.result_buffer_entries))) +
        config_.batch_size * sizeof(BitVector192);
    return static_cast<uint64_t>(config_.num_gpus) * config_.streams_per_gpu * per_stream;
  }

  // Stage 1 (§3.2): find the partitions whose mask is a subset of the query
  // and append the query to their pending batches. With match_staged_adds,
  // also scan the temporary (staged) index so un-consolidated sets match.
  void preprocess(std::shared_ptr<QueryState> query) {
    // The enqueue span covers match_async acceptance to worker pickup (queue
    // wait); the prefilter span covers the partition-table walk itself. For
    // traced queries both span ids are pre-allocated: the batch append below
    // parents on the prefilter span before it is recorded.
    const int64_t prefilter_start_ns = now_ns();
    uint64_t enqueue_span = 0;
    uint64_t prefilter_span = 0;
    obs::TraceContext prefilter_ctx;
    if (query->ctx.valid()) {
      enqueue_span = obs::new_span_id();
      prefilter_span = obs::new_span_id();
      prefilter_ctx = obs::TraceContext{query->ctx.trace_id, enqueue_span, query->ctx.sampled};
    }
    obs_->record_stage(obs::Stage::kEnqueue, query->trace_id, query->enqueue_ns,
                       prefilter_start_ns, query->ctx, enqueue_span);
    if (config_.match_staged_adds) {
      match_staged(*query);
    }
    PartitionTable::ProbeStats probe_stats;
    partition_table_.find_matches(
        query->filter,
        [&](PartitionId pid) {
      partitions_forwarded_->inc();
      std::unique_ptr<Batch> full;
      {
        PartialSlot& slot = *partials_[pid];
        std::lock_guard lock(slot.mu);
        if (!slot.batch) {
          slot.batch = std::make_unique<Batch>();
          slot.batch->partition = pid;
          slot.batch->created_ns = now_ns();
          slot.batch->trace_id = batch_seq_.fetch_add(1, std::memory_order_relaxed);
          slot.batch->filters.reserve(config_.batch_size);
        }
        if (!slot.batch->ctx.valid() && query->ctx.valid()) {
          // First traced member adopts the batch into its trace.
          slot.batch->ctx =
              obs::TraceContext{query->ctx.trace_id, prefilter_span, query->ctx.sampled};
          slot.batch->batch_span_id = obs::new_span_id();
        }
        query->pending.fetch_add(1, std::memory_order_acq_rel);
        slot.batch->filters.push_back(query->filter);
        slot.batch->queries.push_back(query);
        if (query->deadline_ns != 0 && (slot.batch->min_deadline_ns == 0 ||
                                        query->deadline_ns < slot.batch->min_deadline_ns)) {
          slot.batch->min_deadline_ns = query->deadline_ns;
        }
        if (slot.batch->filters.size() >= config_.batch_size) {
          full = std::move(slot.batch);
        }
      }
      if (full) {
        submit_batch(std::move(full));
      }
        },
        variant_, &probe_stats);
    if (probe_stats.examined > 0) {
      // Basis points of examined partition masks the prefilter discarded
      // (10000 = everything discarded, 0 = everything forwarded).
      discard_ratio_->record(
          (probe_stats.examined - probe_stats.forwarded) * 10000 / probe_stats.examined,
          query->trace_id);
    }
    obs_->record_stage(obs::Stage::kPreFilter, query->trace_id, prefilter_start_ns, now_ns(),
                       prefilter_ctx, prefilter_span);
    finish_if_done(*query);  // Drop the pre-processing guard.
  }

  // Linear scan of the temporary index (staged adds) for one query; runs on
  // the pre-processing worker under the staging lock.
  void match_staged(QueryState& qs) {
    std::lock_guard staging_lock(staging_mu_);
    for (const StagedAdd& add : staged_adds_) {
      if (!sig::subset_test(variant_, add.filter, qs.filter)) {
        continue;
      }
      if (config_.exact_check && !qs.tag_hashes.empty() && add.has_hashes &&
          !std::includes(qs.tag_hashes.begin(), qs.tag_hashes.end(), add.tag_hashes.begin(),
                         add.tag_hashes.end())) {
        exact_rejections_->inc();
        continue;
      }
      std::lock_guard lock(qs.mu);
      qs.keys.push_back(add.key);
    }
  }

  void submit_batch(std::unique_ptr<Batch> batch) {
    batches_submitted_->inc();
    batch_queries_->add(batch->queries.size());
    last_submit_ns_.store(now_ns(), std::memory_order_relaxed);
    if (engine_) {
      // GPU stream ops (H2D/kernel/D2H) become children of the batch span.
      const obs::TraceContext gpu_ctx =
          batch->ctx.valid()
              ? obs::TraceContext{batch->ctx.trace_id, batch->batch_span_id, batch->ctx.sampled}
              : obs::TraceContext{};
      Batch* raw = batch.release();
      engine_->submit(raw->partition, raw->filters, raw, gpu_ctx);
    } else {
      // CPU-only mode: stage 2 runs inline on the calling thread.
      std::vector<ResultPair> pairs = cpu_match(*batch);
      process_completion(std::move(batch), std::move(pairs), /*overflow=*/false);
    }
  }

  // CPU subset match over one partition (shared with GpuEngine's device-loss
  // fallback, src/core/cpu_match.h). Used for cpu_only mode and as the exact
  // fallback when a GPU result buffer overflows. Fans out in block-aligned
  // chunks over the scheduler — byte-identical to the single-threaded walk
  // (src/core/cpu_match_parallel.h).
  std::vector<ResultPair> cpu_match(const Batch& batch) const {
    return parallel_subset_match(scheduler_.get(), filters_sorted_, set_ids_,
                                 offsets_[batch.partition], offsets_[batch.partition + 1],
                                 batch.filters, config_.gpu_block_dim,
                                 config_.enable_prefix_filter, variant_);
  }

  // Stage 3 (§3.4): key lookup/reduce — map set ids to keys and group the
  // keys by query — followed, per finished query, by the merge stage.
  void process_completion(std::unique_ptr<Batch> batch, std::vector<ResultPair> pairs,
                          bool overflow) {
    // Reduce span per batch; the overflow CPU re-match is part of it (it is
    // work this stage performs on this thread). This is the batch span of
    // the causal trace — its id was pre-allocated so GPU children could
    // reference it before it lands here.
    obs::StageTimer reduce_timer(obs_, obs::Stage::kReduce, batch->trace_id, batch->ctx,
                                 batch->batch_span_id);
    if (overflow) {
      batch_overflows_->inc();
      pairs = cpu_match(*batch);  // Recompute exactly; GPU output was truncated.
    }
    result_pairs_->add(pairs.size());
    for (const ResultPair& pair : pairs) {
      QueryState& qs = *batch->queries[pair.query];
      if (config_.exact_check && !qs.tag_hashes.empty()) {
        // §3's optional exact subset check: reject Bloom false positives by
        // verifying the set's tag hashes against the query's.
        const uint64_t h0 = exact_offsets_[pair.set_id];
        const uint64_t h1 = exact_offsets_[pair.set_id + 1];
        if (h1 > h0 && !std::includes(qs.tag_hashes.begin(), qs.tag_hashes.end(),
                                      exact_hashes_.begin() + static_cast<ptrdiff_t>(h0),
                                      exact_hashes_.begin() + static_cast<ptrdiff_t>(h1))) {
          exact_rejections_->inc();
          continue;
        }
      }
      const uint32_t k0 = key_offsets_[pair.set_id];
      const uint32_t k1 = key_offsets_[pair.set_id + 1];
      std::lock_guard lock(qs.mu);
      qs.keys.insert(qs.keys.end(), keys_flat_.begin() + k0, keys_flat_.begin() + k1);
    }
    // Observed false-positive rate of the signature scheme, in parts per
    // million of forwarded result pairs. Only the exact check can tell a
    // Bloom false positive from a true match, so the gauge stays 0 without
    // it; under exact_check it is the live counterpart of the scheme's
    // false_positive_probability model.
    if (config_.exact_check) {
      const uint64_t pairs_total = result_pairs_->value();
      if (pairs_total > 0) {
        fpr_observed_gauge_->set(
            static_cast<int64_t>(exact_rejections_->value() * 1'000'000 / pairs_total));
      }
    }
    // Record the reduce span before the completion callbacks run: a caller
    // assembling the trace at query finish (the broker's flight recorder)
    // must find the batch span already in the ring.
    reduce_timer.stop();
    for (const auto& qs : batch->queries) {
      finish_if_done(*qs);
    }
  }

  void finish_if_done(QueryState& qs) {
    if (qs.pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    // Merge stage: nothing to do for kMatch; dedupe for kMatchUnique.
    std::vector<Key> keys = std::move(qs.keys);
    if (qs.kind == MatchKind::kMatchUnique) {
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    }
    if (qs.callback) {
      qs.callback(std::move(keys));
    }
    queries_processed_->inc();
    query_latency_->record(
        static_cast<uint64_t>(std::max<int64_t>(0, now_ns() - qs.enqueue_ns)),
        qs.ctx.trace_id);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(done_mu_);
      done_cv_.notify_all();
    }
  }

  void flush_partials() {
    for (auto& slot_ptr : partials_) {
      std::unique_ptr<Batch> batch;
      {
        std::lock_guard lock(slot_ptr->mu);
        batch = std::move(slot_ptr->batch);
      }
      if (batch && !batch->filters.empty()) {
        submit_batch(std::move(batch));
      }
    }
  }

  // Background flusher enforcing the batch timeout (§3, Fig. 6) and, for
  // deadline-carrying queries, the deadline-aware batch close: a batch whose
  // oldest member deadline would expire before the next tick is submitted
  // now instead of waiting out the full batch timeout.
  void timeout_loop() {
    const auto timeout = config_.batch_timeout;
    const auto tick = std::max(timeout / 4, std::chrono::milliseconds(1));
    const int64_t tick_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(tick).count();
    std::unique_lock lock(timeout_mu_);
    while (!stopping_) {
      timeout_cv_.wait_for(lock, tick, [&] { return stopping_; });
      if (stopping_) {
        return;
      }
      lock.unlock();
      std::lock_guard work_lock(flusher_work_mu_);
      const int64_t now = now_ns();
      const int64_t cutoff =
          now - std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
      bool any_deadline_close = false;
      for (auto& slot_ptr : partials_) {
        std::unique_ptr<Batch> expired;
        bool deadline_close = false;
        {
          std::lock_guard slot_lock(slot_ptr->mu);
          if (slot_ptr->batch) {
            const bool aged = slot_ptr->batch->created_ns <= cutoff;
            deadline_close = !aged && slot_ptr->batch->min_deadline_ns != 0 &&
                             slot_ptr->batch->min_deadline_ns <= now + tick_ns;
            if (aged || deadline_close) {
              expired = std::move(slot_ptr->batch);
            }
          }
        }
        if (expired && !expired->filters.empty()) {
          if (deadline_close) {
            deadline_closes_->inc();
            any_deadline_close = true;
          }
          submit_batch(std::move(expired));
        }
      }
      // Results of the last batch on each stream wait for the stream's next
      // batch (double buffering); if submission has gone quiet, drain them.
      // A deadline close drains unconditionally: its whole point is that the
      // query cannot afford to wait for the stream's next batch.
      if (engine_ && engine_->in_flight() > 0 &&
          (any_deadline_close ||
           now_ns() - last_submit_ns_.load(std::memory_order_relaxed) >
               std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count())) {
        engine_->drain();
      }
      lock.lock();
    }
  }

  TagMatchConfig config_;

  // Resolved signature scheme (process-lifetime singleton) and its kernel
  // subset-test variant, fixed for the engine's lifetime.
  const sig::SignatureScheme* scheme_;
  sig::KernelVariant variant_;

  struct StagedAdd {
    BitVector192 filter;
    Key key;
    std::vector<uint64_t> tag_hashes;
    bool has_hashes;
  };
  struct SetEntry {
    std::vector<Key> keys;
    std::vector<uint64_t> tag_hashes;  // Sorted; valid when has_hashes.
    bool has_hashes = false;
  };

  // Staged updates and the master table (filter -> keys + exact hashes).
  mutable std::mutex staging_mu_;
  std::vector<StagedAdd> staged_adds_;
  std::vector<std::pair<BitVector192, Key>> staged_removes_;
  std::unordered_map<BitVector192, SetEntry, BitVector192Hash> table_;

  // Consolidated index.
  std::vector<BitVector192> filters_sorted_;  // Host mirror of the GPU tagset table.
  std::vector<uint32_t> set_ids_;
  std::vector<uint32_t> offsets_;
  std::vector<BitVector192> masks_;           // Partition masks, aligned with offsets_.
  std::vector<uint32_t> key_offsets_;
  std::vector<Key> keys_flat_;
  std::vector<uint64_t> exact_offsets_;       // Per unique set, into exact_hashes_.
  std::vector<uint64_t> exact_hashes_;
  PartitionTable partition_table_;
  std::vector<std::unique_ptr<PartialSlot>> partials_;

  std::unique_ptr<GpuEngine> engine_;
  // Task execution core running pre-process, reduce/merge and the CPU
  // brute-force fan-out. Owned unless config_.scheduler supplied one.
  std::shared_ptr<task::TaskScheduler> scheduler_;
  bool owns_scheduler_ = true;

  std::thread timeout_thread_;
  std::mutex timeout_mu_;
  std::condition_variable timeout_cv_;
  // Serializes the flusher's per-tick work against index installation.
  std::mutex flusher_work_mu_;
  bool stopping_ = false;

  std::mutex flush_mu_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<int64_t> last_submit_ns_{0};

  // Observability (src/obs): the engine's registry + trace ring, shared
  // with its devices via config_.metrics. The instrument pointers are stable
  // for the registry's lifetime; recording through them is lock-free.
  obs::PipelineObs* obs_ = nullptr;
  obs::Counter* queries_processed_ = nullptr;
  obs::Counter* batches_submitted_ = nullptr;
  obs::Counter* batch_overflows_ = nullptr;
  obs::Counter* exact_rejections_ = nullptr;
  obs::Counter* partitions_forwarded_ = nullptr;
  obs::Counter* batch_queries_ = nullptr;
  obs::Counter* result_pairs_ = nullptr;
  obs::Counter* deadline_closes_ = nullptr;
  obs::Counter* consolidations_ = nullptr;
  obs::Histogram* query_latency_ = nullptr;
  obs::Gauge* unique_sets_gauge_ = nullptr;
  obs::Gauge* partitions_gauge_ = nullptr;
  obs::Gauge* scheme_id_gauge_ = nullptr;
  obs::Gauge* fpr_observed_gauge_ = nullptr;
  obs::Histogram* encode_ns_ = nullptr;
  obs::Histogram* discard_ratio_ = nullptr;
  std::atomic<uint64_t> query_seq_{0};
  std::atomic<uint64_t> batch_seq_{0};
  double last_consolidate_seconds_ = 0;

 public:
  bool save_index(const std::string& path) const;
  bool load_index(const std::string& path);
};

// ---------------------------------------------------------------------------
// Index persistence. Flat native-endian dump of the consolidated arrays plus
// the master table's key/hash data (so add/remove/consolidate keep working
// after a load).

namespace {

constexpr uint32_t kIndexMagic = 0x584d4754;  // "TGMX"
// v3 appends the signature-scheme id after the version word; v2 indexes are
// still accepted and imply the bloom192 baseline.
constexpr uint32_t kIndexVersion = 3;
constexpr uint32_t kIndexVersionPreScheme = 2;

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  uint64_t n = v.size();
  std::fwrite(&n, sizeof(n), 1, f);
  if (n > 0) {
    std::fwrite(v.data(), sizeof(T), n, f);
  }
}

template <typename T>
bool read_vec(std::FILE* f, std::vector<T>& v) {
  uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    return false;
  }
  v.resize(n);
  return n == 0 || std::fread(v.data(), sizeof(T), n, f) == n;
}

}  // namespace

bool TagMatchImpl::save_index(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::fwrite(&kIndexMagic, sizeof(kIndexMagic), 1, f);
  std::fwrite(&kIndexVersion, sizeof(kIndexVersion), 1, f);
  const uint32_t scheme_id = static_cast<uint32_t>(scheme_->id());
  std::fwrite(&scheme_id, sizeof(scheme_id), 1, f);
  write_vec(f, filters_sorted_);
  write_vec(f, set_ids_);
  write_vec(f, offsets_);
  write_vec(f, masks_);
  write_vec(f, key_offsets_);
  write_vec(f, keys_flat_);
  write_vec(f, exact_offsets_);
  write_vec(f, exact_hashes_);
  // ferror catches short fwrites from any write_vec above (they set the
  // stream error flag); fflush alone would miss them.
  bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(path.c_str());  // A truncated index must not be loadable.
  }
  return ok;
}

bool TagMatchImpl::load_index(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint32_t magic = 0, version = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&version, sizeof(version), 1, f) == 1 && magic == kIndexMagic &&
            (version == kIndexVersion || version == kIndexVersionPreScheme);
  // Pre-scheme indexes were always built under the bloom192 baseline.
  uint32_t scheme_id = static_cast<uint32_t>(sig::SchemeId::kBloom192);
  if (ok && version == kIndexVersion) {
    ok = std::fread(&scheme_id, sizeof(scheme_id), 1, f) == 1;
  }
  if (ok && scheme_id != static_cast<uint32_t>(scheme_->id())) {
    const sig::SignatureScheme* built_under = sig::scheme_by_id(scheme_id);
    std::fprintf(stderr,
                 "tagmatch: index %s was built under signature scheme %s but this "
                 "engine runs %s; rebuild the index or pass --signature-scheme %s\n",
                 path.c_str(), built_under ? std::string(built_under->name()).c_str() : "<unknown>",
                 std::string(scheme_->name()).c_str(),
                 built_under ? std::string(built_under->name()).c_str() : "<unknown>");
    ok = false;
  }
  std::vector<BitVector192> filters_sorted, masks;
  std::vector<uint32_t> set_ids, offsets, key_offsets, keys_flat;
  std::vector<uint64_t> exact_offsets, exact_hashes;
  ok = ok && read_vec(f, filters_sorted) && read_vec(f, set_ids) && read_vec(f, offsets) &&
       read_vec(f, masks) && read_vec(f, key_offsets) && read_vec(f, keys_flat) &&
       read_vec(f, exact_offsets) && read_vec(f, exact_hashes);
  std::fclose(f);
  // Structural sanity before committing anything.
  ok = ok && filters_sorted.size() == set_ids.size() &&
       offsets.size() == masks.size() + 1 && !offsets.empty() &&
       offsets.back() == filters_sorted.size() &&
       key_offsets.size() == exact_offsets.size() &&
       (key_offsets.empty() || (key_offsets.back() == keys_flat.size() &&
                                exact_offsets.back() == exact_hashes.size()));
  if (!ok) {
    return false;
  }

  flush();
  filters_sorted_ = std::move(filters_sorted);
  set_ids_ = std::move(set_ids);
  offsets_ = std::move(offsets);
  masks_ = std::move(masks);
  key_offsets_ = std::move(key_offsets);
  keys_flat_ = std::move(keys_flat);
  exact_offsets_ = std::move(exact_offsets);
  exact_hashes_ = std::move(exact_hashes);

  // Rebuild the master table so later add/remove + consolidate cycles see
  // the loaded contents.
  {
    std::lock_guard lock(staging_mu_);
    staged_adds_.clear();
    staged_removes_.clear();
    table_.clear();
    const size_t n_unique = key_offsets_.empty() ? 0 : key_offsets_.size() - 1;
    std::vector<const BitVector192*> filter_of_sid(n_unique, nullptr);
    for (size_t slot = 0; slot < set_ids_.size(); ++slot) {
      filter_of_sid[set_ids_[slot]] = &filters_sorted_[slot];
    }
    for (size_t sid = 0; sid < n_unique; ++sid) {
      TAGMATCH_CHECK(filter_of_sid[sid] != nullptr);
      SetEntry& entry = table_[*filter_of_sid[sid]];
      entry.keys.assign(keys_flat_.begin() + key_offsets_[sid],
                        keys_flat_.begin() + key_offsets_[sid + 1]);
      entry.has_hashes = exact_offsets_[sid + 1] > exact_offsets_[sid];
      entry.tag_hashes.assign(
          exact_hashes_.begin() + static_cast<ptrdiff_t>(exact_offsets_[sid]),
          exact_hashes_.begin() + static_cast<ptrdiff_t>(exact_offsets_[sid + 1]));
    }
  }
  install_index();
  return true;
}

TagMatch::TagMatch(TagMatchConfig config) : impl_(std::make_unique<TagMatchImpl>(config)) {}
TagMatch::~TagMatch() = default;

uint64_t TagMatch::tag_hash(std::string_view tag) { return mix64(fnv1a64(tag) ^ 0x7447414758ull); }

namespace {
std::vector<uint64_t> hash_tags(std::span<const std::string> tags) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  return hashes;
}
}  // namespace

void TagMatch::add_set(std::span<const std::string> tags, Key key) {
  impl_->stage_add(impl_->encode(tags).bits(), key, hash_tags(tags), /*has_hashes=*/true);
}
void TagMatch::add_set(const BloomFilter192& filter, Key key) {
  impl_->stage_add(filter.bits(), key, {}, /*has_hashes=*/false);
}
void TagMatch::add_set_hashed(const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
                              Key key) {
  impl_->stage_add(filter.bits(), key,
                   std::vector<uint64_t>(tag_hashes.begin(), tag_hashes.end()),
                   /*has_hashes=*/true);
}
void TagMatch::remove_set(std::span<const std::string> tags, Key key) {
  impl_->stage_remove(impl_->encode(tags).bits(), key);
}
void TagMatch::remove_set(const BloomFilter192& filter, Key key) {
  impl_->stage_remove(filter.bits(), key);
}
void TagMatch::consolidate() { impl_->consolidate(); }

void TagMatch::match_async(const BloomFilter192& query, MatchKind kind, MatchCallback callback) {
  impl_->match_async(query, kind, std::move(callback));
}
void TagMatch::match_async_hashed(const BloomFilter192& query,
                                  std::span<const uint64_t> query_tag_hashes, MatchKind kind,
                                  MatchCallback callback, int64_t deadline_ns,
                                  const obs::TraceContext& trace_ctx) {
  impl_->match_async(query, kind, std::move(callback),
                     std::vector<uint64_t>(query_tag_hashes.begin(), query_tag_hashes.end()),
                     deadline_ns, trace_ctx);
}
void TagMatch::match_async(std::span<const std::string> tags, MatchKind kind,
                           MatchCallback callback) {
  impl_->match_async(impl_->encode(tags), kind, std::move(callback), hash_tags(tags));
}
void TagMatch::match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                           MatchCallback callback) {
  impl_->match_async(query, kind, std::move(callback), {}, deadline_ns);
}
void TagMatch::match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                           MatchCallback callback) {
  impl_->match_async(impl_->encode(tags), kind, std::move(callback), hash_tags(tags),
                     deadline_ns);
}
void TagMatch::match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                           const obs::TraceContext& ctx, MatchCallback callback) {
  impl_->match_async(query, kind, std::move(callback), {}, deadline_ns, ctx);
}
void TagMatch::match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                           const obs::TraceContext& ctx, MatchCallback callback) {
  impl_->match_async(impl_->encode(tags), kind, std::move(callback), hash_tags(tags),
                     deadline_ns, ctx);
}

namespace {
std::vector<Key> match_sync(TagMatchImpl& impl, const BloomFilter192& query, MatchKind kind,
                            std::vector<uint64_t> tag_hashes = {}) {
  std::promise<std::vector<Key>> promise;
  auto future = promise.get_future();
  impl.match_async(
      query, kind, [&promise](std::vector<Key> keys) { promise.set_value(std::move(keys)); },
      std::move(tag_hashes));
  impl.flush();
  return future.get();
}
}  // namespace

std::vector<TagMatch::Key> TagMatch::match(const BloomFilter192& query) {
  return match_sync(*impl_, query, MatchKind::kMatch);
}
std::vector<TagMatch::Key> TagMatch::match_unique(const BloomFilter192& query) {
  return match_sync(*impl_, query, MatchKind::kMatchUnique);
}
std::vector<TagMatch::Key> TagMatch::match(std::span<const std::string> tags) {
  return match_sync(*impl_, impl_->encode(tags), MatchKind::kMatch, hash_tags(tags));
}
std::vector<TagMatch::Key> TagMatch::match_unique(std::span<const std::string> tags) {
  return match_sync(*impl_, impl_->encode(tags), MatchKind::kMatchUnique, hash_tags(tags));
}

void TagMatch::flush() { impl_->flush(); }
TagMatch::Stats TagMatch::stats() const { return impl_->stats(); }
obs::MetricsSnapshot TagMatch::metrics_snapshot() const { return impl_->metrics_snapshot(); }
std::vector<obs::Span> TagMatch::trace_snapshot() const { return impl_->trace_snapshot(); }
uint64_t TagMatch::trace_dropped() const { return impl_->trace_dropped(); }
void TagMatch::for_each_set(
    const std::function<void(const BloomFilter192&, std::span<const Key>,
                             std::span<const uint64_t>)>& fn) const {
  impl_->for_each_set(fn);
}
bool TagMatch::save_index(const std::string& path) const { return impl_->save_index(path); }
bool TagMatch::load_index(const std::string& path) { return impl_->load_index(path); }

}  // namespace tagmatch

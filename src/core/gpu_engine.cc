#include "src/core/gpu_engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/common/check.h"

namespace tagmatch {

namespace {

// Block-level shared-memory state of the subset-match kernel (Algorithm 4):
// the common prefix of the block's tag sets and the compacted query batch
// (stored as indices into the global query buffer).
struct KernelShared {
  BitVector192 prefix;
  uint32_t qcount;
  uint8_t qids[256];
};

}  // namespace

GpuEngine::GpuEngine(const TagMatchConfig& config, BatchResultFn on_result)
    : config_(config), on_result_(std::move(on_result)) {
  TAGMATCH_CHECK(config_.num_gpus >= 1);
  TAGMATCH_CHECK(config_.batch_size >= 1 && config_.batch_size <= 256);
  TAGMATCH_CHECK(config_.streams_per_gpu >= 1);

  for (unsigned d = 0; d < config_.num_gpus; ++d) {
    gpusim::DeviceConfig dev_config;
    dev_config.name = "SimTITAN-X:" + std::to_string(d);
    dev_config.memory_capacity = config_.gpu_memory_capacity;
    dev_config.num_sms = config_.gpu_sms_per_device;
    dev_config.max_streams = config_.streams_per_gpu;
    dev_config.enable_profiling = config_.gpu_profiling;
    dev_config.costs = config_.gpu_costs;
    // Share the engine's observability handle so device-side stage spans
    // (H2D, kernel, D2H) land in the same registry as the CPU stages.
    dev_config.metrics = config_.metrics;
    devices_.push_back(std::make_unique<gpusim::Device>(std::move(dev_config)));
  }
  device_tables_.resize(devices_.size());

  const size_t payload = payload_capacity_bytes();
  for (unsigned d = 0; d < config_.num_gpus; ++d) {
    available_.push_back(std::make_unique<MpmcQueue<StreamCtx*>>());
    for (unsigned s = 0; s < config_.streams_per_gpu; ++s) {
      auto ctx = std::make_unique<StreamCtx>();
      ctx->device_index = d;
      ctx->stream = std::make_unique<gpusim::Stream>(devices_[d].get());
      ctx->query_buf = devices_[d]->alloc(config_.batch_size * sizeof(BitVector192));
      for (int b = 0; b < 2; ++b) {
        ctx->result_buf[b] = devices_[d]->alloc(kHeaderBytes + payload);
        ctx->host_result[b].resize(kHeaderBytes + payload);
      }
      available_[d]->push(ctx.get());
      streams_.push_back(std::move(ctx));
    }
  }
}

GpuEngine::~GpuEngine() {
  drain();
  // Streams must be destroyed (joining their executors) before the devices
  // and buffers they reference.
  streams_.clear();
  device_tables_.clear();
}

size_t GpuEngine::payload_capacity_bytes() const {
  size_t packed = PackedResultCodec::bytes_for(config_.result_buffer_entries);
  size_t unpacked = UnpackedResultCodec::bytes_for(config_.result_buffer_entries);
  return std::max(packed, unpacked);
}

size_t GpuEngine::bytes_for_pairs(uint64_t n) const {
  n = std::min<uint64_t>(n, config_.result_buffer_entries);
  return config_.packed_output ? PackedResultCodec::bytes_for(n)
                               : UnpackedResultCodec::bytes_for(n);
}

void GpuEngine::upload(const TagsetTableView& table) {
  TAGMATCH_CHECK(in_flight() == 0);
  TAGMATCH_CHECK(table.filters.size() == table.set_ids.size());
  TAGMATCH_CHECK(!table.offsets.empty());
  const size_t num_partitions = table.offsets.size() - 1;

  // Decide where each partition lives.
  locations_.assign(num_partitions, PartitionLocation{});
  std::vector<uint64_t> device_load(devices_.size(), 0);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    locations_[p].size = table.offsets[p + 1] - table.offsets[p];
    if (config_.gpu_table_mode == TagMatchConfig::GpuTableMode::kPartition) {
      // Greedy size balancing: give the partition to the least-loaded
      // device.
      unsigned best = 0;
      for (unsigned d = 1; d < devices_.size(); ++d) {
        if (device_load[d] < device_load[best]) {
          best = d;
        }
      }
      locations_[p].device = best;
      device_load[best] += locations_[p].size;
    } else {
      locations_[p].device = 0;  // Replicated: any device serves it.
      locations_[p].begin = table.offsets[p];
    }
  }

  for (unsigned d = 0; d < devices_.size(); ++d) {
    // Assemble this device's flat arrays: the full table in kReplicate mode,
    // only the owned partitions in kPartition mode.
    std::vector<BitVector192> dev_filters;
    std::vector<uint32_t> dev_ids;
    if (config_.gpu_table_mode == TagMatchConfig::GpuTableMode::kPartition) {
      for (PartitionId p = 0; p < num_partitions; ++p) {
        if (locations_[p].device != d) {
          continue;
        }
        locations_[p].begin = static_cast<uint32_t>(dev_filters.size());
        dev_filters.insert(dev_filters.end(), table.filters.begin() + table.offsets[p],
                           table.filters.begin() + table.offsets[p + 1]);
        dev_ids.insert(dev_ids.end(), table.set_ids.begin() + table.offsets[p],
                       table.set_ids.begin() + table.offsets[p + 1]);
      }
    } else {
      dev_filters.assign(table.filters.begin(), table.filters.end());
      dev_ids.assign(table.set_ids.begin(), table.set_ids.end());
    }

    DeviceTable& dt = device_tables_[d];
    dt.filters.reset();
    dt.set_ids.reset();
    const size_t filter_bytes = dev_filters.size() * sizeof(BitVector192);
    const size_t id_bytes = dev_ids.size() * sizeof(uint32_t);
    dt.filters = devices_[d]->alloc(std::max<size_t>(filter_bytes, 1));
    dt.set_ids = devices_[d]->alloc(std::max<size_t>(id_bytes, 1));
    // Reuse the first pool stream of this device for the upload; the pool is
    // idle at upload time (in_flight == 0 is checked above).
    gpusim::Stream* stream = nullptr;
    for (const auto& ctx : streams_) {
      if (ctx->device_index == d) {
        stream = ctx->stream.get();
        break;
      }
    }
    TAGMATCH_CHECK(stream != nullptr);
    if (filter_bytes > 0) {
      stream->memcpy_h2d(dt.filters.data(), dev_filters.data(), filter_bytes);
      stream->memcpy_h2d(dt.set_ids.data(), dev_ids.data(), id_bytes);
    }
    stream->synchronize();
  }
}

unsigned GpuEngine::partition_device(PartitionId p) const {
  TAGMATCH_CHECK(p < locations_.size());
  return locations_[p].device;
}

MpmcQueue<GpuEngine::StreamCtx*>& GpuEngine::pool_for(PartitionId partition) {
  unsigned device;
  if (config_.gpu_table_mode == TagMatchConfig::GpuTableMode::kPartition) {
    device = locations_[partition].device;
  } else {
    device = static_cast<unsigned>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                                   devices_.size());
  }
  return *available_[device];
}

gpusim::Kernel GpuEngine::make_kernel(unsigned device_index, PartitionId partition,
                                      const BitVector192* queries_dev, uint32_t num_queries,
                                      std::byte* counter_header, std::byte* payload) {
  const DeviceTable& dt = device_tables_[device_index];
  const PartitionLocation& loc = locations_[partition];
  const BitVector192* filters = dt.filters.as<const BitVector192>() + loc.begin;
  const uint32_t* set_ids = dt.set_ids.as<const uint32_t>() + loc.begin;
  const uint32_t part_size = loc.size;
  auto* counter = reinterpret_cast<uint64_t*>(counter_header);
  auto* overflow = reinterpret_cast<uint64_t*>(counter_header) + 1;
  const uint64_t capacity = config_.result_buffer_entries;
  const bool prefix_filter = config_.enable_prefix_filter;
  const bool packed = config_.packed_output;

  return [=](gpusim::BlockContext& ctx) {
    const uint32_t first = ctx.block_first_thread();
    if (first >= part_size) {
      return;
    }
    auto* sh = ctx.shared<KernelShared>();

    if (prefix_filter) {
      // Superstep 1 (thread 0): longest common prefix of the block's sets,
      // from the first and last set only — valid because the table is sorted
      // lexicographically (§3.3.1).
      ctx.thread0([&] {
        const BitVector192& f_first = filters[first];
        uint32_t last = std::min(first + ctx.block_dim(), part_size) - 1;
        unsigned len = BitVector192::common_prefix_len(f_first, filters[last]);
        sh->prefix = f_first.prefix(len);
        sh->qcount = 0;
      });
      // Superstep 2 (all threads): compact the query batch, keeping only
      // queries that cover the block prefix. The append is a plain increment
      // because threads of one block run sequentially on this simulator; on
      // real CUDA this is the atomicAdd of Algorithm 4.
      ctx.threads([&](uint32_t tid) {
        for (uint32_t i = tid; i < num_queries; i += ctx.block_dim()) {
          if (sh->prefix.subset_of(queries_dev[i])) {
            sh->qids[sh->qcount++] = static_cast<uint8_t>(i);
          }
        }
      });
    } else {
      ctx.thread0([&] {
        sh->qcount = num_queries;
        for (uint32_t i = 0; i < num_queries; ++i) {
          sh->qids[i] = static_cast<uint8_t>(i);
        }
      });
    }

    // Superstep 3 (all threads): one thread per tag set, checked against the
    // compacted batch (Algorithm 3); matches appended to the global output
    // with an atomic counter. (The production CUDA kernel additionally
    // unrolls this loop and reads two queries per iteration; those
    // micro-optimizations have no analogue on the host simulator.)
    ctx.threads([&](uint32_t tid) {
      const uint32_t s = first + tid;
      if (s >= part_size) {
        return;
      }
      const BitVector192& set_filter = filters[s];
      const uint32_t set_id = set_ids[s];
      for (uint32_t j = 0; j < sh->qcount; ++j) {
        const uint8_t qi = sh->qids[j];
        if (set_filter.subset_of(queries_dev[qi])) {
          uint64_t idx = std::atomic_ref<uint64_t>(*counter).fetch_add(
              1, std::memory_order_relaxed);
          if (idx < capacity) {
            ResultPair pair{qi, set_id};
            if (packed) {
              PackedResultCodec::write(payload, idx, pair);
            } else {
              UnpackedResultCodec::write(payload, idx, pair);
            }
          } else {
            std::atomic_ref<uint64_t>(*overflow).store(1, std::memory_order_relaxed);
          }
        }
      }
    });
    (void)partition;
  };
}

void GpuEngine::deliver(const PendingBatch& batch, std::span<const std::byte> payload_bytes) {
  const uint64_t n = std::min<uint64_t>(batch.count, config_.result_buffer_entries);
  std::vector<ResultPair> pairs;
  pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    pairs.push_back(config_.packed_output ? PackedResultCodec::read(payload_bytes.data(), i)
                                          : UnpackedResultCodec::read(payload_bytes.data(), i));
  }
  on_result_(batch.token, pairs, batch.overflow);
  in_flight_.fetch_sub(1, std::memory_order_release);
}

void GpuEngine::submit(PartitionId partition, std::span<const BitVector192> queries, void* token,
                       const obs::TraceContext& trace_ctx) {
  TAGMATCH_CHECK(!queries.empty());
  TAGMATCH_CHECK(queries.size() <= config_.batch_size);
  TAGMATCH_CHECK(partition < locations_.size());

  auto popped = pool_for(partition).pop();
  TAGMATCH_CHECK(popped.has_value());
  StreamCtx& ctx = **popped;
  in_flight_.fetch_add(1, std::memory_order_acquire);

  // Make sure the previous cycle's copy has landed, so ctx.pending.count and
  // the even/odd bookkeeping below are valid (§3.3.2: the size of the current
  // result set "was transferred in the previous cycle and is readable").
  if (ctx.last_event) {
    ctx.last_event->wait();
  }

  gpusim::Stream& stream = *ctx.stream;
  const uint32_t nq = static_cast<uint32_t>(queries.size());

  if (!config_.double_buffered_results) {
    // Ablation path (§3.3.2's "straightforward solution"): transfer the
    // result length, synchronize, then transfer exactly the results —
    // one extra copy and one extra round trip per batch.
    std::byte* header = ctx.result_buf[0].data();
    std::byte* payload = header + kHeaderBytes;
    stream.memcpy_h2d(ctx.query_buf.data(), queries.data(), nq * sizeof(BitVector192),
                      trace_ctx);
    stream.memset_d(header, 0, kHeaderBytes);
    gpusim::LaunchConfig launch;
    launch.block_dim = config_.gpu_block_dim;
    launch.grid_dim =
        (locations_[partition].size + launch.block_dim - 1) / launch.block_dim;
    launch.shared_bytes = sizeof(KernelShared);
    stream.launch(launch,
                  make_kernel(ctx.device_index, partition, ctx.query_buf.as<const BitVector192>(),
                              nq, header, payload),
                  trace_ctx);
    stream.memcpy_d2h(ctx.host_result[0].data(), header, kHeaderBytes, trace_ctx);
    stream.synchronize();  // Round trip: we must read the length before sizing the copy.
    uint64_t count = 0;
    uint64_t overflow = 0;
    std::memcpy(&count, ctx.host_result[0].data(), sizeof(count));
    std::memcpy(&overflow, ctx.host_result[0].data() + 8, sizeof(overflow));
    stream.memcpy_d2h(ctx.host_result[0].data() + kHeaderBytes, payload, bytes_for_pairs(count),
                      trace_ctx);
    stream.synchronize();
    deliver(PendingBatch{token, count, overflow != 0, true, trace_ctx},
            std::span<const std::byte>(ctx.host_result[0]).subspan(kHeaderBytes));
    available_[ctx.device_index]->push(&ctx);
    return;
  }

  // Double-buffered path. Cycle n: payload buffer = buf[n%2], counter lives
  // in buf[(n-1)%2]'s header; the single D2H transfers buf[(n-1)%2] —
  // the previous batch's results plus this batch's length.
  const unsigned p = static_cast<unsigned>(ctx.cycle & 1);
  const unsigned q = 1 - p;
  std::byte* counter_header = ctx.result_buf[q].data();
  std::byte* payload = ctx.result_buf[p].data() + kHeaderBytes;

  stream.memcpy_h2d(ctx.query_buf.data(), queries.data(), nq * sizeof(BitVector192), trace_ctx);
  stream.memset_d(counter_header, 0, kHeaderBytes);
  gpusim::LaunchConfig launch;
  launch.block_dim = config_.gpu_block_dim;
  launch.grid_dim =
      (locations_[partition].size + launch.block_dim - 1) / launch.block_dim;
  launch.shared_bytes = sizeof(KernelShared);
  stream.launch(launch,
                make_kernel(ctx.device_index, partition, ctx.query_buf.as<const BitVector192>(),
                            nq, counter_header, payload),
                trace_ctx);

  const PendingBatch prev = ctx.pending;  // Results of the previous batch sit in buf[q].
  ctx.pending = PendingBatch{token, 0, false, true, trace_ctx};

  const size_t copy_bytes =
      prev.live ? kHeaderBytes + bytes_for_pairs(prev.count) : kHeaderBytes;
  stream.memcpy_d2h(ctx.host_result[q].data(), ctx.result_buf[q].data(), copy_bytes, trace_ctx);

  StreamCtx* ctx_ptr = &ctx;
  stream.callback([this, ctx_ptr, q, prev] {
    // This batch's count and overflow flag just arrived in the header.
    uint64_t count = 0;
    uint64_t overflow = 0;
    std::memcpy(&count, ctx_ptr->host_result[q].data(), sizeof(count));
    std::memcpy(&overflow, ctx_ptr->host_result[q].data() + 8, sizeof(overflow));
    ctx_ptr->pending.count = count;
    ctx_ptr->pending.overflow = overflow != 0;
    if (prev.live) {
      // The same copy carried the previous batch's results.
      deliver(prev, std::span<const std::byte>(ctx_ptr->host_result[q]).subspan(kHeaderBytes));
    }
  });
  auto event = std::make_shared<gpusim::Event>();
  stream.record(event);
  ctx.last_event = std::move(event);
  ctx.cycle++;
  available_[ctx.device_index]->push(&ctx);
}

void GpuEngine::drain_stream(StreamCtx& ctx) {
  if (ctx.last_event) {
    ctx.last_event->wait();
  }
  if (!ctx.pending.live) {
    return;
  }
  // The pending batch's payload sits in the buffer of parity (cycle-1)%2;
  // its count arrived with the copy of its own cycle.
  const unsigned par = static_cast<unsigned>((ctx.cycle - 1) & 1);
  const size_t bytes = bytes_for_pairs(ctx.pending.count);
  gpusim::Stream& stream = *ctx.stream;
  stream.memcpy_d2h(ctx.host_result[par].data() + kHeaderBytes,
                    ctx.result_buf[par].data() + kHeaderBytes, bytes, ctx.pending.ctx);
  StreamCtx* ctx_ptr = &ctx;
  const PendingBatch pending = ctx.pending;
  ctx.pending.live = false;
  stream.callback([this, ctx_ptr, par, pending] {
    deliver(pending, std::span<const std::byte>(ctx_ptr->host_result[par]).subspan(kHeaderBytes));
  });
  auto event = std::make_shared<gpusim::Event>();
  stream.record(event);
  ctx.last_event = std::move(event);
  ctx.last_event->wait();
}

void GpuEngine::drain() {
  // Serialize whole-pool drains: two concurrent drains (e.g. a user flush
  // racing the batch-timeout flusher) would otherwise each acquire part of
  // the stream pool and deadlock waiting for the rest.
  std::lock_guard drain_lock(drain_mu_);
  // Take temporary ownership of every stream context so no submitter races
  // with the drain, then flush each trailing batch.
  std::vector<StreamCtx*> owned;
  owned.reserve(streams_.size());
  for (unsigned d = 0; d < available_.size(); ++d) {
    for (unsigned s = 0; s < config_.streams_per_gpu; ++s) {
      auto popped = available_[d]->pop();
      TAGMATCH_CHECK(popped.has_value());
      owned.push_back(*popped);
    }
  }
  for (StreamCtx* ctx : owned) {
    drain_stream(*ctx);
  }
  for (StreamCtx* ctx : owned) {
    available_[ctx->device_index]->push(ctx);
  }
}

std::vector<uint64_t> GpuEngine::device_memory_used_per_device() const {
  std::vector<uint64_t> out;
  out.reserve(devices_.size());
  for (const auto& d : devices_) {
    out.push_back(d->memory_used());
  }
  return out;
}

namespace {
void merge_profilers(const std::vector<std::unique_ptr<gpusim::Device>>& devices,
                     gpusim::Profiler& merged) {
  for (const auto& d : devices) {
    gpusim::Profiler* p = d->profiler();
    if (p == nullptr) {
      continue;
    }
    for (const gpusim::OpRecord& op : p->records()) {
      merged.record(op);
    }
  }
}
}  // namespace

gpusim::Profiler::Summary GpuEngine::profile_summary() const {
  gpusim::Profiler merged;
  merge_profilers(devices_, merged);
  return merged.summary();
}

bool GpuEngine::write_gpu_trace(const std::string& path) const {
  gpusim::Profiler merged;
  merge_profilers(devices_, merged);
  return merged.write_chrome_trace(path);
}

uint64_t GpuEngine::device_memory_used() const {
  uint64_t total = 0;
  for (const auto& d : devices_) {
    total += d->memory_used();
  }
  return total;
}

}  // namespace tagmatch

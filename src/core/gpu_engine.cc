#include "src/core/gpu_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/core/cpu_match_parallel.h"
#include "src/inject/fault.h"

namespace tagmatch {

const char* device_health_name(DeviceHealth health) {
  switch (health) {
    case DeviceHealth::kHealthy:
      return "healthy";
    case DeviceHealth::kQuarantined:
      return "quarantined";
    case DeviceHealth::kProbing:
      return "probing";
    case DeviceHealth::kRecovered:
      return "recovered";
  }
  return "?";
}

namespace {

// Block-level shared-memory state of the subset-match kernel (Algorithm 4):
// the common prefix of the block's tag sets and the compacted query batch
// (stored as indices into the global query buffer).
struct KernelShared {
  BitVector192 prefix;
  uint32_t qcount;
  uint8_t qids[256];
};

}  // namespace

GpuEngine::GpuEngine(const TagMatchConfig& config, BatchResultFn on_result)
    : config_(config),
      variant_(sig::resolve(config.signature_scheme).kernel_variant()),
      on_result_(std::move(on_result)) {
  TAGMATCH_CHECK(config_.num_gpus >= 1);
  TAGMATCH_CHECK(config_.batch_size >= 1 && config_.batch_size <= 256);
  TAGMATCH_CHECK(config_.streams_per_gpu >= 1);

  for (unsigned d = 0; d < config_.num_gpus; ++d) {
    gpusim::DeviceConfig dev_config;
    dev_config.name = "SimTITAN-X:" + std::to_string(d);
    dev_config.memory_capacity = config_.gpu_memory_capacity;
    dev_config.num_sms = config_.gpu_sms_per_device;
    dev_config.max_streams = config_.streams_per_gpu;
    dev_config.enable_profiling = config_.gpu_profiling;
    dev_config.costs = config_.gpu_costs;
    // Share the engine's observability handle so device-side stage spans
    // (H2D, kernel, D2H) land in the same registry as the CPU stages.
    dev_config.metrics = config_.metrics;
    dev_config.device_index = d;
    dev_config.injector = config_.fault_injector;
    devices_.push_back(std::make_unique<gpusim::Device>(std::move(dev_config)));
    device_states_.push_back(std::make_unique<DeviceState>());
  }
  device_tables_.resize(devices_.size());
  health_gauges_.assign(devices_.size(), nullptr);
  if (config_.metrics) {
    auto& registry = config_.metrics->registry();
    retries_counter_ = registry.counter("engine.retries");
    redispatches_counter_ = registry.counter("engine.redispatches");
    cpu_fallback_counter_ = registry.counter("engine.cpu_fallback_batches");
    for (unsigned d = 0; d < config_.num_gpus; ++d) {
      health_gauges_[d] = registry.gauge("device.health." + std::to_string(d),
                                        obs::GaugeMode::kLast);
    }
  }

  const size_t payload = payload_capacity_bytes();
  pool_size_.assign(config_.num_gpus, 0);
  for (unsigned d = 0; d < config_.num_gpus; ++d) {
    available_.push_back(std::make_unique<MpmcQueue<StreamCtx*>>());
    for (unsigned s = 0; s < config_.streams_per_gpu; ++s) {
      auto ctx = std::make_unique<StreamCtx>();
      ctx->device_index = d;
      ctx->stream = std::make_unique<gpusim::Stream>(devices_[d].get());
      ctx->query_buf = devices_[d]->alloc(config_.batch_size * sizeof(BitVector192));
      for (int b = 0; b < 2; ++b) {
        ctx->result_buf[b] = devices_[d]->alloc(kHeaderBytes + payload);
        ctx->host_result[b].resize(kHeaderBytes + payload);
      }
      ctx->usable = ctx->stream->ok() && ctx->query_buf.valid() && ctx->result_buf[0].valid() &&
                    ctx->result_buf[1].valid();
      if (ctx->usable) {
        available_[d]->push(ctx.get());
        pool_size_[d]++;
      }
      streams_.push_back(std::move(ctx));
    }
    if (pool_size_[d] == 0) {
      // No working stream on this device (construction-time alloc faults or
      // a lost device): permanently out of service.
      note_device_failure(d, gpusim::OpError::kDeviceLost);
    }
  }
  retry_worker_ = std::thread([this] { retry_loop(); });
}

GpuEngine::~GpuEngine() {
  // Quiesce: every in-flight batch must be delivered, including batches
  // bouncing through the retry worker, before the streams go away.
  for (;;) {
    drain();
    if (in_flight() == 0 && retry_pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  retry_queue_.close();
  retry_worker_.join();
  // Streams must be destroyed (joining their executors) before the devices
  // and buffers they reference.
  streams_.clear();
  device_tables_.clear();
}

size_t GpuEngine::payload_capacity_bytes() const {
  size_t packed = PackedResultCodec::bytes_for(config_.result_buffer_entries);
  size_t unpacked = UnpackedResultCodec::bytes_for(config_.result_buffer_entries);
  return std::max(packed, unpacked);
}

size_t GpuEngine::bytes_for_pairs(uint64_t n) const {
  n = std::min<uint64_t>(n, config_.result_buffer_entries);
  return config_.packed_output ? PackedResultCodec::bytes_for(n)
                               : UnpackedResultCodec::bytes_for(n);
}

void GpuEngine::upload(const TagsetTableView& table) {
  TAGMATCH_CHECK(in_flight() == 0);
  TAGMATCH_CHECK(table.filters.size() == table.set_ids.size());
  TAGMATCH_CHECK(!table.offsets.empty());
  const size_t num_partitions = table.offsets.size() - 1;

  // Host mirror: the CPU brute-force fallback matches against this when no
  // device can serve a batch, so device faults degrade throughput only.
  host_filters_.assign(table.filters.begin(), table.filters.end());
  host_set_ids_.assign(table.set_ids.begin(), table.set_ids.end());
  host_offsets_.assign(table.offsets.begin(), table.offsets.end());

  // Decide where each partition lives.
  locations_.assign(num_partitions, PartitionLocation{});
  std::vector<uint64_t> device_load(devices_.size(), 0);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    locations_[p].size = table.offsets[p + 1] - table.offsets[p];
    if (config_.gpu_table_mode == TagMatchConfig::GpuTableMode::kPartition) {
      // Greedy size balancing: give the partition to the least-loaded
      // device.
      unsigned best = 0;
      for (unsigned d = 1; d < devices_.size(); ++d) {
        if (device_load[d] < device_load[best]) {
          best = d;
        }
      }
      locations_[p].device = best;
      device_load[best] += locations_[p].size;
    } else {
      locations_[p].device = 0;  // Replicated: any device serves it.
      locations_[p].begin = table.offsets[p];
    }
  }

  for (unsigned d = 0; d < devices_.size(); ++d) {
    // Assemble this device's flat arrays: the full table in kReplicate mode,
    // only the owned partitions in kPartition mode.
    std::vector<BitVector192> dev_filters;
    std::vector<uint32_t> dev_ids;
    if (config_.gpu_table_mode == TagMatchConfig::GpuTableMode::kPartition) {
      for (PartitionId p = 0; p < num_partitions; ++p) {
        if (locations_[p].device != d) {
          continue;
        }
        locations_[p].begin = static_cast<uint32_t>(dev_filters.size());
        dev_filters.insert(dev_filters.end(), table.filters.begin() + table.offsets[p],
                           table.filters.begin() + table.offsets[p + 1]);
        dev_ids.insert(dev_ids.end(), table.set_ids.begin() + table.offsets[p],
                       table.set_ids.begin() + table.offsets[p + 1]);
      }
    } else {
      dev_filters.assign(table.filters.begin(), table.filters.end());
      dev_ids.assign(table.set_ids.begin(), table.set_ids.end());
    }

    DeviceTable& dt = device_tables_[d];
    dt.filters.reset();
    dt.set_ids.reset();
    device_states_[d]->table_ok.store(false, std::memory_order_release);
    if (pool_size_[d] == 0 || devices_[d]->lost()) {
      continue;  // Nothing to upload to; the device stays out of service.
    }
    const size_t filter_bytes = dev_filters.size() * sizeof(BitVector192);
    const size_t id_bytes = dev_ids.size() * sizeof(uint32_t);
    dt.filters = devices_[d]->alloc(std::max<size_t>(filter_bytes, 1));
    dt.set_ids = devices_[d]->alloc(std::max<size_t>(id_bytes, 1));
    if (!dt.filters.valid() || !dt.set_ids.valid()) {
      note_device_failure(d, gpusim::OpError::kDeviceLost);
      continue;  // Device OOM/alloc fault: serve its share from elsewhere.
    }
    // Reuse the first usable pool stream of this device for the upload; the
    // pool is idle at upload time (in_flight == 0 is checked above).
    gpusim::Stream* stream = nullptr;
    for (const auto& ctx : streams_) {
      if (ctx->device_index == d && ctx->usable) {
        stream = ctx->stream.get();
        break;
      }
    }
    TAGMATCH_CHECK(stream != nullptr);
    if (filter_bytes > 0) {
      stream->memcpy_h2d(dt.filters.data(), dev_filters.data(), filter_bytes);
      stream->memcpy_h2d(dt.set_ids.data(), dev_ids.data(), id_bytes);
    }
    stream->synchronize();
    const gpusim::OpError err = stream->take_error();
    if (err != gpusim::OpError::kNone) {
      note_device_failure(d, err);
      continue;  // A corrupt table must never serve queries.
    }
    device_states_[d]->table_ok.store(true, std::memory_order_release);
  }
}

unsigned GpuEngine::partition_device(PartitionId p) const {
  TAGMATCH_CHECK(p < locations_.size());
  return locations_[p].device;
}

DeviceHealth GpuEngine::device_health(unsigned device) const {
  TAGMATCH_CHECK(device < device_states_.size());
  return static_cast<DeviceHealth>(
      device_states_[device]->health.load(std::memory_order_acquire));
}

std::vector<std::pair<unsigned, DeviceHealth>> GpuEngine::health_history() const {
  std::lock_guard lock(health_mu_);
  return history_;
}

void GpuEngine::set_health(unsigned device, DeviceHealth health) {
  DeviceState& st = *device_states_[device];
  std::lock_guard lock(health_mu_);
  if (static_cast<DeviceHealth>(st.health.load(std::memory_order_relaxed)) == health) {
    return;
  }
  st.health.store(static_cast<uint32_t>(health), std::memory_order_release);
  history_.emplace_back(device, health);
  if (health_gauges_[device] != nullptr) {
    health_gauges_[device]->set(static_cast<int64_t>(health));
  }
}

void GpuEngine::note_device_failure(unsigned device, gpusim::OpError error) {
  DeviceState& st = *device_states_[device];
  const uint32_t streak = st.failure_streak.fetch_add(1, std::memory_order_acq_rel) + 1;
  const bool lost = error == gpusim::OpError::kDeviceLost;
  if (lost || streak >= config_.quarantine_failure_threshold) {
    // A lost device never heals, so it is quarantined forever; a flaky one
    // gets probed again after the quarantine period.
    const int64_t until =
        lost ? std::numeric_limits<int64_t>::max()
             : now_ns() + std::chrono::nanoseconds(config_.quarantine_period).count();
    st.quarantine_until_ns.store(until, std::memory_order_release);
    set_health(device, DeviceHealth::kQuarantined);
  }
}

void GpuEngine::note_device_success(unsigned device) {
  DeviceState& st = *device_states_[device];
  st.failure_streak.store(0, std::memory_order_release);
  if (static_cast<DeviceHealth>(st.health.load(std::memory_order_acquire)) ==
      DeviceHealth::kRecovered) {
    set_health(device, DeviceHealth::kHealthy);
  }
}

bool GpuEngine::device_eligible(unsigned device) {
  DeviceState& st = *device_states_[device];
  if (!st.table_ok.load(std::memory_order_acquire) || pool_size_[device] == 0 ||
      devices_[device]->lost()) {
    return false;
  }
  const auto health = static_cast<DeviceHealth>(st.health.load(std::memory_order_acquire));
  if (health != DeviceHealth::kQuarantined) {
    return true;
  }
  if (now_ns() < st.quarantine_until_ns.load(std::memory_order_acquire)) {
    return false;
  }
  // Quarantine expired: probe inline. The probe itself is cheap (the loss
  // flag is the only unrecoverable state); the first real batch after
  // recovery is the true trial — failure_streak is primed so that a single
  // failed cycle re-quarantines immediately.
  {
    std::lock_guard lock(health_mu_);
    const auto current = static_cast<DeviceHealth>(st.health.load(std::memory_order_relaxed));
    if (current != DeviceHealth::kQuarantined) {
      return current != DeviceHealth::kProbing;  // Another thread is probing.
    }
    st.health.store(static_cast<uint32_t>(DeviceHealth::kProbing), std::memory_order_release);
    history_.emplace_back(device, DeviceHealth::kProbing);
    if (health_gauges_[device] != nullptr) {
      health_gauges_[device]->set(static_cast<int64_t>(DeviceHealth::kProbing));
    }
  }
  if (devices_[device]->lost()) {
    DeviceState& state = *device_states_[device];
    state.quarantine_until_ns.store(std::numeric_limits<int64_t>::max(),
                                    std::memory_order_release);
    set_health(device, DeviceHealth::kQuarantined);
    return false;
  }
  st.failure_streak.store(config_.quarantine_failure_threshold > 0
                              ? config_.quarantine_failure_threshold - 1
                              : 0,
                          std::memory_order_release);
  set_health(device, DeviceHealth::kRecovered);
  return true;
}

int GpuEngine::choose_device(PartitionId partition, int exclude) {
  if (config_.gpu_table_mode == TagMatchConfig::GpuTableMode::kPartition) {
    // Only the owner holds the partition's table slice; there is no one to
    // re-dispatch to, so an ineligible owner means CPU fallback.
    const unsigned owner = locations_[partition].device;
    return device_eligible(owner) ? static_cast<int>(owner) : -1;
  }
  const unsigned n = static_cast<unsigned>(devices_.size());
  for (unsigned i = 0; i < n; ++i) {
    const unsigned d = static_cast<unsigned>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) % n);
    if (static_cast<int>(d) == exclude) {
      continue;
    }
    if (device_eligible(d)) {
      return static_cast<int>(d);
    }
  }
  // Only the excluded (just-failed) device may be left — a single-GPU
  // transient fault retries on the same device.
  if (exclude >= 0 && device_eligible(static_cast<unsigned>(exclude))) {
    return exclude;
  }
  return -1;
}

void GpuEngine::requeue(const PendingBatch& batch, unsigned failed_device) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (retries_counter_ != nullptr) {
    retries_counter_->inc();
  }
  retry_pending_.fetch_add(1, std::memory_order_acq_rel);
  retry_queue_.push(RetryItem{batch.partition, batch.queries, batch.token, batch.ctx,
                              batch.attempts + 1, static_cast<int>(failed_device)});
}

void GpuEngine::cpu_fallback_deliver(PartitionId partition,
                                     std::span<const BitVector192> queries, void* token,
                                     const obs::TraceContext& ctx) {
  cpu_fallback_batches_.fetch_add(1, std::memory_order_relaxed);
  if (cpu_fallback_counter_ != nullptr) {
    cpu_fallback_counter_->inc();
  }
  // Fan the brute-force walk out over the task scheduler in block-aligned
  // chunks: with every device quarantined, fallback throughput scales with
  // the worker count instead of capping at one core. Chunk concatenation is
  // byte-identical to the single-threaded walk (cpu_match_parallel.h), so
  // the chaos tier's fault-free oracle comparison holds at any width.
  std::vector<ResultPair> pairs = parallel_subset_match(
      config_.scheduler.get(), host_filters_, host_set_ids_, host_offsets_[partition],
      host_offsets_[partition + 1], queries, config_.gpu_block_dim,
      config_.enable_prefix_filter, variant_);
  (void)ctx;
  on_result_(token, pairs, /*overflow=*/false);
  in_flight_.fetch_sub(1, std::memory_order_release);
}

void GpuEngine::retry_loop() {
  while (auto item = retry_queue_.pop()) {
    RetryItem r = *item;
    if (r.attempts > config_.max_batch_retries) {
      cpu_fallback_deliver(r.partition, r.queries, r.token, r.ctx);
    } else {
      // Exponential backoff, capped at 64x, so a transiently sick device is
      // not hammered while it sorts itself out.
      const auto backoff =
          config_.retry_backoff * (1u << std::min<uint32_t>(r.attempts - 1, 6));
      if (backoff.count() > 0) {
        std::this_thread::sleep_for(backoff);
      }
      const int device = choose_device(r.partition, r.failed_device);
      if (device < 0) {
        cpu_fallback_deliver(r.partition, r.queries, r.token, r.ctx);
      } else {
        if (r.failed_device >= 0 && device != r.failed_device) {
          redispatches_.fetch_add(1, std::memory_order_relaxed);
          if (redispatches_counter_ != nullptr) {
            redispatches_counter_->inc();
          }
        }
        submit_attempt(r.partition, r.queries, r.token, r.ctx, static_cast<unsigned>(device),
                       r.attempts);
      }
    }
    retry_pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

gpusim::Kernel GpuEngine::make_kernel(unsigned device_index, PartitionId partition,
                                      const BitVector192* queries_dev, uint32_t num_queries,
                                      std::byte* counter_header, std::byte* payload) {
  const DeviceTable& dt = device_tables_[device_index];
  const PartitionLocation& loc = locations_[partition];
  const BitVector192* filters = dt.filters.as<const BitVector192>() + loc.begin;
  const uint32_t* set_ids = dt.set_ids.as<const uint32_t>() + loc.begin;
  const uint32_t part_size = loc.size;
  auto* counter = reinterpret_cast<uint64_t*>(counter_header);
  auto* overflow = reinterpret_cast<uint64_t*>(counter_header) + 1;
  const uint64_t capacity = config_.result_buffer_entries;
  const bool prefix_filter = config_.enable_prefix_filter;
  const bool packed = config_.packed_output;
  const sig::KernelVariant variant = variant_;

  return [=](gpusim::BlockContext& ctx) {
    const uint32_t first = ctx.block_first_thread();
    if (first >= part_size) {
      return;
    }
    auto* sh = ctx.shared<KernelShared>();

    if (prefix_filter) {
      // Superstep 1 (thread 0): longest common prefix of the block's sets,
      // from the first and last set only — valid because the table is sorted
      // lexicographically (§3.3.1).
      ctx.thread0([&] {
        const BitVector192& f_first = filters[first];
        uint32_t last = std::min(first + ctx.block_dim(), part_size) - 1;
        unsigned len = BitVector192::common_prefix_len(f_first, filters[last]);
        sh->prefix = f_first.prefix(len);
        sh->qcount = 0;
      });
      // Superstep 2 (all threads): compact the query batch, keeping only
      // queries that cover the block prefix. The append is a plain increment
      // because threads of one block run sequentially on this simulator; on
      // real CUDA this is the atomicAdd of Algorithm 4.
      ctx.threads([&](uint32_t tid) {
        for (uint32_t i = tid; i < num_queries; i += ctx.block_dim()) {
          if (sig::subset_test(variant, sh->prefix, queries_dev[i])) {
            sh->qids[sh->qcount++] = static_cast<uint8_t>(i);
          }
        }
      });
    } else {
      ctx.thread0([&] {
        sh->qcount = num_queries;
        for (uint32_t i = 0; i < num_queries; ++i) {
          sh->qids[i] = static_cast<uint8_t>(i);
        }
      });
    }

    // Superstep 3 (all threads): one thread per tag set, checked against the
    // compacted batch (Algorithm 3); matches appended to the global output
    // with an atomic counter. (The production CUDA kernel additionally
    // unrolls this loop and reads two queries per iteration; those
    // micro-optimizations have no analogue on the host simulator.)
    ctx.threads([&](uint32_t tid) {
      const uint32_t s = first + tid;
      if (s >= part_size) {
        return;
      }
      const BitVector192& set_filter = filters[s];
      const uint32_t set_id = set_ids[s];
      for (uint32_t j = 0; j < sh->qcount; ++j) {
        const uint8_t qi = sh->qids[j];
        if (sig::subset_test(variant, set_filter, queries_dev[qi])) {
          uint64_t idx = std::atomic_ref<uint64_t>(*counter).fetch_add(
              1, std::memory_order_relaxed);
          if (idx < capacity) {
            ResultPair pair{qi, set_id};
            if (packed) {
              PackedResultCodec::write(payload, idx, pair);
            } else {
              UnpackedResultCodec::write(payload, idx, pair);
            }
          } else {
            std::atomic_ref<uint64_t>(*overflow).store(1, std::memory_order_relaxed);
          }
        }
      }
    });
    (void)partition;
  };
}

void GpuEngine::deliver(const PendingBatch& batch, std::span<const std::byte> payload_bytes) {
  const uint64_t n = std::min<uint64_t>(batch.count, config_.result_buffer_entries);
  std::vector<ResultPair> pairs;
  pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    pairs.push_back(config_.packed_output ? PackedResultCodec::read(payload_bytes.data(), i)
                                          : UnpackedResultCodec::read(payload_bytes.data(), i));
  }
  on_result_(batch.token, pairs, batch.overflow);
  in_flight_.fetch_sub(1, std::memory_order_release);
}

void GpuEngine::submit(PartitionId partition, std::span<const BitVector192> queries, void* token,
                       const obs::TraceContext& trace_ctx) {
  TAGMATCH_CHECK(!queries.empty());
  TAGMATCH_CHECK(queries.size() <= config_.batch_size);
  TAGMATCH_CHECK(partition < locations_.size());

  in_flight_.fetch_add(1, std::memory_order_acquire);
  const int device = choose_device(partition, /*exclude=*/-1);
  if (device < 0) {
    // Every device is quarantined/lost: degrade to the CPU, not to an error.
    cpu_fallback_deliver(partition, queries, token, trace_ctx);
    return;
  }
  submit_attempt(partition, queries, token, trace_ctx, static_cast<unsigned>(device),
                 /*attempts=*/0);
}

void GpuEngine::submit_attempt(PartitionId partition, std::span<const BitVector192> queries,
                               void* token, const obs::TraceContext& trace_ctx, unsigned device,
                               uint32_t attempts) {
  auto popped = available_[device]->pop();
  TAGMATCH_CHECK(popped.has_value());
  StreamCtx& ctx = **popped;

  // Make sure the previous cycle's copy has landed, so ctx.pending.count and
  // the even/odd bookkeeping below are valid (§3.3.2: the size of the current
  // result set "was transferred in the previous cycle and is readable").
  if (ctx.last_event) {
    ctx.last_event->wait();
  }

  gpusim::Stream& stream = *ctx.stream;
  const uint32_t nq = static_cast<uint32_t>(queries.size());

  if (!config_.double_buffered_results) {
    // Ablation path (§3.3.2's "straightforward solution"): transfer the
    // result length, synchronize, then transfer exactly the results —
    // one extra copy and one extra round trip per batch.
    std::byte* header = ctx.result_buf[0].data();
    std::byte* payload = header + kHeaderBytes;
    stream.memcpy_h2d(ctx.query_buf.data(), queries.data(), nq * sizeof(BitVector192),
                      trace_ctx);
    stream.memset_d(header, 0, kHeaderBytes);
    gpusim::LaunchConfig launch;
    launch.block_dim = config_.gpu_block_dim;
    launch.grid_dim =
        (locations_[partition].size + launch.block_dim - 1) / launch.block_dim;
    launch.shared_bytes = sizeof(KernelShared);
    stream.launch(launch,
                  make_kernel(ctx.device_index, partition, ctx.query_buf.as<const BitVector192>(),
                              nq, header, payload),
                  trace_ctx);
    stream.memcpy_d2h(ctx.host_result[0].data(), header, kHeaderBytes, trace_ctx);
    stream.synchronize();  // Round trip: we must read the length before sizing the copy.
    if (gpusim::OpError err = stream.take_error(); err != gpusim::OpError::kNone) {
      // The header never arrived; nothing downstream of it is trustworthy.
      note_device_failure(ctx.device_index, err);
      available_[ctx.device_index]->push(&ctx);
      PendingBatch failed{token, 0, false, true, trace_ctx, partition, queries, attempts};
      requeue(failed, ctx.device_index);
      return;
    }
    uint64_t count = 0;
    uint64_t overflow = 0;
    std::memcpy(&count, ctx.host_result[0].data(), sizeof(count));
    std::memcpy(&overflow, ctx.host_result[0].data() + 8, sizeof(overflow));
    stream.memcpy_d2h(ctx.host_result[0].data() + kHeaderBytes, payload, bytes_for_pairs(count),
                      trace_ctx);
    stream.synchronize();
    if (gpusim::OpError err = stream.take_error(); err != gpusim::OpError::kNone) {
      note_device_failure(ctx.device_index, err);
      available_[ctx.device_index]->push(&ctx);
      PendingBatch failed{token, 0, false, true, trace_ctx, partition, queries, attempts};
      requeue(failed, ctx.device_index);
      return;
    }
    note_device_success(ctx.device_index);
    deliver(PendingBatch{token, count, overflow != 0, true, trace_ctx, partition, queries,
                         attempts},
            std::span<const std::byte>(ctx.host_result[0]).subspan(kHeaderBytes));
    available_[ctx.device_index]->push(&ctx);
    return;
  }

  // Double-buffered path. Cycle n: payload buffer = buf[n%2], counter lives
  // in buf[(n-1)%2]'s header; the single D2H transfers buf[(n-1)%2] —
  // the previous batch's results plus this batch's length.
  const unsigned p = static_cast<unsigned>(ctx.cycle & 1);
  const unsigned q = 1 - p;
  std::byte* counter_header = ctx.result_buf[q].data();
  std::byte* payload = ctx.result_buf[p].data() + kHeaderBytes;

  stream.memcpy_h2d(ctx.query_buf.data(), queries.data(), nq * sizeof(BitVector192), trace_ctx);
  stream.memset_d(counter_header, 0, kHeaderBytes);
  gpusim::LaunchConfig launch;
  launch.block_dim = config_.gpu_block_dim;
  launch.grid_dim =
      (locations_[partition].size + launch.block_dim - 1) / launch.block_dim;
  launch.shared_bytes = sizeof(KernelShared);
  stream.launch(launch,
                make_kernel(ctx.device_index, partition, ctx.query_buf.as<const BitVector192>(),
                            nq, counter_header, payload),
                trace_ctx);

  const PendingBatch prev = ctx.pending;  // Results of the previous batch sit in buf[q].
  ctx.pending = PendingBatch{token, 0, false, true, trace_ctx, partition, queries, attempts};

  const size_t copy_bytes =
      prev.live ? kHeaderBytes + bytes_for_pairs(prev.count) : kHeaderBytes;
  stream.memcpy_d2h(ctx.host_result[q].data(), ctx.result_buf[q].data(), copy_bytes, trace_ctx);

  StreamCtx* ctx_ptr = &ctx;
  stream.callback([this, ctx_ptr, q, prev] {
    // Any op of this cycle may have failed; the executor poisoned the rest
    // of the cycle, so one take_error() covers them all. On failure neither
    // the header nor prev's payload arrived: requeue both batches — the
    // retry worker re-runs the full match elsewhere (or on the CPU), so
    // correctness never depends on the sick device's buffers.
    const gpusim::OpError err = ctx_ptr->stream->take_error();
    if (err != gpusim::OpError::kNone) {
      note_device_failure(ctx_ptr->device_index, err);
      if (prev.live) {
        requeue(prev, ctx_ptr->device_index);
      }
      if (ctx_ptr->pending.live) {
        requeue(ctx_ptr->pending, ctx_ptr->device_index);
        ctx_ptr->pending.live = false;
      }
      return;
    }
    note_device_success(ctx_ptr->device_index);
    // This batch's count and overflow flag just arrived in the header.
    uint64_t count = 0;
    uint64_t overflow = 0;
    std::memcpy(&count, ctx_ptr->host_result[q].data(), sizeof(count));
    std::memcpy(&overflow, ctx_ptr->host_result[q].data() + 8, sizeof(overflow));
    ctx_ptr->pending.count = count;
    ctx_ptr->pending.overflow = overflow != 0;
    if (prev.live) {
      // The same copy carried the previous batch's results.
      deliver(prev, std::span<const std::byte>(ctx_ptr->host_result[q]).subspan(kHeaderBytes));
    }
  });
  auto event = std::make_shared<gpusim::Event>();
  stream.record(event);
  ctx.last_event = std::move(event);
  ctx.cycle++;
  available_[ctx.device_index]->push(&ctx);
}

void GpuEngine::drain_stream(StreamCtx& ctx) {
  if (ctx.last_event) {
    ctx.last_event->wait();
  }
  if (!ctx.pending.live) {
    return;
  }
  // The pending batch's payload sits in the buffer of parity (cycle-1)%2;
  // its count arrived with the copy of its own cycle.
  const unsigned par = static_cast<unsigned>((ctx.cycle - 1) & 1);
  const size_t bytes = bytes_for_pairs(ctx.pending.count);
  gpusim::Stream& stream = *ctx.stream;
  stream.memcpy_d2h(ctx.host_result[par].data() + kHeaderBytes,
                    ctx.result_buf[par].data() + kHeaderBytes, bytes, ctx.pending.ctx);
  StreamCtx* ctx_ptr = &ctx;
  const PendingBatch pending = ctx.pending;
  ctx.pending.live = false;
  stream.callback([this, ctx_ptr, par, pending] {
    const gpusim::OpError err = ctx_ptr->stream->take_error();
    if (err != gpusim::OpError::kNone) {
      // The trailing payload copy failed: re-run the batch instead.
      note_device_failure(ctx_ptr->device_index, err);
      requeue(pending, ctx_ptr->device_index);
      return;
    }
    deliver(pending, std::span<const std::byte>(ctx_ptr->host_result[par]).subspan(kHeaderBytes));
  });
  auto event = std::make_shared<gpusim::Event>();
  stream.record(event);
  ctx.last_event = std::move(event);
  ctx.last_event->wait();
}

void GpuEngine::drain_streams_once() {
  // Take temporary ownership of every pooled stream context so no submitter
  // races with the drain, then flush each trailing batch.
  std::vector<StreamCtx*> owned;
  owned.reserve(streams_.size());
  for (unsigned d = 0; d < available_.size(); ++d) {
    for (unsigned s = 0; s < pool_size_[d]; ++s) {
      auto popped = available_[d]->pop();
      TAGMATCH_CHECK(popped.has_value());
      owned.push_back(*popped);
    }
  }
  for (StreamCtx* ctx : owned) {
    drain_stream(*ctx);
  }
  for (StreamCtx* ctx : owned) {
    available_[ctx->device_index]->push(ctx);
  }
}

void GpuEngine::drain() {
  // Serialize whole-pool drains: two concurrent drains (e.g. a user flush
  // racing the batch-timeout flusher) would otherwise each acquire part of
  // the stream pool and deadlock waiting for the rest.
  std::lock_guard drain_lock(drain_mu_);
  for (;;) {
    // Let the retry worker finish resubmitting before grabbing the pools —
    // it needs to pop stream contexts, which a draining thread holds.
    while (retry_pending_.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    drain_streams_once();
    // A drained cycle may itself have failed and requeued its batch; only a
    // pass that left nothing behind means every batch was delivered.
    if (retry_pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

std::vector<uint64_t> GpuEngine::device_memory_used_per_device() const {
  std::vector<uint64_t> out;
  out.reserve(devices_.size());
  for (const auto& d : devices_) {
    out.push_back(d->memory_used());
  }
  return out;
}

namespace {
void merge_profilers(const std::vector<std::unique_ptr<gpusim::Device>>& devices,
                     gpusim::Profiler& merged) {
  for (const auto& d : devices) {
    gpusim::Profiler* p = d->profiler();
    if (p == nullptr) {
      continue;
    }
    for (const gpusim::OpRecord& op : p->records()) {
      merged.record(op);
    }
  }
}
}  // namespace

gpusim::Profiler::Summary GpuEngine::profile_summary() const {
  gpusim::Profiler merged;
  merge_profilers(devices_, merged);
  return merged.summary();
}

bool GpuEngine::write_gpu_trace(const std::string& path) const {
  gpusim::Profiler merged;
  merge_profilers(devices_, merged);
  return merged.write_chrome_trace(path);
}

uint64_t GpuEngine::device_memory_used() const {
  uint64_t total = 0;
  for (const auto& d : devices_) {
    total += d->memory_used();
  }
  return total;
}

}  // namespace tagmatch

// The CPU-side partition index of §3.2 — Algorithm 2.
//
// An array of 192 vectors of (mask, partition id); vector PT[j] holds the
// masks whose leftmost one-bit is at position j. Pre-processing a query scans
// the one-bit positions of the query and, within each corresponding bucket,
// runs the three-block subset check. Because a mask's leftmost one-bit must
// itself be a one-bit of any query it matches, no candidate is missed, and
// each mask is examined at most once (it lives in exactly one bucket).
#ifndef TAGMATCH_CORE_PARTITION_TABLE_H_
#define TAGMATCH_CORE_PARTITION_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch {

using PartitionId = uint32_t;

class PartitionTable {
 public:
  // Prefilter work accounting for one query: `examined` bucket entries were
  // subset-tested, `forwarded` of them (plus always-matched partitions)
  // reached the pipeline. The gap is what the prefilter discarded — surfaced
  // as the prefilter.discard_ratio histogram.
  struct ProbeStats {
    uint64_t examined = 0;
    uint64_t forwarded = 0;
  };

  PartitionTable() = default;

  // Registers a partition mask. Masks with no one-bit (the residual
  // partition, see partitioner.h) are kept in a separate always-matched
  // list.
  void add(const BitVector192& mask, PartitionId id);

  // Invokes fn(id) for every partition whose mask is a bitwise subset of
  // `query` — Algorithm 2. `variant` selects the scheme's subset-test
  // instruction pattern; `stats`, when non-null, accumulates probe counts.
  void find_matches(const BitVector192& query, const std::function<void(PartitionId)>& fn,
                    sig::KernelVariant variant = sig::KernelVariant::kBranchChain,
                    ProbeStats* stats = nullptr) const;

  size_t partition_count() const { return count_; }
  uint64_t memory_bytes() const;

 private:
  struct Entry {
    BitVector192 mask;
    PartitionId id;
  };

  std::array<std::vector<Entry>, BitVector192::kBits> buckets_;
  std::vector<PartitionId> always_matched_;
  size_t count_ = 0;
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_PARTITION_TABLE_H_

// Configuration of the TagMatch engine. Defaults mirror the paper's setup:
// MAX_P = 200K (the knee of Fig. 7), 2 GPUs with 10 streams each, 192-bit
// Bloom filters with 7 hashes (fixed at compile time in src/bloom).
#ifndef TAGMATCH_CORE_CONFIG_H_
#define TAGMATCH_CORE_CONFIG_H_

#include <chrono>
#include <cstdint>
#include <memory>

#include "src/gpusim/cost_model.h"

namespace tagmatch {

namespace obs {
class PipelineObs;
}  // namespace obs

namespace inject {
class FaultInjector;
}  // namespace inject

namespace sig {
class SignatureScheme;
}  // namespace sig

namespace task {
class TaskScheduler;
}  // namespace task

struct TagMatchConfig {
  // --- Off-line partitioning (Algorithm 1) ---
  // Maximum number of tag sets per partition (the paper's MAX_P). Balances
  // CPU pre-processing cost against GPU subset-match cost (§4.3.5).
  uint32_t max_partition_size = 200'000;

  // Signature scheme (src/sig) the engine encodes and matches under,
  // selected at table-build time. Schemes are process-lifetime singletons
  // (sig::scheme_by_name), so a raw pointer is safe here. Null resolves via
  // the TAGMATCH_SCHEME environment variable, then the bloom192 baseline
  // (sig::resolve). The scheme is persisted in the engine index and shard
  // manifest; loading an index built under a different scheme fails.
  const sig::SignatureScheme* signature_scheme = nullptr;

  // --- Pipeline ---
  // CPU worker threads running pre-process, key lookup/reduce and merge.
  // Legacy knob: the fallback worker count when num_workers is 0 and
  // TAGMATCH_WORKERS is unset (see below).
  unsigned num_threads = 4;

  // --- Task execution core (src/task, docs/CONCURRENCY.md) ---
  // Workers of the engine's task scheduler, which runs every host-side
  // stage: pre-process, key lookup/reduce, merge, and the chunked CPU
  // brute-force fan-out (cpu_only mode, overflow re-match, all-devices-down
  // fallback). 0 resolves via the TAGMATCH_WORKERS environment variable,
  // then falls back to num_threads. Surfaced as --workers on the CLI and
  // server.
  unsigned num_workers = 0;
  // Pin worker i to hardware thread i (mod hardware threads). Off by
  // default: pinning helps steady-state throughput on dedicated cores and
  // hurts when the host is shared (README "Tuning").
  bool pin_workers = false;
  // Scheduler to run on. Null (the default): the engine creates and owns a
  // private one, sized by num_workers. A supplied scheduler is shared — the
  // supplier must keep it alive for the engine's lifetime and the engine
  // never shuts it down. Sharing one pool between an engine and anything
  // that blocks on that engine's flush() livelocks; see docs/CONCURRENCY.md
  // before wiring this.
  std::shared_ptr<task::TaskScheduler> scheduler;

  // Queries per partition batch. Bounded by 256 because the packed GPU
  // output identifies a query within its batch with an 8-bit integer
  // (§3.3.1).
  uint32_t batch_size = 192;

  // Batches older than this are submitted even if not full (§3.4 latency
  // control; Fig. 6). Zero disables the timeout.
  std::chrono::milliseconds batch_timeout{0};

  // Deadline-aware batch close: a partial batch whose oldest query deadline
  // (the deadline_ns argument of the deadline-carrying match_async
  // overloads) falls within the next flusher tick is submitted early instead
  // of waiting out batch_timeout. Requires batch_timeout > 0 (the flusher
  // thread enforces both). Queries without a deadline are unaffected; early
  // closes are counted in engine.deadline_closes.
  bool deadline_batch_close = true;

  // --- Simulated GPU platform ---
  unsigned num_gpus = 2;
  unsigned streams_per_gpu = 10;
  unsigned gpu_block_dim = 256;       // threads per block of the match kernel
  unsigned gpu_sms_per_device = 2;    // SM workers per simulated device
  uint64_t gpu_memory_capacity = 12ull << 30;
  gpusim::CostModel gpu_costs;
  // Record every device operation into per-device profilers (see
  // GpuEngine::profile_summary / write_gpu_trace).
  bool gpu_profiling = false;

  // Observability handle (metrics registry + trace ring, src/obs). The
  // engine shares it with its GPU devices so every pipeline stage lands in
  // one registry; when null the engine creates a private one, readable via
  // Matcher::metrics_snapshot()/trace_snapshot(). Pass an explicit handle to
  // aggregate several engines into one registry.
  std::shared_ptr<obs::PipelineObs> metrics;

  // Capacity (in result entries) of each stream result buffer. A kernel that
  // overflows it raises a flag and the batch is re-matched on the CPU.
  uint32_t result_buffer_entries = 1u << 16;

  // --- Fault injection & resilience ---
  // When set, every device op consults this injector (src/inject); faults
  // surface as op errors that the engine repairs via retry, re-dispatch, or
  // CPU fallback. Null (the default) costs one branch per op.
  std::shared_ptr<inject::FaultInjector> fault_injector;
  // A batch whose cycle fails is retried with exponential backoff
  // (retry_backoff * 2^attempt, capped at 64x); after max_batch_retries the
  // engine matches it on the CPU instead of failing the query.
  uint32_t max_batch_retries = 3;
  std::chrono::milliseconds retry_backoff{1};
  // A device is quarantined after this many consecutive failed cycles (a
  // device-loss error quarantines immediately), and probed again after
  // quarantine_period; a probe that passes returns it to service.
  uint32_t quarantine_failure_threshold = 3;
  std::chrono::milliseconds quarantine_period{50};

  // --- Semantics ---
  // §3: "in cases where false positives are absolutely unacceptable, the
  // system or the application can perform an additional exact subset
  // check". When enabled, sets and queries registered with tag hashes
  // (add_set(tags,...), match_async with tags, or the *_hashed APIs) are
  // verified exactly during key lookup, eliminating Bloom false positives.
  // Sets or queries registered as bare filters skip verification.
  bool exact_check = false;

  // Extension to §2's staging semantics: when enabled, sets staged with
  // add_set become matchable immediately — the pre-process stage also scans
  // the temporary (staged) index linearly — instead of only after
  // consolidate(). Staged removals still take effect at consolidate().
  // Linear in the number of staged sets per query, so consolidate regularly.
  bool match_staged_adds = false;

  // How the tagset table is laid out across GPUs (§3: "TagMatch may also
  // replicate the tagset table on all available GPUs ... Alternatively,
  // TagMatch can ... simply partition an extremely large tagset table on
  // multiple GPUs").
  enum class GpuTableMode {
    kReplicate,  // Full copy on every device; any stream serves any batch.
    kPartition,  // Partitions distributed across devices (size-balanced);
                 // a batch is served by the owning device's streams. Halves
                 // per-device memory with two GPUs at some loss of
                 // scheduling freedom.
  };
  GpuTableMode gpu_table_mode = GpuTableMode::kReplicate;

  // --- Execution mode & ablation toggles ---
  // Runs the subset-match stage on the CPU instead of GPUs ("CPU-only,
  // TagMatch" row of Table 1).
  bool cpu_only = false;

  // Block-level common-prefix pre-filtering in the kernel (Algorithm 4).
  bool enable_prefix_filter = true;

  // Packed 4x(u8 query id) + 4x(u32 set id) output layout (§3.3.1). When
  // false, the kernel writes naive 8-byte (padded) pairs.
  bool packed_output = true;

  // Even/odd double result buffers piggybacking the next result length on
  // the current result copy (§3.3.2). When false, every batch performs a
  // separate length copy plus a synchronization round trip.
  bool double_buffered_results = true;
};

}  // namespace tagmatch

#endif  // TAGMATCH_CORE_CONFIG_H_

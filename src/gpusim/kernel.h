// SPMD kernel model.
//
// A kernel is written per thread-block, in bulk-synchronous (BSP) style: the
// kernel body receives a BlockContext and calls `ctx.threads(fn)` one or more
// times. Each `threads` call is a superstep that runs fn(tid) for every
// thread id in [0, block_dim); consecutive supersteps are separated by an
// implicit barrier, which is exactly the CUDA `__syncthreads()` discipline
// that Algorithm 4 of the paper relies on ("thread 0 computes the shared
// prefix; barrier; all threads filter the query batch; barrier; each thread
// checks its tag set").
//
// Within a superstep, thread bodies execute sequentially on one SM worker, so
// they must not wait on one another (which CUDA forbids across warps anyway);
// atomics still behave atomically because different *blocks* run on different
// SM workers concurrently.
#ifndef TAGMATCH_GPUSIM_KERNEL_H_
#define TAGMATCH_GPUSIM_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace gpusim {

class Device;

class BlockContext {
 public:
  BlockContext(uint32_t block_idx, uint32_t block_dim, uint32_t grid_dim, std::byte* shared,
               size_t shared_bytes, Device* device)
      : block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shared_(shared),
        shared_bytes_(shared_bytes),
        device_(device) {}

  uint32_t block_idx() const { return block_idx_; }
  uint32_t block_dim() const { return block_dim_; }
  uint32_t grid_dim() const { return grid_dim_; }
  // Global id of this block's first thread (CUDA: blockIdx.x * blockDim.x).
  uint32_t block_first_thread() const { return block_idx_ * block_dim_; }

  // Block-level shared memory, zero-initialized at block start.
  template <typename T = std::byte>
  T* shared() const {
    return reinterpret_cast<T*>(shared_);
  }
  size_t shared_bytes() const { return shared_bytes_; }

  // Superstep: runs fn(tid) for each tid in [0, block_dim). An implicit
  // __syncthreads() separates consecutive calls.
  void threads(const std::function<void(uint32_t)>& fn) const {
    for (uint32_t tid = 0; tid < block_dim_; ++tid) {
      fn(tid);
    }
  }

  // Runs fn(0) only — convenience for "if (threadIdx.x == 0)" phases.
  void thread0(const std::function<void()>& fn) const { fn(); }

  // CUDA dynamic parallelism: launches a child kernel from device code.
  // The child grid executes synchronously before this call returns (the
  // equivalent of a child launch followed by cudaDeviceSynchronize() in the
  // parent, which is how the paper's GPU-only prototype of §4.5 consumes
  // filled partition queues).
  void launch_child(uint32_t grid_dim, uint32_t block_dim, size_t shared_bytes,
                    const std::function<void(BlockContext&)>& kernel) const;

 private:
  uint32_t block_idx_;
  uint32_t block_dim_;
  uint32_t grid_dim_;
  std::byte* shared_;
  size_t shared_bytes_;
  Device* device_;
};

using Kernel = std::function<void(BlockContext&)>;

struct LaunchConfig {
  uint32_t grid_dim = 1;
  uint32_t block_dim = 256;
  size_t shared_bytes = 0;
};

// Executes a whole grid on the device's SM pool, blocking until every block
// has retired. Used by Stream (and by launch_child).
void execute_grid(Device* device, const LaunchConfig& config, const Kernel& kernel);

}  // namespace gpusim

#endif  // TAGMATCH_GPUSIM_KERNEL_H_

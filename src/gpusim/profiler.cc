#include "src/gpusim/profiler.h"

#include <algorithm>
#include <cstdio>

namespace gpusim {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kH2D:
      return "h2d_copy";
    case OpKind::kD2H:
      return "d2h_copy";
    case OpKind::kMemset:
      return "memset";
    case OpKind::kKernel:
      return "kernel";
    case OpKind::kHostFunc:
      return "host_func";
  }
  return "unknown";
}

Profiler::Summary Profiler::summary() const {
  std::vector<OpRecord> ops = records();
  Summary s;
  s.op_count = ops.size();
  if (ops.empty()) {
    return s;
  }
  int64_t first = ops[0].start_ns, last = ops[0].end_ns;
  for (const OpRecord& op : ops) {
    first = std::min(first, op.start_ns);
    last = std::max(last, op.end_ns);
    const int64_t dur = op.end_ns - op.start_ns;
    switch (op.kind) {
      case OpKind::kH2D:
        s.h2d_ns += dur;
        s.h2d_bytes += op.bytes;
        break;
      case OpKind::kD2H:
        s.d2h_ns += dur;
        s.d2h_bytes += op.bytes;
        break;
      case OpKind::kKernel:
        s.kernel_ns += dur;
        break;
      default:
        s.other_ns += dur;
        break;
    }
  }
  s.span_ns = last - first;

  // Sweep the interval endpoints to measure how long >= 2 ops overlapped.
  std::vector<std::pair<int64_t, int>> events;
  events.reserve(ops.size() * 2);
  for (const OpRecord& op : ops) {
    events.emplace_back(op.start_ns, +1);
    events.emplace_back(op.end_ns, -1);
  }
  std::sort(events.begin(), events.end());
  int depth = 0;
  int64_t prev = events.empty() ? 0 : events.front().first;
  for (const auto& [t, delta] : events) {
    if (depth >= 2) {
      s.concurrent_ns += t - prev;
    }
    depth += delta;
    prev = t;
  }
  return s;
}

bool Profiler::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "[\n");
  std::vector<OpRecord> ops = records();
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpRecord& op = ops[i];
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"gpusim\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                 "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"bytes\":%llu}}%s\n",
                 op_kind_name(op.kind), op.stream_id, static_cast<double>(op.start_ns) / 1e3,
                 static_cast<double>(op.end_ns - op.start_ns) / 1e3,
                 static_cast<unsigned long long>(op.bytes), i + 1 < ops.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace gpusim

// Simulated GPU device: memory arena with capacity accounting plus a pool of
// "SM workers" that execute kernel thread-blocks. See DESIGN.md §2 for the
// fidelity argument of this substitution for real CUDA hardware.
#ifndef TAGMATCH_GPUSIM_DEVICE_H_
#define TAGMATCH_GPUSIM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/gpusim/cost_model.h"
#include "src/gpusim/profiler.h"
#include "src/inject/fault.h"

namespace tagmatch::obs {
class Counter;
class PipelineObs;
}  // namespace tagmatch::obs

namespace gpusim {

class Device;

// RAII handle to a device memory allocation. Movable, not copyable; frees and
// un-accounts the memory on destruction. The backing store is host memory,
// but all access from host code is expected to go through Stream::memcpy_*
// so the modeled bus costs apply (kernels access it directly, as on real
// hardware).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  ~DeviceBuffer();

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }
  Device* device() const { return device_; }

  template <typename T>
  T* as() const {
    return reinterpret_cast<T*>(data_);
  }

  void reset();

 private:
  friend class Device;
  DeviceBuffer(Device* device, std::byte* data, size_t size)
      : device_(device), data_(data), size_(size) {}

  Device* device_ = nullptr;
  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

struct DeviceConfig {
  std::string name = "SimTITAN-X";
  uint64_t memory_capacity = 12ull << 30;  // 12 GB, as the paper's TITAN X.
  // Number of thread-blocks the device executes concurrently. On this
  // simulator an "SM" is a host worker thread.
  unsigned num_sms = 4;
  // Maximum number of streams that may be created on this device (the paper
  // reports a 10-streams-per-GPU ceiling on its platform).
  unsigned max_streams = 10;
  // Records every stream operation into the device profiler (timeline +
  // overlap statistics; small per-op overhead).
  bool enable_profiling = false;
  CostModel costs;
  // Observability handle (src/obs). When set, every H2D/kernel/D2H stream
  // operation records a stage span + latency histogram entry, and the device
  // counts copied bytes (gpusim.h2d_bytes / gpusim.d2h_bytes). Unlike
  // enable_profiling this is cheap enough to leave on in production — a few
  // atomic adds per op, no timeline retention.
  std::shared_ptr<tagmatch::obs::PipelineObs> metrics;
  // Index of this device in its engine's fleet; identifies it to the fault
  // injector and to per-device health gauges.
  unsigned device_index = 0;
  // When set, alloc and every stream op consult the injector before running
  // (one branch per op when no rule matches). See src/inject/fault.h.
  std::shared_ptr<tagmatch::inject::FaultInjector> injector;
};

class Device {
 public:
  explicit Device(DeviceConfig config);

  // Allocates `bytes` of device memory. Returns an invalid buffer when the
  // device capacity would be exceeded, the device is lost, or the fault
  // injector fires at the alloc site — a failed cudaMalloc is a status, not
  // a crash; callers that cannot proceed without the memory must check
  // valid() and decide (the engine quarantines the device, the baselines
  // treat it as fatal).
  DeviceBuffer alloc(size_t bytes);
  // Same semantics; kept as the explicit "failure is expected here" spelling
  // at call sites that probe capacity.
  DeviceBuffer try_alloc(size_t bytes);

  uint64_t memory_used() const { return memory_used_.load(std::memory_order_relaxed); }
  uint64_t memory_capacity() const { return config_.memory_capacity; }
  const DeviceConfig& config() const { return config_; }
  const CostModel& costs() const { return config_.costs; }

  // Pool of SM workers shared by all kernel launches on this device; streams
  // dispatch their blocks here, so kernels from different streams genuinely
  // compete for the same execution resources (as on real hardware).
  tagmatch::ThreadPool& sm_pool() { return *sm_pool_; }

  // Non-null iff config.enable_profiling.
  Profiler* profiler() { return config_.enable_profiling ? &profiler_ : nullptr; }

  // Non-null iff config.metrics was set; stage spans for stream ops.
  tagmatch::obs::PipelineObs* metrics() const { return config_.metrics.get(); }
  // Byte counters, resolved once at construction; null iff metrics() is.
  tagmatch::obs::Counter* h2d_bytes_counter() const { return h2d_bytes_; }
  tagmatch::obs::Counter* d2h_bytes_counter() const { return d2h_bytes_; }

  unsigned stream_count() const { return live_streams_.load(std::memory_order_relaxed); }
  // Called by Stream's constructor; returns false (leaving the stream
  // inoperable, see Stream::ok()) when max_streams would be exceeded.
  [[nodiscard]] bool try_register_stream();
  void unregister_stream();

  // Whole-device loss: sticky. A lost device fails every subsequent alloc
  // and stream op; it never heals (the engine re-dispatches its work and,
  // if every device is gone, falls back to the CPU matcher).
  bool lost() const { return lost_.load(std::memory_order_acquire); }
  void mark_lost() { lost_.store(true, std::memory_order_release); }

  unsigned index() const { return config_.device_index; }
  tagmatch::inject::FaultInjector* injector() const { return config_.injector.get(); }
  // Total faults observed by this device (injected or device-loss induced).
  uint64_t faults_observed() const { return faults_.load(std::memory_order_relaxed); }
  void count_fault();

 private:
  friend class DeviceBuffer;
  void free(std::byte* data, size_t size);

  DeviceConfig config_;
  std::atomic<uint64_t> memory_used_{0};
  std::atomic<unsigned> live_streams_{0};
  std::atomic<bool> lost_{false};
  std::atomic<uint64_t> faults_{0};
  std::unique_ptr<tagmatch::ThreadPool> sm_pool_;
  Profiler profiler_;
  tagmatch::obs::Counter* h2d_bytes_ = nullptr;
  tagmatch::obs::Counter* d2h_bytes_ = nullptr;
  tagmatch::obs::Counter* faults_injected_ = nullptr;
};

}  // namespace gpusim

#endif  // TAGMATCH_GPUSIM_DEVICE_H_

#include "src/gpusim/kernel.h"

#include <cstring>

#include "src/common/check.h"
#include "src/gpusim/device.h"

namespace gpusim {

namespace {
constexpr size_t kMaxSharedBytes = 48 * 1024;  // CUDA's classic 48 KiB/block limit.
}

void execute_grid(Device* device, const LaunchConfig& config, const Kernel& kernel) {
  // Malformed launch configurations stay fatal: they are programmer errors,
  // not injectable runtime faults (death_test pins this contract).
  TAGMATCH_CHECK(config.block_dim > 0);
  TAGMATCH_CHECK(config.shared_bytes <= kMaxSharedBytes);
  if (config.grid_dim == 0) {
    return;
  }
  if (device->lost()) {
    return;  // A lost device executes nothing; the stream latched the error.
  }
  device->sm_pool().parallel_for(config.grid_dim, [&](size_t block) {
    // Each SM worker gets its own shared-memory arena, zeroed per block as
    // CUDA's dynamic shared memory effectively is for our purposes.
    alignas(64) std::byte shared[kMaxSharedBytes];
    if (config.shared_bytes > 0) {
      std::memset(shared, 0, config.shared_bytes);
    }
    BlockContext ctx(static_cast<uint32_t>(block), config.block_dim, config.grid_dim, shared,
                     config.shared_bytes, device);
    kernel(ctx);
  });
}

void BlockContext::launch_child(uint32_t grid_dim, uint32_t block_dim, size_t shared_bytes,
                                const std::function<void(BlockContext&)>& kernel) const {
  // Child blocks run inline on the calling SM worker: dynamic parallelism on
  // real hardware also executes children on the same device resources; the
  // parent here waits for the child grid, matching a parent-side sync.
  TAGMATCH_CHECK(block_dim > 0);
  TAGMATCH_CHECK(shared_bytes <= kMaxSharedBytes);
  alignas(64) std::byte shared[kMaxSharedBytes];
  for (uint32_t block = 0; block < grid_dim; ++block) {
    if (shared_bytes > 0) {
      std::memset(shared, 0, shared_bytes);
    }
    BlockContext ctx(block, block_dim, grid_dim, shared, shared_bytes, device_);
    kernel(ctx);
  }
}

}  // namespace gpusim

// Cost model for the simulated GPU (see DESIGN.md §2).
//
// The paper's performance story rests on three cost properties of real
// CUDA systems, all of which the simulator reproduces:
//   1. every API call (copy or launch) has a fixed, non-negligible overhead,
//      which is why TagMatch batches queries;
//   2. host<->device copies are bandwidth-limited (PCIe), which is why
//      TagMatch packs its kernel output;
//   3. operations in different streams overlap, while operations within one
//      stream are FIFO — which is what the even/odd double-buffer scheme and
//      the stream pool exploit.
#ifndef TAGMATCH_GPUSIM_COST_MODEL_H_
#define TAGMATCH_GPUSIM_COST_MODEL_H_

#include <chrono>
#include <cstdint>

namespace gpusim {

struct CostModel {
  // Fixed cost charged for every operation enqueued on a stream, modeling
  // driver/API overhead (a few microseconds on real hardware).
  int64_t api_call_overhead_ns = 1500;

  // Extra fixed cost for a kernel launch on top of the API overhead.
  int64_t kernel_launch_overhead_ns = 3000;

  // Modeled PCIe bandwidth in GB/s for each direction. The simulator performs
  // a real memcpy and then, if the copy finished faster than the modeled
  // bus would allow, spins out the remainder.
  double h2d_gbps = 12.0;
  double d2h_gbps = 12.0;

  // Disables all artificial delays (unit tests use this).
  bool enforce = true;

  int64_t copy_ns(uint64_t bytes, bool h2d) const {
    double gbps = h2d ? h2d_gbps : d2h_gbps;
    return static_cast<int64_t>(static_cast<double>(bytes) / gbps);  // bytes/GBps == ns
  }
};

// Busy-waits until `deadline_ns` nanoseconds after `start`. The simulator
// spins rather than sleeps because OS sleep granularity (tens of
// microseconds) would distort the modeled microsecond-scale costs.
void spin_until(std::chrono::steady_clock::time_point start, int64_t deadline_ns);

}  // namespace gpusim

#endif  // TAGMATCH_GPUSIM_COST_MODEL_H_

#include "src/gpusim/stream.h"

#include <atomic>
#include <chrono>
#include <cstring>

#include "src/common/check.h"

namespace gpusim {

namespace {

uint32_t next_stream_id() {
  static std::atomic<uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Stream::Stream(Device* device) : device_(device), id_(next_stream_id()) {
  TAGMATCH_CHECK(device != nullptr);
  device_->register_stream();
  executor_ = std::thread([this] { run(); });
}

Stream::~Stream() {
  synchronize();
  ops_.close();
  executor_.join();
  device_->unregister_stream();
}

void Stream::run() {
  while (auto op = ops_.pop()) {
    (*op)();
  }
}

void Stream::enqueue(std::function<void()> op) { ops_.push(std::move(op)); }

void Stream::enqueue_profiled(OpKind kind, uint64_t bytes, std::function<void()> op) {
  Profiler* profiler = device_->profiler();
  if (profiler == nullptr) {
    enqueue(std::move(op));
    return;
  }
  enqueue([this, kind, bytes, profiler, op = std::move(op)] {
    OpRecord record;
    record.stream_id = id_;
    record.kind = kind;
    record.bytes = bytes;
    record.start_ns = mono_ns();
    op();
    record.end_ns = mono_ns();
    profiler->record(record);
  });
}

void Stream::memcpy_h2d(void* dst_device, const void* src_host, size_t bytes) {
  enqueue_profiled(OpKind::kH2D, bytes, [this, dst_device, src_host, bytes] {
    const auto start = std::chrono::steady_clock::now();
    std::memcpy(dst_device, src_host, bytes);
    const CostModel& costs = device_->costs();
    if (costs.enforce) {
      spin_until(start, costs.api_call_overhead_ns + costs.copy_ns(bytes, /*h2d=*/true));
    }
  });
}

void Stream::memcpy_d2h(void* dst_host, const void* src_device, size_t bytes) {
  enqueue_profiled(OpKind::kD2H, bytes, [this, dst_host, src_device, bytes] {
    const auto start = std::chrono::steady_clock::now();
    std::memcpy(dst_host, src_device, bytes);
    const CostModel& costs = device_->costs();
    if (costs.enforce) {
      spin_until(start, costs.api_call_overhead_ns + costs.copy_ns(bytes, /*h2d=*/false));
    }
  });
}

void Stream::memset_d(void* dst_device, int value, size_t bytes) {
  enqueue_profiled(OpKind::kMemset, bytes, [this, dst_device, value, bytes] {
    const auto start = std::chrono::steady_clock::now();
    std::memset(dst_device, value, bytes);
    const CostModel& costs = device_->costs();
    if (costs.enforce) {
      spin_until(start, costs.api_call_overhead_ns);
    }
  });
}

void Stream::launch(const LaunchConfig& config, Kernel kernel) {
  enqueue_profiled(OpKind::kKernel, 0, [this, config, kernel = std::move(kernel)] {
    const auto start = std::chrono::steady_clock::now();
    const CostModel& costs = device_->costs();
    if (costs.enforce) {
      spin_until(start, costs.api_call_overhead_ns + costs.kernel_launch_overhead_ns);
    }
    execute_grid(device_, config, kernel);
  });
}

void Stream::callback(std::function<void()> fn) {
  enqueue_profiled(OpKind::kHostFunc, 0, std::move(fn));
}

void Stream::record(const std::shared_ptr<Event>& event) {
  enqueue([event] { event->signal(); });
}

void Stream::wait_event(const std::shared_ptr<Event>& event) {
  enqueue([event] { event->wait(); });
}

void Stream::synchronize() {
  std::promise<void> done;
  enqueue([&done] { done.set_value(); });
  done.get_future().wait();
}

}  // namespace gpusim

#include "src/gpusim/stream.h"

#include <atomic>
#include <chrono>
#include <cstring>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace gpusim {

namespace {

uint32_t next_stream_id() {
  static std::atomic<uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* op_error_name(OpError error) {
  switch (error) {
    case OpError::kNone:
      return "none";
    case OpError::kCopyFailed:
      return "copy_failed";
    case OpError::kLaunchFailed:
      return "launch_failed";
    case OpError::kDeviceLost:
      return "device_lost";
  }
  return "?";
}

Stream::Stream(Device* device) : device_(device), id_(next_stream_id()) {
  TAGMATCH_CHECK(device != nullptr);
  ok_ = device_->try_register_stream();
  if (ok_) {
    executor_ = std::thread([this] { run(); });
  }
}

Stream::~Stream() {
  if (!ok_) {
    return;
  }
  synchronize();
  ops_.close();
  executor_.join();
  device_->unregister_stream();
}

void Stream::run() {
  while (auto op = ops_.pop()) {
    (*op)();
  }
}

void Stream::enqueue(std::function<void()> op) {
  if (!ok_) {
    return;  // No executor; dropping is the only safe behavior.
  }
  ops_.push(std::move(op));
}

void Stream::latch_error(OpError error) {
  OpError expected = OpError::kNone;
  if (!error_.compare_exchange_strong(expected, error, std::memory_order_acq_rel)) {
    // First error wins, except device loss which supersedes anything.
    if (error == OpError::kDeviceLost && expected != OpError::kDeviceLost) {
      error_.store(error, std::memory_order_release);
    }
  }
}

bool Stream::poisoned_or_lost() {
  if (error_.load(std::memory_order_acquire) != OpError::kNone) {
    return true;
  }
  if (device_->lost()) {
    latch_error(OpError::kDeviceLost);
    return true;
  }
  return false;
}

void Stream::note_fault(const tagmatch::obs::TraceContext& ctx) {
  device_->count_fault();
  if (auto* metrics = device_->metrics()) {
    const int64_t now = mono_ns();
    metrics->record_stage(tagmatch::obs::Stage::kFault, id_, now, now, ctx);
  }
}

bool Stream::fault_gate(tagmatch::inject::FaultSite site, OpError on_fail,
                        const tagmatch::obs::TraceContext& ctx) {
  if (poisoned_or_lost()) {
    return true;
  }
  auto* inj = device_->injector();
  if (inj == nullptr) {
    return false;
  }
  const auto decision = inj->check(site, device_->index());
  switch (decision.action) {
    case tagmatch::inject::FaultAction::kNone:
      return false;
    case tagmatch::inject::FaultAction::kStall:
      note_fault(ctx);
      spin_until(std::chrono::steady_clock::now(), decision.stall_ns);
      return false;  // A stall delays the op but it still succeeds.
    case tagmatch::inject::FaultAction::kFail:
      note_fault(ctx);
      latch_error(on_fail);
      return true;
    case tagmatch::inject::FaultAction::kDeviceLoss:
      note_fault(ctx);
      device_->mark_lost();
      latch_error(OpError::kDeviceLost);
      return true;
  }
  return false;
}

namespace {

// Stage mapping for the observability layer: only the three op kinds that
// are pipeline stages of the paper's Fig. 3 get a span; memsets and host
// callbacks are protocol bookkeeping and stay profiler-only.
bool stage_for(OpKind kind, tagmatch::obs::Stage* stage) {
  switch (kind) {
    case OpKind::kH2D:
      *stage = tagmatch::obs::Stage::kH2D;
      return true;
    case OpKind::kD2H:
      *stage = tagmatch::obs::Stage::kD2H;
      return true;
    case OpKind::kKernel:
      *stage = tagmatch::obs::Stage::kKernel;
      return true;
    default:
      return false;
  }
}

}  // namespace

void Stream::enqueue_profiled(OpKind kind, uint64_t bytes, std::function<void()> op,
                              const tagmatch::obs::TraceContext& ctx) {
  Profiler* profiler = device_->profiler();
  tagmatch::obs::PipelineObs* metrics = device_->metrics();
  if (profiler == nullptr && metrics == nullptr) {
    enqueue(std::move(op));
    return;
  }
  enqueue([this, kind, bytes, profiler, metrics, ctx, op = std::move(op)] {
    const int64_t start_ns = mono_ns();
    op();
    const int64_t end_ns = mono_ns();
    if (profiler != nullptr) {
      OpRecord record;
      record.stream_id = id_;
      record.kind = kind;
      record.bytes = bytes;
      record.start_ns = start_ns;
      record.end_ns = end_ns;
      profiler->record(record);
    }
    if (metrics != nullptr) {
      tagmatch::obs::Stage stage;
      if (stage_for(kind, &stage)) {
        metrics->record_stage(stage, id_, start_ns, end_ns, ctx);
      }
      if (kind == OpKind::kH2D) {
        device_->h2d_bytes_counter()->add(bytes);
      } else if (kind == OpKind::kD2H) {
        device_->d2h_bytes_counter()->add(bytes);
      }
    }
  });
}

void Stream::memcpy_h2d(void* dst_device, const void* src_host, size_t bytes,
                        const tagmatch::obs::TraceContext& ctx) {
  enqueue_profiled(
      OpKind::kH2D, bytes,
      [this, dst_device, src_host, bytes, ctx] {
        if (fault_gate(tagmatch::inject::FaultSite::kH2D, OpError::kCopyFailed, ctx)) {
          return;
        }
        const auto start = std::chrono::steady_clock::now();
        std::memcpy(dst_device, src_host, bytes);
        const CostModel& costs = device_->costs();
        if (costs.enforce) {
          spin_until(start, costs.api_call_overhead_ns + costs.copy_ns(bytes, /*h2d=*/true));
        }
      },
      ctx);
}

void Stream::memcpy_d2h(void* dst_host, const void* src_device, size_t bytes,
                        const tagmatch::obs::TraceContext& ctx) {
  enqueue_profiled(
      OpKind::kD2H, bytes,
      [this, dst_host, src_device, bytes, ctx] {
        if (fault_gate(tagmatch::inject::FaultSite::kD2H, OpError::kCopyFailed, ctx)) {
          return;
        }
        const auto start = std::chrono::steady_clock::now();
        std::memcpy(dst_host, src_device, bytes);
        const CostModel& costs = device_->costs();
        if (costs.enforce) {
          spin_until(start, costs.api_call_overhead_ns + costs.copy_ns(bytes, /*h2d=*/false));
        }
      },
      ctx);
}

void Stream::memset_d(void* dst_device, int value, size_t bytes) {
  enqueue_profiled(OpKind::kMemset, bytes, [this, dst_device, value, bytes] {
    // Memsets are protocol bookkeeping, not a counted fault site, but they
    // must still respect a poisoned cycle or a lost device.
    if (poisoned_or_lost()) {
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    std::memset(dst_device, value, bytes);
    const CostModel& costs = device_->costs();
    if (costs.enforce) {
      spin_until(start, costs.api_call_overhead_ns);
    }
  });
}

void Stream::launch(const LaunchConfig& config, Kernel kernel,
                    const tagmatch::obs::TraceContext& ctx) {
  enqueue_profiled(
      OpKind::kKernel, 0,
      [this, config, kernel = std::move(kernel), ctx] {
        if (fault_gate(tagmatch::inject::FaultSite::kKernel, OpError::kLaunchFailed, ctx)) {
          return;
        }
        const auto start = std::chrono::steady_clock::now();
        const CostModel& costs = device_->costs();
        if (costs.enforce) {
          spin_until(start, costs.api_call_overhead_ns + costs.kernel_launch_overhead_ns);
        }
        execute_grid(device_, config, kernel);
      },
      ctx);
}

void Stream::callback(std::function<void()> fn) {
  enqueue_profiled(OpKind::kHostFunc, 0, std::move(fn));
}

void Stream::record(const std::shared_ptr<Event>& event) {
  if (!ok_) {
    event->signal();  // Keep waiters from hanging on a dead stream.
    return;
  }
  enqueue([event] { event->signal(); });
}

void Stream::wait_event(const std::shared_ptr<Event>& event) {
  enqueue([event] { event->wait(); });
}

void Stream::synchronize() {
  if (!ok_) {
    return;
  }
  std::promise<void> done;
  enqueue([&done] { done.set_value(); });
  done.get_future().wait();
}

}  // namespace gpusim

// CUDA-style stream: a FIFO queue of device operations with its own executor.
// Operations within one stream run strictly in order; operations in different
// streams overlap (kernels additionally compete for the device's SM pool).
// This is the concurrency model §3.3.2 of the paper builds its workflow
// optimizations on.
#ifndef TAGMATCH_GPUSIM_STREAM_H_
#define TAGMATCH_GPUSIM_STREAM_H_

#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "src/common/mpmc_queue.h"
#include "src/gpusim/device.h"
#include "src/gpusim/kernel.h"
#include "src/obs/trace.h"

namespace gpusim {

// One-shot completion marker, equivalent to a cudaEvent recorded on a stream.
class Event {
 public:
  Event() : future_(promise_.get_future().share()) {}

  void wait() const { future_.wait(); }
  bool ready() const {
    return future_.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }

 private:
  friend class Stream;
  void signal() { promise_.set_value(); }

  std::promise<void> promise_;
  std::shared_future<void> future_;
};

class Stream {
 public:
  explicit Stream(Device* device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Device* device() const { return device_; }

  // Asynchronous host-to-device copy (cudaMemcpyAsync H2D). The source host
  // buffer must stay valid until the operation completes, as with pinned
  // memory in CUDA. The optional trace context is captured at enqueue time;
  // the op's stage span records under it when it completes (an invalid
  // context records an anonymous span, as before).
  void memcpy_h2d(void* dst_device, const void* src_host, size_t bytes,
                  const tagmatch::obs::TraceContext& ctx = {});

  // Asynchronous device-to-host copy (cudaMemcpyAsync D2H).
  void memcpy_d2h(void* dst_host, const void* src_device, size_t bytes,
                  const tagmatch::obs::TraceContext& ctx = {});

  // Asynchronous device memset (cudaMemsetAsync).
  void memset_d(void* dst_device, int value, size_t bytes);

  // Asynchronous kernel launch.
  void launch(const LaunchConfig& config, Kernel kernel,
              const tagmatch::obs::TraceContext& ctx = {});

  // Host callback executed in stream order (cudaLaunchHostFunc). Runs on the
  // stream's executor thread; keep it short or hand off to another thread.
  void callback(std::function<void()> fn);

  // Records an event that fires when all previously enqueued work completes.
  void record(const std::shared_ptr<Event>& event);

  // Makes all subsequently enqueued work on THIS stream wait until `event`
  // (recorded on another stream) has fired — cudaStreamWaitEvent.
  void wait_event(const std::shared_ptr<Event>& event);

  // Blocks until every operation enqueued so far has completed.
  void synchronize();

  // Process-unique id, used by the device profiler's timeline.
  uint32_t id() const { return id_; }

 private:
  void run();
  void enqueue(std::function<void()> op);
  // Enqueues `op` and, if the device profiler is enabled, records its
  // execution interval under `kind`/`bytes`; stage-mapped kinds also record
  // an obs span, under `ctx` when it is valid.
  void enqueue_profiled(OpKind kind, uint64_t bytes, std::function<void()> op,
                        const tagmatch::obs::TraceContext& ctx = {});

  Device* device_;
  uint32_t id_;
  tagmatch::MpmcQueue<std::function<void()>> ops_;
  std::thread executor_;
};

}  // namespace gpusim

#endif  // TAGMATCH_GPUSIM_STREAM_H_

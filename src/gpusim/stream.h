// CUDA-style stream: a FIFO queue of device operations with its own executor.
// Operations within one stream run strictly in order; operations in different
// streams overlap (kernels additionally compete for the device's SM pool).
// This is the concurrency model §3.3.2 of the paper builds its workflow
// optimizations on.
#ifndef TAGMATCH_GPUSIM_STREAM_H_
#define TAGMATCH_GPUSIM_STREAM_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "src/common/mpmc_queue.h"
#include "src/gpusim/device.h"
#include "src/gpusim/kernel.h"
#include "src/obs/trace.h"

namespace gpusim {

// Status of the operations executed on a stream since the last take_error().
// Errors latch (first one wins, kDeviceLost overrides) and poison the rest of
// the in-flight cycle: once latched, subsequent data ops on the stream no-op
// until the error is consumed, so a failed H2D never feeds a kernel garbage.
// Host callbacks, events, and synchronize are exempt — completion plumbing
// must still run so the layer above can observe the failure and react.
enum class OpError : uint8_t {
  kNone = 0,
  kCopyFailed,    // Injected/transient H2D or D2H failure.
  kLaunchFailed,  // Injected kernel-launch failure.
  kDeviceLost,    // The whole device is gone (sticky at the Device level).
};

const char* op_error_name(OpError error);

// One-shot completion marker, equivalent to a cudaEvent recorded on a stream.
class Event {
 public:
  Event() : future_(promise_.get_future().share()) {}

  void wait() const { future_.wait(); }
  bool ready() const {
    return future_.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }

 private:
  friend class Stream;
  void signal() { promise_.set_value(); }

  std::promise<void> promise_;
  std::shared_future<void> future_;
};

class Stream {
 public:
  explicit Stream(Device* device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Device* device() const { return device_; }

  // False when the device's stream limit was hit at construction: the stream
  // has no executor and every operation on it is a no-op (synchronize returns
  // immediately, record() signals its event so waiters never hang). Callers
  // that need the stream must check this — the limit is no longer fatal.
  bool ok() const { return ok_; }

  // Consumes the latched error for the current completion cycle (exchange
  // with kNone). The engine calls this from the per-cycle host callback: ops
  // enqueued after the callback belong to the next cycle and latch afresh.
  OpError take_error() { return error_.exchange(OpError::kNone, std::memory_order_acq_rel); }
  OpError peek_error() const { return error_.load(std::memory_order_acquire); }

  // Asynchronous host-to-device copy (cudaMemcpyAsync H2D). The source host
  // buffer must stay valid until the operation completes, as with pinned
  // memory in CUDA. The optional trace context is captured at enqueue time;
  // the op's stage span records under it when it completes (an invalid
  // context records an anonymous span, as before).
  void memcpy_h2d(void* dst_device, const void* src_host, size_t bytes,
                  const tagmatch::obs::TraceContext& ctx = {});

  // Asynchronous device-to-host copy (cudaMemcpyAsync D2H).
  void memcpy_d2h(void* dst_host, const void* src_device, size_t bytes,
                  const tagmatch::obs::TraceContext& ctx = {});

  // Asynchronous device memset (cudaMemsetAsync).
  void memset_d(void* dst_device, int value, size_t bytes);

  // Asynchronous kernel launch.
  void launch(const LaunchConfig& config, Kernel kernel,
              const tagmatch::obs::TraceContext& ctx = {});

  // Host callback executed in stream order (cudaLaunchHostFunc). Runs on the
  // stream's executor thread; keep it short or hand off to another thread.
  void callback(std::function<void()> fn);

  // Records an event that fires when all previously enqueued work completes.
  void record(const std::shared_ptr<Event>& event);

  // Makes all subsequently enqueued work on THIS stream wait until `event`
  // (recorded on another stream) has fired — cudaStreamWaitEvent.
  void wait_event(const std::shared_ptr<Event>& event);

  // Blocks until every operation enqueued so far has completed.
  void synchronize();

  // Process-unique id, used by the device profiler's timeline.
  uint32_t id() const { return id_; }

 private:
  void run();
  void enqueue(std::function<void()> op);
  // Enqueues `op` and, if the device profiler is enabled, records its
  // execution interval under `kind`/`bytes`; stage-mapped kinds also record
  // an obs span, under `ctx` when it is valid.
  void enqueue_profiled(OpKind kind, uint64_t bytes, std::function<void()> op,
                        const tagmatch::obs::TraceContext& ctx = {});

  // Executor-thread-only helpers for the status-returning op contract.
  void latch_error(OpError error);
  // True when the current cycle is already poisoned or the device is lost;
  // latches kDeviceLost in the second case. Data ops call this first.
  bool poisoned_or_lost();
  // Full per-op gate: poison/lost check, then the fault injector. Returns
  // true when the op body must be skipped (error latched); a kStall decision
  // spins for the injected latency and lets the op proceed.
  bool fault_gate(tagmatch::inject::FaultSite site, OpError on_fail,
                  const tagmatch::obs::TraceContext& ctx);
  // Stamp a fault on the trace (zero-length kFault span) and device counter.
  void note_fault(const tagmatch::obs::TraceContext& ctx);

  Device* device_;
  uint32_t id_;
  bool ok_ = true;
  std::atomic<OpError> error_{OpError::kNone};
  tagmatch::MpmcQueue<std::function<void()>> ops_;
  std::thread executor_;
};

}  // namespace gpusim

#endif  // TAGMATCH_GPUSIM_STREAM_H_

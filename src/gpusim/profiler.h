// Execution profiler for the simulated device: records one interval per
// stream operation (copies, memsets, kernels) so tests and benches can
// quantify the stream-level overlap that §3.3.2 of the paper builds on, and
// optionally dump a chrome://tracing-compatible JSON timeline.
#ifndef TAGMATCH_GPUSIM_PROFILER_H_
#define TAGMATCH_GPUSIM_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpusim {

enum class OpKind : uint8_t { kH2D, kD2H, kMemset, kKernel, kHostFunc };

const char* op_kind_name(OpKind kind);

struct OpRecord {
  uint32_t stream_id;
  OpKind kind;
  int64_t start_ns;  // Monotonic clock.
  int64_t end_ns;
  uint64_t bytes;  // Copies/memsets; 0 for kernels and host functions.
};

class Profiler {
 public:
  void record(const OpRecord& op) {
    std::lock_guard lock(mu_);
    ops_.push_back(op);
  }

  std::vector<OpRecord> records() const {
    std::lock_guard lock(mu_);
    return ops_;
  }

  void clear() {
    std::lock_guard lock(mu_);
    ops_.clear();
  }

  struct Summary {
    int64_t span_ns = 0;        // First start to last end.
    int64_t h2d_ns = 0;         // Summed per-op durations by kind.
    int64_t d2h_ns = 0;
    int64_t kernel_ns = 0;
    int64_t other_ns = 0;
    int64_t concurrent_ns = 0;  // Wall time during which >= 2 ops ran at once.
    uint64_t h2d_bytes = 0;
    uint64_t d2h_bytes = 0;
    size_t op_count = 0;
  };
  Summary summary() const;

  // Writes the timeline in the Chrome trace-event JSON format (load via
  // chrome://tracing or Perfetto). Returns false on I/O error.
  bool write_chrome_trace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<OpRecord> ops_;
};

}  // namespace gpusim

#endif  // TAGMATCH_GPUSIM_PROFILER_H_

#include "src/gpusim/device.h"

#include <chrono>
#include <cstdlib>
#include <new>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace gpusim {

void spin_until(std::chrono::steady_clock::time_point start, int64_t deadline_ns) {
  const auto deadline = start + std::chrono::nanoseconds(deadline_ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy wait; modeled costs are microsecond scale.
  }
}

Device::Device(DeviceConfig config) : config_(std::move(config)) {
  TAGMATCH_CHECK(config_.num_sms > 0);
  sm_pool_ = std::make_unique<tagmatch::ThreadPool>(config_.num_sms);
  if (config_.metrics) {
    auto& registry = config_.metrics->registry();
    h2d_bytes_ = registry.counter("gpusim.h2d_bytes");
    d2h_bytes_ = registry.counter("gpusim.d2h_bytes");
    faults_injected_ = registry.counter("gpusim.faults_injected");
  }
}

void Device::count_fault() {
  faults_.fetch_add(1, std::memory_order_relaxed);
  if (faults_injected_ != nullptr) {
    faults_injected_->add(1);
  }
}

DeviceBuffer Device::alloc(size_t bytes) { return try_alloc(bytes); }

DeviceBuffer Device::try_alloc(size_t bytes) {
  if (lost()) {
    count_fault();
    return DeviceBuffer();
  }
  if (auto* inj = injector()) {
    auto decision = inj->check(tagmatch::inject::FaultSite::kAlloc, index());
    if (decision.action == tagmatch::inject::FaultAction::kDeviceLoss) {
      mark_lost();
      count_fault();
      return DeviceBuffer();
    }
    if (decision.action == tagmatch::inject::FaultAction::kFail) {
      count_fault();
      return DeviceBuffer();
    }
    if (decision.action == tagmatch::inject::FaultAction::kStall) {
      count_fault();
      spin_until(std::chrono::steady_clock::now(), decision.stall_ns);
    }
  }
  if (bytes == 0) {
    bytes = 1;  // Keep a distinct address per allocation, as cudaMalloc does.
  }
  uint64_t used = memory_used_.load(std::memory_order_relaxed);
  do {
    if (used + bytes > config_.memory_capacity) {
      return DeviceBuffer();
    }
  } while (!memory_used_.compare_exchange_weak(used, used + bytes, std::memory_order_relaxed));
  auto* data = static_cast<std::byte*>(::operator new(bytes, std::align_val_t{64}));
  return DeviceBuffer(this, data, bytes);
}

void Device::free(std::byte* data, size_t size) {
  ::operator delete(data, std::align_val_t{64});
  memory_used_.fetch_sub(size, std::memory_order_relaxed);
}

bool Device::try_register_stream() {
  unsigned n = live_streams_.load(std::memory_order_relaxed);
  do {
    if (n >= config_.max_streams) {
      return false;
    }
  } while (!live_streams_.compare_exchange_weak(n, n + 1, std::memory_order_relaxed));
  return true;
}

void Device::unregister_stream() { live_streams_.fetch_sub(1, std::memory_order_relaxed); }

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    device_ = other.device_;
    data_ = other.data_;
    size_ = other.size_;
    other.device_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() { reset(); }

void DeviceBuffer::reset() {
  if (data_ != nullptr) {
    device_->free(data_, size_);
    device_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace gpusim

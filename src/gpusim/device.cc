#include "src/gpusim/device.h"

#include <chrono>
#include <cstdlib>
#include <new>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace gpusim {

void spin_until(std::chrono::steady_clock::time_point start, int64_t deadline_ns) {
  const auto deadline = start + std::chrono::nanoseconds(deadline_ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy wait; modeled costs are microsecond scale.
  }
}

Device::Device(DeviceConfig config) : config_(std::move(config)) {
  TAGMATCH_CHECK(config_.num_sms > 0);
  sm_pool_ = std::make_unique<tagmatch::ThreadPool>(config_.num_sms);
  if (config_.metrics) {
    auto& registry = config_.metrics->registry();
    h2d_bytes_ = registry.counter("gpusim.h2d_bytes");
    d2h_bytes_ = registry.counter("gpusim.d2h_bytes");
  }
}

DeviceBuffer Device::alloc(size_t bytes) {
  DeviceBuffer buf = try_alloc(bytes);
  TAGMATCH_CHECK(buf.valid());
  return buf;
}

DeviceBuffer Device::try_alloc(size_t bytes) {
  if (bytes == 0) {
    bytes = 1;  // Keep a distinct address per allocation, as cudaMalloc does.
  }
  uint64_t used = memory_used_.load(std::memory_order_relaxed);
  do {
    if (used + bytes > config_.memory_capacity) {
      return DeviceBuffer();
    }
  } while (!memory_used_.compare_exchange_weak(used, used + bytes, std::memory_order_relaxed));
  auto* data = static_cast<std::byte*>(::operator new(bytes, std::align_val_t{64}));
  return DeviceBuffer(this, data, bytes);
}

void Device::free(std::byte* data, size_t size) {
  ::operator delete(data, std::align_val_t{64});
  memory_used_.fetch_sub(size, std::memory_order_relaxed);
}

void Device::register_stream() {
  unsigned n = live_streams_.fetch_add(1, std::memory_order_relaxed) + 1;
  TAGMATCH_CHECK(n <= config_.max_streams);
}

void Device::unregister_stream() { live_streams_.fetch_sub(1, std::memory_order_relaxed); }

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    device_ = other.device_;
    data_ = other.data_;
    size_ = other.size_;
    other.device_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() { reset(); }

void DeviceBuffer::reset() {
  if (data_ != nullptr) {
    device_->free(data_, size_);
    device_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace gpusim

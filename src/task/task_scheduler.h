// Task-based execution core: per-worker MPSC queues, FIFO work stealing,
// optional core pinning, and task-local context (trace + worker identity)
// propagated across every task boundary.
//
// This is the unified substrate the pipeline's host-side stages run on
// (pre-process, reduce/merge, the sharded gather merge, parallel rebuilds,
// and the CPU brute-force fallback fan-out), replacing the previous
// per-stage thread/callback structure. docs/CONCURRENCY.md is the written
// contract for everything in this header — worker lifecycle, queue and
// stealing discipline, the blocking rules that keep the pool deadlock-free,
// and how TraceContext flows through submit()/parallel_for().
//
// Queue discipline. Every worker owns one mutex-guarded deque. Producers
// (any thread) push to the back of a fixed target queue — an on-pool
// producer targets its own queue (locality), an off-pool producer a queue
// chosen by a stable hash of its thread id — so the queue is MPSC in steady
// state. The owner pops from the front; an idle worker steals from the
// front of a victim's queue. Because *both* ends of consumption take the
// oldest task, execution *start* order is FIFO per queue (hence FIFO per
// producer) even under stealing; completion order is unconstrained.
//
// Blocking rules (the invariants the TSan job stresses):
//  * A task must never block on another task of the same scheduler. The
//    one sanctioned join point is parallel_for(), whose caller claims and
//    executes chunks itself, so it completes even if no worker ever helps.
//  * Engines therefore own private schedulers; the shard router's pool is
//    distinct from its shards' pools (a shared pool livelocks when rebuild
//    tasks block in a shard's flush()).
#ifndef TAGMATCH_TASK_TASK_SCHEDULER_H_
#define TAGMATCH_TASK_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/trace.h"

namespace tagmatch::task {

// Move-only type-erased void() callable: tasks routinely own unique_ptrs
// (batches in flight), which std::function cannot hold.
class TaskFn {
 public:
  TaskFn() = default;
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, TaskFn>>>
  TaskFn(F&& fn)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}
  TaskFn(TaskFn&&) = default;
  TaskFn& operator=(TaskFn&&) = default;

  void operator()() { impl_->call(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F fn) : fn(std::move(fn)) {}
    void call() override { fn(); }
    F fn;
  };
  std::unique_ptr<Concept> impl_;
};

// Resolves the effective worker count: an explicit configured value wins;
// otherwise the TAGMATCH_WORKERS environment variable; otherwise `fallback`
// (the legacy num_threads knob). Never returns 0.
unsigned resolve_workers(unsigned configured, unsigned fallback);

struct SchedulerConfig {
  unsigned num_workers = 4;
  // Pin worker i to hardware thread i mod hardware_concurrency(). Helps
  // steady-state throughput on dedicated cores; hurts on shared hosts (see
  // README "Tuning").
  bool pin_workers = false;
  // Observability handle. When set, the scheduler registers task.queued /
  // task.stolen / task.executed counters and one task.run_ns.w<i> histogram
  // per worker in its registry (docs/OBSERVABILITY.md). The scheduler holds
  // the shared_ptr, so the registry outlives every recorded task.
  std::shared_ptr<obs::PipelineObs> metrics;
};

class TaskScheduler {
 public:
  explicit TaskScheduler(SchedulerConfig config);
  ~TaskScheduler();  // Implies shutdown().

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  // Enqueues `fn` with its trace context. On-pool callers target their own
  // queue; off-pool callers a queue hashed from their thread id. A submit
  // racing shutdown() executes inline on the caller — tasks are never
  // dropped.
  void submit(TaskFn fn, const obs::TraceContext& ctx = {});
  // Targets an explicit worker queue (locality / test control).
  void submit_to(unsigned worker, TaskFn fn, const obs::TraceContext& ctx = {});

  // Runs fn(0..n-1) across the pool and blocks until all complete. The
  // caller claims and executes chunks itself (helpers joining only when
  // idle workers exist), so this is safe to call from inside a task — it
  // cannot deadlock on a saturated pool. The current trace context
  // propagates to every chunk.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  // Graceful: stops intake, runs every queued task to completion, joins the
  // workers. Idempotent.
  void shutdown();

  unsigned num_workers() const { return static_cast<unsigned>(queues_.size()); }
  // Per-worker pinning outcome: true iff pin_workers was set and the
  // affinity syscall succeeded for that worker.
  std::vector<bool> pinned() const;

  // Lifetime totals (mirrored into the task.* counters when metrics is set).
  uint64_t queued_total() const { return queued_n_.load(std::memory_order_relaxed); }
  uint64_t stolen_total() const { return stolen_n_.load(std::memory_order_relaxed); }
  uint64_t executed_total() const { return executed_n_.load(std::memory_order_relaxed); }

  // Worker index of the calling thread, -1 off-pool. Identity is per
  // scheduler: a worker of pool A is off-pool with respect to pool B.
  int current_worker() const;
  // Trace context of the task the calling thread is executing (invalid when
  // called off-task). This is how causal traces survive the hop from the
  // submitting stage to the executing worker.
  static const obs::TraceContext& current_context();

 private:
  struct Item {
    TaskFn fn;
    obs::TraceContext ctx;
  };
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Item> items;
  };

  void worker_main(unsigned id);
  bool pop_from(unsigned queue, Item& out);
  bool steal_into(unsigned thief, Item& out);
  void run_item(unsigned worker, Item& item);
  void enqueue(unsigned worker, Item item);
  unsigned home_queue() const;

  SchedulerConfig config_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::unique_ptr<std::atomic<int>[]> pinned_;  // -1 unknown, 0 failed, 1 pinned.

  // Idle workers park here; submit() fences through idle_mu_ before
  // notifying so a worker between predicate check and wait cannot miss a
  // wakeup (see docs/CONCURRENCY.md).
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<uint64_t> pending_{0};  // Queued, not yet popped.
  std::atomic<bool> stopping_{false};

  std::mutex lifecycle_mu_;  // Serializes shutdown() calls.
  bool joined_ = false;

  std::atomic<uint64_t> queued_n_{0};
  std::atomic<uint64_t> stolen_n_{0};
  std::atomic<uint64_t> executed_n_{0};

  obs::Counter* queued_counter_ = nullptr;
  obs::Counter* stolen_counter_ = nullptr;
  obs::Counter* executed_counter_ = nullptr;
  std::vector<obs::Histogram*> run_ns_;  // Per worker; empty without metrics.
};

}  // namespace tagmatch::task

#endif  // TAGMATCH_TASK_TASK_SCHEDULER_H_

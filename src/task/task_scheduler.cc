#include "src/task/task_scheduler.h"

#include <cstdlib>
#include <functional>

#include "src/common/check.h"
#include "src/common/stats.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tagmatch::task {

namespace {

// Worker identity of the calling thread: which scheduler it belongs to (so
// current_worker() is per pool, not global) and its index there.
thread_local const TaskScheduler* t_scheduler = nullptr;
thread_local int t_worker = -1;
thread_local const obs::TraceContext* t_ctx = nullptr;

bool pin_to_hardware_thread(std::thread& t, unsigned index) {
#if defined(__linux__)
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % hw, &set);
  return pthread_setaffinity_np(t.native_handle(), sizeof(set), &set) == 0;
#else
  (void)t;
  (void)index;
  return false;
#endif
}

}  // namespace

unsigned resolve_workers(unsigned configured, unsigned fallback) {
  if (configured > 0) {
    return configured;
  }
  if (const char* env = std::getenv("TAGMATCH_WORKERS")) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  return fallback > 0 ? fallback : 1;
}

TaskScheduler::TaskScheduler(SchedulerConfig config) : config_(std::move(config)) {
  TAGMATCH_CHECK(config_.num_workers >= 1);
  if (config_.metrics) {
    obs::Registry& registry = config_.metrics->registry();
    queued_counter_ = registry.counter("task.queued");
    stolen_counter_ = registry.counter("task.stolen");
    executed_counter_ = registry.counter("task.executed");
    run_ns_.reserve(config_.num_workers);
    for (unsigned i = 0; i < config_.num_workers; ++i) {
      run_ns_.push_back(registry.histogram("task.run_ns.w" + std::to_string(i)));
    }
  }
  queues_.reserve(config_.num_workers);
  for (unsigned i = 0; i < config_.num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  pinned_ = std::make_unique<std::atomic<int>[]>(config_.num_workers);
  for (unsigned i = 0; i < config_.num_workers; ++i) {
    pinned_[i].store(-1, std::memory_order_relaxed);
  }
  threads_.reserve(config_.num_workers);
  for (unsigned i = 0; i < config_.num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
    // Pin via the handle so pinned() is deterministic once construction
    // returns (affinity applies to a running thread at the next schedule).
    const bool ok = config_.pin_workers && pin_to_hardware_thread(threads_.back(), i);
    pinned_[i].store(ok ? 1 : 0, std::memory_order_release);
  }
}

TaskScheduler::~TaskScheduler() { shutdown(); }

void TaskScheduler::shutdown() {
  {
    std::lock_guard lock(lifecycle_mu_);
    if (joined_) {
      return;
    }
    joined_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(idle_mu_);  // Fence against waiters mid-predicate.
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
  // A submit that raced the workers' exit may have left items behind; run
  // them here so no accepted task is ever dropped.
  for (unsigned q = 0; q < queues_.size(); ++q) {
    Item item;
    while (pop_from(q, item)) {
      run_item(q, item);
    }
  }
}

unsigned TaskScheduler::home_queue() const {
  if (t_scheduler == this && t_worker >= 0) {
    return static_cast<unsigned>(t_worker);
  }
  // Stable per-thread spread for off-pool producers: same producer, same
  // queue — the per-producer FIFO guarantee hangs on this.
  return static_cast<unsigned>(std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                               queues_.size());
}

void TaskScheduler::submit(TaskFn fn, const obs::TraceContext& ctx) {
  submit_to(home_queue(), std::move(fn), ctx);
}

void TaskScheduler::submit_to(unsigned worker, TaskFn fn, const obs::TraceContext& ctx) {
  TAGMATCH_CHECK(worker < queues_.size());
  if (stopping_.load(std::memory_order_acquire)) {
    // Shutdown has begun: execute inline rather than risk a task the
    // workers will never see.
    Item item{std::move(fn), ctx};
    run_item(worker, item);
    return;
  }
  enqueue(worker, Item{std::move(fn), ctx});
}

void TaskScheduler::enqueue(unsigned worker, Item item) {
  queued_n_.fetch_add(1, std::memory_order_relaxed);
  if (queued_counter_ != nullptr) {
    queued_counter_->inc();
  }
  {
    std::lock_guard lock(queues_[worker]->mu);
    queues_[worker]->items.push_back(std::move(item));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard lock(idle_mu_);  // Pair with the waiters' predicate check.
  }
  idle_cv_.notify_one();
}

bool TaskScheduler::pop_from(unsigned queue, Item& out) {
  std::lock_guard lock(queues_[queue]->mu);
  if (queues_[queue]->items.empty()) {
    return false;
  }
  out = std::move(queues_[queue]->items.front());
  queues_[queue]->items.pop_front();
  pending_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool TaskScheduler::steal_into(unsigned thief, Item& out) {
  const unsigned n = num_workers();
  for (unsigned hop = 1; hop < n; ++hop) {
    const unsigned victim = (thief + hop) % n;
    if (pop_from(victim, out)) {
      stolen_n_.fetch_add(1, std::memory_order_relaxed);
      if (stolen_counter_ != nullptr) {
        stolen_counter_->inc();
      }
      return true;
    }
  }
  return false;
}

void TaskScheduler::run_item(unsigned worker, Item& item) {
  const obs::TraceContext* prev = t_ctx;
  t_ctx = &item.ctx;
  const int64_t start_ns = now_ns();
  item.fn();
  const int64_t elapsed = now_ns() - start_ns;
  t_ctx = prev;
  executed_n_.fetch_add(1, std::memory_order_relaxed);
  if (executed_counter_ != nullptr) {
    executed_counter_->inc();
  }
  if (worker < run_ns_.size() && run_ns_[worker] != nullptr) {
    run_ns_[worker]->record(static_cast<uint64_t>(elapsed < 0 ? 0 : elapsed),
                            item.ctx.trace_id);
  }
}

void TaskScheduler::worker_main(unsigned id) {
  t_scheduler = this;
  t_worker = static_cast<int>(id);
  Item item;
  for (;;) {
    if (pop_from(id, item) || steal_into(id, item)) {
      run_item(id, item);
      continue;
    }
    std::unique_lock lock(idle_mu_);
    idle_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;  // Graceful: every queue is empty, nothing left to drain.
    }
  }
}

void TaskScheduler::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1 || num_workers() <= 1 || stopping_.load(std::memory_order_acquire)) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  // The caller blocks until done == n, and done only reaches n after the
  // last claimed chunk's fn() returned — so &fn never dangles in a helper.
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = &fn;
  const auto drain = [](const std::shared_ptr<State>& s) {
    size_t i;
    while ((i = s->next.fetch_add(1, std::memory_order_relaxed)) < s->n) {
      (*s->fn)(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard lock(s->mu);
        s->cv.notify_all();
      }
    }
  };
  const obs::TraceContext ctx = current_context();
  const size_t helpers = std::min<size_t>(num_workers(), n);
  for (size_t h = 0; h < helpers; ++h) {
    submit_to(static_cast<unsigned>(h), [state, drain] { drain(state); }, ctx);
  }
  drain(state);  // The caller claims chunks itself: progress without helpers.
  std::unique_lock lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load(std::memory_order_acquire) == n; });
}

std::vector<bool> TaskScheduler::pinned() const {
  std::vector<bool> out(num_workers());
  for (unsigned i = 0; i < num_workers(); ++i) {
    out[i] = pinned_[i].load(std::memory_order_acquire) == 1;
  }
  return out;
}

int TaskScheduler::current_worker() const { return t_scheduler == this ? t_worker : -1; }

const obs::TraceContext& TaskScheduler::current_context() {
  static const obs::TraceContext kInvalid{};
  return t_ctx != nullptr ? *t_ctx : kInvalid;
}

}  // namespace tagmatch::task

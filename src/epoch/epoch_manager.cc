#include "src/epoch/epoch_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tagmatch::epoch {

namespace {

std::atomic<uint64_t> g_next_manager_id{1};

// Thread-local slot cache: one entry per (thread, manager) pair. Keyed by the
// manager's process-unique id — ids are never reused, so a cache hit cannot
// alias a dead manager's slot. When an entry's shared_ptr is the last
// reference (use_count() == 1) the manager is gone and the entry is pruned.
struct CacheEntry {
  uint64_t manager_id;
  std::shared_ptr<detail::Slot> slot;
};

thread_local std::vector<CacheEntry> t_slots;

}  // namespace

EpochManager::EpochManager(obs::Registry* registry)
    : id_(g_next_manager_id.fetch_add(1, std::memory_order_relaxed)) {
  if (registry != nullptr) {
    advances_ = registry->counter("epoch.advances");
    retired_count_ = registry->counter("epoch.retired");
    reclaimed_count_ = registry->counter("epoch.reclaimed");
    pinned_gauge_ = registry->gauge("epoch.pinned");
  }
}

EpochManager::~EpochManager() {
  // Owner contract: all readers are quiesced before the manager dies, so
  // every pending reclaimer is safe to run now.
  std::vector<Retired> leftover;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    leftover.swap(retired_);
  }
  for (Retired& r : leftover) {
    r.reclaimer();
  }
}

detail::Slot* EpochManager::slot_for_thread() {
  for (size_t i = 0; i < t_slots.size();) {
    if (t_slots[i].slot.use_count() == 1) {
      // Sole owner: the manager that issued this slot has been destroyed.
      t_slots[i] = std::move(t_slots.back());
      t_slots.pop_back();
      continue;
    }
    if (t_slots[i].manager_id == id_) {
      return t_slots[i].slot.get();
    }
    ++i;
  }
  auto slot = std::make_shared<detail::Slot>();
  {
    std::lock_guard<std::mutex> lock(participants_mu_);
    participants_.push_back(slot);
  }
  t_slots.push_back(CacheEntry{id_, slot});
  return t_slots.back().slot.get();
}

detail::Slot* EpochManager::enter() {
  detail::Slot* slot = slot_for_thread();
  if (slot->depth++ == 0) {
    // seq_cst: must be ordered before the reader's subsequent seq_cst load
    // of the published pointer in the single total order (see header).
    slot->epoch.store(global_epoch_.load(std::memory_order_relaxed),
                      std::memory_order_seq_cst);
    pinned_.fetch_add(1, std::memory_order_relaxed);
    if (pinned_gauge_ != nullptr) pinned_gauge_->add(1);
  }
  return slot;
}

void EpochManager::exit(detail::Slot* slot) {
  if (--slot->depth == 0) {
    slot->epoch.store(detail::Slot::kIdle, std::memory_order_release);
    pinned_.fetch_sub(1, std::memory_order_relaxed);
    if (pinned_gauge_ != nullptr) pinned_gauge_->add(-1);
  }
}

void EpochManager::retire(std::function<void()> reclaimer) {
  const uint64_t epoch = global_epoch_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back(Retired{epoch, std::move(reclaimer)});
  }
  if (retired_count_ != nullptr) retired_count_->inc();
}

uint64_t EpochManager::min_active_epoch() {
  uint64_t min = detail::Slot::kIdle;
  std::lock_guard<std::mutex> lock(participants_mu_);
  for (size_t i = 0; i < participants_.size();) {
    if (participants_[i].use_count() == 1 &&
        participants_[i]->epoch.load(std::memory_order_seq_cst) ==
            detail::Slot::kIdle) {
      // The owning thread exited with no pin held; drop the slot.
      participants_[i] = std::move(participants_.back());
      participants_.pop_back();
      continue;
    }
    min = std::min(min,
                   participants_[i]->epoch.load(std::memory_order_seq_cst));
    ++i;
  }
  return min;
}

size_t EpochManager::reclaim_before(uint64_t min_active) {
  std::vector<Retired> ready;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    auto split = std::partition(
        retired_.begin(), retired_.end(),
        [min_active](const Retired& r) { return r.epoch >= min_active; });
    ready.assign(std::make_move_iterator(split),
                 std::make_move_iterator(retired_.end()));
    retired_.erase(split, retired_.end());
  }
  for (Retired& r : ready) {
    r.reclaimer();
  }
  if (reclaimed_count_ != nullptr && !ready.empty()) {
    reclaimed_count_->add(ready.size());
  }
  return ready.size();
}

size_t EpochManager::reclaim() {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (advances_ != nullptr) advances_->inc();
  return reclaim_before(min_active_epoch());
}

void EpochManager::synchronize() {
  const uint64_t target =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (advances_ != nullptr) advances_->inc();
  // Wait for every pin taken before the advance: a slot blocks us only while
  // it is pinned at an epoch < target. New pins observe >= target (or land
  // on the freshly published state anyway — see header) and don't block.
  for (int spins = 0;; ++spins) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(participants_mu_);
      for (const auto& slot : participants_) {
        const uint64_t e = slot->epoch.load(std::memory_order_seq_cst);
        if (e != detail::Slot::kIdle && e < target) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) break;
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  reclaim_before(target);
}

size_t EpochManager::retired_pending() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return retired_.size();
}

}  // namespace tagmatch::epoch

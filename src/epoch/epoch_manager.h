#pragma once

// Epoch-based reclamation for read-mostly published structures.
//
// The pattern: a writer builds a fresh immutable object, publishes it with a
// single atomic pointer store, and hands the old object to retire(). Readers
// wrap every traversal in a Pin; an object retired at epoch E is freed only
// once every pin taken at an epoch <= E has been released, so a reader that
// loaded the old pointer can keep dereferencing it without any lock.
//
// Participants are threads: any thread (a TaskScheduler worker, the deadline
// flusher, a caller thread) gets a cache-padded slot on first Pin against a
// given manager and reuses it afterwards. Pins nest — only the outermost
// store/clear touches the shared slot, so a pinned task that calls
// parallel_for and has helpers pin the same manager is fine (helpers run on
// other threads and pin their own slots; the caller's re-entry is a no-op).
//
// Memory-order contract (the one that makes the race-free claim hold):
//   reader:  slot.epoch.store(E, seq_cst);  p = published.load(seq_cst);
//   writer:  published.store(next, seq_cst);  scan slot.epoch.load(seq_cst);
// Both pairs are in the single seq_cst total order, so a reader that obtained
// the *old* pointer must have stored its pin before the writer's scan — the
// writer observes it as pinned at an epoch <= the retire epoch and keeps the
// old object alive. See docs/CONCURRENCY.md ("Epoch lifecycle & reclamation").

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"

namespace tagmatch::epoch {

namespace detail {

// One participant's pin state. kIdle means "not pinned"; any other value is
// the global epoch observed when the outermost pin was taken. `depth` is
// only ever touched by the owning thread (reentrancy counter).
struct alignas(64) Slot {
  static constexpr uint64_t kIdle = ~uint64_t{0};
  std::atomic<uint64_t> epoch{kIdle};
  uint32_t depth = 0;
};

}  // namespace detail

class EpochManager {
 public:
  // When `registry` is non-null, registers (eagerly, so the obs doc-diff
  // test sees the full inventory):
  //   epoch.advances   counter  global-epoch advances (reclaim/synchronize)
  //   epoch.retired    counter  objects handed to retire()
  //   epoch.reclaimed  counter  retired objects actually freed
  //   epoch.pinned     gauge    currently pinned participants
  explicit EpochManager(obs::Registry* registry = nullptr);

  // Runs every still-pending reclaimer. The caller must have quiesced all
  // readers first (the owning component's shutdown/flush contract).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII pin. While alive, any pointer loaded from an epoch-published
  // atomic stays valid even if a writer retires it concurrently.
  class Pin {
   public:
    explicit Pin(EpochManager& mgr) : mgr_(&mgr), slot_(mgr.enter()) {}
    ~Pin() { mgr_->exit(slot_); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochManager* mgr_;
    detail::Slot* slot_;
  };

  // Defers `reclaimer` until every pin taken at or before the current epoch
  // has been released. Callable from any thread.
  void retire(std::function<void()> reclaimer);

  // Advances the global epoch and frees every retired object whose epoch has
  // been passed by all pinned readers. Non-blocking; returns the number of
  // objects freed.
  size_t reclaim();

  // Advances the global epoch and *waits* (spin + yield, then micro-sleep)
  // until every reader pinned before the advance has unpinned or repinned,
  // then reclaims everything retired before the advance. On return, no
  // reader can still observe a pointer that was replaced before the call.
  // Must not be called while the calling thread itself holds a Pin.
  void synchronize();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }
  uint64_t pinned() const { return pinned_.load(std::memory_order_relaxed); }
  size_t retired_pending() const;

 private:
  friend class Pin;

  detail::Slot* enter();
  void exit(detail::Slot* slot);
  detail::Slot* slot_for_thread();

  // Minimum epoch over all currently pinned slots (kIdle slots ignored);
  // kIdle when nothing is pinned. Prunes slots of exited threads.
  uint64_t min_active_epoch();

  size_t reclaim_before(uint64_t min_active);

  struct Retired {
    uint64_t epoch;
    std::function<void()> reclaimer;
  };

  const uint64_t id_;  // process-unique, keys the thread-local slot cache

  std::atomic<uint64_t> global_epoch_{1};
  std::atomic<uint64_t> pinned_{0};

  mutable std::mutex participants_mu_;
  std::vector<std::shared_ptr<detail::Slot>> participants_;

  mutable std::mutex retired_mu_;
  std::vector<Retired> retired_;

  obs::Counter* advances_ = nullptr;
  obs::Counter* retired_count_ = nullptr;
  obs::Counter* reclaimed_count_ = nullptr;
  obs::Gauge* pinned_gauge_ = nullptr;
};

}  // namespace tagmatch::epoch

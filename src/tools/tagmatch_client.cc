// tagmatch_client — command-line client for the tagmatch_server observability
// verbs. Prints the server's JSON payload to stdout, so output pipes straight
// into files or jq:
//
//   tagmatch_client tracex > out.json     # load out.json in ui.perfetto.dev
//   tagmatch_client stats | jq .
//
// Usage: tagmatch_client [--port P] <command> [args]
//   ping                      liveness check; prints "PONG"
//   stats                     merged metrics registries (STATS verb)
//   trace [n] [stage=S] [since=ID]
//                             stage spans, newest n (0/omitted = all),
//                             optionally filtered (TRACE verb)
//   tracex                    retained causal traces as Chrome/Perfetto
//                             trace-event JSON (TRACEX verb; server must run
//                             with --tracing)
//   pub <tag,tag> <payload>   publish one message (handy for smoke tests)
// Exits nonzero on connection or protocol errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/net/wire.h"

namespace {

int fail(const char* what) {
  std::fprintf(stderr, "tagmatch_client: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7077;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: tagmatch_client [--port P] ping|stats|trace|tracex|pub ...\n"
                 "       trace [n] [stage=S] [since=ID]\n"
                 "       pub <tag,tag> <payload>\n");
    return 1;
  }

  tagmatch::net::BrokerClient client;
  if (!client.connect(port)) {
    return fail("cannot connect");
  }

  const std::string& cmd = args[0];
  if (cmd == "ping") {
    if (!client.ping()) {
      return fail("ping failed");
    }
    std::printf("PONG\n");
    return 0;
  }
  if (cmd == "stats") {
    auto json = client.stats_json();
    if (!json) {
      return fail("STATS failed");
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cmd == "trace") {
    uint32_t limit = 0;
    std::string stage;
    uint64_t since = 0;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i].rfind("stage=", 0) == 0) {
        stage = args[i].substr(6);
      } else if (args[i].rfind("since=", 0) == 0) {
        since = std::strtoull(args[i].c_str() + 6, nullptr, 10);
      } else {
        limit = static_cast<uint32_t>(std::strtoul(args[i].c_str(), nullptr, 10));
      }
    }
    auto json = client.trace_json(limit, stage, since);
    if (!json) {
      return fail("TRACE failed (bad filter?)");
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cmd == "tracex") {
    auto json = client.tracex_json();
    if (!json) {
      return fail("TRACEX failed");
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cmd == "pub") {
    if (args.size() < 3) {
      return fail("pub needs <tag,tag> <payload>");
    }
    auto tags = tagmatch::net::parse_tags(args[1]);
    if (!tags) {
      return fail("bad tag list");
    }
    if (!client.publish(*tags, args[2])) {
      return fail("PUB failed");
    }
    std::printf("OK\n");
    return 0;
  }
  return fail("unknown command");
}

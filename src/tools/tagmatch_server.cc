// tagmatch_server — standalone TagBroker service over TCP.
//
// Usage: tagmatch_server [port] [--shards N] [--replicas R] [--hedge-ms N]
//                        [--workers N] [--pin-workers]
//                        [--publish-slo-ms N [--slo-mode M]]
//                        [--stats-json FILE [--stats-interval MS]]
//                        [--tracing [--trace-sample N]] [--trace-out FILE]
//                        [--fault-plan SPEC] [--signature-scheme NAME]
//                        [--telemetry-interval MS] [--telemetry-dir DIR]
//                        [--slo-rules SPEC] [--telemetry-stream FILE]
//   port: TCP port on 127.0.0.1 (default 7077; 0 = ephemeral, printed).
//   --shards N: back the broker with a sharded engine (N independent
//               TagMatch shards, scatter-gather matching; default 1).
//   --replicas R: run R replicas per engine shard (src/shard/replica_set.h):
//               replicated writes with anti-entropy repair, failover around
//               unhealthy replicas; default 1 (no replication).
//   --hedge-ms N: hedge a shard read to a backup replica when the primary
//               has not answered within N ms (floored by 2x the shard's
//               rolling p95; requires --replicas > 1). 0/absent disables
//               hedging and the miss-driven replica health machinery.
//   --workers N: task-pool workers per engine (0/absent = TAGMATCH_WORKERS
//               env, then the engine thread default). --pin-workers pins
//               each worker to a hardware thread. The pools drive query
//               preprocessing, result completion, and the CPU brute-force
//               fallback — see docs/CONCURRENCY.md.
//   --signature-scheme NAME: signature scheme (src/sig) the engine encodes
//               and matches under (bloom192, blocked64, twochoice64;
//               default bloom192 or $TAGMATCH_SCHEME). Surfaced in STATS as
//               the sig.scheme_id gauge.
//   --publish-slo-ms N: enforce an end-to-end publish-latency SLO of N ms
//               (accept -> subscriber queues written); 0/absent disables it.
//   --slo-mode skip|partial|reject: degradation ceiling under the SLO —
//               skip blocked subscribers only, + deliver partial matches
//               (sharded engines), + reject publishes at admission while the
//               observed p95 breaches the SLO (default reject; PUB then
//               replies "ERR slo rejected").
//   --stats-json FILE: periodically dump the merged metrics registry
//               (broker + engine, one line of JSON per dump — the same
//               payload the STATS verb returns) by atomically rewriting
//               FILE. Interval defaults to 1000 ms (--stats-interval).
//   --tracing: stamp every publish with a causal trace context and
//               tail-sample finished traces into the flight recorder
//               (served by the TRACEX verb). --trace-sample N adds 1-in-N
//               head sampling on top of the slow/degraded retention.
//   --trace-out FILE: periodically dump the retained causal traces as
//               Chrome/Perfetto trace-event JSON (load FILE in
//               ui.perfetto.dev) by atomically rewriting FILE on the stats
//               interval and at shutdown. Implies --tracing.
//   --fault-plan SPEC: arm a deterministic GPU fault injector (src/inject
//               grammar, e.g. "h2d:after=100,count=2;devloss:dev=0,after=5000")
//               on the engine's devices. Injected faults are repaired by the
//               engine (retry / re-dispatch / CPU fallback) and show up in
//               the engine.retries / device.health.* metrics — for chaos
//               drills, never production.
//   --telemetry-interval MS: enable continuous telemetry (src/telemetry): a
//               background sampler snapshots the metrics registry every MS
//               milliseconds into a rolling time-series ring served by the
//               TSQ verb. Any --telemetry-*/--slo-rules flag enables the
//               layer; the interval defaults to 1000 ms.
//   --slo-rules SPEC: burn-rate watchdog rules over the ring (grammar in
//               src/telemetry/slo_watchdog.h, e.g.
//               "publish.latency_ns:p=99,threshold=5e6"). A trip flips the
//               telemetry.alert.<rule> gauge, boosts trace sampling to 100%
//               and writes one retrospective Perfetto dump to
//               --telemetry-dir.
//   --telemetry-dir DIR: directory for retrospective dumps (must exist).
//   --telemetry-stream FILE: stream spans incrementally to FILE as a
//               Chrome/Perfetto trace-event array (append-only; only spans
//               retired since the previous flush). Implies --tracing.
//
// Protocol (newline-delimited; see src/net/wire.h):
//   SUB a,b,c        -> OK <id>       subscribe this connection
//   UNSUB <id>       -> OK <id>
//   PUB a,b payload  -> OK 0          deliver to matching subscribers
//   PING             -> PONG
//   STATS            -> STATS <json>  observability snapshot
//   TRACE [n] [stage=S] [since=ID] -> TRACE <json>  filtered stage spans
//   TRACEX           -> TRACEX <json> retained causal traces (Perfetto)
// Deliveries arrive as: MSG a,b payload
//
// Try it:   printf 'SUB alerts\n' | nc 127.0.0.1 7077
// Runs until stdin closes or SIGTERM. Prints periodic stats to stderr.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/broker/broker.h"
#include "src/inject/fault.h"
#include "src/net/server.h"
#include "src/obs/export.h"
#include "src/sig/signature_scheme.h"
#include "src/telemetry/slo_watchdog.h"
#include "src/telemetry/telemetry.h"

namespace {

// Atomic rewrite: dump to FILE.tmp, rename over FILE, so readers never see a
// torn JSON line.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::rename(tmp.c_str(), path.c_str());
}

void dump_stats(const tagmatch::broker::Broker& broker, const std::string& path) {
  write_file_atomic(path, broker.metrics_snapshot().to_json());
}

// Perfetto dump of the flight recorder (--trace-out): pretty-printed — it is
// a file for humans and ui.perfetto.dev, not a wire frame.
void dump_traces(const tagmatch::broker::Broker& broker, const std::string& path) {
  write_file_atomic(path,
                    tagmatch::obs::chrome_trace_json(broker.trace_records(), /*pretty=*/true));
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7077;
  unsigned shards = 1;
  unsigned replicas = 1;
  unsigned long hedge_ms = 0;
  unsigned workers = 0;
  bool pin_workers = false;
  bool port_seen = false;
  std::string stats_json_path;
  std::string trace_out_path;
  std::string fault_plan_spec;
  std::string slo_rules_spec;
  std::string telemetry_dir;
  std::string telemetry_stream_path;
  auto telemetry_interval = std::chrono::milliseconds(0);  // 0 = telemetry off.
  bool telemetry_enabled = false;
  bool tracing = false;
  uint32_t trace_sample = 0;
  auto stats_interval = std::chrono::milliseconds(1000);
  auto publish_slo = std::chrono::milliseconds(0);
  auto slo_mode = tagmatch::broker::BrokerConfig::SloMode::kRejectAdmission;
  const tagmatch::sig::SignatureScheme* scheme = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      replicas = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--hedge-ms") == 0 && i + 1 < argc) {
      hedge_ms = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--pin-workers") == 0) {
      pin_workers = true;
    } else if (std::strcmp(argv[i], "--publish-slo-ms") == 0 && i + 1 < argc) {
      publish_slo = std::chrono::milliseconds(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--slo-mode") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (std::strcmp(mode, "skip") == 0) {
        slo_mode = tagmatch::broker::BrokerConfig::SloMode::kSkipBlocked;
      } else if (std::strcmp(mode, "partial") == 0) {
        slo_mode = tagmatch::broker::BrokerConfig::SloMode::kDeliverPartial;
      } else if (std::strcmp(mode, "reject") == 0) {
        slo_mode = tagmatch::broker::BrokerConfig::SloMode::kRejectAdmission;
      } else {
        std::fprintf(stderr, "unknown --slo-mode %s (skip|partial|reject)\n", mode);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval = std::chrono::milliseconds(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--tracing") == 0) {
      tracing = true;
    } else if (std::strcmp(argv[i], "--trace-sample") == 0 && i + 1 < argc) {
      trace_sample = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
      tracing = true;
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      fault_plan_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry-interval") == 0 && i + 1 < argc) {
      telemetry_interval = std::chrono::milliseconds(std::strtoul(argv[++i], nullptr, 10));
      telemetry_enabled = true;
    } else if (std::strcmp(argv[i], "--telemetry-dir") == 0 && i + 1 < argc) {
      telemetry_dir = argv[++i];
      telemetry_enabled = true;
    } else if (std::strcmp(argv[i], "--slo-rules") == 0 && i + 1 < argc) {
      slo_rules_spec = argv[++i];
      telemetry_enabled = true;
    } else if (std::strcmp(argv[i], "--telemetry-stream") == 0 && i + 1 < argc) {
      telemetry_stream_path = argv[++i];
      telemetry_enabled = true;
      tracing = true;  // Streaming without spans would be an empty file.
    } else if (std::strcmp(argv[i], "--signature-scheme") == 0 && i + 1 < argc) {
      scheme = tagmatch::sig::scheme_by_name(argv[++i]);
      if (scheme == nullptr) {
        std::fprintf(stderr, "unknown --signature-scheme %s (valid: %s)\n", argv[i],
                     tagmatch::sig::scheme_names_csv().c_str());
        return 1;
      }
    } else if (!port_seen) {
      port = static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
      port_seen = true;
    }
  }

  tagmatch::broker::BrokerConfig config;
  config.engine.num_threads = 2;
  config.engine.num_workers = workers;
  config.engine.pin_workers = pin_workers;
  config.engine.gpu_sms_per_device = 2;
  config.engine.signature_scheme = scheme;
  config.consolidate_interval = std::chrono::milliseconds(250);
  config.engine_shards = shards == 0 ? 1 : shards;
  config.engine_replicas = replicas == 0 ? 1 : replicas;
  config.hedge_delay = std::chrono::milliseconds(hedge_ms);
  config.publish_slo = publish_slo;
  config.slo_mode = slo_mode;
  config.tracing = tracing;
  config.trace_head_sample_every = trace_sample;
  if (!fault_plan_spec.empty()) {
    auto plan = tagmatch::inject::FaultPlan::parse(fault_plan_spec);
    if (!plan) {
      std::fprintf(stderr, "malformed --fault-plan \"%s\"\n", fault_plan_spec.c_str());
      return 1;
    }
    config.engine.fault_injector = std::make_shared<tagmatch::inject::FaultInjector>(*plan);
    std::fprintf(stderr, "fault plan armed: %s\n", plan->to_spec().c_str());
  }
  tagmatch::broker::Broker broker(config);

  // Continuous telemetry (--telemetry-*/--slo-rules): sampler + watchdog +
  // streaming exporter wired to the broker, handed to the server for TSQ.
  std::unique_ptr<tagmatch::telemetry::Telemetry> telemetry;
  if (telemetry_enabled) {
    tagmatch::telemetry::TelemetryConfig tconfig;
    if (telemetry_interval.count() > 0) {
      tconfig.interval = telemetry_interval;
    }
    if (!slo_rules_spec.empty()) {
      std::string error;
      auto rules = tagmatch::telemetry::parse_slo_rules(slo_rules_spec, &error);
      if (!rules) {
        std::fprintf(stderr, "malformed --slo-rules \"%s\": %s\n", slo_rules_spec.c_str(),
                     error.c_str());
        return 1;
      }
      tconfig.rules = *rules;
      std::fprintf(stderr, "slo watchdog armed: %zu rule%s\n", tconfig.rules.size(),
                   tconfig.rules.size() == 1 ? "" : "s");
    }
    tconfig.telemetry_dir = telemetry_dir;
    tconfig.stream_path = telemetry_stream_path;
    tconfig.snapshot_fn = [&broker] { return broker.metrics_snapshot(); };
    tconfig.trace_fn = [&broker] { return broker.trace_snapshot(); };
    tconfig.trace_dropped_fn = [&broker] { return broker.trace_dropped(); };
    tconfig.sampling_boost_fn = [&broker](bool on) { broker.set_trace_sampling_boost(on); };
    telemetry = std::make_unique<tagmatch::telemetry::Telemetry>(std::move(tconfig));
    telemetry->start();
  }

  tagmatch::net::BrokerServer server(&broker, port, telemetry.get());
  if (!server.listening()) {
    std::fprintf(stderr, "cannot listen on port %u\n", port);
    return 1;
  }
  std::printf("tagmatch_server listening on 127.0.0.1:%u (%u engine shard%s, %u replica%s)\n",
              server.port(), config.engine_shards, config.engine_shards == 1 ? "" : "s",
              config.engine_replicas, config.engine_replicas == 1 ? "" : "s");
  std::fflush(stdout);

  // Optional periodic metrics dump (--stats-json).
  std::mutex dump_mu;
  std::condition_variable dump_cv;
  bool dump_stop = false;
  std::thread dumper;
  if (!stats_json_path.empty() || !trace_out_path.empty()) {
    dumper = std::thread([&] {
      std::unique_lock lock(dump_mu);
      for (;;) {
        dump_cv.wait_for(lock, stats_interval, [&] { return dump_stop; });
        if (!stats_json_path.empty()) {
          dump_stats(broker, stats_json_path);
        }
        if (!trace_out_path.empty()) {
          dump_traces(broker, trace_out_path);
        }
        if (dump_stop) {
          return;
        }
      }
    });
  }

  // Serve until stdin closes (EOF), printing stats per line of input.
  std::string line;
  int c;
  while ((c = std::getchar()) != EOF) {
    if (c == '\n') {
      auto s = broker.stats();
      std::fprintf(stderr,
                   "stats: %llu published, %llu delivered, %llu dropped, "
                   "%llu subscribers, %llu subscriptions\n",
                   static_cast<unsigned long long>(s.published),
                   static_cast<unsigned long long>(s.deliveries),
                   static_cast<unsigned long long>(s.dropped),
                   static_cast<unsigned long long>(s.subscribers),
                   static_cast<unsigned long long>(s.subscriptions));
    }
  }
  if (dumper.joinable()) {
    {
      std::lock_guard lock(dump_mu);
      dump_stop = true;  // The dumper writes one final snapshot on its way out.
    }
    dump_cv.notify_all();
    dumper.join();
  }
  server.stop();
  if (telemetry) {
    telemetry->stop();  // Joins the sampler; closes the stream file cleanly.
  }
  return 0;
}

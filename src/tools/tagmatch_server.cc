// tagmatch_server — standalone TagBroker service over TCP.
//
// Usage: tagmatch_server [port] [--shards N]
//   port: TCP port on 127.0.0.1 (default 7077; 0 = ephemeral, printed).
//   --shards N: back the broker with a sharded engine (N independent
//               TagMatch shards, scatter-gather matching; default 1).
//
// Protocol (newline-delimited; see src/net/wire.h):
//   SUB a,b,c        -> OK <id>       subscribe this connection
//   UNSUB <id>       -> OK <id>
//   PUB a,b payload  -> OK 0          deliver to matching subscribers
//   PING             -> PONG
// Deliveries arrive as: MSG a,b payload
//
// Try it:   printf 'SUB alerts\n' | nc 127.0.0.1 7077
// Runs until stdin closes or SIGTERM. Prints periodic stats to stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/broker/broker.h"
#include "src/net/server.h"

int main(int argc, char** argv) {
  uint16_t port = 7077;
  unsigned shards = 1;
  bool port_seen = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!port_seen) {
      port = static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
      port_seen = true;
    }
  }

  tagmatch::broker::BrokerConfig config;
  config.engine.num_threads = 2;
  config.engine.gpu_sms_per_device = 2;
  config.consolidate_interval = std::chrono::milliseconds(250);
  config.engine_shards = shards == 0 ? 1 : shards;
  tagmatch::broker::Broker broker(config);
  tagmatch::net::BrokerServer server(&broker, port);
  if (!server.listening()) {
    std::fprintf(stderr, "cannot listen on port %u\n", port);
    return 1;
  }
  std::printf("tagmatch_server listening on 127.0.0.1:%u (%u engine shard%s)\n", server.port(),
              config.engine_shards, config.engine_shards == 1 ? "" : "s");
  std::fflush(stdout);

  // Serve until stdin closes (EOF), printing stats per line of input.
  std::string line;
  int c;
  while ((c = std::getchar()) != EOF) {
    if (c == '\n') {
      auto s = broker.stats();
      std::fprintf(stderr,
                   "stats: %llu published, %llu delivered, %llu dropped, "
                   "%llu subscribers, %llu subscriptions\n",
                   static_cast<unsigned long long>(s.published),
                   static_cast<unsigned long long>(s.deliveries),
                   static_cast<unsigned long long>(s.dropped),
                   static_cast<unsigned long long>(s.subscribers),
                   static_cast<unsigned long long>(s.subscriptions));
    }
  }
  server.stop();
  return 0;
}

// tagmatch_cli — command-line front end for the TagMatch engine.
//
// Usage:
//   tagmatch_cli generate <sets.tsv> <queries.tsv> [users] [queries]
//       Emit a synthetic Twitter-style workload (tab-separated):
//       sets.tsv:    <key>\t<tag,tag,...>   queries.tsv: <tag,tag,...>
//   tagmatch_cli build <sets.tsv> <index.bin> [max_partition_size]
//       Index a set file and save the consolidated index.
//   tagmatch_cli query <index.bin> <queries.tsv> [--unique]
//       Load an index and match every query, printing "<n> <key> <key> ..."
//       per line.
//   tagmatch_cli stats <index.bin>
//       Print index statistics.
//
// Every command accepts `--shards N` (anywhere on the line): build/query/
// bench/stats then run a ShardedTagMatch over N engine shards instead of a
// single engine. A sharded `build` writes a manifest plus one index file per
// shard; loading a manifest with a different N redistributes the sets
// (resharding on load). Plain single-engine index files and shard manifests
// are distinct formats — query an index with the engine kind that built it,
// or any --shards value for manifests (resharded automatically).
//
// Every command also accepts `--workers N` and `--pin-workers` (anywhere on
// the line): N sizes each engine's task pool (0/absent = TAGMATCH_WORKERS
// env, then the engine thread default); `--pin-workers` pins workers to
// hardware threads. See docs/CONCURRENCY.md for when either helps.
//
// build/query/bench also accept `--stats-json FILE` (anywhere on the line):
// after the command finishes, the engine's metrics registry — per-stage
// latency histograms, pipeline counters; see docs/OBSERVABILITY.md — is
// written to FILE as one line of JSON.
//
// Exit status: 0 on success, 1 on usage or I/O errors.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/matcher.h"
#include "src/core/tagmatch.h"
#include "src/shard/sharded_tagmatch.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

namespace {

using tagmatch::BloomFilter192;
using tagmatch::Matcher;
using tagmatch::TagMatch;

std::vector<std::string> split_tags(const std::string& csv) {
  std::vector<std::string> tags;
  std::string tag;
  std::stringstream ss(csv);
  while (std::getline(ss, tag, ',')) {
    if (!tag.empty()) {
      tags.push_back(tag);
    }
  }
  return tags;
}

// Signature scheme selected by --signature-scheme (null = TAGMATCH_SCHEME
// environment variable, then the bloom192 baseline — see sig::resolve).
const tagmatch::sig::SignatureScheme* g_scheme = nullptr;

// Worker-pool sizing selected by --workers / --pin-workers (0 = let the
// engine resolve: TAGMATCH_WORKERS env, then the num_threads fallback).
unsigned g_workers = 0;
bool g_pin_workers = false;

tagmatch::TagMatchConfig cli_config() {
  tagmatch::TagMatchConfig config;
  config.num_threads = 2;
  config.gpu_sms_per_device = 2;
  config.signature_scheme = g_scheme;
  config.num_workers = g_workers;
  config.pin_workers = g_pin_workers;
  return config;
}

// Strips a `--shards N` option (if present) out of argv, returning N (1 =
// single engine). Mutates argc/argv so the positional parsing below is
// oblivious to it.
unsigned strip_shards_option(int& argc, char** argv) {
  unsigned shards = 1;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return shards == 0 ? 1 : shards;
}

// Strips a `--signature-scheme NAME` option out of argv (same contract as
// strip_shards_option), resolving it into `scheme`. Returns false — after
// printing the valid names — when NAME is unknown.
bool strip_scheme_option(int& argc, char** argv, const tagmatch::sig::SignatureScheme*& scheme) {
  int out = 0;
  bool ok = true;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--signature-scheme") == 0 && i + 1 < argc) {
      scheme = tagmatch::sig::scheme_by_name(argv[i + 1]);
      if (scheme == nullptr) {
        std::fprintf(stderr, "unknown signature scheme '%s' (valid: %s)\n", argv[i + 1],
                     tagmatch::sig::scheme_names_csv().c_str());
        ok = false;
      }
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return ok;
}

// Strips `--workers N` and `--pin-workers` options out of argv (same
// contract as strip_shards_option), filling the g_workers/g_pin_workers
// globals consumed by cli_config().
void strip_workers_options(int& argc, char** argv) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      g_workers = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      ++i;
    } else if (std::strcmp(argv[i], "--pin-workers") == 0) {
      g_pin_workers = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

// Strips a `--stats-json FILE` option out of argv (same contract as
// strip_shards_option); empty string = not requested.
std::string strip_stats_json_option(int& argc, char** argv) {
  std::string path;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      path = argv[i + 1];
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

// Writes the engine's metrics registry to `path` as one line of JSON (no-op
// when path is empty). Returns false on I/O error.
bool dump_stats_json(Matcher& engine, const std::string& path) {
  if (path.empty()) {
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << engine.metrics_snapshot().to_json() << '\n';
  return static_cast<bool>(out);
}

std::unique_ptr<Matcher> make_engine(unsigned shards) {
  if (shards <= 1) {
    return std::make_unique<TagMatch>(cli_config());
  }
  tagmatch::shard::ShardedConfig config;
  config.num_shards = shards;
  config.shard = cli_config();
  return std::make_unique<tagmatch::shard::ShardedTagMatch>(config);
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: tagmatch_cli generate <sets.tsv> <queries.tsv> [users] [queries]\n");
    return 1;
  }
  unsigned users = argc > 4 ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10)) : 5000;
  size_t n_queries = argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 1000;

  tagmatch::workload::WorkloadConfig wc;
  wc.num_users = users;
  wc.num_publishers = std::max(100u, users / 2);
  wc.vocabulary_size = std::max(1000u, users * 4);
  wc.tag_zipf = 0.8;
  tagmatch::workload::TwitterWorkload generator(wc);
  auto db = generator.generate_database();
  auto queries = generator.generate_queries(db, n_queries, 2, 4);

  std::ofstream sets_out(argv[2]);
  if (!sets_out) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  for (const auto& op : db) {
    sets_out << op.key << '\t';
    for (size_t i = 0; i < op.tags.size(); ++i) {
      sets_out << (i > 0 ? "," : "") << tagmatch::workload::tag_name(op.tags[i]);
    }
    sets_out << '\n';
  }
  std::ofstream queries_out(argv[3]);
  if (!queries_out) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  for (const auto& q : queries) {
    for (size_t i = 0; i < q.tags.size(); ++i) {
      queries_out << (i > 0 ? "," : "") << tagmatch::workload::tag_name(q.tags[i]);
    }
    queries_out << '\n';
  }
  std::printf("wrote %zu sets to %s and %zu queries to %s\n", db.size(), argv[2], queries.size(),
              argv[3]);
  return 0;
}

int cmd_build(int argc, char** argv, unsigned shards, const std::string& stats_json) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: tagmatch_cli build <sets.tsv> <index.bin> [max_partition_size]"
                 " [--shards N] [--stats-json FILE]\n");
    return 1;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  tagmatch::TagMatchConfig config = cli_config();
  if (argc > 4) {
    config.max_partition_size = static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10));
  }
  std::unique_ptr<Matcher> engine;
  if (shards <= 1) {
    engine = std::make_unique<TagMatch>(config);
  } else {
    tagmatch::shard::ShardedConfig sharded;
    sharded.num_shards = shards;
    sharded.shard = config;
    engine = std::make_unique<tagmatch::shard::ShardedTagMatch>(sharded);
  }
  std::string line;
  size_t count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    auto tab = line.find('\t');
    if (tab == std::string::npos) {
      std::fprintf(stderr, "malformed line (no tab): %s\n", line.c_str());
      return 1;
    }
    uint32_t key = static_cast<uint32_t>(std::strtoul(line.substr(0, tab).c_str(), nullptr, 10));
    std::vector<std::string> tags = split_tags(line.substr(tab + 1));
    engine->add_set(tags, key);
    ++count;
  }
  tagmatch::StopWatch watch;
  engine->consolidate();
  auto stats = engine->stats();
  std::printf("indexed %zu sets (%llu unique) into %llu partitions (%u shard%s) in %.2f s\n",
              count, static_cast<unsigned long long>(stats.unique_sets),
              static_cast<unsigned long long>(stats.partitions), shards, shards == 1 ? "" : "s",
              watch.elapsed_s());
  if (!engine->save_index(argv[3])) {
    std::fprintf(stderr, "cannot write index %s\n", argv[3]);
    return 1;
  }
  std::printf("saved index to %s\n", argv[3]);
  return dump_stats_json(*engine, stats_json) ? 0 : 1;
}

int cmd_query(int argc, char** argv, unsigned shards, const std::string& stats_json) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: tagmatch_cli query <index.bin> <queries.tsv> [--unique] [--shards N]"
                 " [--stats-json FILE]\n");
    return 1;
  }
  bool unique = argc > 4 && std::strcmp(argv[4], "--unique") == 0;
  std::unique_ptr<Matcher> engine = make_engine(shards);
  if (!engine->load_index(argv[2])) {
    std::fprintf(stderr, "cannot load index %s\n", argv[2]);
    return 1;
  }
  std::ifstream in(argv[3]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[3]);
    return 1;
  }
  std::string line;
  size_t n = 0;
  tagmatch::StopWatch watch;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> tags = split_tags(line);
    std::vector<Matcher::Key> keys =
        unique ? engine->match_unique(std::span<const std::string>(tags))
               : engine->match(std::span<const std::string>(tags));
    std::printf("%zu", keys.size());
    for (auto k : keys) {
      std::printf(" %u", k);
    }
    std::printf("\n");
    ++n;
  }
  std::fprintf(stderr, "matched %zu queries in %.3f s (%.0f q/s)\n", n, watch.elapsed_s(),
               n / watch.elapsed_s());
  return dump_stats_json(*engine, stats_json) ? 0 : 1;
}

int cmd_bench(int argc, char** argv, unsigned shards, const std::string& stats_json) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: tagmatch_cli bench <index.bin> <queries.tsv> [repeat] [--shards N]"
                 " [--stats-json FILE]\n");
    return 1;
  }
  std::unique_ptr<Matcher> engine = make_engine(shards);
  if (!engine->load_index(argv[2])) {
    std::fprintf(stderr, "cannot load index %s\n", argv[2]);
    return 1;
  }
  std::ifstream in(argv[3]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[3]);
    return 1;
  }
  const unsigned repeat = argc > 4 ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10)) : 3;
  std::vector<BloomFilter192> queries;
  const tagmatch::sig::SignatureScheme& scheme = tagmatch::sig::resolve(g_scheme);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      std::vector<std::string> tags = split_tags(line);
      // Queries must be encoded under the same scheme the index was built
      // with (the engine would reject a mismatched index at load).
      queries.push_back(BloomFilter192(scheme.encode(tags)));
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries\n");
    return 1;
  }
  for (unsigned round = 0; round < repeat; ++round) {
    std::atomic<uint64_t> keys{0};
    tagmatch::StopWatch watch;
    for (const auto& q : queries) {
      engine->match_async(q, Matcher::MatchKind::kMatchUnique,
                          [&keys](std::vector<Matcher::Key> k) {
                            keys.fetch_add(k.size(), std::memory_order_relaxed);
                          });
    }
    engine->flush();
    double secs = watch.elapsed_s();
    std::printf("round %u: %zu queries in %.3f s -> %.0f q/s, %.0f keys/s\n", round,
                queries.size(), secs, queries.size() / secs,
                static_cast<double>(keys.load()) / secs);
  }
  auto s = engine->stats();
  std::printf("avg partitions/query %.2f, avg batch fill %.1f, overflows %llu\n",
              s.avg_partitions_per_query(), s.avg_batch_fill(),
              static_cast<unsigned long long>(s.batch_overflows));
  return dump_stats_json(*engine, stats_json) ? 0 : 1;
}

int cmd_stats(int argc, char** argv, unsigned shards) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: tagmatch_cli stats <index.bin> [--shards N]\n");
    return 1;
  }
  std::unique_ptr<Matcher> engine = make_engine(shards);
  if (!engine->load_index(argv[2])) {
    std::fprintf(stderr, "cannot load index %s\n", argv[2]);
    return 1;
  }
  auto s = engine->stats();
  std::printf("signature scheme:     %s\n", s.signature_scheme.c_str());
  std::printf("unique sets:          %llu\n", static_cast<unsigned long long>(s.unique_sets));
  std::printf("total keys:           %llu\n", static_cast<unsigned long long>(s.total_keys));
  std::printf("partitions:           %llu\n", static_cast<unsigned long long>(s.partitions));
  std::printf("host key table:       %s\n", tagmatch::format_bytes(s.host_key_table_bytes).c_str());
  std::printf("host partition table: %s\n",
              tagmatch::format_bytes(s.host_partition_table_bytes).c_str());
  std::printf("host buffers:         %s\n", tagmatch::format_bytes(s.host_buffer_bytes).c_str());
  std::printf("gpu memory:           %s\n", tagmatch::format_bytes(s.gpu_bytes).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned shards = strip_shards_option(argc, argv);
  const std::string stats_json = strip_stats_json_option(argc, argv);
  strip_workers_options(argc, argv);
  if (!strip_scheme_option(argc, argv, g_scheme)) {
    return 1;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: tagmatch_cli <generate|build|query|stats> ... [--shards N]\n"
                 "  generate <sets.tsv> <queries.tsv> [users] [queries]\n"
                 "  build    <sets.tsv> <index.bin> [max_partition_size]\n"
                 "  query    <index.bin> <queries.tsv> [--unique]\n"
                 "  bench    <index.bin> <queries.tsv> [repeat]\n"
                 "  stats    <index.bin>\n"
                 "  --shards N: run a sharded engine (N shards); build writes a manifest\n"
                 "              plus per-shard index files, loads reshard automatically\n"
                 "  --stats-json FILE: write the metrics registry (per-stage latency\n"
                 "              histograms, pipeline counters) as JSON after the command\n"
                 "  --signature-scheme NAME: signature scheme (%s) to encode and match\n"
                 "              under; an index only loads under the scheme that built it\n"
                 "  --workers N: task-pool workers per engine (0 = TAGMATCH_WORKERS env,\n"
                 "              then the engine's thread default); --pin-workers pins\n"
                 "              each worker to a hardware thread\n",
                 tagmatch::sig::scheme_names_csv().c_str());
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") {
    return cmd_generate(argc, argv);
  }
  if (cmd == "build") {
    return cmd_build(argc, argv, shards, stats_json);
  }
  if (cmd == "query") {
    return cmd_query(argc, argv, shards, stats_json);
  }
  if (cmd == "bench") {
    return cmd_bench(argc, argv, shards, stats_json);
  }
  if (cmd == "stats") {
    return cmd_stats(argc, argv, shards);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 1;
}

// Synthetic Twitter-like workload generator reproducing the generative
// procedure of §4.2 of the paper (see DESIGN.md §2 for the substitution of
// the TREC Tweets2011 corpus and the Kwak et al. follower graph):
//
//  * a corpus of publishers with Zipf-distributed tweet counts; each tweet
//    carries 1..8 hash-tags drawn from a Zipf-distributed vocabulary;
//  * 40% of users monolingual / 60% bilingual; the first language follows the
//    Twitter language distribution (Hong et al., ICWSM'11), the second the
//    world second-language distribution;
//  * per user, a follower count drawn from a heavy-tailed distribution;
//    one *interest* per followed publisher: the hash-tags of one random tweet
//    of that publisher, "translated" into one of the user's languages;
//  * publishers in the top 30% by tweet count ("frequent writers")
//    additionally contribute their publisher-id as a tag of the interest;
//  * interests average about five tags;
//  * queries are built from a random database set plus `extra` random tags
//    (2..4 by default), so every query survives pre-filtering — the paper's
//    conservative choice.
#ifndef TAGMATCH_WORKLOAD_TWITTER_WORKLOAD_H_
#define TAGMATCH_WORKLOAD_TWITTER_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/tags.h"

namespace tagmatch::workload {

struct WorkloadConfig {
  uint64_t seed = 42;

  // Number of users (keys). The paper used 300M users yielding 212M unique
  // sets; benches scale this down and report the scale.
  uint32_t num_users = 100'000;

  // Publishers available to follow; the paper's corpus had ~5M authors for
  // 16M tweets. We keep the same ~3 tweets/publisher ratio by default.
  uint32_t num_publishers = 20'000;
  uint32_t max_tweets_per_publisher = 64;
  double tweet_count_zipf = 1.1;

  // Base hash-tag vocabulary and its popularity skew.
  uint32_t vocabulary_size = 40'000;
  double tag_zipf = 1.05;

  // Tags per tweet: 1..max, truncated-geometric with the given mean (the
  // paper's interests average ~5 tags including the publisher tag).
  unsigned max_tags_per_tweet = 8;
  double mean_tags_per_tweet = 4.0;

  // Followed publishers per user (interests per user), heavy-tailed.
  unsigned max_followed = 32;
  double follow_zipf = 1.6;

  // Fraction of publishers (by tweet count) treated as frequent writers
  // whose id is added to interests on them.
  double frequent_writer_fraction = 0.30;

  double bilingual_fraction = 0.60;
};

// One add-set operation: an interest (tag set) registered for a user key.
struct AddOp {
  std::vector<TagId> tags;
  uint32_t key;  // user id
};

// A query: the tags of a published tweet.
struct QueryOp {
  std::vector<TagId> tags;
};

class TwitterWorkload {
 public:
  explicit TwitterWorkload(const WorkloadConfig& config);

  // Generates the full database: one AddOp per (user, followed publisher).
  // Deterministic for a given config. The same user id appears in several
  // ops; distinct ops may carry identical tag sets (both as in the paper —
  // 300M keys vs 212M unique sets).
  std::vector<AddOp> generate_database();

  // Generates `count` queries; each takes the tag set of a random database
  // entry and adds [extra_min, extra_max] random tags. `database` must be the
  // result of generate_database().
  std::vector<QueryOp> generate_queries(const std::vector<AddOp>& database, size_t count,
                                        unsigned extra_min = 2, unsigned extra_max = 4);

  // Queries with an exact number of extra tags (the Fig. 2/3 sweep).
  std::vector<QueryOp> generate_queries_exact_extra(const std::vector<AddOp>& database,
                                                    size_t count, unsigned extra);

  const WorkloadConfig& config() const { return config_; }

  // Exposed for tests: deterministic tags of tweet `t` of publisher `p`, in
  // the original (language-0) form.
  std::vector<uint32_t> tweet_base_tags(uint32_t publisher, uint32_t tweet) const;
  bool is_frequent_writer(uint32_t publisher) const;
  uint32_t tweets_of(uint32_t publisher) const;

 private:
  std::vector<TagId> make_interest(uint32_t publisher, uint32_t tweet, unsigned language,
                                   Rng& rng) const;
  unsigned pick_language(Rng& rng, bool bilingual_second) const;
  uint32_t random_tag(Rng& rng) const;

  WorkloadConfig config_;
  ZipfSampler tag_sampler_;
  ZipfSampler tweet_count_sampler_;
  ZipfSampler follow_sampler_;
  DiscreteSampler first_language_;
  DiscreteSampler second_language_;
  std::vector<uint32_t> tweets_per_publisher_;
  uint32_t frequent_writer_threshold_;  // tweet count at/above which a publisher is frequent
};

// The language tables (index 0 = English). Shared with tests.
extern const char* const kLanguageCodes[];
extern const unsigned kNumLanguages;

}  // namespace tagmatch::workload

#endif  // TAGMATCH_WORKLOAD_TWITTER_WORKLOAD_H_

#include "src/workload/twitter_workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tagmatch::workload {

// Language model. Index 0 is English (also the "original" language of the
// corpus). First-language weights follow the Twitter language distribution of
// Hong et al. (ICWSM'11); second-language weights follow the distribution of
// the most frequent second languages in the world (Ethnologue), mapped onto
// the same code list.
const char* const kLanguageCodes[] = {"en", "ja", "pt", "id", "es", "nl",
                                      "ko", "fr", "de", "ms", "it", "ru"};
const unsigned kNumLanguages = 12;

namespace {

std::vector<double> first_language_weights() {
  // Hong, Convertino, Chi: language shares on Twitter.
  return {51.1, 19.0, 9.6, 5.6, 4.7, 1.9, 1.7, 1.6, 1.5, 1.2, 1.1, 1.0};
}

std::vector<double> second_language_weights() {
  // Most frequent second languages worldwide, projected on the same codes:
  // English dominates, then French, Spanish, Portuguese, Russian, German...
  return {55.0, 0.5, 3.5, 2.0, 8.0, 0.5, 0.5, 12.0, 5.0, 2.0, 2.0, 9.0};
}

}  // namespace

std::string tag_name(TagId t) {
  if (is_publisher_tag(t)) {
    return "@publisher" + std::to_string(t & 0x7fffffffu);
  }
  unsigned lang = tag_language(t);
  std::string base = "tag" + std::to_string(tag_base(t));
  if (lang == 0) {
    return base;
  }
  TAGMATCH_CHECK(lang < kNumLanguages);
  return std::string(kLanguageCodes[lang]) + "_" + base;
}

TwitterWorkload::TwitterWorkload(const WorkloadConfig& config)
    : config_(config),
      tag_sampler_(config.vocabulary_size, config.tag_zipf),
      tweet_count_sampler_(config.max_tweets_per_publisher, config.tweet_count_zipf),
      follow_sampler_(config.max_followed, config.follow_zipf),
      first_language_(first_language_weights()),
      second_language_(second_language_weights()) {
  TAGMATCH_CHECK(config.num_publishers > 0);
  TAGMATCH_CHECK(config.vocabulary_size > 0);

  // Assign each publisher a tweet count (Zipf-ranked + 1 so everyone has at
  // least one tweet), then find the top-30% threshold for frequent writers.
  Rng rng(config.seed ^ 0x9d8c1b3a5f7e2d4cull);
  tweets_per_publisher_.resize(config.num_publishers);
  for (auto& n : tweets_per_publisher_) {
    n = static_cast<uint32_t>(tweet_count_sampler_.sample(rng)) + 1;
  }
  std::vector<uint32_t> sorted = tweets_per_publisher_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  size_t cutoff_rank = static_cast<size_t>(
      config.frequent_writer_fraction * static_cast<double>(config.num_publishers));
  cutoff_rank = std::min(cutoff_rank, sorted.size() - 1);
  frequent_writer_threshold_ = sorted[cutoff_rank];
}

uint32_t TwitterWorkload::tweets_of(uint32_t publisher) const {
  return tweets_per_publisher_[publisher];
}

bool TwitterWorkload::is_frequent_writer(uint32_t publisher) const {
  return tweets_per_publisher_[publisher] >= frequent_writer_threshold_;
}

std::vector<uint32_t> TwitterWorkload::tweet_base_tags(uint32_t publisher, uint32_t tweet) const {
  // Deterministic per (publisher, tweet): the corpus is never materialized,
  // it is re-derived from a per-tweet RNG stream.
  Rng rng(mix64(config_.seed ^ (static_cast<uint64_t>(publisher) << 32 | tweet)));
  // Truncated geometric number of tags with the configured mean.
  double p = 1.0 / config_.mean_tags_per_tweet;
  unsigned n = 1;
  while (n < config_.max_tags_per_tweet && !rng.chance(p)) {
    ++n;
  }
  std::vector<uint32_t> tags;
  tags.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    uint32_t t = static_cast<uint32_t>(tag_sampler_.sample(rng));
    if (std::find(tags.begin(), tags.end(), t) == tags.end()) {
      tags.push_back(t);
    }
  }
  return tags;
}

unsigned TwitterWorkload::pick_language(Rng& rng, bool bilingual_second) const {
  return static_cast<unsigned>(bilingual_second ? second_language_.sample(rng)
                                                : first_language_.sample(rng));
}

std::vector<TagId> TwitterWorkload::make_interest(uint32_t publisher, uint32_t tweet,
                                                  unsigned language, Rng& rng) const {
  (void)rng;
  std::vector<uint32_t> base = tweet_base_tags(publisher, tweet);
  std::vector<TagId> tags;
  tags.reserve(base.size() + 1);
  for (uint32_t b : base) {
    tags.push_back(make_hashtag(language, b));
  }
  if (is_frequent_writer(publisher)) {
    tags.push_back(make_publisher_tag(publisher));
  }
  return tags;
}

std::vector<AddOp> TwitterWorkload::generate_database() {
  Rng rng(config_.seed);
  std::vector<AddOp> ops;
  ops.reserve(static_cast<size_t>(config_.num_users) * 3);
  for (uint32_t user = 0; user < config_.num_users; ++user) {
    // Languages spoken by this user.
    unsigned lang1 = pick_language(rng, /*bilingual_second=*/false);
    bool bilingual = rng.chance(config_.bilingual_fraction);
    unsigned lang2 = bilingual ? pick_language(rng, /*bilingual_second=*/true) : lang1;

    unsigned follows = static_cast<unsigned>(follow_sampler_.sample(rng)) + 1;
    for (unsigned f = 0; f < follows; ++f) {
      uint32_t publisher = static_cast<uint32_t>(rng.below(config_.num_publishers));
      uint32_t tweet = static_cast<uint32_t>(rng.below(tweets_per_publisher_[publisher]));
      // A user follows publishers writing in one of the user's languages; the
      // interest is expressed in that language.
      unsigned language = rng.chance(0.5) ? lang1 : lang2;
      ops.push_back(AddOp{make_interest(publisher, tweet, language, rng), user});
    }
  }
  return ops;
}

uint32_t TwitterWorkload::random_tag(Rng& rng) const {
  unsigned language = static_cast<unsigned>(first_language_.sample(rng));
  return make_hashtag(language, static_cast<uint32_t>(tag_sampler_.sample(rng)));
}

std::vector<QueryOp> TwitterWorkload::generate_queries(const std::vector<AddOp>& database,
                                                       size_t count, unsigned extra_min,
                                                       unsigned extra_max) {
  TAGMATCH_CHECK(!database.empty());
  TAGMATCH_CHECK(extra_min <= extra_max);
  Rng rng(config_.seed ^ 0x7b3255ad8cf1e6d2ull);
  std::vector<QueryOp> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const AddOp& seed_set = database[rng.below(database.size())];
    QueryOp q;
    q.tags = seed_set.tags;
    unsigned extra = static_cast<unsigned>(rng.between(extra_min, extra_max));
    for (unsigned e = 0; e < extra; ++e) {
      q.tags.push_back(random_tag(rng));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<QueryOp> TwitterWorkload::generate_queries_exact_extra(
    const std::vector<AddOp>& database, size_t count, unsigned extra) {
  return generate_queries(database, count, extra, extra);
}

}  // namespace tagmatch::workload

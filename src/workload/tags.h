// Compact tag representation for the workload generator.
//
// The paper's workload uses string hash-tags, optionally "translated" into a
// language by prefixing it (cat -> fr_cat), plus publisher-id tags for
// frequent writers. We encode each such tag in a 32-bit TagId so that
// hundreds of millions of tag occurrences stay in memory; `tag_name` renders
// the equivalent string, and the Bloom encoder hashes the TagId directly
// (one mix64 stream per id — statistically identical to hashing the string).
#ifndef TAGMATCH_WORKLOAD_TAGS_H_
#define TAGMATCH_WORKLOAD_TAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/common/hash.h"

namespace tagmatch::workload {

using TagId = uint32_t;

// Layout: bit 31 = publisher-id tag flag.
//   publisher tag:  [1][31-bit publisher id]
//   hashtag:        [0][7-bit language index][24-bit base tag id]
constexpr TagId make_hashtag(unsigned language, uint32_t base) {
  return (static_cast<TagId>(language & 0x7f) << 24) | (base & 0xffffff);
}
constexpr TagId make_publisher_tag(uint32_t publisher) { return 0x80000000u | publisher; }
constexpr bool is_publisher_tag(TagId t) { return (t & 0x80000000u) != 0; }
constexpr unsigned tag_language(TagId t) { return (t >> 24) & 0x7f; }
constexpr uint32_t tag_base(TagId t) { return t & 0xffffff; }

// Human-readable rendering, e.g. "fr_tag1234" or "@publisher77".
std::string tag_name(TagId t);

// Encodes a whole TagId set as a 192-bit Bloom filter (m=192, k=7), the same
// encoding BloomFilter192::add_tag applies to strings.
inline BloomFilter192 encode_tags(const std::vector<TagId>& tags) {
  BitVector192 bits;
  for (TagId t : tags) {
    // Derive the double-hashing pair from the id: h1/h2 are independent
    // mix64 streams, h2 forced odd.
    uint64_t a = mix64(static_cast<uint64_t>(t) ^ 0x51b9cbf6c24a9d4bull);
    uint64_t h1 = mix64(a);
    uint64_t h2 = mix64(a ^ 0x6a09e667f3bcc909ull) | 1;
    uint64_t pos = h1;
    for (unsigned i = 0; i < BloomFilter192::kNumHashes; ++i) {
      bits.set(static_cast<unsigned>(pos % BloomFilter192::kNumBits));
      pos += h2;
    }
  }
  return BloomFilter192(bits);
}

}  // namespace tagmatch::workload

#endif  // TAGMATCH_WORKLOAD_TAGS_H_

// Compact tag representation for the workload generator.
//
// The paper's workload uses string hash-tags, optionally "translated" into a
// language by prefixing it (cat -> fr_cat), plus publisher-id tags for
// frequent writers. We encode each such tag in a 32-bit TagId so that
// hundreds of millions of tag occurrences stay in memory; `tag_name` renders
// the equivalent string, and the Bloom encoder hashes the TagId directly
// (one mix64 stream per id — statistically identical to hashing the string).
#ifndef TAGMATCH_WORKLOAD_TAGS_H_
#define TAGMATCH_WORKLOAD_TAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/common/hash.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch::workload {

using TagId = uint32_t;

// Layout: bit 31 = publisher-id tag flag.
//   publisher tag:  [1][31-bit publisher id]
//   hashtag:        [0][7-bit language index][24-bit base tag id]
constexpr TagId make_hashtag(unsigned language, uint32_t base) {
  return (static_cast<TagId>(language & 0x7f) << 24) | (base & 0xffffff);
}
constexpr TagId make_publisher_tag(uint32_t publisher) { return 0x80000000u | publisher; }
constexpr bool is_publisher_tag(TagId t) { return (t & 0x80000000u) != 0; }
constexpr unsigned tag_language(TagId t) { return (t >> 24) & 0x7f; }
constexpr uint32_t tag_base(TagId t) { return t & 0xffffff; }

// Human-readable rendering, e.g. "fr_tag1234" or "@publisher77".
std::string tag_name(TagId t);

// Double-hashing pair of a TagId: h1/h2 are independent mix64 streams, h2
// forced odd — the TagId analogue of hash128() over the rendered string.
inline Hash128 tag_id_hash128(TagId t) {
  uint64_t a = mix64(static_cast<uint64_t>(t) ^ 0x51b9cbf6c24a9d4bull);
  return Hash128{mix64(a), mix64(a ^ 0x6a09e667f3bcc909ull) | 1};
}

// Encodes a whole TagId set under an explicit signature scheme.
inline BloomFilter192 encode_tags(const std::vector<TagId>& tags,
                                  const sig::SignatureScheme& scheme) {
  BitVector192 bits;
  for (TagId t : tags) {
    scheme.add_hash(bits, tag_id_hash128(t));
  }
  return BloomFilter192(bits);
}

// Encodes a whole TagId set as a 192-bit Bloom filter (m=192, k=7), the same
// encoding BloomFilter192::add_tag applies to strings. This default stays
// byte-identical forever (golden_test pins its fingerprint): it is the
// baseline bloom192 scheme, not whatever TAGMATCH_SCHEME selects.
inline BloomFilter192 encode_tags(const std::vector<TagId>& tags) {
  return encode_tags(tags, sig::bloom192_scheme());
}

}  // namespace tagmatch::workload

#endif  // TAGMATCH_WORKLOAD_TAGS_H_

// Bloom-filter signatures for tag sets, exactly as configured in the paper:
// m = 192 bits, k = 7 hash functions (double hashing). The signature of a set
// S is the union of the 7 bit positions of each tag in S.
//
// Subset semantics (paper §3): S1 ⊆ S2 implies B1 ⊆ B2 bitwise; B1 ⊆ B2
// implies S1 ⊆ S2 with high probability — false positives happen with the
// probability given by `false_positive_probability` (footnote 3).
#ifndef TAGMATCH_BLOOM_BLOOM_FILTER_H_
#define TAGMATCH_BLOOM_BLOOM_FILTER_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/common/hash.h"

namespace tagmatch {

class BloomFilter192 {
 public:
  static constexpr unsigned kNumHashes = 7;
  static constexpr unsigned kNumBits = BitVector192::kBits;

  BloomFilter192() = default;
  explicit BloomFilter192(const BitVector192& bits) : bits_(bits) {}

  // Adds one tag: sets the k = 7 positions h1 + i*h2 mod 192
  // (Kirsch-Mitzenmacher double hashing).
  void add_tag(std::string_view tag) {
    Hash128 h = hash128(tag);
    uint64_t pos = h.h1;
    for (unsigned i = 0; i < kNumHashes; ++i) {
      bits_.set(static_cast<unsigned>(pos % kNumBits));
      pos += h.h2;
    }
  }

  // Builds the signature of a whole tag set.
  static BloomFilter192 of(std::span<const std::string> tags) {
    BloomFilter192 f;
    for (const auto& t : tags) {
      f.add_tag(t);
    }
    return f;
  }

  // Probabilistic membership test for a single tag.
  bool maybe_contains(std::string_view tag) const {
    Hash128 h = hash128(tag);
    uint64_t pos = h.h1;
    for (unsigned i = 0; i < kNumHashes; ++i) {
      if (!bits_.test(static_cast<unsigned>(pos % kNumBits))) {
        return false;
      }
      pos += h.h2;
    }
    return true;
  }

  // Bitwise subset check — the core operation of the whole system.
  bool subset_of(const BloomFilter192& other) const { return bits_.subset_of(other.bits_); }

  const BitVector192& bits() const { return bits_; }
  unsigned popcount() const { return bits_.popcount(); }
  bool operator==(const BloomFilter192&) const = default;
  auto operator<=>(const BloomFilter192& o) const { return bits_ <=> o.bits_; }

  // Footnote-3 formula: probability that a set S1 with |S1 \ S2| = `extra`
  // tags outside S2 (|S2| = `query_size` tags) nevertheless satisfies
  // B1 ⊆ B2. For (m=192, k=7, |S2|=10, extra=3) this is about 1e-11.
  static double false_positive_probability(unsigned query_size, unsigned extra);

 private:
  BitVector192 bits_;
};

}  // namespace tagmatch

#endif  // TAGMATCH_BLOOM_BLOOM_FILTER_H_

// Bloom-filter signatures for tag sets, exactly as configured in the paper:
// m = 192 bits, k = 7 hash functions (double hashing). The signature of a set
// S is the union of the 7 bit positions of each tag in S.
//
// Subset semantics (paper §3): S1 ⊆ S2 implies B1 ⊆ B2 bitwise; B1 ⊆ B2
// implies S1 ⊆ S2 with high probability — false positives happen with the
// probability given by `false_positive_probability` (footnote 3).
#ifndef TAGMATCH_BLOOM_BLOOM_FILTER_H_
#define TAGMATCH_BLOOM_BLOOM_FILTER_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/common/hash.h"

namespace tagmatch {

class BloomFilter192 {
 public:
  static constexpr unsigned kNumHashes = 7;
  static constexpr unsigned kNumBits = BitVector192::kBits;

  BloomFilter192() = default;
  explicit BloomFilter192(const BitVector192& bits) : bits_(bits) {}

  // The k = 7 probe positions (h1 + i*step) mod 192 of one tag
  // (Kirsch-Mitzenmacher double hashing), shared by every add/probe path.
  // A step hash ≡ 0 mod m would collapse all k probes onto one bit, gutting
  // the filter for that tag; it is guarded by forcing the step odd (step
  // even in that case, since m is even, so |1 is +1). hash128() and the
  // workload's TagId stream already force h2 odd, so the guard never fires
  // for those — it protects direct Hash128 constructions (pre-hashed APIs,
  // fuzzers, persisted hashes from other producers).
  static void probe_positions(const Hash128& h, unsigned out[kNumHashes]) {
    uint64_t step = h.h2;
    if (step % kNumBits == 0) {
      step |= 1;
    }
    uint64_t pos = h.h1;
    for (unsigned i = 0; i < kNumHashes; ++i) {
      out[i] = static_cast<unsigned>(pos % kNumBits);
      pos += step;
    }
  }

  // Adds one tag: sets its k = 7 probe positions.
  void add_tag(std::string_view tag) {
    unsigned pos[kNumHashes];
    probe_positions(hash128(tag), pos);
    for (unsigned p : pos) {
      bits_.set(p);
    }
  }

  // Builds the signature of a whole tag set.
  static BloomFilter192 of(std::span<const std::string> tags) {
    BloomFilter192 f;
    for (const auto& t : tags) {
      f.add_tag(t);
    }
    return f;
  }

  // Probabilistic membership test for a single tag.
  bool maybe_contains(std::string_view tag) const {
    unsigned pos[kNumHashes];
    probe_positions(hash128(tag), pos);
    for (unsigned p : pos) {
      if (!bits_.test(p)) {
        return false;
      }
    }
    return true;
  }

  // Bitwise subset check — the core operation of the whole system.
  bool subset_of(const BloomFilter192& other) const { return bits_.subset_of(other.bits_); }

  const BitVector192& bits() const { return bits_; }
  unsigned popcount() const { return bits_.popcount(); }
  bool operator==(const BloomFilter192&) const = default;
  auto operator<=>(const BloomFilter192& o) const { return bits_ <=> o.bits_; }

  // Footnote-3 formula: probability that a set S1 with |S1 \ S2| = `extra`
  // tags outside S2 (|S2| = `query_size` tags) nevertheless satisfies
  // B1 ⊆ B2. For (m=192, k=7, |S2|=10, extra=3) this is about 1e-11.
  static double false_positive_probability(unsigned query_size, unsigned extra);

 private:
  BitVector192 bits_;
};

}  // namespace tagmatch

#endif  // TAGMATCH_BLOOM_BLOOM_FILTER_H_

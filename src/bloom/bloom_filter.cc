#include "src/bloom/bloom_filter.h"

#include <cmath>

namespace tagmatch {

double BloomFilter192::false_positive_probability(unsigned query_size, unsigned extra) {
  // P(B1 ⊆ B2) = (1 - e^{-k|S2|/m})^{k|S1\S2|}
  const double m = kNumBits;
  const double k = kNumHashes;
  const double fill = 1.0 - std::exp(-k * static_cast<double>(query_size) / m);
  return std::pow(fill, k * static_cast<double>(extra));
}

}  // namespace tagmatch

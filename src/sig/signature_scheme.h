// Pluggable signature schemes: how a tag set becomes a 192-bit signature,
// and which subset-test code path the matcher runs over those signatures.
//
// The paper fixes one design point — a flat Bloom filter with m = 192 and
// k = 7 (double hashing) tested three 64-bit blocks at a time (footnote 4).
// Successor work (see PAPERS.md: register-blocked GPU Bloom filters,
// two-choice blocked filters) changes how the bits are *placed* and how the
// test is *executed*, but not the storage shape: every scheme here writes
// into the same BitVector192, so the partitioner, partition table, packed
// outputs, H2D layout and persistence arrays are scheme-oblivious.
//
// Soundness constraint. Subset matching relies on the union invariant:
//   sig(S) = union over t in S of pattern(t),  pattern(t) a function of t only
// which gives S1 ⊆ S2  =>  sig(S1) ⊆ sig(S2) bitwise, with one-sided error.
// Every scheme's add_hash MUST be a deterministic per-tag pattern. This is
// why the "two-choice" scheme below materializes both hash choices instead
// of load-balancing between them: an insertion-order-dependent choice would
// break the invariant and produce false *negatives*.
//
// A scheme is selected at table-build time (TagMatchConfig::signature_scheme,
// the --signature-scheme flag, or the TAGMATCH_SCHEME environment variable)
// and is persisted in the engine index and shard manifest; loading an index
// built under a different scheme fails with a clear error.
#ifndef TAGMATCH_SIG_SIGNATURE_SCHEME_H_
#define TAGMATCH_SIG_SIGNATURE_SCHEME_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/common/bit_vector.h"
#include "src/common/hash.h"

namespace tagmatch::sig {

// Stable on-disk identifiers (engine index v3, shard manifest v2).
enum class SchemeId : uint32_t {
  kBloom192 = 0,    // The paper's flat Bloom filter (m=192, k=7).
  kBlocked64 = 1,   // Register-blocked: one 64-bit lane per tag, k'=4.
  kTwoChoice64 = 2, // Two-choice blocked: 2+2 bits in two hash-chosen lanes.
};

// How the subset-match inner loop executes the three-block test. The result
// is identical either way (it is the same bitwise relation); what differs is
// the instruction pattern. kBranchChain is the paper's footnote-4 chain of
// three early-exit compares; kOrReduce folds the three AND-NOT terms into one
// branch-free OR-reduce, which blocked schemes prefer: their signatures are
// dense in one lane and empty elsewhere, so the early exit almost never
// fires and the branches only cost mispredictions (on the GPU, divergence).
enum class KernelVariant : uint8_t {
  kBranchChain = 0,
  kOrReduce = 1,
};

inline bool subset_test(KernelVariant v, const BitVector192& f, const BitVector192& q) {
  if (v == KernelVariant::kOrReduce) {
    return ((f.block(0) & ~q.block(0)) | (f.block(1) & ~q.block(1)) |
            (f.block(2) & ~q.block(2))) == 0;
  }
  return f.subset_of(q);
}

// Batch prefilter probe: appends to `out` the index of every query in the
// batch that covers `mask` (mask ⊆ query), returning how many matched. The
// inner test is branch-free so the loop auto-vectorizes; this is the probe
// the CPU pre-process / kernel-mirror compaction stages run per block.
// `out` must have room for queries.size() entries (batches are <= 256).
inline uint32_t prefilter_batch(KernelVariant v, const BitVector192& mask,
                                std::span<const BitVector192> queries, uint8_t* out) {
  uint32_t n = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    out[n] = static_cast<uint8_t>(i);
    n += subset_test(v, mask, queries[i]) ? 1 : 0;
  }
  return n;
}

class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  virtual SchemeId id() const = 0;
  virtual std::string_view name() const = 0;
  // Bits a single tag sets (the scheme's k); used by the FPR model and docs.
  virtual unsigned bits_per_tag() const = 0;
  virtual KernelVariant kernel_variant() const = 0;

  // Sets this tag's deterministic bit pattern (see the union invariant
  // above). `h` is the tag's double-hashing pair.
  virtual void add_hash(BitVector192& bits, const Hash128& h) const = 0;

  // Single-tag membership probe: true iff every pattern bit of `h` is set.
  virtual bool probe(const BitVector192& bits, const Hash128& h) const = 0;

  // Probability that a set with `extra` tags outside a query of `query_size`
  // tags nevertheless passes the bitwise subset test (the footnote-3 model,
  // generalized per scheme). Drives the per-scheme MAX_P re-derivation in
  // bench_fig7_maxp.
  virtual double false_positive_probability(unsigned query_size, unsigned extra) const = 0;

  // Signature of a whole string-tag set under this scheme.
  BitVector192 encode(std::span<const std::string> tags) const {
    BitVector192 bits;
    for (const auto& t : tags) {
      add_hash(bits, hash128(t));
    }
    return bits;
  }
};

// --- Registry -------------------------------------------------------------
// Schemes are stateless singletons with process lifetime; raw pointers to
// them are safe to stash in configs.

const SignatureScheme& bloom192_scheme();
const SignatureScheme& blocked64_scheme();
const SignatureScheme& twochoice64_scheme();

// All registered schemes, baseline first.
std::span<const SignatureScheme* const> all_schemes();

// nullptr if the name / on-disk id is unknown.
const SignatureScheme* scheme_by_name(std::string_view name);
const SignatureScheme* scheme_by_id(uint32_t id);

// Comma-separated scheme names, for usage/error messages.
std::string scheme_names_csv();

// Scheme an engine should run under: the configured scheme if non-null, else
// the TAGMATCH_SCHEME environment variable (unknown names are ignored with a
// one-time stderr warning), else the Bloom192 baseline.
const SignatureScheme& resolve(const SignatureScheme* configured);

}  // namespace tagmatch::sig

#endif  // TAGMATCH_SIG_SIGNATURE_SCHEME_H_

#include "src/sig/signature_scheme.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/bloom/bloom_filter.h"

namespace tagmatch::sig {
namespace {

// --- Bloom192 (baseline) --------------------------------------------------
// The paper's flat filter, delegating to BloomFilter192's guarded probe
// sequence so scheme and legacy paths stay bit-identical by construction.
class Bloom192Scheme final : public SignatureScheme {
 public:
  SchemeId id() const override { return SchemeId::kBloom192; }
  std::string_view name() const override { return "bloom192"; }
  unsigned bits_per_tag() const override { return BloomFilter192::kNumHashes; }
  KernelVariant kernel_variant() const override { return KernelVariant::kBranchChain; }

  void add_hash(BitVector192& bits, const Hash128& h) const override {
    unsigned pos[BloomFilter192::kNumHashes];
    BloomFilter192::probe_positions(h, pos);
    for (unsigned p : pos) {
      bits.set(p);
    }
  }

  bool probe(const BitVector192& bits, const Hash128& h) const override {
    unsigned pos[BloomFilter192::kNumHashes];
    BloomFilter192::probe_positions(h, pos);
    for (unsigned p : pos) {
      if (!bits.test(p)) {
        return false;
      }
    }
    return true;
  }

  double false_positive_probability(unsigned query_size, unsigned extra) const override {
    return BloomFilter192::false_positive_probability(query_size, extra);
  }
};

// --- Blocked64 ------------------------------------------------------------
// Register-blocked: each tag lives entirely in one hash-chosen 64-bit lane
// (a gpusim shared-memory tile word / one host register), setting k'=4 bits
// there via double hashing with an odd step (odd => coprime with 64 => the
// four positions are distinct). Building ORs a single precomposed word, and
// probing is one load + one compare — this is where the scheme's measured
// encode/probe speedup over the 7-probe flat filter comes from.
class Blocked64Scheme final : public SignatureScheme {
 public:
  static constexpr unsigned kLaneBits = BitVector192::kBlockBits;  // 64
  static constexpr unsigned kBitsPerTag = 4;

  static unsigned lane_of(const Hash128& h) {
    return static_cast<unsigned>(h.h1 % BitVector192::kBlocks);
  }
  static uint64_t mask_of(const Hash128& h) {
    // Low h1 bits picked the lane; place bits from the high parts of both
    // streams so the lane choice and in-lane positions stay independent.
    uint64_t pos = h.h1 >> 8;
    const uint64_t step = (h.h2 >> 8) | 1;
    uint64_t mask = 0;
    for (unsigned i = 0; i < kBitsPerTag; ++i) {
      mask |= uint64_t{1} << (pos % kLaneBits);
      pos += step;
    }
    return mask;
  }

  SchemeId id() const override { return SchemeId::kBlocked64; }
  std::string_view name() const override { return "blocked64"; }
  unsigned bits_per_tag() const override { return kBitsPerTag; }
  KernelVariant kernel_variant() const override { return KernelVariant::kOrReduce; }

  void add_hash(BitVector192& bits, const Hash128& h) const override {
    bits.block(lane_of(h)) |= mask_of(h);
  }

  bool probe(const BitVector192& bits, const Hash128& h) const override {
    const uint64_t m = mask_of(h);
    return (bits.block(lane_of(h)) & m) == m;
  }

  double false_positive_probability(unsigned query_size, unsigned extra) const override {
    // Uniform-lane approximation: a query of q tags leaves each of the 192
    // bits set with probability fill = 1 - exp(-k'*q/192); an extra tag
    // passes when all k' of its lane bits are covered.
    const double fill =
        1.0 - std::exp(-(double(kBitsPerTag) * query_size) / BitVector192::kBits);
    return std::pow(fill, double(kBitsPerTag) * extra);
  }
};

// --- TwoChoice64 ----------------------------------------------------------
// Two-choice blocked filter. Classic two-choice inserts pick the emptier of
// two candidate lanes, but that choice depends on insertion order and would
// break the union invariant (false negatives under subset matching) — so
// this scheme deterministically materializes BOTH choices: 2 bits in each of
// the two hash-chosen lanes, k=4 total. Probing checks both lanes; spreading
// a tag over two lanes decorrelates lane hot-spots for skewed tag
// distributions at the cost of touching two words.
class TwoChoice64Scheme final : public SignatureScheme {
 public:
  static constexpr unsigned kBitsPerLane = 2;
  static constexpr unsigned kBitsPerTag = 2 * kBitsPerLane;

  static unsigned lane1(const Hash128& h) {
    return static_cast<unsigned>(h.h1 % BitVector192::kBlocks);
  }
  static unsigned lane2(const Hash128& h) {
    return static_cast<unsigned>((h.h1 / BitVector192::kBlocks) % BitVector192::kBlocks);
  }
  static uint64_t lane_mask(uint64_t stream) {
    uint64_t pos = stream >> 8;
    const uint64_t step = (stream >> 32) | 1;
    uint64_t mask = 0;
    for (unsigned i = 0; i < kBitsPerLane; ++i) {
      mask |= uint64_t{1} << (pos % BitVector192::kBlockBits);
      pos += step;
    }
    return mask;
  }

  SchemeId id() const override { return SchemeId::kTwoChoice64; }
  std::string_view name() const override { return "twochoice64"; }
  unsigned bits_per_tag() const override { return kBitsPerTag; }
  KernelVariant kernel_variant() const override { return KernelVariant::kOrReduce; }

  void add_hash(BitVector192& bits, const Hash128& h) const override {
    bits.block(lane1(h)) |= lane_mask(h.h1);
    bits.block(lane2(h)) |= lane_mask(h.h2);
  }

  bool probe(const BitVector192& bits, const Hash128& h) const override {
    const uint64_t m1 = lane_mask(h.h1);
    const uint64_t m2 = lane_mask(h.h2);
    return (bits.block(lane1(h)) & m1) == m1 && (bits.block(lane2(h)) & m2) == m2;
  }

  double false_positive_probability(unsigned query_size, unsigned extra) const override {
    // Same uniform-fill model as Blocked64: k=4 bits per tag overall.
    const double fill =
        1.0 - std::exp(-(double(kBitsPerTag) * query_size) / BitVector192::kBits);
    return std::pow(fill, double(kBitsPerTag) * extra);
  }
};

const Bloom192Scheme g_bloom192;
const Blocked64Scheme g_blocked64;
const TwoChoice64Scheme g_twochoice64;

constexpr std::array<const SignatureScheme*, 3> kAll = {
    &g_bloom192, &g_blocked64, &g_twochoice64};

}  // namespace

const SignatureScheme& bloom192_scheme() { return g_bloom192; }
const SignatureScheme& blocked64_scheme() { return g_blocked64; }
const SignatureScheme& twochoice64_scheme() { return g_twochoice64; }

std::span<const SignatureScheme* const> all_schemes() { return kAll; }

const SignatureScheme* scheme_by_name(std::string_view name) {
  for (const SignatureScheme* s : kAll) {
    if (s->name() == name) {
      return s;
    }
  }
  return nullptr;
}

const SignatureScheme* scheme_by_id(uint32_t id) {
  for (const SignatureScheme* s : kAll) {
    if (static_cast<uint32_t>(s->id()) == id) {
      return s;
    }
  }
  return nullptr;
}

std::string scheme_names_csv() {
  std::string out;
  for (const SignatureScheme* s : kAll) {
    if (!out.empty()) {
      out += ", ";
    }
    out += s->name();
  }
  return out;
}

const SignatureScheme& resolve(const SignatureScheme* configured) {
  if (configured != nullptr) {
    return *configured;
  }
  const char* env = std::getenv("TAGMATCH_SCHEME");
  if (env != nullptr && *env != '\0') {
    if (const SignatureScheme* s = scheme_by_name(env)) {
      return *s;
    }
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "tagmatch: unknown TAGMATCH_SCHEME '%s' (valid: %s); "
                   "using bloom192\n",
                   env, scheme_names_csv().c_str());
    }
  }
  return g_bloom192;
}

}  // namespace tagmatch::sig

// ShardedTagMatch — the native sharded serving layer over N independent
// TagMatch engine shards.
//
// Motivation (§4.4, Fig. 11): the paper shards MongoDB and measures the
// architecture tax of scatter-gather over a general-purpose store (linear to
// 8 instances, ~3x overall at 24). This module is the same deployment shape
// built natively: sets are placed on shards by a stable hash of their Bloom
// signature (pluggable — see shard_policy.h), queries scatter to every shard
// through the engines' asynchronous pipelines, and a per-query gather merges
// the shard results while preserving the engine's exactly-once callback
// contract.
//
// What sharding buys over one big engine:
//  * consolidate() rebuilds all shards concurrently — total rebuild
//    wall-time drops to the slowest shard, and matching keeps flowing on
//    every shard throughout (the engines publish rebuilt indexes via epoch
//    snapshots, so there is no gate on the query path at all);
//  * each shard's tagset table, key table and GPU footprint is ~1/N of the
//    whole, so databases past a single engine's memory ceiling fit;
//  * an optional per-query shard timeout sheds slow shards: the gather then
//    delivers what arrived with MatchResult::partial set, bounding tail
//    latency at the cost of completeness (degraded-result contract).
//
// Persistence writes one manifest plus one index file per shard; a saved
// N-shard index loads into an M-shard instance by redistributing sets under
// the live policy (resharding on load).
#ifndef TAGMATCH_SHARD_SHARDED_TAGMATCH_H_
#define TAGMATCH_SHARD_SHARDED_TAGMATCH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/config.h"
#include "src/core/matcher.h"
#include "src/core/tagmatch.h"
#include "src/epoch/epoch_manager.h"
#include "src/obs/trace.h"
#include "src/shard/replica_set.h"
#include "src/shard/shard_policy.h"
#include "src/task/task_scheduler.h"

namespace tagmatch::shard {

struct ShardedConfig {
  // Number of independent logical shards. load_index reshards a manifest
  // saved with a different count, and reshard() changes it live (split or
  // merge with epoch handoff).
  unsigned num_shards = 2;
  // Replicas per logical shard (see replica_set.h). Writes fan out
  // best-effort to all of them; reads go to one, hedged to a second when
  // hedge_delay is set. 1 = no replication (the historical layout).
  unsigned num_replicas = 1;
  // Hedge a shard read to a backup replica when the primary has not answered
  // within this budget (floored by 2x the shard's rolling p95). Zero
  // disables hedging and the miss-driven replica health machinery. Only
  // meaningful with num_replicas > 1.
  std::chrono::milliseconds hedge_delay{0};
  // Consecutive hedge misses before a replica is quarantined, and how long
  // it then sits out before being probed.
  uint32_t replica_miss_threshold = 3;
  std::chrono::milliseconds replica_quarantine_period{50};
  // Engine configuration applied to every replica of every shard.
  TagMatchConfig shard;
  // Set placement; defaults to SignatureHashPolicy (see shard_policy.h).
  std::shared_ptr<const ShardPolicy> policy;
  // Per-query gather timeout. When a query's shard responses have not all
  // arrived within this budget, the gather fires with what it has and
  // MatchResult::partial set; late responses are dropped (counted in
  // ShardStats::shards_shed). Zero waits indefinitely (exact results) unless
  // the caller supplies a per-query deadline through the deadline-carrying
  // match_result_async overload, which takes the tighter of the two budgets.
  std::chrono::milliseconds query_timeout{0};
  // Rebuild shards in parallel during consolidate(). Disable to measure the
  // sequential-rebuild baseline (bench_shard_scaling reports both).
  bool concurrent_consolidate = true;
};

class ShardedTagMatch : public Matcher {
 public:
  explicit ShardedTagMatch(ShardedConfig config = ShardedConfig{});
  ~ShardedTagMatch() override;

  ShardedTagMatch(const ShardedTagMatch&) = delete;
  ShardedTagMatch& operator=(const ShardedTagMatch&) = delete;

  // --- Table maintenance (staged; effective after consolidate) ---
  void add_set(std::span<const std::string> tags, Key key) override;
  void add_set(const BloomFilter192& filter, Key key) override;
  void add_set_hashed(const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
                      Key key);
  void remove_set(std::span<const std::string> tags, Key key) override;
  void remove_set(const BloomFilter192& filter, Key key) override;
  // Rebuilds every shard (concurrently by default). Matching stays live on
  // every shard throughout: each engine publishes its rebuilt index as an
  // epoch snapshot, so no gather stalls on a rebuild.
  void consolidate() override;

  // --- Matching ---
  // Scatter to all shards, gather exactly once per query. The degraded
  // result surface: partial is true iff the gather timed out and shed at
  // least one shard's response.
  struct MatchResult {
    std::vector<Key> keys;
    bool partial = false;
  };
  using ResultCallback = std::function<void(MatchResult)>;
  void match_result_async(const BloomFilter192& query, MatchKind kind, ResultCallback callback);
  // Deadline-carrying variants (the broker's publish-SLO path): `deadline_ns`
  // is an absolute now_ns() timestamp (0 = none). The gather fires partial at
  // the tighter of the deadline and the configured query_timeout, and the
  // deadline is also propagated to every shard engine so their deadline-aware
  // batch close bounds in-shard queueing.
  void match_result_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                          ResultCallback callback);
  void match_result_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                          ResultCallback callback);
  // Trace-carrying variants: a valid `ctx` makes the router record its gather
  // span under the caller's trace (parented on ctx.parent_span_id) and fan a
  // per-query child context out to every shard engine, so one publish yields
  // one connected trace across shards and their GPU streams.
  void match_result_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                          const obs::TraceContext& ctx, ResultCallback callback);
  void match_result_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                          const obs::TraceContext& ctx, ResultCallback callback);

  // Matcher surface; the callback receives keys only (partial results are
  // still delivered — inspect ShardStats to observe shedding).
  void match_async(const BloomFilter192& query, MatchKind kind, MatchCallback callback) override;
  void match_async(std::span<const std::string> tags, MatchKind kind,
                   MatchCallback callback) override;
  // Deadline-carrying Matcher overloads: the deadline reaches the shard
  // engines (early batch close) but does NOT shed the gather — a keys-only
  // callback cannot express a partial result, so these stay exact unless
  // config query_timeout sheds as before. Use match_result_async with a
  // deadline for deadline-driven shedding.
  void match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                   MatchCallback callback) override;
  void match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                   MatchCallback callback) override;
  void match_async(const BloomFilter192& query, MatchKind kind, int64_t deadline_ns,
                   const obs::TraceContext& ctx, MatchCallback callback) override;
  void match_async(std::span<const std::string> tags, MatchKind kind, int64_t deadline_ns,
                   const obs::TraceContext& ctx, MatchCallback callback) override;
  std::vector<Key> match(const BloomFilter192& query) override;
  std::vector<Key> match_unique(const BloomFilter192& query) override;
  std::vector<Key> match(std::span<const std::string> tags) override;
  std::vector<Key> match_unique(std::span<const std::string> tags) override;

  // --- Persistence ---
  // save_index writes `path` (the manifest: shard count, policy name, shard
  // file names) plus `path`.shard<i> per shard. load_index restores a
  // manifest saved with the same shard count and policy directly; any other
  // manifest is resharded: every saved shard is read back and its sets
  // redistributed across this instance's shards under the live policy.
  // Returns false on I/O or format error without touching the live engines.
  bool save_index(const std::string& path) const override;
  bool load_index(const std::string& path) override;

  // --- Live resharding ---
  // Splits or merges the instance to `new_num_shards` logical shards under
  // traffic: queries keep flowing against the old layout until the new one
  // is built and committed through the router's epoch manager (the same
  // handoff load_index uses), and concurrent writes are journaled to a
  // mirror and replayed onto the new layout, so no set is lost across the
  // handoff (dedupe-on-apply staging makes the replay idempotent).
  bool reshard(unsigned new_num_shards);

  void flush() override;

  // --- Introspection ---
  Stats stats() const override;  // Aggregated over shards (Stats::operator+=).

  struct ShardStats {
    Matcher::Stats total;
    std::vector<Matcher::Stats> per_shard;
    uint64_t queries = 0;          // Gathers started.
    uint64_t partial_results = 0;  // Gathers fired by timeout (degraded).
    uint64_t shards_shed = 0;      // Shard responses outstanding at timeout.
    uint64_t hedged = 0;           // Backup probes fired at slow primaries.
    uint64_t failovers = 0;        // Reads routed around an unhealthy replica.
    uint64_t repairs = 0;          // Anti-entropy replica repair events.
    double wall_consolidate_seconds = 0;  // Last consolidate(), end to end.
  };
  ShardStats shard_stats() const;

  // --- Replica introspection & chaos hooks (forwarded to the shard's
  // ReplicaSet; see replica_set.h) ---
  ReplicaHealth replica_health(unsigned shard, unsigned replica) const;
  std::vector<std::pair<unsigned, ReplicaHealth>> replica_health_history(unsigned shard) const;
  std::vector<std::pair<std::array<uint64_t, 3>, Key>> replica_dump(unsigned shard,
                                                                    unsigned replica) const;
  void kill_replica(unsigned shard, unsigned replica);
  void restart_replica(unsigned shard, unsigned replica);

  // Merge of the router's own registry (shard.* counters, stage.gather_ns,
  // router-side stage.consolidate_ns) with every shard engine's registry —
  // MetricsSnapshot::operator+= is the aggregation, so histograms combine
  // bucket-wise and percentiles stay meaningful across shards.
  obs::MetricsSnapshot metrics_snapshot() const override;
  // Router gather/consolidate spans plus every shard's spans, by start time.
  std::vector<obs::Span> trace_snapshot() const override;
  // Ring-overwrite drops summed over the router's tracer and every shard's.
  uint64_t trace_dropped() const override;

  unsigned num_shards() const { return num_shards_.load(std::memory_order_acquire); }
  unsigned num_replicas() const { return config_.num_replicas; }
  const ShardPolicy& policy() const { return *policy_; }

 private:
  struct Gather;

  // The logical shards (each an R-replica ReplicaSet), published as one
  // immutable unit through the router's epoch manager: readers pin
  // router_epoch_ and load engines_; a commit swaps the pointer and retires
  // the outgoing set once readers drain.
  struct EngineSet {
    std::vector<std::unique_ptr<ReplicaSet>> shards;
  };

  // A write captured while a reshard's mirror window is open, replayed onto
  // the new layout before and after the epoch handoff.
  struct MirrorOp {
    bool add = true;
    BloomFilter192 filter;
    std::vector<uint64_t> tag_hashes;
    Key key = 0;
  };

  uint32_t shard_of(const BitVector192& filter, Key key, size_t count) const {
    return policy_->shard_of(filter, key, static_cast<unsigned>(count));
  }
  std::unique_ptr<ReplicaSet> make_replica_set(unsigned shard_index);
  // Appends to the mirror journal when a reshard window is open.
  void mirror(bool add, const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
              Key key);
  // Replays journal batches onto `targets` until the journal is empty.
  void drain_mirror(const std::vector<ReplicaSet*>& targets, size_t new_count);
  // String-tag entry points must encode under the same signature scheme the
  // shard engines run (scheme_, pinned at construction) — a bloom192-encoded
  // query against blocked64-encoded tables silently matches nothing.
  BloomFilter192 encode(std::span<const std::string> tags) const;
  // `gather_deadline_ns` sheds the gather when it passes (0 = no shedding);
  // `shard_deadline_ns` is forwarded to the shard engines' deadline-aware
  // batch close (0 = none). Both absolute, now_ns() domain.
  // A valid `ctx` turns on causal tracing for the query: the gather span
  // records under it and each shard receives a child context parented on the
  // (pre-allocated) gather span id.
  void scatter(const BloomFilter192& query, std::vector<uint64_t> tag_hashes, MatchKind kind,
               int64_t gather_deadline_ns, int64_t shard_deadline_ns,
               const obs::TraceContext& ctx, ResultCallback callback);
  // Starts the timeout sweeper on first use (config query_timeout starts it
  // eagerly; per-query deadlines start it on demand).
  void ensure_timeout_thread();
  void absorb(const std::shared_ptr<Gather>& gather, std::vector<Key> keys);
  // Fires the gather's callback exactly once; `lock` must hold gather->mu
  // and is released before the callback runs.
  void fire(const std::shared_ptr<Gather>& gather, std::unique_lock<std::mutex>& lock,
            bool partial);
  // Cross-shard merge + callback + gather span, after the gather has been
  // claimed (fired set under its mutex). Runs as a router-scheduler task on
  // the last-response path, inline on the timeout-shed path.
  void finish_gather(const std::shared_ptr<Gather>& gather, bool partial);
  void timeout_loop();
  // Publishes freshly loaded engines: completes outstanding gathers, swaps
  // the engine-set pointer, waits for pinned readers to drain, then retires
  // the outgoing engines (their destructors flush in-flight work).
  void commit_engines(std::vector<std::unique_ptr<ReplicaSet>> fresh);
  std::vector<Key> match_sync(const BloomFilter192& query, MatchKind kind,
                              std::vector<uint64_t> tag_hashes);

  ShardedConfig config_;
  const sig::SignatureScheme* scheme_ = nullptr;  // Resolved once, never null.
  std::shared_ptr<const ShardPolicy> policy_;
  // Router-level task scheduler: gather merges, concurrent consolidate and
  // reshard-on-load rebuilds. Deliberately distinct from the shard engines'
  // pools — a rebuild task blocks in a shard's flush(), which needs that
  // shard's own workers to make progress (docs/CONCURRENCY.md).
  std::shared_ptr<task::TaskScheduler> scheduler_;
  // Epoch-published engine set (docs/CONCURRENCY.md, "Epoch lifecycle &
  // reclamation"): every reader — scatter, stats, flush, save — pins
  // router_epoch_ for the duration of its walk; commit_engines() is the only
  // writer. Registers the router's epoch.* metrics in obs_.
  std::unique_ptr<epoch::EpochManager> router_epoch_;
  std::atomic<const EngineSet*> engines_{nullptr};  // Never null after ctor.
  std::shared_ptr<const EngineSet> engines_owner_;  // Writer-side, commit_mu_.
  std::mutex commit_mu_;

  // Outstanding gathers, registered only when query_timeout is enabled; the
  // timeout thread sweeps fired entries and sheds overdue ones.
  mutable std::mutex gathers_mu_;
  std::list<std::shared_ptr<Gather>> gathers_;
  std::mutex timeout_start_mu_;  // Guards lazy timeout_thread_ creation.
  std::thread timeout_thread_;
  std::mutex timeout_mu_;
  std::condition_variable timeout_cv_;
  bool stopping_ = false;

  std::atomic<uint64_t> outstanding_{0};  // Gathers not yet fired.

  // Router-level observability: counters + the gather-stage histogram live
  // in the router's own registry (each shard engine keeps its own, so
  // per-shard stats stay per-shard); metrics_snapshot() merges them.
  // Current logical shard count: config_.num_shards at construction, updated
  // by reshard(). Placement always derives from the pinned engine set's own
  // size so a read racing a reshard stays self-consistent.
  std::atomic<unsigned> num_shards_;

  // Reshard mirror window: one reshard at a time (reshard_mu_); while
  // mirroring_ is set, every write appends to the journal after applying to
  // the live (old) layout.
  std::mutex reshard_mu_;
  std::atomic<bool> mirroring_{false};
  std::mutex mirror_mu_;
  std::vector<MirrorOp> mirror_journal_;

  obs::PipelineObs obs_;
  obs::Counter* queries_ = nullptr;
  obs::Counter* partial_results_ = nullptr;
  obs::Counter* shards_shed_ = nullptr;
  obs::Counter* hedged_ = nullptr;     // Shared with every ReplicaSet.
  obs::Counter* failovers_ = nullptr;  // (registry dedupes by name).
  obs::Counter* repairs_ = nullptr;
  std::atomic<uint64_t> gather_seq_{0};
  std::atomic<uint64_t> consolidate_seq_{0};
  // Written by consolidate(), read by shard_stats() — atomic so a stats
  // poll racing a rebuild reads a whole value, never a torn one.
  std::atomic<double> wall_consolidate_seconds_{0};
};

}  // namespace tagmatch::shard

#endif  // TAGMATCH_SHARD_SHARDED_TAGMATCH_H_

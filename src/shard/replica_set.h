// ReplicaSet — R-way replication of one logical shard.
//
// Wraps R identical TagMatch engines behind a single-engine-shaped surface so
// the sharded router (sharded_tagmatch.*) can treat a logical shard as one
// matcher while this layer handles:
//
//  * Per-replica health: the kHealthy → kQuarantined → kProbing → kRecovered
//    state machine from the engine's per-device resilience (gpu_engine.h),
//    driven by deadline misses — a replica whose response has not arrived by
//    the hedge deadline (config hedge_delay floored by 2x the shard's rolling
//    p95 of claimed query latencies) takes a miss; `miss_threshold`
//    consecutive misses quarantine it. After `quarantine_period` the next
//    query sends the replica a shadow probe (results discarded — a stale
//    replica must never serve) and a timely probe response readmits it.
//  * Hedged reads: every query is dispatched to one primary replica chosen
//    round-robin over serving replicas (hard failover: quarantined and
//    killed replicas are skipped). When the primary exceeds the hedge
//    deadline, a sweeper fires the same query at a backup replica; whichever
//    response arrives first claims the query under a mutex-guarded fired
//    flag — the same exactly-once claim shape as the router's gather — and
//    late responses are dropped.
//  * Best-effort replicated writes: add/remove fan out to every live
//    replica; a dead replica (chaos kill, or a `replica` fault rule) just
//    misses them. Anti-entropy at consolidate(): the replica with the most
//    applied writes is the reference, and every lagging replica is repaired
//    by content diff (for_each_set enumeration — the same data the manifest
//    files serialize) before it may serve again.
//
// With R == 1, no hedging and no replica fault rules, every call forwards
// straight to the single engine — the replication layer costs nothing until
// it is configured.
#ifndef TAGMATCH_SHARD_REPLICA_SET_H_
#define TAGMATCH_SHARD_REPLICA_SET_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/config.h"
#include "src/core/matcher.h"
#include "src/core/tagmatch.h"
#include "src/inject/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tagmatch::shard {

// Same integer values as DeviceHealth so replica.health.<s>.<r> gauges read
// like device.health.<d> gauges.
enum class ReplicaHealth : uint32_t {
  kHealthy = 0,
  kQuarantined = 1,
  kProbing = 2,
  kRecovered = 3,
};

const char* replica_health_name(ReplicaHealth health);

struct ReplicaConfig {
  unsigned num_replicas = 1;
  // Hedge a query to a backup replica when the primary has not answered
  // within this budget (floored at runtime by 2x the rolling p95, so a
  // generally-slow shard does not hedge every query). Zero disables hedging
  // AND the miss-driven health machinery — replicas then only fail over when
  // a dispatch is knowably dead (killed replica).
  std::chrono::milliseconds hedge_delay{0};
  // Consecutive hedge-deadline misses before a replica is quarantined.
  uint32_t miss_threshold = 3;
  // How long a quarantined replica sits out before it is probed.
  std::chrono::milliseconds quarantine_period{50};
  // Logical shard index, used only to name the replica.health.<s>.<r> gauges.
  unsigned shard_index = 0;
  // When set, every replica dispatch and write consults site `replica` with
  // the replica index as the device: kFail black-holes it, kStall delays the
  // response (see fault.h).
  std::shared_ptr<inject::FaultInjector> fault_injector;
};

class ReplicaSet {
 public:
  // Engines are built from `engine_config`; replica gauges and the
  // replica.{hedged,failovers,repairs} counters register in `registry`
  // (shared with the router, so counters aggregate across shards).
  ReplicaSet(const TagMatchConfig& engine_config, ReplicaConfig config,
             obs::Registry* registry);
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  // --- Replicated writes (best-effort: dead replicas miss them) ---
  void add_set(std::span<const std::string> tags, Matcher::Key key);
  void add_set(const BloomFilter192& filter, Matcher::Key key);
  void add_set_hashed(const BloomFilter192& filter, std::span<const uint64_t> tag_hashes,
                      Matcher::Key key);
  void remove_set(std::span<const std::string> tags, Matcher::Key key);
  void remove_set(const BloomFilter192& filter, Matcher::Key key);

  // Consolidates every live replica, then runs anti-entropy: lagging or
  // freshly restarted replicas are diffed against the most-written replica
  // and repaired (replica.repairs counts repair events).
  void consolidate();

  // Exactly-once asynchronous match against one replica (hedged to a second
  // on a slow primary). `tag_hashes` may be empty (signature-only match).
  void match(const BloomFilter192& query, std::span<const uint64_t> tag_hashes,
             Matcher::MatchKind kind, int64_t deadline_ns, const obs::TraceContext& ctx,
             Matcher::MatchCallback callback);

  // Blocks until every accepted query has completed (including queries whose
  // primary died and that resolve through a hedge or the exhaustion backstop).
  void flush();

  // --- Persistence (one file per logical shard; replicas are identical) ---
  bool save_index(const std::string& path) const;  // From the reference replica.
  bool load_index(const std::string& path);        // Into every replica.

  // --- Introspection (reference replica: logical-shard semantics) ---
  Matcher::Stats stats() const;
  void for_each_set(
      const std::function<void(const BloomFilter192& filter, std::span<const Matcher::Key> keys,
                               std::span<const uint64_t> tag_hashes)>& fn) const;
  // Merged across replicas — every replica's engine did real work.
  obs::MetricsSnapshot metrics_snapshot() const;
  std::vector<obs::Span> trace_snapshot() const;
  uint64_t trace_dropped() const;

  unsigned num_replicas() const { return static_cast<unsigned>(replicas_.size()); }
  ReplicaHealth health(unsigned replica) const;
  // Health transitions in occurrence order: (replica, new state). The
  // initial kHealthy state is not logged (mirrors GpuEngine::health_history).
  std::vector<std::pair<unsigned, ReplicaHealth>> health_history() const;

  // Full content of one replica — (filter blocks..., key) rows, sorted — for
  // convergence assertions in tests.
  std::vector<std::pair<std::array<uint64_t, 3>, Matcher::Key>> dump_replica(
      unsigned replica) const;

  // --- Chaos hooks (tests / admin ops) ---
  // Black-holes the replica: subsequent writes skip it and dispatched
  // queries never answer (the health machinery discovers this the hard way).
  void kill_replica(unsigned replica);
  // Replaces a (typically killed) replica with a fresh empty engine. It
  // stays quarantined — never selected as primary or hedge target — until
  // anti-entropy repairs it at the next consolidate().
  void restart_replica(unsigned replica);

 private:
  struct Replica {
    std::unique_ptr<TagMatch> engine;
    std::atomic<uint32_t> health{static_cast<uint32_t>(ReplicaHealth::kHealthy)};
    std::atomic<uint32_t> miss_streak{0};
    std::atomic<int64_t> quarantine_until_ns{0};
    std::atomic<bool> dead{false};
    std::atomic<bool> needs_repair{false};
    // Writes actually applied (skipped while dead / fault-dropped): the
    // replica with the highest count is the anti-entropy reference.
    std::atomic<uint64_t> applied_writes{0};
    // Writes this replica lost to a fault-plan drop since its last repair.
    // Count equality alone cannot prove convergence once any replica dropped
    // a write (two replicas can drop *different* writes and end with equal
    // applied counts), so anti-entropy falls back to the content diff
    // whenever this is nonzero on either side of the comparison.
    std::atomic<uint64_t> dropped_writes{0};
    obs::Gauge* health_gauge = nullptr;
  };

  // One hedge-tracked in-flight query. `fired` under `mu` is the
  // exactly-once claim; `tried` records which replicas were dispatched so a
  // hedge never re-asks a replica that already has the query.
  //
  // Ownership protocol for the hedge bookkeeping (`tried`, `primary`,
  // `dispatch_ns`, `hedge_at_ns`): the accepting thread writes them before
  // publishing the Pending into `pending_` (the push under `pending_mu_` is
  // the happens-before edge); after publication only the sweeper touches
  // them, under `pending_mu_`. In the non-hedged path the Pending is never
  // published, so the accepting thread owns them throughout.
  struct Pending {
    BloomFilter192 query;
    std::vector<uint64_t> tag_hashes;
    Matcher::MatchKind kind = Matcher::MatchKind::kMatch;
    int64_t deadline_ns = 0;
    obs::TraceContext ctx;
    Matcher::MatchCallback callback;
    std::mutex mu;
    bool fired = false;
    int64_t start_ns = 0;     // Accepted (for the claimed-latency sample).
    int64_t dispatch_ns = 0;  // Last dispatch (re-armed when a hedge fires).
    int64_t hedge_at_ns = 0;
    uint32_t tried = 0;  // Bitmask of replicas dispatched to.
    unsigned primary = 0;  // Replica the current hedge deadline watches.
  };

  // Shadow probe of a quarantined replica; results are discarded.
  struct Probe {
    unsigned replica = 0;
    int64_t sent_ns = 0;
    int64_t deadline_ns = 0;
  };

  // True if the plan has any `replica` rules (otherwise dispatch never
  // consults the injector).
  static bool plan_targets_replicas(const inject::FaultInjector* injector);

  void set_health(unsigned replica, ReplicaHealth health);
  // now >= quarantine_until: flips kQuarantined replicas to kProbing and
  // launches a shadow probe alongside the given query.
  void maybe_probe(const BloomFilter192& query, std::span<const uint64_t> tag_hashes,
                   Matcher::MatchKind kind, int64_t deadline_ns, int64_t now);
  // Selects the next serving replica (round-robin, skipping quarantined /
  // probing / dead-marked replicas). Counts a failover when the rotation had
  // to skip. Returns num_replicas() when nothing is selectable.
  unsigned pick_replica(uint32_t exclude_mask, bool count_failover);
  // Last-resort pick ignoring quarantine (a quarantined-but-live replica
  // still holds correct data); only dead and unrepaired replicas stay
  // excluded. Returns num_replicas() when nothing qualifies.
  unsigned pick_any_live(uint32_t exclude_mask) const;
  // Dispatches `p` to replica `r`. Returns false when the fault plan
  // black-holed the dispatch (no response will ever come). Does NOT touch
  // `p->tried` — callers mark `r` tried before calling, per the Pending
  // ownership protocol above.
  bool dispatch(const std::shared_ptr<Pending>& p, unsigned r);
  void dispatch_probe(unsigned r, const BloomFilter192& query,
                      std::vector<uint64_t> tag_hashes, Matcher::MatchKind kind);
  void probe_done(unsigned r);
  void absorb(const std::shared_ptr<Pending>& p, unsigned r, std::vector<Matcher::Key> keys);
  void note_success(unsigned r, int64_t latency_ns);
  void note_miss(unsigned r, int64_t now);
  int64_t hedge_budget_ns() const;  // max(config hedge_delay, 2x rolling p95).
  void record_latency(int64_t latency_ns);
  void sweep(int64_t now);  // One hedging / probe-timeout pass.
  void sweeper_loop();
  void repair_replica(unsigned index, Replica& reference);

  const TagMatchConfig engine_config_;
  const ReplicaConfig config_;
  const bool hedging_;            // config_.hedge_delay > 0 and R > 1.
  std::atomic<bool> fast_path_;   // Single replica, no hedging, no fault plan.

  // Engine pointers are replaced by restart_replica(); dispatches and writes
  // hold this shared, restarts hold it exclusive.
  mutable std::shared_mutex replicas_mu_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::atomic<uint64_t> rr_next_{0};  // Round-robin primary cursor.
  std::atomic<uint64_t> outstanding_{0};

  mutable std::mutex pending_mu_;
  std::list<std::shared_ptr<Pending>> pending_;
  std::vector<Probe> probes_;

  std::thread sweeper_;
  std::mutex sweeper_mu_;
  std::condition_variable sweeper_cv_;
  bool stopping_ = false;

  // Rolling window of claimed query latencies (the per-shard p95 baseline).
  mutable std::mutex latency_mu_;
  std::vector<int64_t> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  mutable std::mutex history_mu_;
  std::vector<std::pair<unsigned, ReplicaHealth>> history_;

  obs::Counter* hedged_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* repairs_ = nullptr;
};

}  // namespace tagmatch::shard

#endif  // TAGMATCH_SHARD_REPLICA_SET_H_

#include "src/shard/replica_set.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace tagmatch::shard {

namespace {

// A stalled (injected-slow) response as well as the exhaustion backstop are
// bounded by multiples of the hedge budget; see sweep().
constexpr int64_t kMinProbeBudgetNs = 2'000'000;   // 2 ms.
constexpr int64_t kMinExhaustNs = 250'000'000;     // 250 ms.
constexpr size_t kLatencyWindow = 128;
constexpr size_t kLatencyMinSamples = 16;

std::array<uint64_t, 3> filter_blocks(const BloomFilter192& filter) {
  const BitVector192& bits = filter.bits();
  return {bits.block(0), bits.block(1), bits.block(2)};
}

}  // namespace

const char* replica_health_name(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kQuarantined:
      return "quarantined";
    case ReplicaHealth::kProbing:
      return "probing";
    case ReplicaHealth::kRecovered:
      return "recovered";
  }
  return "?";
}

bool ReplicaSet::plan_targets_replicas(const inject::FaultInjector* injector) {
  if (injector == nullptr) {
    return false;
  }
  for (const inject::FaultRule& rule : injector->plan().rules) {
    if (rule.site == inject::FaultSite::kReplica) {
      return true;
    }
  }
  return false;
}

ReplicaSet::ReplicaSet(const TagMatchConfig& engine_config, ReplicaConfig config,
                       obs::Registry* registry)
    : engine_config_(engine_config),
      config_(std::move(config)),
      hedging_(config_.hedge_delay.count() > 0 && config_.num_replicas > 1),
      fast_path_(config_.num_replicas == 1 && !hedging_ &&
                 !plan_targets_replicas(config_.fault_injector.get())),
      latency_ring_(kLatencyWindow, 0) {
  TAGMATCH_CHECK(config_.num_replicas >= 1 && config_.num_replicas <= 32);
  hedged_ = registry->counter("replica.hedged");
  failovers_ = registry->counter("replica.failovers");
  repairs_ = registry->counter("replica.repairs");
  replicas_.reserve(config_.num_replicas);
  for (unsigned r = 0; r < config_.num_replicas; ++r) {
    auto rep = std::make_unique<Replica>();
    rep->engine = std::make_unique<TagMatch>(engine_config_);
    rep->health_gauge = registry->gauge("replica.health." + std::to_string(config_.shard_index) +
                                            "." + std::to_string(r),
                                        obs::GaugeMode::kLast);
    rep->health_gauge->set(static_cast<int64_t>(ReplicaHealth::kHealthy));
    replicas_.push_back(std::move(rep));
  }
  if (hedging_) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
}

ReplicaSet::~ReplicaSet() {
  flush();
  {
    std::lock_guard lock(sweeper_mu_);
    stopping_ = true;
  }
  sweeper_cv_.notify_all();
  if (sweeper_.joinable()) {
    sweeper_.join();
  }
}

// --- Replicated writes -------------------------------------------------------
// Fan out to every live replica; dead replicas and fault-dropped writes are
// simply skipped (best-effort) and the per-replica applied counter records
// the lag for anti-entropy. An injected kStall on a write is treated as
// applied — stalls model slow reads, not lost writes.

#define TAGMATCH_REPLICATED_WRITE(call)                                              \
  do {                                                                               \
    std::shared_lock lock(replicas_mu_);                                             \
    for (unsigned r = 0; r < replicas_.size(); ++r) {                                \
      Replica& rep = *replicas_[r];                                                  \
      if (rep.dead.load(std::memory_order_acquire)) {                                \
        continue;                                                                    \
      }                                                                              \
      if (config_.fault_injector != nullptr &&                                       \
          config_.fault_injector->check(inject::FaultSite::kReplica, r).action ==    \
              inject::FaultAction::kFail) {                                          \
        rep.dropped_writes.fetch_add(1, std::memory_order_relaxed);                  \
        continue; /* Write lost on this replica. */                                  \
      }                                                                              \
      rep.engine->call;                                                              \
      rep.applied_writes.fetch_add(1, std::memory_order_relaxed);                    \
    }                                                                                \
  } while (0)

void ReplicaSet::add_set(std::span<const std::string> tags, Matcher::Key key) {
  if (fast_path_.load(std::memory_order_acquire)) {
    std::shared_lock lock(replicas_mu_);
    replicas_[0]->engine->add_set(tags, key);
    return;
  }
  TAGMATCH_REPLICATED_WRITE(add_set(tags, key));
}

void ReplicaSet::add_set(const BloomFilter192& filter, Matcher::Key key) {
  if (fast_path_.load(std::memory_order_acquire)) {
    std::shared_lock lock(replicas_mu_);
    replicas_[0]->engine->add_set(filter, key);
    return;
  }
  TAGMATCH_REPLICATED_WRITE(add_set(filter, key));
}

void ReplicaSet::add_set_hashed(const BloomFilter192& filter,
                                std::span<const uint64_t> tag_hashes, Matcher::Key key) {
  if (fast_path_.load(std::memory_order_acquire)) {
    std::shared_lock lock(replicas_mu_);
    replicas_[0]->engine->add_set_hashed(filter, tag_hashes, key);
    return;
  }
  TAGMATCH_REPLICATED_WRITE(add_set_hashed(filter, tag_hashes, key));
}

void ReplicaSet::remove_set(std::span<const std::string> tags, Matcher::Key key) {
  if (fast_path_.load(std::memory_order_acquire)) {
    std::shared_lock lock(replicas_mu_);
    replicas_[0]->engine->remove_set(tags, key);
    return;
  }
  TAGMATCH_REPLICATED_WRITE(remove_set(tags, key));
}

void ReplicaSet::remove_set(const BloomFilter192& filter, Matcher::Key key) {
  if (fast_path_.load(std::memory_order_acquire)) {
    std::shared_lock lock(replicas_mu_);
    replicas_[0]->engine->remove_set(filter, key);
    return;
  }
  TAGMATCH_REPLICATED_WRITE(remove_set(filter, key));
}

#undef TAGMATCH_REPLICATED_WRITE

// --- Consolidate + anti-entropy ---------------------------------------------

void ReplicaSet::consolidate() {
  std::shared_lock lock(replicas_mu_);
  for (auto& rep : replicas_) {
    if (!rep->dead.load(std::memory_order_acquire)) {
      rep->engine->consolidate();
    }
  }
  if (replicas_.size() == 1) {
    return;
  }
  // Reference: the live, repaired replica that applied the most writes;
  // ties prefer the replica that dropped fewest writes (its content is the
  // least lossy of the equally-applied candidates).
  Replica* reference = nullptr;
  for (auto& rep : replicas_) {
    if (rep->dead.load(std::memory_order_acquire) ||
        rep->needs_repair.load(std::memory_order_acquire)) {
      continue;
    }
    if (reference == nullptr) {
      reference = rep.get();
      continue;
    }
    const uint64_t applied = rep->applied_writes.load(std::memory_order_relaxed);
    const uint64_t ref_applied_so_far =
        reference->applied_writes.load(std::memory_order_relaxed);
    if (applied > ref_applied_so_far ||
        (applied == ref_applied_so_far &&
         rep->dropped_writes.load(std::memory_order_relaxed) <
             reference->dropped_writes.load(std::memory_order_relaxed))) {
      reference = rep.get();
    }
  }
  if (reference == nullptr) {
    return;  // Nothing trustworthy to repair from.
  }
  const uint64_t ref_applied = reference->applied_writes.load(std::memory_order_relaxed);
  const bool ref_dropped_any =
      reference->dropped_writes.load(std::memory_order_relaxed) > 0;
  for (unsigned r = 0; r < replicas_.size(); ++r) {
    Replica& rep = *replicas_[r];
    if (&rep == reference || rep.dead.load(std::memory_order_acquire)) {
      continue;
    }
    // Equal applied counts prove convergence only when neither side dropped
    // a write: fault rules share counters across replicas, so two replicas
    // can drop *different* writes and still end with equal counts. Any drop
    // on either side forces the content diff.
    if (!rep.needs_repair.load(std::memory_order_acquire) && !ref_dropped_any &&
        rep.dropped_writes.load(std::memory_order_relaxed) == 0 &&
        rep.applied_writes.load(std::memory_order_relaxed) == ref_applied) {
      continue;  // Converged.
    }
    repair_replica(r, *reference);
  }
  // Every live replica now matches the reference's content, so its drop
  // history is no longer evidence of divergence.
  reference->dropped_writes.store(0, std::memory_order_relaxed);
}

void ReplicaSet::repair_replica(unsigned index, Replica& reference) {
  Replica& lagging = *replicas_[index];
  // Content diff over the same enumeration the manifest files serialize:
  // (filter, key) pairs plus the exact-check hashes needed to re-add.
  struct SetContent {
    std::vector<Matcher::Key> keys;
    std::vector<uint64_t> tag_hashes;
  };
  std::map<std::array<uint64_t, 3>, SetContent> want;
  reference.engine->for_each_set([&](const BloomFilter192& filter,
                                     std::span<const Matcher::Key> keys,
                                     std::span<const uint64_t> tag_hashes) {
    SetContent& c = want[filter_blocks(filter)];
    c.keys.assign(keys.begin(), keys.end());
    std::sort(c.keys.begin(), c.keys.end());
    c.tag_hashes.assign(tag_hashes.begin(), tag_hashes.end());
  });
  std::map<std::array<uint64_t, 3>, std::vector<Matcher::Key>> have;
  lagging.engine->for_each_set([&](const BloomFilter192& filter,
                                   std::span<const Matcher::Key> keys,
                                   std::span<const uint64_t>) {
    auto& v = have[filter_blocks(filter)];
    v.assign(keys.begin(), keys.end());
    std::sort(v.begin(), v.end());
  });
  // Remove pairs the reference does not have.
  for (const auto& [blocks, keys] : have) {
    auto it = want.find(blocks);
    const BloomFilter192 filter(BitVector192(blocks[0], blocks[1], blocks[2]));
    for (Matcher::Key key : keys) {
      if (it == want.end() ||
          !std::binary_search(it->second.keys.begin(), it->second.keys.end(), key)) {
        lagging.engine->remove_set(filter, key);
      }
    }
  }
  // Add pairs the lagging replica is missing.
  for (const auto& [blocks, content] : want) {
    auto it = have.find(blocks);
    const BloomFilter192 filter(BitVector192(blocks[0], blocks[1], blocks[2]));
    for (Matcher::Key key : content.keys) {
      if (it != have.end() &&
          std::binary_search(it->second.begin(), it->second.end(), key)) {
        continue;
      }
      if (content.tag_hashes.empty()) {
        lagging.engine->add_set(filter, key);
      } else {
        lagging.engine->add_set_hashed(filter, content.tag_hashes, key);
      }
    }
  }
  lagging.engine->consolidate();
  lagging.applied_writes.store(reference.applied_writes.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  lagging.dropped_writes.store(0, std::memory_order_relaxed);
  lagging.needs_repair.store(false, std::memory_order_release);
  lagging.miss_streak.store(0, std::memory_order_relaxed);
  repairs_->inc();
  // A repaired replica re-enters service through kRecovered (its next claimed
  // response makes it kHealthy), mirroring the device probe path.
  const ReplicaHealth h =
      static_cast<ReplicaHealth>(lagging.health.load(std::memory_order_acquire));
  if (h != ReplicaHealth::kHealthy) {
    set_health(index, ReplicaHealth::kRecovered);
  }
}

// --- Health ------------------------------------------------------------------

void ReplicaSet::set_health(unsigned replica, ReplicaHealth health) {
  Replica& rep = *replicas_[replica];
  rep.health.store(static_cast<uint32_t>(health), std::memory_order_release);
  rep.health_gauge->set(static_cast<int64_t>(health));
  std::lock_guard lock(history_mu_);
  history_.push_back({replica, health});
}

ReplicaHealth ReplicaSet::health(unsigned replica) const {
  return static_cast<ReplicaHealth>(replicas_[replica]->health.load(std::memory_order_acquire));
}

std::vector<std::pair<unsigned, ReplicaHealth>> ReplicaSet::health_history() const {
  std::lock_guard lock(history_mu_);
  return history_;
}

void ReplicaSet::note_success(unsigned r, int64_t latency_ns) {
  record_latency(latency_ns);
  Replica& rep = *replicas_[r];
  rep.miss_streak.store(0, std::memory_order_relaxed);
  if (static_cast<ReplicaHealth>(rep.health.load(std::memory_order_acquire)) ==
      ReplicaHealth::kRecovered) {
    set_health(r, ReplicaHealth::kHealthy);
  }
}

void ReplicaSet::note_miss(unsigned r, int64_t now) {
  Replica& rep = *replicas_[r];
  const uint32_t streak = rep.miss_streak.fetch_add(1, std::memory_order_relaxed) + 1;
  const ReplicaHealth h =
      static_cast<ReplicaHealth>(rep.health.load(std::memory_order_acquire));
  if (streak >= config_.miss_threshold &&
      (h == ReplicaHealth::kHealthy || h == ReplicaHealth::kRecovered)) {
    rep.quarantine_until_ns.store(
        now + std::chrono::duration_cast<std::chrono::nanoseconds>(config_.quarantine_period)
                  .count(),
        std::memory_order_relaxed);
    rep.miss_streak.store(0, std::memory_order_relaxed);
    set_health(r, ReplicaHealth::kQuarantined);
  }
}

int64_t ReplicaSet::hedge_budget_ns() const {
  const int64_t base =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.hedge_delay).count();
  std::lock_guard lock(latency_mu_);
  if (latency_count_ < kLatencyMinSamples) {
    return base;
  }
  std::vector<int64_t> window(latency_ring_.begin(),
                              latency_ring_.begin() + static_cast<long>(latency_count_));
  const size_t idx = (window.size() * 95) / 100;
  std::nth_element(window.begin(), window.begin() + static_cast<long>(idx), window.end());
  return std::max(base, 2 * window[idx]);
}

void ReplicaSet::record_latency(int64_t latency_ns) {
  std::lock_guard lock(latency_mu_);
  latency_ring_[latency_next_] = latency_ns;
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  latency_count_ = std::min(latency_count_ + 1, kLatencyWindow);
}

// --- Selection ---------------------------------------------------------------

unsigned ReplicaSet::pick_replica(uint32_t exclude_mask, bool count_failover) {
  const unsigned n = static_cast<unsigned>(replicas_.size());
  const uint64_t start = rr_next_.fetch_add(1, std::memory_order_relaxed);
  bool skipped = false;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned r = static_cast<unsigned>((start + i) % n);
    if ((exclude_mask >> r) & 1u) {
      continue;
    }
    const Replica& rep = *replicas_[r];
    if (rep.dead.load(std::memory_order_acquire) ||
        rep.needs_repair.load(std::memory_order_acquire)) {
      skipped = true;
      continue;
    }
    const ReplicaHealth h =
        static_cast<ReplicaHealth>(rep.health.load(std::memory_order_acquire));
    if (h == ReplicaHealth::kQuarantined || h == ReplicaHealth::kProbing) {
      skipped = true;
      continue;
    }
    if (skipped && count_failover) {
      failovers_->inc();
    }
    return r;
  }
  return n;
}

unsigned ReplicaSet::pick_any_live(uint32_t exclude_mask) const {
  const unsigned n = static_cast<unsigned>(replicas_.size());
  for (unsigned r = 0; r < n; ++r) {
    if ((exclude_mask >> r) & 1u) {
      continue;
    }
    const Replica& rep = *replicas_[r];
    if (!rep.dead.load(std::memory_order_acquire) &&
        !rep.needs_repair.load(std::memory_order_acquire)) {
      return r;
    }
  }
  return n;
}

// --- Matching ----------------------------------------------------------------

void ReplicaSet::match(const BloomFilter192& query, std::span<const uint64_t> tag_hashes,
                       Matcher::MatchKind kind, int64_t deadline_ns,
                       const obs::TraceContext& ctx, Matcher::MatchCallback callback) {
  if (fast_path_.load(std::memory_order_acquire)) {
    std::shared_lock lock(replicas_mu_);
    TagMatch& engine = *replicas_[0]->engine;
    if (tag_hashes.empty()) {
      if (ctx.valid()) {
        engine.match_async(query, kind, deadline_ns, ctx, std::move(callback));
      } else if (deadline_ns != 0) {
        engine.match_async(query, kind, deadline_ns, std::move(callback));
      } else {
        engine.match_async(query, kind, std::move(callback));
      }
    } else {
      engine.match_async_hashed(query, tag_hashes, kind, std::move(callback), deadline_ns,
                                ctx);
    }
    return;
  }

  const int64_t now = now_ns();
  auto p = std::make_shared<Pending>();
  p->query = query;
  p->tag_hashes.assign(tag_hashes.begin(), tag_hashes.end());
  p->kind = kind;
  p->deadline_ns = deadline_ns;
  p->ctx = ctx;
  p->callback = std::move(callback);
  p->start_ns = now;
  p->dispatch_ns = now;
  outstanding_.fetch_add(1, std::memory_order_acq_rel);

  if (hedging_) {
    maybe_probe(query, tag_hashes, kind, deadline_ns, now);
    unsigned r = pick_replica(0, /*count_failover=*/true);
    if (r >= replicas_.size()) {
      r = pick_any_live(0);  // Everyone quarantined: a live one still has the data.
    }
    if (r >= replicas_.size()) {
      // Nothing selectable at accept (every replica dead or unrepaired):
      // degrade to an empty result inline — exactly like the non-hedged
      // path — instead of parking the query until the sweeper's exhaustion
      // backstop.
      Matcher::MatchCallback cb = std::move(p->callback);
      cb({});
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    // All hedge bookkeeping is written before the Pending is published into
    // pending_; from then on only the sweeper mutates it, under pending_mu_
    // (see the Pending ownership protocol in replica_set.h).
    p->primary = r;
    p->tried = 1u << r;
    p->hedge_at_ns = now + hedge_budget_ns();
    {
      std::lock_guard lock(pending_mu_);
      pending_.push_back(p);
    }
    dispatch(p, r);  // Black-holed dispatches resolve through the sweeper.
    return;
  }

  // No sweeper: a knowably-dead dispatch fails over inline so the query (and
  // flush) can never hang on a replica that will not answer. The Pending is
  // never published here, so this thread owns p->tried throughout.
  unsigned r = pick_replica(0, /*count_failover=*/true);
  while (r < replicas_.size()) {
    p->tried |= 1u << r;
    if (dispatch(p, r)) {
      return;
    }
    failovers_->inc();
    r = pick_replica(p->tried, /*count_failover=*/false);
  }
  r = pick_any_live(p->tried);
  while (r < replicas_.size()) {
    p->tried |= 1u << r;
    if (dispatch(p, r)) {
      return;
    }
    r = pick_any_live(p->tried);
  }
  // No replica can answer: degrade to an empty result rather than hang.
  std::unique_lock g(p->mu);
  if (!p->fired) {
    p->fired = true;
    g.unlock();
    Matcher::MatchCallback cb = std::move(p->callback);
    cb({});
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool ReplicaSet::dispatch(const std::shared_ptr<Pending>& p, unsigned r) {
  std::shared_lock lock(replicas_mu_);
  Replica& rep = *replicas_[r];
  if (rep.dead.load(std::memory_order_acquire)) {
    return false;
  }
  int64_t stall_ns = 0;
  if (config_.fault_injector != nullptr) {
    const inject::FaultDecision d =
        config_.fault_injector->check(inject::FaultSite::kReplica, r);
    if (d.action == inject::FaultAction::kFail) {
      return false;  // Black hole: the replica looks dead for this query.
    }
    if (d.action == inject::FaultAction::kStall) {
      stall_ns = d.stall_ns;
    }
  }
  auto on_done = [this, p, r, stall_ns](std::vector<Matcher::Key> keys) {
    if (stall_ns > 0) {
      // A slow replica: its completion worker really is busy that long.
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_ns));
    }
    absorb(p, r, std::move(keys));
  };
  if (p->tag_hashes.empty()) {
    if (p->ctx.valid()) {
      rep.engine->match_async(p->query, p->kind, p->deadline_ns, p->ctx, std::move(on_done));
    } else if (p->deadline_ns != 0) {
      rep.engine->match_async(p->query, p->kind, p->deadline_ns, std::move(on_done));
    } else {
      rep.engine->match_async(p->query, p->kind, std::move(on_done));
    }
  } else {
    rep.engine->match_async_hashed(p->query, p->tag_hashes, p->kind, std::move(on_done),
                                   p->deadline_ns, p->ctx);
  }
  return true;
}

void ReplicaSet::absorb(const std::shared_ptr<Pending>& p, unsigned r,
                        std::vector<Matcher::Key> keys) {
  const int64_t now = now_ns();
  std::unique_lock lock(p->mu);
  if (p->fired) {
    return;  // A faster replica claimed this query; drop the duplicate.
  }
  p->fired = true;
  lock.unlock();
  note_success(r, now - p->start_ns);
  Matcher::MatchCallback callback = std::move(p->callback);
  callback(std::move(keys));
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
}

// --- Probing -----------------------------------------------------------------

void ReplicaSet::maybe_probe(const BloomFilter192& query, std::span<const uint64_t> tag_hashes,
                             Matcher::MatchKind kind, int64_t deadline_ns, int64_t now) {
  std::vector<unsigned> to_probe;
  {
    std::lock_guard lock(pending_mu_);
    for (unsigned r = 0; r < replicas_.size(); ++r) {
      Replica& rep = *replicas_[r];
      if (rep.dead.load(std::memory_order_acquire) ||
          rep.needs_repair.load(std::memory_order_acquire)) {
        continue;
      }
      if (static_cast<ReplicaHealth>(rep.health.load(std::memory_order_acquire)) !=
              ReplicaHealth::kQuarantined ||
          now < rep.quarantine_until_ns.load(std::memory_order_relaxed)) {
        continue;
      }
      bool outstanding = false;
      for (const Probe& probe : probes_) {
        if (probe.replica == r) {
          outstanding = true;
          break;
        }
      }
      if (outstanding) {
        continue;
      }
      probes_.push_back(
          Probe{r, now, now + std::max(2 * hedge_budget_ns(), kMinProbeBudgetNs)});
      to_probe.push_back(r);
    }
  }
  for (unsigned r : to_probe) {
    set_health(r, ReplicaHealth::kProbing);
    dispatch_probe(r, query, {tag_hashes.begin(), tag_hashes.end()}, kind);
    (void)deadline_ns;  // Probes run without a deadline; the sweeper bounds them.
  }
}

void ReplicaSet::dispatch_probe(unsigned r, const BloomFilter192& query,
                                std::vector<uint64_t> tag_hashes, Matcher::MatchKind kind) {
  std::shared_lock lock(replicas_mu_);
  Replica& rep = *replicas_[r];
  if (rep.dead.load(std::memory_order_acquire)) {
    return;  // The probe record times out and re-quarantines.
  }
  int64_t stall_ns = 0;
  if (config_.fault_injector != nullptr) {
    const inject::FaultDecision d =
        config_.fault_injector->check(inject::FaultSite::kReplica, r);
    if (d.action == inject::FaultAction::kFail) {
      return;
    }
    if (d.action == inject::FaultAction::kStall) {
      stall_ns = d.stall_ns;
    }
  }
  auto on_probe = [this, r, stall_ns](std::vector<Matcher::Key>) {
    if (stall_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_ns));
    }
    probe_done(r);
  };
  if (tag_hashes.empty()) {
    rep.engine->match_async(query, kind, std::move(on_probe));
  } else {
    rep.engine->match_async_hashed(query, tag_hashes, kind, std::move(on_probe));
  }
}

void ReplicaSet::probe_done(unsigned r) {
  const int64_t now = now_ns();
  bool in_time = false;
  bool found = false;
  {
    std::lock_guard lock(pending_mu_);
    for (auto it = probes_.begin(); it != probes_.end(); ++it) {
      if (it->replica == r) {
        in_time = now <= it->deadline_ns;
        probes_.erase(it);
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return;  // The sweeper already timed this probe out.
  }
  if (in_time) {
    replicas_[r]->miss_streak.store(0, std::memory_order_relaxed);
    set_health(r, ReplicaHealth::kRecovered);
  } else {
    replicas_[r]->quarantine_until_ns.store(
        now + std::chrono::duration_cast<std::chrono::nanoseconds>(config_.quarantine_period)
                  .count(),
        std::memory_order_relaxed);
    set_health(r, ReplicaHealth::kQuarantined);
  }
}

// --- Hedging sweeper ---------------------------------------------------------

void ReplicaSet::sweep(int64_t now) {
  std::vector<std::shared_ptr<Pending>> to_hedge;
  std::vector<std::shared_ptr<Pending>> to_expire;
  std::vector<unsigned> probe_timeouts;
  const int64_t budget = hedge_budget_ns();
  const int64_t exhaust = std::max(20 * budget, kMinExhaustNs);
  {
    std::lock_guard lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      Pending& p = **it;
      bool fired;
      {
        std::lock_guard g(p.mu);
        fired = p.fired;
      }
      if (fired) {
        it = pending_.erase(it);
        continue;
      }
      if (now >= p.hedge_at_ns) {
        if (((p.tried >> p.primary) & 1u) != 0) {
          note_miss(p.primary, now);
        }
        unsigned backup = pick_replica(p.tried, /*count_failover=*/false);
        if (backup >= replicas_.size()) {
          backup = pick_any_live(p.tried);
        }
        if (backup < replicas_.size()) {
          p.primary = backup;
          p.tried |= 1u << backup;  // Marked here, under pending_mu_ — the
                                    // out-of-lock dispatch below no longer
                                    // writes tried.
          p.dispatch_ns = now;
          p.hedge_at_ns = now + budget;
          to_hedge.push_back(*it);
        } else if (now - p.dispatch_ns >= exhaust) {
          // Every replica has been asked and none will answer: degrade to an
          // empty result so the caller (and flush) never hang.
          to_expire.push_back(*it);
          it = pending_.erase(it);
          continue;
        } else {
          p.hedge_at_ns = now + budget;  // Re-check later.
        }
      }
      ++it;
    }
    for (auto it = probes_.begin(); it != probes_.end();) {
      if (now >= it->deadline_ns) {
        probe_timeouts.push_back(it->replica);
        it = probes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& p : to_hedge) {
    hedged_->inc();
    dispatch(p, p->primary);
  }
  for (unsigned r : probe_timeouts) {
    replicas_[r]->quarantine_until_ns.store(
        now + std::chrono::duration_cast<std::chrono::nanoseconds>(config_.quarantine_period)
                  .count(),
        std::memory_order_relaxed);
    set_health(r, ReplicaHealth::kQuarantined);
  }
  for (const auto& p : to_expire) {
    std::unique_lock g(p->mu);
    if (p->fired) {
      continue;
    }
    p->fired = true;
    g.unlock();
    Matcher::MatchCallback callback = std::move(p->callback);
    callback({});
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ReplicaSet::sweeper_loop() {
  const auto hedge_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.hedge_delay);
  const auto tick = std::clamp(hedge_ns / 4, std::chrono::nanoseconds(200'000),
                               std::chrono::nanoseconds(5'000'000));
  std::unique_lock lock(sweeper_mu_);
  while (!stopping_) {
    sweeper_cv_.wait_for(lock, tick, [&] { return stopping_; });
    if (stopping_) {
      return;
    }
    lock.unlock();
    sweep(now_ns());
    lock.lock();
  }
}

// --- Flush -------------------------------------------------------------------

void ReplicaSet::flush() {
  for (;;) {
    {
      std::shared_lock lock(replicas_mu_);
      for (auto& rep : replicas_) {
        if (!rep->dead.load(std::memory_order_acquire)) {
          rep->engine->flush();
        }
      }
    }
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      return;
    }
    sweeper_cv_.notify_all();  // Hedge-resolvable queries need the sweeper.
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

// --- Persistence & introspection ---------------------------------------------

bool ReplicaSet::save_index(const std::string& path) const {
  std::shared_lock lock(replicas_mu_);
  const unsigned r = pick_any_live(0);
  if (r >= replicas_.size()) {
    return false;  // No replica holds a trustworthy copy.
  }
  return replicas_[r]->engine->save_index(path);
}

bool ReplicaSet::load_index(const std::string& path) {
  std::shared_lock lock(replicas_mu_);
  for (auto& rep : replicas_) {
    if (!rep->engine->load_index(path)) {
      return false;
    }
    rep->applied_writes.store(0, std::memory_order_relaxed);
    rep->dropped_writes.store(0, std::memory_order_relaxed);
    rep->needs_repair.store(false, std::memory_order_release);
  }
  return true;
}

Matcher::Stats ReplicaSet::stats() const {
  std::shared_lock lock(replicas_mu_);
  const unsigned r = pick_any_live(0);
  return r < replicas_.size() ? replicas_[r]->engine->stats() : Matcher::Stats{};
}

void ReplicaSet::for_each_set(
    const std::function<void(const BloomFilter192& filter, std::span<const Matcher::Key> keys,
                             std::span<const uint64_t> tag_hashes)>& fn) const {
  std::shared_lock lock(replicas_mu_);
  const unsigned r = pick_any_live(0);
  if (r < replicas_.size()) {
    replicas_[r]->engine->for_each_set(fn);
  }
}

obs::MetricsSnapshot ReplicaSet::metrics_snapshot() const {
  obs::MetricsSnapshot snap;
  std::shared_lock lock(replicas_mu_);
  for (const auto& rep : replicas_) {
    snap += rep->engine->metrics_snapshot();
  }
  return snap;
}

std::vector<obs::Span> ReplicaSet::trace_snapshot() const {
  std::vector<obs::Span> spans;
  std::shared_lock lock(replicas_mu_);
  for (const auto& rep : replicas_) {
    std::vector<obs::Span> s = rep->engine->trace_snapshot();
    spans.insert(spans.end(), s.begin(), s.end());
  }
  return spans;
}

uint64_t ReplicaSet::trace_dropped() const {
  uint64_t dropped = 0;
  std::shared_lock lock(replicas_mu_);
  for (const auto& rep : replicas_) {
    dropped += rep->engine->trace_dropped();
  }
  return dropped;
}

std::vector<std::pair<std::array<uint64_t, 3>, Matcher::Key>> ReplicaSet::dump_replica(
    unsigned replica) const {
  std::vector<std::pair<std::array<uint64_t, 3>, Matcher::Key>> rows;
  std::shared_lock lock(replicas_mu_);
  replicas_[replica]->engine->for_each_set(
      [&](const BloomFilter192& filter, std::span<const Matcher::Key> keys,
          std::span<const uint64_t>) {
        for (Matcher::Key key : keys) {
          rows.push_back({filter_blocks(filter), key});
        }
      });
  std::sort(rows.begin(), rows.end());
  return rows;
}

// --- Chaos hooks -------------------------------------------------------------

void ReplicaSet::kill_replica(unsigned replica) {
  TAGMATCH_CHECK(replica < replicas_.size());
  fast_path_.store(false, std::memory_order_release);
  replicas_[replica]->dead.store(true, std::memory_order_release);
}

void ReplicaSet::restart_replica(unsigned replica) {
  TAGMATCH_CHECK(replica < replicas_.size());
  fast_path_.store(false, std::memory_order_release);
  auto fresh = std::make_unique<TagMatch>(engine_config_);
  std::unique_ptr<TagMatch> old;
  {
    std::unique_lock lock(replicas_mu_);
    Replica& rep = *replicas_[replica];
    old = std::move(rep.engine);
    rep.engine = std::move(fresh);
    rep.dead.store(false, std::memory_order_release);
    rep.needs_repair.store(true, std::memory_order_release);
    rep.applied_writes.store(0, std::memory_order_relaxed);
    rep.dropped_writes.store(0, std::memory_order_relaxed);
    rep.miss_streak.store(0, std::memory_order_relaxed);
  }
  if (static_cast<ReplicaHealth>(replicas_[replica]->health.load(
          std::memory_order_acquire)) != ReplicaHealth::kQuarantined) {
    set_health(replica, ReplicaHealth::kQuarantined);
  }
  old.reset();  // Flushes the outgoing engine outside the lock.
}

}  // namespace tagmatch::shard

// ShardPolicy — placement of database sets onto engine shards.
//
// A policy maps (Bloom signature, application key) to a shard index and must
// be *stable*: the same (filter, key) pair always lands on the same shard for
// a given shard count, so remove_set reaches the copy that add_set created.
//
// The default SignatureHashPolicy hashes the 192-bit Bloom signature, which
// co-locates all keys of one unique set on one shard (the engine then
// deduplicates them into a single tagset-table entry, exactly as a single
// engine would). KeyHashPolicy spreads keys of a popular set across shards
// instead — better key-table balance under heavily skewed key multiplicity,
// at the cost of duplicating the set's filter in several shards' tagset
// tables. bench_shard_scaling compares the two.
#ifndef TAGMATCH_SHARD_SHARD_POLICY_H_
#define TAGMATCH_SHARD_SHARD_POLICY_H_

#include <cstdint>
#include <string>

#include "src/common/bit_vector.h"
#include "src/common/hash.h"
#include "src/core/matcher.h"

namespace tagmatch::shard {

class ShardPolicy {
 public:
  virtual ~ShardPolicy() = default;
  // Stable identifier persisted in the shard manifest; a loaded index whose
  // policy name differs from the live one is redistributed on load.
  virtual const char* name() const = 0;
  virtual uint32_t shard_of(const BitVector192& filter, Matcher::Key key,
                            uint32_t num_shards) const = 0;
};

// Default: stable hash of the Bloom signature's three blocks. Independent of
// the key, so a set's whole key multiset shares a shard.
class SignatureHashPolicy : public ShardPolicy {
 public:
  const char* name() const override { return "signature-hash"; }
  uint32_t shard_of(const BitVector192& filter, Matcher::Key /*key*/,
                    uint32_t num_shards) const override {
    uint64_t h = mix64(filter.block(0) ^ mix64(filter.block(1) ^ mix64(filter.block(2))));
    return static_cast<uint32_t>(h % num_shards);
  }
};

// Alternative: hash of the application key only. Comparable via the policy
// hook; see the header comment for the trade-off.
class KeyHashPolicy : public ShardPolicy {
 public:
  const char* name() const override { return "key-hash"; }
  uint32_t shard_of(const BitVector192& /*filter*/, Matcher::Key key,
                    uint32_t num_shards) const override {
    return static_cast<uint32_t>(mix64(key) % num_shards);
  }
};

}  // namespace tagmatch::shard

#endif  // TAGMATCH_SHARD_SHARD_POLICY_H_

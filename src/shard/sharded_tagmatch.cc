#include "src/shard/sharded_tagmatch.h"

#include <algorithm>
#include <cstdio>
#include <future>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/sig/signature_scheme.h"

namespace tagmatch::shard {

// Per-query gather state. `awaiting` counts shard responses still due; the
// callback fires exactly once — when the count hits zero, or earlier when
// the timeout thread sheds the stragglers.
struct ShardedTagMatch::Gather {
  MatchKind kind;
  ResultCallback callback;
  int64_t deadline_ns = 0;  // 0 = no timeout.
  std::mutex mu;
  std::vector<Key> keys;
  uint32_t awaiting = 0;
  bool fired = false;
  uint64_t trace_id = 0;   // Router-unique query sequence (span display id).
  int64_t start_ns = 0;    // Scatter start; the gather span covers scatter->merge.
  obs::TraceContext ctx;   // Caller's trace context (invalid = untraced query).
  // Pre-allocated at scatter so shard child contexts can parent on the gather
  // span before it is recorded (it records at fire()).
  uint64_t gather_span_id = 0;
};

ShardedTagMatch::ShardedTagMatch(ShardedConfig config)
    : config_(std::move(config)), num_shards_(config_.num_shards) {
  TAGMATCH_CHECK(config_.num_shards >= 1);
  TAGMATCH_CHECK(config_.num_replicas >= 1);
  // Pin the resolved scheme so the router's string-tag encodes, every shard
  // engine, and manifest save/load all agree even if the environment changes.
  scheme_ = &sig::resolve(config_.shard.signature_scheme);
  config_.shard.signature_scheme = scheme_;
  policy_ = config_.policy ? config_.policy : std::make_shared<SignatureHashPolicy>();
  queries_ = obs_.registry().counter("shard.queries");
  partial_results_ = obs_.registry().counter("shard.partial_results");
  shards_shed_ = obs_.registry().counter("shard.shards_shed");
  hedged_ = obs_.registry().counter("replica.hedged");
  failovers_ = obs_.registry().counter("replica.failovers");
  repairs_ = obs_.registry().counter("replica.repairs");
  {
    task::SchedulerConfig sched_config;
    sched_config.num_workers =
        task::resolve_workers(config_.shard.num_workers,
                              std::max(2u, static_cast<unsigned>(config_.num_shards)));
    sched_config.pin_workers = config_.shard.pin_workers;
    // Non-owning alias: obs_ is a value member and outlives the scheduler
    // (the destructor shuts the scheduler down before any member dies).
    sched_config.metrics = std::shared_ptr<obs::PipelineObs>(std::shared_ptr<void>(), &obs_);
    scheduler_ = std::make_shared<task::TaskScheduler>(std::move(sched_config));
  }
  router_epoch_ = std::make_unique<epoch::EpochManager>(&obs_.registry());
  auto initial = std::make_shared<EngineSet>();
  initial->shards.reserve(config_.num_shards);
  for (unsigned i = 0; i < config_.num_shards; ++i) {
    initial->shards.push_back(make_replica_set(i));
  }
  engines_owner_ = initial;
  engines_.store(initial.get(), std::memory_order_seq_cst);
  if (config_.query_timeout.count() > 0) {
    ensure_timeout_thread();
  }
}

void ShardedTagMatch::ensure_timeout_thread() {
  std::lock_guard lock(timeout_start_mu_);
  if (!timeout_thread_.joinable()) {
    timeout_thread_ = std::thread([this] { timeout_loop(); });
  }
}

ShardedTagMatch::~ShardedTagMatch() {
  flush();
  {
    std::lock_guard lock(timeout_mu_);
    stopping_ = true;
  }
  timeout_cv_.notify_all();
  if (timeout_thread_.joinable()) {
    timeout_thread_.join();
  }
  // flush() completed every gather, so no queued finish_gather task still
  // references this router; drain and join the pool before members die.
  scheduler_->shutdown();
  engines_.store(nullptr, std::memory_order_seq_cst);
  engines_owner_.reset();  // Each engine flushes and joins its pipeline.
  router_epoch_.reset();   // Runs any retirement a commit left pending.
}

BloomFilter192 ShardedTagMatch::encode(std::span<const std::string> tags) const {
  return BloomFilter192(scheme_->encode(tags));
}

std::unique_ptr<ReplicaSet> ShardedTagMatch::make_replica_set(unsigned shard_index) {
  ReplicaConfig rc;
  rc.num_replicas = config_.num_replicas;
  rc.hedge_delay = config_.hedge_delay;
  rc.miss_threshold = config_.replica_miss_threshold;
  rc.quarantine_period = config_.replica_quarantine_period;
  rc.shard_index = shard_index;
  rc.fault_injector = config_.shard.fault_injector;
  // The registry is the router's own: replica counters aggregate across
  // shards (one logical instrument) and each (shard, replica) health gauge
  // gets its own name.
  return std::make_unique<ReplicaSet>(config_.shard, std::move(rc), &obs_.registry());
}

// --- Table maintenance -----------------------------------------------------
// Staging is routed immediately (the policy is stable, so a later
// remove_set of the same (filter, key) reaches the same shard); it becomes
// matchable per the underlying engines' semantics. The pin keeps the engine
// set alive against a concurrent commit_engines() swap. Placement always
// derives from the pinned set's own size so writes racing a reshard stay
// in-bounds; while a reshard's mirror window is open every write is also
// journaled for replay onto the new layout.

void ShardedTagMatch::mirror(bool add, const BloomFilter192& filter,
                             std::span<const uint64_t> tag_hashes, Key key) {
  if (!mirroring_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard lock(mirror_mu_);
  if (!mirroring_.load(std::memory_order_relaxed)) {
    return;  // The window closed while we waited for the journal lock.
  }
  mirror_journal_.push_back(
      MirrorOp{add, filter, {tag_hashes.begin(), tag_hashes.end()}, key});
}

void ShardedTagMatch::add_set(std::span<const std::string> tags, Key key) {
  BloomFilter192 filter = encode(tags);
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  es.shards[shard_of(filter.bits(), key, es.shards.size())]->add_set(tags, key);
  if (mirroring_.load(std::memory_order_acquire)) {
    std::vector<uint64_t> hashes;
    hashes.reserve(tags.size());
    for (const auto& t : tags) {
      hashes.push_back(TagMatch::tag_hash(t));
    }
    mirror(/*add=*/true, filter, hashes, key);
  }
}

void ShardedTagMatch::add_set(const BloomFilter192& filter, Key key) {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  es.shards[shard_of(filter.bits(), key, es.shards.size())]->add_set(filter, key);
  mirror(/*add=*/true, filter, {}, key);
}

void ShardedTagMatch::add_set_hashed(const BloomFilter192& filter,
                                     std::span<const uint64_t> tag_hashes, Key key) {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  es.shards[shard_of(filter.bits(), key, es.shards.size())]->add_set_hashed(filter, tag_hashes,
                                                                            key);
  mirror(/*add=*/true, filter, tag_hashes, key);
}

void ShardedTagMatch::remove_set(std::span<const std::string> tags, Key key) {
  BloomFilter192 filter = encode(tags);
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  es.shards[shard_of(filter.bits(), key, es.shards.size())]->remove_set(tags, key);
  mirror(/*add=*/false, filter, {}, key);
}

void ShardedTagMatch::remove_set(const BloomFilter192& filter, Key key) {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  es.shards[shard_of(filter.bits(), key, es.shards.size())]->remove_set(filter, key);
  mirror(/*add=*/false, filter, {}, key);
}

void ShardedTagMatch::consolidate() {
  StopWatch watch;
  const int64_t start_ns = now_ns();
  // The pin outlives the whole parallel_for: helpers on other workers touch
  // the same EngineSet, and they finish before parallel_for returns, so the
  // caller's pin covers them. Each engine publishes its rebuilt index via
  // its own epoch snapshot, so queries keep flowing to every shard — even
  // the one currently rebuilding.
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  if (config_.concurrent_consolidate && es.shards.size() > 1) {
    // Shards are independent: rebuild them in parallel on the router pool.
    // A rebuild blocks its router worker inside the shard's GPU-drain wait;
    // that is safe because shard pipelines run on their own pools, and
    // parallel_for's caller claims rebuilds itself, so completion never
    // depends on a free router worker.
    scheduler_->parallel_for(es.shards.size(),
                             [&es](size_t i) { es.shards[i]->consolidate(); });
  } else {
    for (const auto& shard : es.shards) {
      shard->consolidate();
    }
  }
  wall_consolidate_seconds_.store(watch.elapsed_s(), std::memory_order_relaxed);
  // Router-side consolidate span: the wall time of the whole rebuild (the
  // per-shard spans live in each shard's own registry).
  obs_.record_stage(obs::Stage::kConsolidate,
                    consolidate_seq_.fetch_add(1, std::memory_order_relaxed) + 1, start_ns,
                    now_ns());
}

// --- Matching: scatter -----------------------------------------------------

void ShardedTagMatch::scatter(const BloomFilter192& query, std::vector<uint64_t> tag_hashes,
                              MatchKind kind, int64_t gather_deadline_ns,
                              int64_t shard_deadline_ns, const obs::TraceContext& ctx,
                              ResultCallback callback) {
  queries_->inc();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  auto gather = std::make_shared<Gather>();
  gather->kind = kind;
  gather->callback = std::move(callback);
  gather->awaiting = static_cast<uint32_t>(es.shards.size());
  gather->trace_id = gather_seq_.fetch_add(1, std::memory_order_relaxed);
  gather->start_ns = now_ns();
  obs::TraceContext shard_ctx;
  if (ctx.valid()) {
    gather->ctx = ctx;
    gather->gather_span_id = obs::new_span_id();
    shard_ctx = obs::TraceContext{ctx.trace_id, gather->gather_span_id, ctx.sampled};
  }
  // Shedding deadline: the tighter of the caller's per-query deadline and
  // the configured static timeout.
  if (config_.query_timeout.count() > 0) {
    const int64_t config_deadline =
        gather->start_ns +
        std::chrono::duration_cast<std::chrono::nanoseconds>(config_.query_timeout).count();
    gather_deadline_ns = gather_deadline_ns == 0 ? config_deadline
                                                 : std::min(gather_deadline_ns, config_deadline);
  }
  if (gather_deadline_ns != 0) {
    gather->deadline_ns = gather_deadline_ns;
    ensure_timeout_thread();
    std::lock_guard lock(gathers_mu_);
    gathers_.push_back(gather);
  }
  for (const auto& shard : es.shards) {
    auto on_shard = [this, gather](std::vector<Key> keys) { absorb(gather, std::move(keys)); };
    shard->match(query, tag_hashes, kind, shard_deadline_ns, shard_ctx, std::move(on_shard));
  }
}

// --- Matching: gather ------------------------------------------------------

void ShardedTagMatch::absorb(const std::shared_ptr<Gather>& gather, std::vector<Key> keys) {
  std::unique_lock lock(gather->mu);
  if (gather->fired) {
    return;  // Timed out earlier; this response was already counted as shed.
  }
  gather->keys.insert(gather->keys.end(), keys.begin(), keys.end());
  if (--gather->awaiting == 0) {
    // Claim the gather under its mutex (so a concurrent timeout sweep sees it
    // as done), then hand the merge + user callback to the router pool. This
    // gets the cross-shard merge off the shard completion thread, which can
    // move on to its next batch.
    gather->fired = true;
    const obs::TraceContext trace_ctx = gather->ctx;
    lock.unlock();
    scheduler_->submit([this, gather] { finish_gather(gather, /*partial=*/false); },
                       trace_ctx);
  }
}

void ShardedTagMatch::fire(const std::shared_ptr<Gather>& gather,
                           std::unique_lock<std::mutex>& lock, bool partial) {
  gather->fired = true;
  lock.unlock();
  // Shed path (timeout sweeper): finish inline — the sweeper thread is not a
  // pool worker and has nothing better to do, and running here keeps shed
  // latency independent of router-pool queue depth.
  finish_gather(gather, partial);
}

void ShardedTagMatch::finish_gather(const std::shared_ptr<Gather>& gather, bool partial) {
  // The claim (fired=true under gather->mu) happened before this ran, so this
  // function is the gather's sole owner: no lock needed.
  std::vector<Key> keys = std::move(gather->keys);
  ResultCallback callback = std::move(gather->callback);
  MatchKind kind = gather->kind;
  const uint64_t trace_id = gather->trace_id;
  const int64_t start_ns = gather->start_ns;
  const obs::TraceContext trace_ctx = gather->ctx;
  const uint64_t gather_span_id = gather->gather_span_id;
  // Merge stage across shards: each shard already deduplicated its own
  // results for kMatchUnique; a key can still arrive from several shards
  // (key-hash placement, or duplicate filters split across shards), so
  // dedupe globally.
  if (kind == MatchKind::kMatchUnique) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  if (partial) {
    partial_results_->inc();
  }
  // The gather span covers scatter through cross-shard merge; the user
  // callback is excluded (it is application time, not router time).
  obs_.record_stage(obs::Stage::kGather, trace_id, start_ns, now_ns(), trace_ctx,
                    gather_span_id);
  if (callback) {
    callback(MatchResult{std::move(keys), partial});
  }
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
}

void ShardedTagMatch::timeout_loop() {
  const auto timeout = config_.query_timeout;
  const auto tick = std::max(timeout / 4, std::chrono::milliseconds(1));
  std::unique_lock lock(timeout_mu_);
  while (!stopping_) {
    timeout_cv_.wait_for(lock, tick, [&] { return stopping_; });
    if (stopping_) {
      return;
    }
    lock.unlock();
    const int64_t now = now_ns();
    std::vector<std::shared_ptr<Gather>> overdue;
    {
      std::lock_guard registry_lock(gathers_mu_);
      for (auto it = gathers_.begin(); it != gathers_.end();) {
        bool fired;
        {
          std::lock_guard g((*it)->mu);
          fired = (*it)->fired;
        }
        if (fired) {
          it = gathers_.erase(it);  // Completed since the last sweep.
        } else if (now >= (*it)->deadline_ns) {
          overdue.push_back(*it);
          it = gathers_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& gather : overdue) {
      std::unique_lock g(gather->mu);
      if (gather->fired) {
        continue;  // Raced with the last shard response; it won.
      }
      shards_shed_->add(gather->awaiting);
      fire(gather, g, /*partial=*/true);
    }
    lock.lock();
  }
}

// --- Matcher match surface -------------------------------------------------

void ShardedTagMatch::match_result_async(const BloomFilter192& query, MatchKind kind,
                                         ResultCallback callback) {
  scatter(query, {}, kind, /*gather_deadline_ns=*/0, /*shard_deadline_ns=*/0, {},
          std::move(callback));
}

void ShardedTagMatch::match_result_async(const BloomFilter192& query, MatchKind kind,
                                         int64_t deadline_ns, ResultCallback callback) {
  scatter(query, {}, kind, deadline_ns, deadline_ns, {}, std::move(callback));
}

void ShardedTagMatch::match_result_async(std::span<const std::string> tags, MatchKind kind,
                                         int64_t deadline_ns, ResultCallback callback) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  scatter(encode(tags), std::move(hashes), kind, deadline_ns, deadline_ns, {},
          std::move(callback));
}

void ShardedTagMatch::match_result_async(const BloomFilter192& query, MatchKind kind,
                                         int64_t deadline_ns, const obs::TraceContext& ctx,
                                         ResultCallback callback) {
  scatter(query, {}, kind, deadline_ns, deadline_ns, ctx, std::move(callback));
}

void ShardedTagMatch::match_result_async(std::span<const std::string> tags, MatchKind kind,
                                         int64_t deadline_ns, const obs::TraceContext& ctx,
                                         ResultCallback callback) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  scatter(encode(tags), std::move(hashes), kind, deadline_ns, deadline_ns, ctx,
          std::move(callback));
}

void ShardedTagMatch::match_async(const BloomFilter192& query, MatchKind kind,
                                  MatchCallback callback) {
  scatter(query, {}, kind, /*gather_deadline_ns=*/0, /*shard_deadline_ns=*/0, {},
          [cb = std::move(callback)](MatchResult result) { cb(std::move(result.keys)); });
}

void ShardedTagMatch::match_async(std::span<const std::string> tags, MatchKind kind,
                                  MatchCallback callback) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  scatter(encode(tags), std::move(hashes), kind, /*gather_deadline_ns=*/0,
          /*shard_deadline_ns=*/0, {},
          [cb = std::move(callback)](MatchResult result) { cb(std::move(result.keys)); });
}

// Keys-only deadline overloads: the deadline reaches the shard engines
// (early batch close) but never sheds the gather — partiality is
// inexpressible here (see header).
void ShardedTagMatch::match_async(const BloomFilter192& query, MatchKind kind,
                                  int64_t deadline_ns, MatchCallback callback) {
  scatter(query, {}, kind, /*gather_deadline_ns=*/0, deadline_ns, {},
          [cb = std::move(callback)](MatchResult result) { cb(std::move(result.keys)); });
}

void ShardedTagMatch::match_async(std::span<const std::string> tags, MatchKind kind,
                                  int64_t deadline_ns, MatchCallback callback) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  scatter(encode(tags), std::move(hashes), kind, /*gather_deadline_ns=*/0,
          deadline_ns, {},
          [cb = std::move(callback)](MatchResult result) { cb(std::move(result.keys)); });
}

void ShardedTagMatch::match_async(const BloomFilter192& query, MatchKind kind,
                                  int64_t deadline_ns, const obs::TraceContext& ctx,
                                  MatchCallback callback) {
  scatter(query, {}, kind, /*gather_deadline_ns=*/0, deadline_ns, ctx,
          [cb = std::move(callback)](MatchResult result) { cb(std::move(result.keys)); });
}

void ShardedTagMatch::match_async(std::span<const std::string> tags, MatchKind kind,
                                  int64_t deadline_ns, const obs::TraceContext& ctx,
                                  MatchCallback callback) {
  std::vector<uint64_t> hashes;
  hashes.reserve(tags.size());
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  scatter(encode(tags), std::move(hashes), kind, /*gather_deadline_ns=*/0,
          deadline_ns, ctx,
          [cb = std::move(callback)](MatchResult result) { cb(std::move(result.keys)); });
}

std::vector<Matcher::Key> ShardedTagMatch::match_sync(const BloomFilter192& query,
                                                      MatchKind kind,
                                                      std::vector<uint64_t> tag_hashes) {
  std::promise<std::vector<Key>> promise;
  auto future = promise.get_future();
  scatter(query, std::move(tag_hashes), kind, /*gather_deadline_ns=*/0,
          /*shard_deadline_ns=*/0, {},
          [&promise](MatchResult result) { promise.set_value(std::move(result.keys)); });
  flush();
  return future.get();
}

std::vector<Matcher::Key> ShardedTagMatch::match(const BloomFilter192& query) {
  return match_sync(query, MatchKind::kMatch, {});
}
std::vector<Matcher::Key> ShardedTagMatch::match_unique(const BloomFilter192& query) {
  return match_sync(query, MatchKind::kMatchUnique, {});
}
std::vector<Matcher::Key> ShardedTagMatch::match(std::span<const std::string> tags) {
  std::vector<uint64_t> hashes;
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  return match_sync(encode(tags), MatchKind::kMatch, std::move(hashes));
}
std::vector<Matcher::Key> ShardedTagMatch::match_unique(std::span<const std::string> tags) {
  std::vector<uint64_t> hashes;
  for (const auto& t : tags) {
    hashes.push_back(TagMatch::tag_hash(t));
  }
  return match_sync(encode(tags), MatchKind::kMatchUnique, std::move(hashes));
}

void ShardedTagMatch::flush() {
  for (;;) {
    {
      epoch::EpochManager::Pin pin(*router_epoch_);
      const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
      for (const auto& shard : es.shards) {
        shard->flush();
      }
    }
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // A scatter may have registered its gather but not reached every shard
    // yet; yield and re-flush. The pin is released across the sleep so a
    // concurrent commit_engines() can make progress.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- Introspection ---------------------------------------------------------

Matcher::Stats ShardedTagMatch::stats() const {
  Stats total;
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  for (const auto& shard : es.shards) {
    total += shard->stats();
  }
  return total;
}

ShardedTagMatch::ShardStats ShardedTagMatch::shard_stats() const {
  ShardStats s;
  {
    epoch::EpochManager::Pin pin(*router_epoch_);
    const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
    s.per_shard.reserve(es.shards.size());
    for (const auto& shard : es.shards) {
      s.per_shard.push_back(shard->stats());
      s.total += s.per_shard.back();
    }
  }
  s.queries = queries_->value();
  s.partial_results = partial_results_->value();
  s.shards_shed = shards_shed_->value();
  s.hedged = hedged_->value();
  s.failovers = failovers_->value();
  s.repairs = repairs_->value();
  s.wall_consolidate_seconds = wall_consolidate_seconds_.load(std::memory_order_relaxed);
  return s;
}

obs::MetricsSnapshot ShardedTagMatch::metrics_snapshot() const {
  obs::MetricsSnapshot snap = obs_.registry().snapshot();
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  for (const auto& shard : es.shards) {
    snap += shard->metrics_snapshot();
  }
  return snap;
}

std::vector<obs::Span> ShardedTagMatch::trace_snapshot() const {
  std::vector<obs::Span> spans = obs_.tracer().snapshot();
  {
    epoch::EpochManager::Pin pin(*router_epoch_);
    const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
    for (const auto& shard : es.shards) {
      std::vector<obs::Span> shard_spans = shard->trace_snapshot();
      spans.insert(spans.end(), shard_spans.begin(), shard_spans.end());
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const obs::Span& a, const obs::Span& b) { return a.start_ns < b.start_ns; });
  return spans;
}

uint64_t ShardedTagMatch::trace_dropped() const {
  uint64_t dropped = obs_.tracer().dropped();
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  for (const auto& shard : es.shards) {
    dropped += shard->trace_dropped();
  }
  return dropped;
}

// --- Persistence -----------------------------------------------------------
// Manifest layout (native-endian, version-checked like the engine index):
//   u32 magic "TGSH" | u32 version | u32 shard count | u32 replica count
//   (v3+) | string policy name | string signature-scheme name (v2+) | shard
//   count x string shard file name (relative to the manifest's directory;
//   save_index writes them next to the manifest).
// The replica count is advisory (replicas of a shard are identical, so one
// file per logical shard suffices); load_index replicates into however many
// replicas the live config asks for.

namespace {

constexpr uint32_t kManifestMagic = 0x48534754;  // "TGSH"
// v2 appends the signature-scheme name after the policy; v3 inserts the
// replica count after the shard count. v1/v2 manifests are still accepted
// (bloom192 baseline / single-replica respectively).
constexpr uint32_t kManifestVersion = 3;
constexpr uint32_t kManifestVersionPreReplica = 2;
constexpr uint32_t kManifestVersionPreScheme = 1;
constexpr uint32_t kMaxManifestShards = 4096;
constexpr uint32_t kMaxManifestReplicas = 64;
constexpr uint32_t kMaxNameLen = 4096;

void write_string(std::FILE* f, const std::string& s) {
  uint32_t n = static_cast<uint32_t>(s.size());
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(s.data(), 1, n, f);
}

bool read_string(std::FILE* f, std::string& s) {
  uint32_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1 || n > kMaxNameLen) {
    return false;
  }
  s.resize(n);
  return n == 0 || std::fread(s.data(), 1, n, f) == n;
}

std::string base_name(const std::string& path) {
  auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string dir_name(const std::string& path) {
  auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

struct Manifest {
  uint32_t num_shards = 0;
  uint32_t num_replicas = 1;  // Advisory (v3+); pre-v3 manifests imply 1.
  std::string policy;
  std::string scheme;              // Signature-scheme name the shards were built under.
  std::vector<std::string> files;  // Relative to the manifest's directory.
};

bool read_manifest(const std::string& path, Manifest& m) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint32_t magic = 0, version = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&version, sizeof(version), 1, f) == 1 && magic == kManifestMagic &&
            (version == kManifestVersion || version == kManifestVersionPreReplica ||
             version == kManifestVersionPreScheme) &&
            std::fread(&m.num_shards, sizeof(m.num_shards), 1, f) == 1 && m.num_shards >= 1 &&
            m.num_shards <= kMaxManifestShards;
  if (ok && version >= kManifestVersion) {
    ok = std::fread(&m.num_replicas, sizeof(m.num_replicas), 1, f) == 1 &&
         m.num_replicas >= 1 && m.num_replicas <= kMaxManifestReplicas;
  }
  ok = ok && read_string(f, m.policy);
  if (ok && version >= kManifestVersionPreReplica) {
    ok = read_string(f, m.scheme) && !m.scheme.empty();
  } else if (ok) {
    // Pre-scheme manifests were always built under the bloom192 baseline.
    m.scheme = std::string(sig::bloom192_scheme().name());
  }
  for (uint32_t i = 0; ok && i < m.num_shards; ++i) {
    std::string name;
    ok = read_string(f, name) && !name.empty();
    m.files.push_back(std::move(name));
  }
  std::fclose(f);
  return ok;
}

}  // namespace

bool ShardedTagMatch::save_index(const std::string& path) const {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  // Shard files first: a manifest only ever references files that exist.
  for (size_t i = 0; i < es.shards.size(); ++i) {
    if (!es.shards[i]->save_index(path + ".shard" + std::to_string(i))) {
      return false;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::fwrite(&kManifestMagic, sizeof(kManifestMagic), 1, f);
  std::fwrite(&kManifestVersion, sizeof(kManifestVersion), 1, f);
  uint32_t n = static_cast<uint32_t>(es.shards.size());
  std::fwrite(&n, sizeof(n), 1, f);
  uint32_t r = config_.num_replicas;
  std::fwrite(&r, sizeof(r), 1, f);
  write_string(f, policy_->name());
  write_string(f, std::string(sig::resolve(config_.shard.signature_scheme).name()));
  for (size_t i = 0; i < es.shards.size(); ++i) {
    write_string(f, base_name(path) + ".shard" + std::to_string(i));
  }
  bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(path.c_str());  // No torn manifests next to valid shard files.
  }
  return ok;
}

bool ShardedTagMatch::load_index(const std::string& path) {
  Manifest m;
  if (!read_manifest(path, m)) {
    return false;
  }
  const std::string live_scheme(sig::resolve(config_.shard.signature_scheme).name());
  if (m.scheme != live_scheme) {
    std::fprintf(stderr,
                 "tagmatch: shard manifest %s was built under signature scheme %s but "
                 "this deployment runs %s; rebuild the index or pass "
                 "--signature-scheme %s\n",
                 path.c_str(), m.scheme.c_str(), live_scheme.c_str(), m.scheme.c_str());
    return false;
  }
  const std::string dir = dir_name(path);
  std::vector<std::string> shard_paths;
  shard_paths.reserve(m.files.size());
  for (const auto& name : m.files) {
    shard_paths.push_back(dir + name);
  }

  // Everything loads into fresh replica sets; the live ones are replaced
  // only after the whole manifest has resolved (a missing or corrupt shard
  // file must not corrupt the serving state). The target layout is the
  // CURRENT shard count (which a runtime reshard() may have moved away from
  // the constructed config), at the configured replica count.
  const unsigned target_shards = num_shards_.load(std::memory_order_acquire);
  std::vector<std::unique_ptr<ReplicaSet>> fresh;
  fresh.reserve(target_shards);
  for (unsigned i = 0; i < target_shards; ++i) {
    fresh.push_back(make_replica_set(i));
  }

  if (m.num_shards == target_shards && m.policy == policy_->name()) {
    // Fast path: same layout — each saved shard file loads into every
    // replica of the matching live shard.
    for (size_t i = 0; i < fresh.size(); ++i) {
      if (!fresh[i]->load_index(shard_paths[i])) {
        return false;
      }
    }
  } else {
    // Reshard: read every saved shard into a lightweight scratch engine and
    // redistribute its sets under the live policy and shard count. Replica
    // counts are independent of this — writes into a ReplicaSet already fan
    // out to every replica.
    TagMatchConfig scratch_config;
    scratch_config.cpu_only = true;
    scratch_config.num_threads = 1;
    // The scratch loader must run the manifest's scheme or its per-engine
    // index load would fail the scheme check.
    scratch_config.signature_scheme = &sig::resolve(config_.shard.signature_scheme);
    for (const auto& shard_path : shard_paths) {
      TagMatch scratch(scratch_config);
      if (!scratch.load_index(shard_path)) {
        return false;
      }
      scratch.for_each_set([&](const BloomFilter192& filter, std::span<const Key> keys,
                               std::span<const uint64_t> tag_hashes) {
        for (Key key : keys) {
          ReplicaSet& target = *fresh[shard_of(filter.bits(), key, fresh.size())];
          if (tag_hashes.empty()) {
            target.add_set(filter, key);
          } else {
            target.add_set_hashed(filter, tag_hashes, key);
          }
        }
      });
    }
    // Fresh engines serve no queries yet; build them in parallel on the
    // router pool.
    scheduler_->parallel_for(fresh.size(), [&fresh](size_t i) { fresh[i]->consolidate(); });
  }
  commit_engines(std::move(fresh));
  return true;
}

void ShardedTagMatch::commit_engines(std::vector<std::unique_ptr<ReplicaSet>> fresh) {
  flush();  // Complete outstanding gathers against the outgoing engines.
  auto next = std::make_shared<EngineSet>();
  next->shards = std::move(fresh);
  std::shared_ptr<const EngineSet> outgoing;
  {
    std::lock_guard commit_lock(commit_mu_);
    outgoing = std::move(engines_owner_);
    engines_owner_ = next;
    engines_.store(next.get(), std::memory_order_seq_cst);
  }
  // Wait for every reader that could still hold the outgoing set, then
  // retire it: the engine destructors flush and join their pipelines, which
  // completes any gather a late scatter issued against the old engines.
  router_epoch_->synchronize();
  router_epoch_->retire([keep = std::move(outgoing)]() mutable { keep.reset(); });
  router_epoch_->reclaim();
}

// --- Live resharding -------------------------------------------------------
// Split/merge the shard layout under traffic. Protocol:
//   1. Open the mirror window: every subsequent write is journaled.
//   2. Consolidate the old layout so for_each_set sees everything staged
//      before the window opened.
//   3. Enumerate the old shards, redistributing every set into fresh replica
//      sets under the new count.
//   4. Consolidate the fresh sets (they serve nothing yet), then replay the
//      journal — writes that raced the enumeration land on the new layout
//      too. Replay is idempotent for adds/removes of the same (filter, key)
//      because engine staging dedupes on consolidate.
//   5. Epoch-handoff commit (queries drain against the old set, then scatter
//      across the new one), replay the tail of the journal that raced the
//      commit, and close the window.

bool ShardedTagMatch::reshard(unsigned new_num_shards) {
  if (new_num_shards < 1 || new_num_shards > kMaxManifestShards) {
    return false;
  }
  std::lock_guard reshard_lock(reshard_mu_);  // One reshard at a time.

  // 1. Open the mirror window before reading anything: a write that misses
  // the enumeration is guaranteed to be in the journal.
  {
    std::lock_guard lock(mirror_mu_);
    mirror_journal_.clear();
  }
  mirroring_.store(true, std::memory_order_release);

  std::vector<std::unique_ptr<ReplicaSet>> fresh;
  fresh.reserve(new_num_shards);
  for (unsigned i = 0; i < new_num_shards; ++i) {
    fresh.push_back(make_replica_set(i));
  }
  // Raw view of the fresh sets: drain_mirror needs to reach them after
  // commit_engines has moved ownership into the published EngineSet.
  std::vector<ReplicaSet*> targets;
  targets.reserve(fresh.size());
  for (const auto& rs : fresh) {
    targets.push_back(rs.get());
  }

  {
    // 2+3. Consolidate and enumerate the old layout. The pin covers the
    // whole scan; for_each_set reads each shard's reference replica.
    epoch::EpochManager::Pin pin(*router_epoch_);
    const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
    if (config_.concurrent_consolidate && es.shards.size() > 1) {
      scheduler_->parallel_for(es.shards.size(),
                               [&es](size_t i) { es.shards[i]->consolidate(); });
    } else {
      for (const auto& shard : es.shards) {
        shard->consolidate();
      }
    }
    for (const auto& shard : es.shards) {
      shard->for_each_set([&](const BloomFilter192& filter, std::span<const Key> keys,
                              std::span<const uint64_t> tag_hashes) {
        for (Key key : keys) {
          ReplicaSet& target = *targets[shard_of(filter.bits(), key, targets.size())];
          if (tag_hashes.empty()) {
            target.add_set(filter, key);
          } else {
            target.add_set_hashed(filter, tag_hashes, key);
          }
        }
      });
    }
  }

  // 4. Build the fresh layout, then fold in writes that raced the scan.
  scheduler_->parallel_for(targets.size(), [&targets](size_t i) { targets[i]->consolidate(); });
  drain_mirror(targets, new_num_shards);

  // 5. Publish. commit_engines flushes outstanding queries against the old
  // layout first, so every accepted query resolves against a complete set.
  commit_engines(std::move(fresh));
  num_shards_.store(new_num_shards, std::memory_order_release);

  // Writes issued between the drain above and the commit journaled against a
  // still-open window but landed on the OLD layout; replay them, then close
  // the window. A write that lands after the commit went to the new layout
  // directly AND journaled — replay stays idempotent (dedupe-on-consolidate),
  // and remove-after-add ordering is preserved because the journal is
  // append-ordered.
  drain_mirror(targets, new_num_shards);
  mirroring_.store(false, std::memory_order_release);
  {
    // Serialize with in-flight mirror() calls that passed the open check,
    // then drop anything they appended after the final drain: those writers
    // also applied their op to the (already published) new layout directly.
    std::lock_guard lock(mirror_mu_);
    mirror_journal_.clear();
  }
  return true;
}

void ShardedTagMatch::drain_mirror(const std::vector<ReplicaSet*>& targets, size_t new_count) {
  std::vector<MirrorOp> batch;
  {
    std::lock_guard lock(mirror_mu_);
    batch.swap(mirror_journal_);
  }
  for (const MirrorOp& op : batch) {
    ReplicaSet& target = *targets[shard_of(op.filter.bits(), op.key, new_count)];
    if (op.add) {
      if (op.tag_hashes.empty()) {
        target.add_set(op.filter, op.key);
      } else {
        target.add_set_hashed(op.filter, op.tag_hashes, op.key);
      }
    } else {
      target.remove_set(op.filter, op.key);
    }
  }
}

// --- Replica administration ------------------------------------------------

ReplicaHealth ShardedTagMatch::replica_health(unsigned shard, unsigned replica) const {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  TAGMATCH_CHECK(shard < es.shards.size());
  return es.shards[shard]->health(replica);
}

std::vector<std::pair<unsigned, ReplicaHealth>> ShardedTagMatch::replica_health_history(
    unsigned shard) const {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  TAGMATCH_CHECK(shard < es.shards.size());
  return es.shards[shard]->health_history();
}

std::vector<std::pair<std::array<uint64_t, 3>, Matcher::Key>> ShardedTagMatch::replica_dump(
    unsigned shard, unsigned replica) const {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  TAGMATCH_CHECK(shard < es.shards.size());
  return es.shards[shard]->dump_replica(replica);
}

void ShardedTagMatch::kill_replica(unsigned shard, unsigned replica) {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  TAGMATCH_CHECK(shard < es.shards.size());
  es.shards[shard]->kill_replica(replica);
}

void ShardedTagMatch::restart_replica(unsigned shard, unsigned replica) {
  epoch::EpochManager::Pin pin(*router_epoch_);
  const EngineSet& es = *engines_.load(std::memory_order_seq_cst);
  TAGMATCH_CHECK(shard < es.shards.size());
  es.shards[shard]->restart_replica(replica);
}

}  // namespace tagmatch::shard

#include "src/inject/fault.h"

#include <charconv>
#include <sstream>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/stats.h"

namespace tagmatch::inject {

namespace {

std::optional<FaultSite> site_from_name(std::string_view name) {
  if (name == "alloc") return FaultSite::kAlloc;
  if (name == "h2d") return FaultSite::kH2D;
  if (name == "d2h") return FaultSite::kD2H;
  if (name == "kernel") return FaultSite::kKernel;
  if (name == "devloss") return FaultSite::kDeviceLoss;
  if (name == "replica") return FaultSite::kReplica;
  return std::nullopt;
}

std::optional<int64_t> parse_int(std::string_view text) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

// A devloss rule matches (and counts) every counted gpusim op on its device;
// other rules match their own site only. Replica consults are serving-layer
// events, not GPU ops: only replica rules match them (a devloss rule must not
// count replica dispatches toward its schedule, and a replica rule must not
// fire on stream ops).
bool rule_matches(const FaultRule& rule, FaultSite site, unsigned device) {
  if (rule.device >= 0 && static_cast<unsigned>(rule.device) != device) {
    return false;
  }
  if (site == FaultSite::kReplica || rule.site == FaultSite::kReplica) {
    return rule.site == site;
  }
  return rule.site == FaultSite::kDeviceLoss || rule.site == site;
}

}  // namespace

const char* site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kH2D:
      return "h2d";
    case FaultSite::kD2H:
      return "d2h";
    case FaultSite::kKernel:
      return "kernel";
    case FaultSite::kDeviceLoss:
      return "devloss";
    case FaultSite::kReplica:
      return "replica";
  }
  return "?";
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view rule_text = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view() : rest.substr(semi + 1);
    if (rule_text.empty()) {
      continue;  // Tolerate trailing / doubled separators.
    }
    FaultRule rule;
    size_t colon = rule_text.find(':');
    std::string_view site_text = rule_text.substr(0, colon);
    auto site = site_from_name(site_text);
    if (!site) {
      return std::nullopt;
    }
    rule.site = *site;
    std::string_view kvs =
        colon == std::string_view::npos ? std::string_view() : rule_text.substr(colon + 1);
    while (!kvs.empty()) {
      size_t comma = kvs.find(',');
      std::string_view kv = kvs.substr(0, comma);
      kvs = comma == std::string_view::npos ? std::string_view() : kvs.substr(comma + 1);
      size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return std::nullopt;
      }
      std::string_view key = kv.substr(0, eq);
      auto value = parse_int(kv.substr(eq + 1));
      if (!value) {
        return std::nullopt;
      }
      if (key == "dev") {
        rule.device = static_cast<int>(*value);
      } else if (key == "after") {
        if (*value < 0) return std::nullopt;
        rule.after = static_cast<uint64_t>(*value);
      } else if (key == "count") {
        if (*value < 0) return std::nullopt;
        rule.count = static_cast<uint32_t>(*value);
      } else if (key == "stall_ns") {
        if (*value < 0) return std::nullopt;
        rule.stall_ns = *value;
      } else if (key == "at_ms") {
        if (*value < 0) return std::nullopt;
        rule.at_ms = *value;
      } else {
        return std::nullopt;
      }
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream out;
  for (size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (i > 0) {
      out << ';';
    }
    out << site_name(rule.site);
    out << ":after=" << rule.after << ",count=" << rule.count;
    if (rule.device >= 0) {
      out << ",dev=" << rule.device;
    }
    if (rule.stall_ns > 0) {
      out << ",stall_ns=" << rule.stall_ns;
    }
    if (rule.at_ms >= 0) {
      out << ",at_ms=" << rule.at_ms;
    }
  }
  return out.str();
}

FaultPlan FaultPlan::random(uint64_t seed) {
  Rng rng(seed ^ 0xfa017'0f4a57ull);
  FaultPlan plan;
  const FaultSite transient_sites[] = {FaultSite::kH2D, FaultSite::kD2H, FaultSite::kKernel};
  // Always at least one transient rule so the retry path is exercised.
  FaultRule transient;
  transient.site = transient_sites[rng.below(3)];
  transient.after = rng.below(64);
  transient.count = static_cast<uint32_t>(rng.between(1, 3));
  plan.rules.push_back(transient);
  if (rng.chance(0.5)) {
    FaultRule stall;
    stall.site = transient_sites[rng.below(3)];
    stall.after = rng.below(64);
    stall.count = static_cast<uint32_t>(rng.between(1, 4));
    stall.stall_ns = static_cast<int64_t>(rng.between(100'000, 2'000'000));
    plan.rules.push_back(stall);
  }
  if (rng.chance(0.35)) {
    FaultRule loss;
    loss.site = FaultSite::kDeviceLoss;
    loss.device = static_cast<int>(rng.below(2));
    loss.after = rng.between(16, 256);
    loss.count = 1;
    plan.rules.push_back(loss);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), armed_ns_(now_ns()) {
  states_.reserve(plan_.rules.size());
  for (const FaultRule& rule : plan_.rules) {
    auto state = std::make_unique<RuleState>();
    state->rule = rule;
    states_.push_back(std::move(state));
  }
}

FaultDecision FaultInjector::check(FaultSite site, unsigned device) {
  FaultDecision decision;
  // One now_ns() per consult, shared by every wall-clock rule; taken lazily
  // so plans without at_ms rules never read the clock.
  int64_t elapsed_ms = -1;
  for (auto& state : states_) {
    const FaultRule& rule = state->rule;
    if (!rule_matches(rule, site, device)) {
      continue;
    }
    if (rule.at_ms >= 0) {
      if (elapsed_ms < 0) {
        elapsed_ms = (now_ns() - armed_ns_) / 1'000'000;
      }
      if (elapsed_ms < rule.at_ms) {
        continue;  // Dormant: ops before the trigger time are not counted.
      }
    }
    uint64_t n = state->seen.fetch_add(1, std::memory_order_relaxed);
    if (n < rule.after) {
      continue;
    }
    if (rule.count != 0 && n >= rule.after + rule.count) {
      continue;
    }
    FaultAction action = rule.site == FaultSite::kDeviceLoss ? FaultAction::kDeviceLoss
                         : rule.stall_ns > 0                 ? FaultAction::kStall
                                                             : FaultAction::kFail;
    if (static_cast<uint8_t>(action) > static_cast<uint8_t>(decision.action)) {
      decision.action = action;
    }
    if (action == FaultAction::kStall && rule.stall_ns > decision.stall_ns) {
      decision.stall_ns = rule.stall_ns;
    }
  }
  if (decision.action != FaultAction::kNone) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(events_mu_);
    if (events_.size() < kMaxEvents) {
      events_.push_back(FaultEvent{site, device, decision.action});
    }
  }
  return decision;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return events_;
}

}  // namespace tagmatch::inject

// Deterministic fault injection for the simulated GPU stack.
//
// A FaultPlan is a small set of rules, each arming one fault site (device
// allocation, H2D/D2H copy, kernel launch, or whole-device loss) with a
// counted schedule: "let `after` matching ops pass, then fire on the next
// `count` of them" (count == 0 means every one from then on). Because stream
// ops execute serially on their stream's executor thread and every rule keeps
// its own counter, a failure reproduces from the (seed, plan) pair alone —
// no wall-clock or scheduler dependence for single-stream schedules, and
// result-set identity regardless (the engine repairs every injected fault).
//
// The injector is consulted at the gpusim op boundary (device.cc/stream.cc);
// nothing above src/gpusim/ needs to know injection exists — faults surface
// as ordinary op errors. Layering: this library depends only on
// tagmatch_common so gpusim can link it without a cycle.
#ifndef TAGMATCH_INJECT_FAULT_H_
#define TAGMATCH_INJECT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace tagmatch::inject {

// Where a fault can be armed. kDeviceLoss is not an op of its own: a devloss
// rule matches any counted op (alloc/h2d/d2h/kernel) on its device and, when
// it fires, marks the whole device lost (sticky — lost devices never heal;
// recovery is the engine's job via re-dispatch or CPU fallback).
//
// kReplica is a serving-layer site, not a gpusim op: the shard replication
// layer (src/shard/replica_set.*) consults it once per replica dispatch and
// once per replica write, with `device` carrying the replica index. A firing
// kFail black-holes the op (query never answered / write lost — the replica
// looks dead); stall_ns delays the replica's response instead (slow replica).
// gpusim op consults never match replica rules and vice versa, so one
// injector can drive both layers from a single plan.
enum class FaultSite : uint8_t {
  kAlloc = 0,
  kH2D,
  kD2H,
  kKernel,
  kDeviceLoss,
  kReplica,
};

const char* site_name(FaultSite site);

// What the consulted site must do. Worst wins when several rules match the
// same op: kDeviceLoss > kFail > kStall > kNone.
enum class FaultAction : uint8_t {
  kNone = 0,
  kStall,       // Proceed, but only after spinning for stall_ns (stream stall).
  kFail,        // Skip the op and latch an error on the stream.
  kDeviceLoss,  // Mark the device lost; every later op on it fails.
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int64_t stall_ns = 0;
};

struct FaultRule {
  FaultSite site = FaultSite::kH2D;
  int device = -1;       // Device index this rule applies to; -1 = any device.
  uint64_t after = 0;    // Matching ops to let pass before the rule fires.
  uint32_t count = 1;    // Matching ops to hit once firing; 0 = permanent.
  int64_t stall_ns = 0;  // > 0 turns the fault into an injected stall.
  // Wall-clock trigger: the rule is dormant — neither matching nor counting
  // ops — until at_ms milliseconds after the injector was armed. -1 arms it
  // immediately (the op-counted schedules above). Lets a chaos drill target a
  // phase ("kill replica 1 fifty milliseconds in, mid-gather") that op counts
  // can't address deterministically.
  int64_t at_ms = -1;
};

// Spec grammar (round-trips through parse()/to_spec()):
//   plan  := rule (';' rule)*
//   rule  := site (':' kv (',' kv)*)?
//   site  := 'alloc' | 'h2d' | 'd2h' | 'kernel' | 'devloss' | 'replica'
//   kv    := ('dev' | 'after' | 'count' | 'stall_ns' | 'at_ms') '=' integer
// Example: "h2d:after=5,count=2;devloss:dev=0,after=100;replica:dev=1,at_ms=50,count=0".
struct FaultPlan {
  std::vector<FaultRule> rules;

  static std::optional<FaultPlan> parse(const std::string& spec);
  // Seeded 1-3 rule plan for randomized chaos/stress runs; always includes at
  // least one transient (finite-count) rule so the run exercises retry.
  static FaultPlan random(uint64_t seed);
  std::string to_spec() const;
  bool empty() const { return rules.empty(); }
};

// One fired (or stalled) fault, for test assertions and logs.
struct FaultEvent {
  FaultSite site;
  unsigned device;
  FaultAction action;
};

// Thread-safe decision engine over a FaultPlan. check() is the hot path: one
// branch when the plan is empty for a site, a few relaxed atomics otherwise.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consult the plan for an op at `site` on device `device`. Every call
  // advances the counters of all matching rules, fired or not.
  FaultDecision check(FaultSite site, unsigned device);

  const FaultPlan& plan() const { return plan_; }
  uint64_t faults_fired() const { return fired_.load(std::memory_order_relaxed); }
  // Bounded log (oldest kept) of fired faults, in fire order per stream.
  std::vector<FaultEvent> events() const;

 private:
  struct RuleState {
    FaultRule rule;
    std::atomic<uint64_t> seen{0};
  };

  static constexpr size_t kMaxEvents = 1024;

  FaultPlan plan_;
  std::vector<std::unique_ptr<RuleState>> states_;
  const int64_t armed_ns_;  // Wall-clock origin for at_ms triggers.
  std::atomic<uint64_t> fired_{0};
  mutable std::mutex events_mu_;
  std::vector<FaultEvent> events_;
};

}  // namespace tagmatch::inject

#endif  // TAGMATCH_INJECT_FAULT_H_

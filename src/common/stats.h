// Timing and summary-statistics helpers for the evaluation harness.
#ifndef TAGMATCH_COMMON_STATS_H_
#define TAGMATCH_COMMON_STATS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tagmatch {

using Clock = std::chrono::steady_clock;

inline int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_s() const { return std::chrono::duration<double>(Clock::now() - start_).count(); }
  double elapsed_ms() const { return elapsed_s() * 1e3; }
  int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

// Collects samples (e.g. per-query latencies) and reports order statistics.
// Not thread-safe; each thread records into its own instance and instances
// are merged at the end.
//
// An empty set has no order statistics: mean/min/max/percentile return NaN
// (a 0 would be indistinguishable from a genuine zero-latency sample and has
// bitten bench reports before). The sample vector is sorted lazily, once,
// and the sorted order is cached until the next record/merge — repeated
// percentile calls (p50/p95/p99 in a row) no longer re-sort.
class SampleSet {
 public:
  void record(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = sorted_ && other.samples_.empty();
  }

  size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    double sum = 0;
    for (double v : samples_) {
      sum += v;
    }
    return sum / static_cast<double>(samples_.size());
  }

  double min() const {
    if (samples_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    ensure_sorted();
    return samples_.front();
  }
  double max() const {
    if (samples_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    ensure_sorted();
    return samples_.back();
  }

  // Nearest-rank percentile with linear interpolation, p in [0, 100].
  double percentile(double p) const {
    if (samples_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    ensure_sorted();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  // Mutable: the order statistics are const but sort in place on demand.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;  // Vacuously sorted while empty.
};

// Human-friendly formatting used by the bench harness tables.
std::string format_si(double value);              // 1234567 -> "1.23M"
std::string format_bytes(uint64_t bytes);         // 1536 -> "1.50 KiB"
std::string format_duration_ms(double millis);    // 0.123 -> "123 us"

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_STATS_H_

// Timing and summary-statistics helpers for the evaluation harness.
#ifndef TAGMATCH_COMMON_STATS_H_
#define TAGMATCH_COMMON_STATS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace tagmatch {

using Clock = std::chrono::steady_clock;

inline int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_s() const { return std::chrono::duration<double>(Clock::now() - start_).count(); }
  double elapsed_ms() const { return elapsed_s() * 1e3; }
  int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

// Collects samples (e.g. per-query latencies) and reports order statistics.
// Not thread-safe; each thread records into its own instance and instances
// are merged at the end.
class SampleSet {
 public:
  void record(double v) { samples_.push_back(v); }
  void merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

  size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) {
      return 0;
    }
    double sum = 0;
    for (double v : samples_) {
      sum += v;
    }
    return sum / static_cast<double>(samples_.size());
  }

  double min() const {
    return samples_.empty() ? 0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // Nearest-rank percentile, p in [0, 100]. Sorts a copy; intended for
  // end-of-run reporting, not hot paths.
  double percentile(double p) const {
    if (samples_.empty()) {
      return 0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

 private:
  std::vector<double> samples_;
};

// Human-friendly formatting used by the bench harness tables.
std::string format_si(double value);              // 1234567 -> "1.23M"
std::string format_bytes(uint64_t bytes);         // 1536 -> "1.50 KiB"
std::string format_duration_ms(double millis);    // 0.123 -> "123 us"

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_STATS_H_

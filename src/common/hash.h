// Hashing primitives shared by the Bloom-filter encoder, the workload
// generator and the hash-based containers.
#ifndef TAGMATCH_COMMON_HASH_H_
#define TAGMATCH_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace tagmatch {

// 64-bit FNV-1a over a byte string.
constexpr uint64_t fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Fibonacci/murmur-style 64-bit finalizer (splitmix64 mix function). A good
// bit mixer for integer keys and for deriving independent hash streams.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Two independent 64-bit hashes of a string, for Kirsch-Mitzenmacher double
// hashing (h_i = h1 + i * h2) in the Bloom-filter encoder.
struct Hash128 {
  uint64_t h1;
  uint64_t h2;
};

constexpr Hash128 hash128(std::string_view data) {
  uint64_t a = fnv1a64(data);
  uint64_t b = mix64(a ^ 0x6a09e667f3bcc909ull);
  // Force h2 odd so successive probes cycle through all residues.
  return Hash128{mix64(a), b | 1};
}

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_HASH_H_

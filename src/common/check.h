// Lightweight invariant checking. TAGMATCH_CHECK is always on (these guard
// API misuse and internal invariants, not hot loops); TAGMATCH_DCHECK
// compiles out in release builds.
#ifndef TAGMATCH_COMMON_CHECK_H_
#define TAGMATCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define TAGMATCH_CHECK(cond)                                                          \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

#ifdef NDEBUG
#define TAGMATCH_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define TAGMATCH_DCHECK(cond) TAGMATCH_CHECK(cond)
#endif

#endif  // TAGMATCH_COMMON_CHECK_H_

// Bounded multi-producer/multi-consumer blocking queue used to hand work
// between the stages of the TagMatch pipeline.
#ifndef TAGMATCH_COMMON_MPMC_QUEUE_H_
#define TAGMATCH_COMMON_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tagmatch {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  // Blocks while the queue is full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false if full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // Closed and drained.
    }
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Blocks up to `timeout` for an item; nullopt on timeout or when closed
  // and drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Wakes all blocked producers/consumers; subsequent pushes fail and pops
  // drain the remaining items then return nullopt.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_MPMC_QUEUE_H_

// Deterministic pseudo-random generation for workload synthesis and tests.
//
// xoshiro256** with splitmix64 seeding: fast, high quality, and — unlike
// std::mt19937 + std::distributions — bit-for-bit reproducible across
// standard library implementations, which the benchmark harness relies on.
#ifndef TAGMATCH_COMMON_RNG_H_
#define TAGMATCH_COMMON_RNG_H_

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace tagmatch {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bull) {
    uint64_t s = seed;
    for (auto& word : state_) {
      s += 0x9e3779b97f4a7c15ull;
      word = mix64(s);
    }
  }

  uint64_t next() {
    uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Unbiased enough for workload generation (Lemire's
  // multiply-shift reduction).
  uint64_t below(uint64_t bound) {
    return static_cast<uint64_t>((static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t between(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  // Uniform in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

  // Derives an independent child generator; used to give each worker thread
  // or workload section its own deterministic stream.
  Rng fork() { return Rng(next() ^ 0xd1342543de82ef95ull); }

 private:
  std::array<uint64_t, 4> state_;
};

// Zipf-distributed sampler over {0, .., n-1} with exponent `s`, using an
// inverted-CDF table (O(log n) per sample). Models the skew in tag
// popularity and follower counts in the Twitter workload.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& v : cdf_) {
      v /= sum;
    }
  }

  size_t sample(Rng& rng) const {
    double u = rng.uniform();
    // Binary search for the first cdf_ entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Samples from an arbitrary discrete distribution given as (unnormalized)
// weights. Used for the language distributions of the workload generator.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights) : cdf_(std::move(weights)) {
    double sum = 0;
    for (double& w : cdf_) {
      sum += w;
      w = sum;
    }
    for (double& w : cdf_) {
      w /= sum;
    }
  }

  size_t sample(Rng& rng) const {
    double u = rng.uniform();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_RNG_H_

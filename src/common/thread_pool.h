// Fixed-size thread pool with a parallel-for helper. Used by the GPU
// simulator's SM workers and by baseline matchers' query drivers.
#ifndef TAGMATCH_COMMON_THREAD_POOL_H_
#define TAGMATCH_COMMON_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/mpmc_queue.h"

namespace tagmatch {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads) {
    if (num_threads == 0) {
      num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    tasks_.close();
    for (auto& t : workers_) {
      t.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) { tasks_.push(std::move(task)); }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Runs fn(i) for i in [0, n), distributing chunks over the pool, and blocks
  // until all iterations complete. The calling thread participates, so this
  // is safe to call even from within a pool task.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) {
      return;
    }
    const unsigned parts = std::min<size_t>(workers_.size() + 1, n);
    std::atomic<size_t> next{0};
    std::atomic<unsigned> done{0};
    std::promise<void> all_done;
    auto drain = [&] {
      size_t i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
        fn(i);
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == parts) {
        all_done.set_value();
      }
    };
    for (unsigned p = 0; p + 1 < parts; ++p) {
      submit(drain);
    }
    drain();  // Caller participates as the last part.
    all_done.get_future().wait();
  }

 private:
  void worker_loop() {
    while (auto task = tasks_.pop()) {
      (*task)();
    }
  }

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_THREAD_POOL_H_

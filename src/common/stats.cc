#include "src/common/stats.h"

#include <cstdio>

namespace tagmatch {

std::string format_si(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

std::string format_bytes(uint64_t bytes) {
  char buf[32];
  double v = static_cast<double>(bytes);
  if (v >= 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", v / (1024.0 * 1024 * 1024));
  } else if (v >= 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", v / (1024.0 * 1024));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_duration_ms(double millis) {
  char buf[32];
  if (millis >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", millis / 1000.0);
  } else if (millis >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", millis);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", millis * 1000.0);
  }
  return buf;
}

}  // namespace tagmatch

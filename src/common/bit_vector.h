// 192-bit fixed-width bit vector: the raw representation behind Bloom-filter
// signatures in TagMatch (3 x 64-bit blocks, as in the paper's footnote 4).
//
// Bit positions run from 0 (the *leftmost* bit, i.e. the most significant bit
// of block 0) to 191 (the least significant bit of block 2). This matches the
// paper's notion of "leftmost one-bit", which indexes the partition table, and
// makes lexicographic order on bit vectors equal to numeric order on the
// big-endian concatenation of the blocks.
#ifndef TAGMATCH_COMMON_BIT_VECTOR_H_
#define TAGMATCH_COMMON_BIT_VECTOR_H_

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <cstring>
#include <string>

namespace tagmatch {

class BitVector192 {
 public:
  static constexpr unsigned kBits = 192;
  static constexpr unsigned kBlocks = 3;
  static constexpr unsigned kBlockBits = 64;

  constexpr BitVector192() : blocks_{0, 0, 0} {}
  constexpr explicit BitVector192(uint64_t b0, uint64_t b1, uint64_t b2) : blocks_{b0, b1, b2} {}

  // Sets bit at position `pos` (0 = leftmost).
  constexpr void set(unsigned pos) { blocks_[pos >> 6] |= bit_mask(pos); }
  constexpr void clear(unsigned pos) { blocks_[pos >> 6] &= ~bit_mask(pos); }
  constexpr bool test(unsigned pos) const { return (blocks_[pos >> 6] & bit_mask(pos)) != 0; }

  constexpr void clear_all() { blocks_ = {0, 0, 0}; }
  constexpr bool empty() const { return (blocks_[0] | blocks_[1] | blocks_[2]) == 0; }

  // Bitwise subset check: true iff every one-bit of *this is also set in
  // `other`. This is the three-block operation from footnote 4 of the paper:
  // ((this[k] & ~other[k]) == 0) for each block k.
  constexpr bool subset_of(const BitVector192& other) const {
    return (blocks_[0] & ~other.blocks_[0]) == 0 && (blocks_[1] & ~other.blocks_[1]) == 0 &&
           (blocks_[2] & ~other.blocks_[2]) == 0;
  }

  constexpr unsigned popcount() const {
    return static_cast<unsigned>(std::popcount(blocks_[0]) + std::popcount(blocks_[1]) +
                                 std::popcount(blocks_[2]));
  }

  // Position of the leftmost (lowest-index) one-bit, or kBits if empty.
  constexpr unsigned leftmost_one() const {
    if (blocks_[0] != 0) {
      return static_cast<unsigned>(std::countl_zero(blocks_[0]));
    }
    if (blocks_[1] != 0) {
      return 64 + static_cast<unsigned>(std::countl_zero(blocks_[1]));
    }
    if (blocks_[2] != 0) {
      return 128 + static_cast<unsigned>(std::countl_zero(blocks_[2]));
    }
    return kBits;
  }

  // Length (in bit positions from the left) of the common prefix of a and b,
  // i.e. the position of the leftmost bit where they differ, or kBits if
  // equal. Used by the kernel's block-level prefix pre-filter (Algorithm 4).
  static constexpr unsigned common_prefix_len(const BitVector192& a, const BitVector192& b) {
    return (a ^ b).leftmost_one();
  }

  // Returns a copy with every bit at position >= len cleared (keeps only the
  // first `len` bit positions). Used to extract a block's shared prefix.
  constexpr BitVector192 prefix(unsigned len) const {
    if (len >= kBits) {
      return *this;
    }
    BitVector192 r = *this;
    unsigned blk = len >> 6;
    unsigned off = len & 63;
    // Keep the top `off` bits of block `blk`, zero the rest of it and all
    // following blocks.
    r.blocks_[blk] &= (off == 0) ? 0 : (~uint64_t{0} << (64 - off));
    for (unsigned k = blk + 1; k < kBlocks; ++k) {
      r.blocks_[k] = 0;
    }
    return r;
  }

  constexpr BitVector192 operator|(const BitVector192& o) const {
    return BitVector192(blocks_[0] | o.blocks_[0], blocks_[1] | o.blocks_[1],
                        blocks_[2] | o.blocks_[2]);
  }
  constexpr BitVector192 operator&(const BitVector192& o) const {
    return BitVector192(blocks_[0] & o.blocks_[0], blocks_[1] & o.blocks_[1],
                        blocks_[2] & o.blocks_[2]);
  }
  constexpr BitVector192 operator^(const BitVector192& o) const {
    return BitVector192(blocks_[0] ^ o.blocks_[0], blocks_[1] ^ o.blocks_[1],
                        blocks_[2] ^ o.blocks_[2]);
  }
  constexpr BitVector192 operator~() const {
    return BitVector192(~blocks_[0], ~blocks_[1], ~blocks_[2]);
  }
  constexpr BitVector192& operator|=(const BitVector192& o) {
    blocks_[0] |= o.blocks_[0];
    blocks_[1] |= o.blocks_[1];
    blocks_[2] |= o.blocks_[2];
    return *this;
  }

  constexpr bool operator==(const BitVector192&) const = default;

  // Lexicographic order: big-endian numeric comparison block by block. The
  // tagset table stores filters in this order so a thread block's sets share
  // a long common prefix (Algorithm 4).
  constexpr std::strong_ordering operator<=>(const BitVector192& o) const {
    for (unsigned k = 0; k < kBlocks; ++k) {
      if (blocks_[k] != o.blocks_[k]) {
        return blocks_[k] < o.blocks_[k] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }

  constexpr uint64_t block(unsigned k) const { return blocks_[k]; }
  constexpr uint64_t& block(unsigned k) { return blocks_[k]; }

  // 64-bit mix of the three blocks, suitable as a hash-table key.
  uint64_t hash() const;

  // "101001..." rendering (192 chars), mostly for tests and debugging.
  std::string to_string() const;

 private:
  static constexpr uint64_t bit_mask(unsigned pos) { return uint64_t{1} << (63 - (pos & 63)); }

  std::array<uint64_t, kBlocks> blocks_;
};

struct BitVector192Hash {
  size_t operator()(const BitVector192& v) const { return static_cast<size_t>(v.hash()); }
};

}  // namespace tagmatch

#endif  // TAGMATCH_COMMON_BIT_VECTOR_H_

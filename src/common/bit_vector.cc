#include "src/common/bit_vector.h"

#include "src/common/hash.h"

namespace tagmatch {

uint64_t BitVector192::hash() const {
  uint64_t h = mix64(blocks_[0]);
  h = mix64(h ^ blocks_[1]);
  h = mix64(h ^ blocks_[2]);
  return h;
}

std::string BitVector192::to_string() const {
  std::string s;
  s.reserve(kBits);
  for (unsigned i = 0; i < kBits; ++i) {
    s.push_back(test(i) ? '1' : '0');
  }
  return s;
}

}  // namespace tagmatch

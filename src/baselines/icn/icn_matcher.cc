#include "src/baselines/icn/icn_matcher.h"

#include <algorithm>

#include "src/common/check.h"

namespace tagmatch::baselines {

void IcnMatcher::add(const BitVector192& filter, Key key) { staged_.emplace_back(filter, key); }

uint64_t IcnMatcher::estimated_build_bytes() const {
  // The expansion phase materializes one node per one-bit of every staged
  // signature plus per-entry bookkeeping; with ~35 one-bits per 5-tag
  // signature this transient structure dwarfs the final index — the trait
  // that capped the original system at 20% of the full Twitter database.
  uint64_t nodes = 0;
  for (const auto& [filter, key] : staged_) {
    nodes += filter.popcount() + 1;
  }
  return nodes * sizeof(ExpandedNode) + staged_.size() * sizeof(std::pair<BitVector192, Key>);
}

bool IcnMatcher::build() {
  if (build_memory_budget_ != 0 && estimated_build_bytes() > build_memory_budget_) {
    return false;
  }

  // Construction phase: expand every signature into a chain of per-bit
  // nodes (faithful to the original's memory-hungry intermediate
  // representation) before the compacted trie is produced.
  std::vector<ExpandedNode> expansion;
  expansion.reserve(staged_.size() * 8);
  for (uint32_t i = 0; i < staged_.size(); ++i) {
    const BitVector192& f = staged_[i].first;
    uint32_t parent = UINT32_MAX;
    for (unsigned blk = 0; blk < BitVector192::kBlocks; ++blk) {
      uint64_t bits = f.block(blk);
      while (bits != 0) {
        unsigned lead = static_cast<unsigned>(std::countl_zero(bits));
        ExpandedNode node{blk * 64 + lead, parent, UINT32_MAX, UINT32_MAX, UINT32_MAX};
        parent = static_cast<uint32_t>(expansion.size());
        expansion.push_back(node);
        bits &= ~(uint64_t{1} << (63 - lead));
      }
    }
    ExpandedNode leaf{BitVector192::kBits, parent, UINT32_MAX, UINT32_MAX, i};
    expansion.push_back(leaf);
  }

  // Compaction: dedup + sort signatures, build the compressed trie with
  // per-node minimum Hamming weight for the ICN matcher's extra pruning.
  std::sort(staged_.begin(), staged_.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second < b.second;
  });
  filters_.clear();
  key_offsets_.clear();
  keys_.clear();
  key_offsets_.push_back(0);
  for (const auto& [filter, key] : staged_) {
    if (filters_.empty() || filters_.back() != filter) {
      if (!filters_.empty()) {
        key_offsets_.push_back(static_cast<uint32_t>(keys_.size()));
      }
      filters_.push_back(filter);
    }
    keys_.push_back(key);
  }
  if (!filters_.empty()) {
    key_offsets_.push_back(static_cast<uint32_t>(keys_.size()));
  }
  nodes_.clear();
  nodes_.reserve(filters_.size() * 2);
  root_ = filters_.empty() ? -1 : build_node(0, static_cast<uint32_t>(filters_.size()));
  return true;
}

int32_t IcnMatcher::build_node(uint32_t lo, uint32_t hi) {
  TAGMATCH_CHECK(lo < hi);
  const unsigned split = BitVector192::common_prefix_len(filters_[lo], filters_[hi - 1]);
  Node node;
  node.prefix = filters_[lo].prefix(split);
  node.min_weight = BitVector192::kBits;
  for (uint32_t i = lo; i < hi; ++i) {
    node.min_weight = std::min(node.min_weight, filters_[i].popcount());
  }
  // Trie compression à la Papalini et al.: small ranges are kept as scanned
  // leaves instead of fully expanded subtries — fewer nodes, better cache
  // behaviour than the plain prefix tree.
  constexpr uint32_t kLeafCap = 8;
  if (hi - lo <= kLeafCap || split >= BitVector192::kBits) {
    node.range_lo = lo;
    node.range_hi = hi;
    int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(node);
    return id;
  }
  BitVector192 probe = node.prefix;
  probe.set(split);
  auto mid_it = std::lower_bound(filters_.begin() + lo, filters_.begin() + hi, probe);
  uint32_t mid = static_cast<uint32_t>(mid_it - filters_.begin());
  TAGMATCH_CHECK(mid > lo && mid < hi);
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  int32_t left = build_node(lo, mid);
  int32_t right = build_node(mid, hi);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void IcnMatcher::match(const BitVector192& q, const std::function<void(Key)>& fn) const {
  if (root_ < 0) {
    return;
  }
  const unsigned q_weight = q.popcount();
  // Iterative traversal with an explicit stack (no recursion overhead).
  int32_t stack[2 * BitVector192::kBits + 2];
  int top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    // ICN pruning: a subtree whose lightest signature outweighs the query
    // can contain no subset of it — checked before the prefix test.
    if (node.min_weight > q_weight) {
      continue;
    }
    if (!node.prefix.subset_of(q)) {
      continue;
    }
    if (node.left < 0) {
      for (uint32_t i = node.range_lo; i < node.range_hi; ++i) {
        if (filters_[i].subset_of(q)) {
          for (uint32_t k = key_offsets_[i]; k < key_offsets_[i + 1]; ++k) {
            fn(keys_[k]);
          }
        }
      }
      continue;
    }
    stack[top++] = node.right;
    stack[top++] = node.left;
  }
}

std::vector<IcnMatcher::Key> IcnMatcher::match(const BitVector192& q) const {
  std::vector<Key> keys;
  match(q, [&](Key k) { keys.push_back(k); });
  return keys;
}

std::vector<IcnMatcher::Key> IcnMatcher::match_unique(const BitVector192& q) const {
  std::vector<Key> keys = match(q);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

uint64_t IcnMatcher::memory_bytes() const {
  return nodes_.capacity() * sizeof(Node) + filters_.capacity() * sizeof(BitVector192) +
         key_offsets_.capacity() * sizeof(uint32_t) + keys_.capacity() * sizeof(Key);
}

size_t IcnMatcher::unique_sets() const { return filters_.size(); }

}  // namespace tagmatch::baselines

// CPU baseline: the ICN forwarding matcher of Papalini et al. (ANCS'16),
// the paper's "state-of-the-art ICN" subject (§4.1, Table 1/3).
//
// Like the plain prefix tree it matches Bloom-filter signatures on a
// compressed trie, but augments every node with the minimum Hamming weight
// (popcount) of the signatures in its subtree: a subtree whose lightest
// signature has more one-bits than the query is pruned before any prefix
// test. With small database sets and larger queries this weight pruning
// makes it measurably faster than the plain prefix tree — the relative
// standing Table 1/3 of the paper reports.
//
// The defining operational trait the paper reports — "requires a lot of
// memory during the construction phase" (it could only index 20% of the
// Twitter database in 64 GB) — is also reproduced: build materializes an
// uncompressed expansion (one node per signature bit) before compacting it,
// and a configurable build-memory budget makes build() refuse databases
// whose expansion would exceed it.
#ifndef TAGMATCH_BASELINES_ICN_ICN_MATCHER_H_
#define TAGMATCH_BASELINES_ICN_ICN_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/bit_vector.h"

namespace tagmatch::baselines {

class IcnMatcher {
 public:
  using Key = uint32_t;

  // `build_memory_budget` caps the transient memory of the construction
  // phase (0 = unlimited).
  explicit IcnMatcher(uint64_t build_memory_budget = 0)
      : build_memory_budget_(build_memory_budget) {}

  void add(const BitVector192& filter, Key key);

  // Builds the index. Returns false (leaving the matcher empty) if the
  // construction-phase memory would exceed the budget — the condition that
  // kept the original system from indexing more than 20% of the paper's
  // full workload.
  bool build();

  // Estimated peak construction memory for the currently staged entries.
  uint64_t estimated_build_bytes() const;

  void match(const BitVector192& q, const std::function<void(Key)>& fn) const;
  std::vector<Key> match(const BitVector192& q) const;
  std::vector<Key> match_unique(const BitVector192& q) const;

  uint64_t memory_bytes() const;
  size_t unique_sets() const;

 private:
  // One expanded trie node per one-bit per signature during construction —
  // the memory-hungry intermediate representation of the original system.
  struct ExpandedNode {
    uint32_t bit_pos;
    uint32_t parent;
    uint32_t first_child;
    uint32_t next_sibling;
    uint32_t entry;  // Signature index, or UINT32_MAX for interior nodes.
  };

  struct Node {
    BitVector192 prefix;   // One-bits shared by every signature below.
    unsigned min_weight;   // Minimum popcount in the subtree.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t range_lo = 0;
    uint32_t range_hi = 0;
  };

  int32_t build_node(uint32_t lo, uint32_t hi);

  uint64_t build_memory_budget_;
  std::vector<std::pair<BitVector192, Key>> staged_;
  std::vector<BitVector192> filters_;  // Unique, sorted.
  std::vector<uint32_t> key_offsets_;
  std::vector<Key> keys_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_ICN_ICN_MATCHER_H_

#include "src/baselines/scan/scan_matchers.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/common/check.h"

namespace tagmatch::baselines {

std::vector<LinearScanMatcher::Key> LinearScanMatcher::match(const BitVector192& q) const {
  std::vector<Key> keys;
  match(q, [&](Key k) { keys.push_back(k); });
  return keys;
}

std::vector<LinearScanMatcher::Key> LinearScanMatcher::match_unique(const BitVector192& q) const {
  std::vector<Key> keys = match(q);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

GpuScanMatcherBase::GpuScanMatcherBase(const GpuScanConfig& config) : config_(config) {
  gpusim::DeviceConfig dev_config;
  dev_config.name = "SimTITAN-X:scan";
  dev_config.memory_capacity = config.memory_capacity;
  dev_config.num_sms = config.num_sms;
  dev_config.max_streams = 1;
  dev_config.costs = config.costs;
  device_ = std::make_unique<gpusim::Device>(std::move(dev_config));
  stream_ = std::make_unique<gpusim::Stream>(device_.get());
}

GpuScanMatcherBase::~GpuScanMatcherBase() {
  stream_.reset();  // Join the executor before buffers go away.
}

void GpuScanMatcherBase::add(const BitVector192& filter, Key key) {
  filters_.push_back(filter);
  keys_.push_back(key);
}

void GpuScanMatcherBase::build() {
  const size_t filter_bytes = filters_.size() * sizeof(BitVector192);
  const size_t key_bytes = keys_.size() * sizeof(Key);
  dev_filters_ = device_->alloc(std::max<size_t>(filter_bytes, 1));
  dev_keys_ = device_->alloc(std::max<size_t>(key_bytes, 1));
  dev_queries_ = device_->alloc(256 * sizeof(BitVector192));
  const size_t result_bytes = 16 + UnpackedResultCodec::bytes_for(config_.result_capacity);
  dev_results_ = device_->alloc(result_bytes);
  // The baselines have no degraded mode: device OOM here is fatal, as it was
  // when alloc itself aborted.
  TAGMATCH_CHECK(dev_filters_.valid() && dev_keys_.valid() && dev_queries_.valid() &&
                 dev_results_.valid());
  host_results_.resize(result_bytes);
  if (filter_bytes > 0) {
    stream_->memcpy_h2d(dev_filters_.data(), filters_.data(), filter_bytes);
    stream_->memcpy_h2d(dev_keys_.data(), keys_.data(), key_bytes);
  }
  stream_->synchronize();
}

std::vector<std::pair<uint32_t, GpuScanMatcherBase::Key>> GpuScanMatcherBase::match_batch(
    std::span<const BitVector192> queries) {
  TAGMATCH_CHECK(!queries.empty() && queries.size() <= 256);
  const uint32_t nq = static_cast<uint32_t>(queries.size());
  const uint32_t n = static_cast<uint32_t>(filters_.size());
  std::vector<std::pair<uint32_t, Key>> out;
  if (n == 0) {
    return out;
  }

  stream_->memcpy_h2d(dev_queries_.data(), queries.data(), nq * sizeof(BitVector192));
  stream_->memset_d(dev_results_.data(), 0, 16);

  const BitVector192* filters = dev_filters_.as<const BitVector192>();
  const Key* keys = dev_keys_.as<const Key>();
  const BitVector192* dev_q = dev_queries_.as<const BitVector192>();
  auto* counter = dev_results_.as<uint64_t>();
  auto* overflow = dev_results_.as<uint64_t>() + 1;
  std::byte* payload = dev_results_.data() + 16;
  const uint64_t capacity = config_.result_capacity;

  gpusim::LaunchConfig launch;
  launch.block_dim = config_.block_dim;
  launch.grid_dim = (n + launch.block_dim - 1) / launch.block_dim;
  // Brute force: no shared-memory pre-filtering, every thread checks its set
  // against every query in the batch.
  stream_->launch(launch, [=](gpusim::BlockContext& ctx) {
    ctx.threads([&](uint32_t tid) {
      const uint32_t s = ctx.block_first_thread() + tid;
      if (s >= n) {
        return;
      }
      const BitVector192& f = filters[s];
      for (uint32_t qi = 0; qi < nq; ++qi) {
        if (f.subset_of(dev_q[qi])) {
          uint64_t idx =
              std::atomic_ref<uint64_t>(*counter).fetch_add(1, std::memory_order_relaxed);
          if (idx < capacity) {
            // The GPU-only baselines predate the packed layout: naive pairs.
            UnpackedResultCodec::write(payload, idx, ResultPair{static_cast<uint8_t>(qi), s});
          } else {
            std::atomic_ref<uint64_t>(*overflow).store(1, std::memory_order_relaxed);
          }
        }
      }
    });
  });
  // Naive result retrieval: length copy, round trip, then the payload copy.
  stream_->memcpy_d2h(host_results_.data(), dev_results_.data(), 16);
  stream_->synchronize();
  uint64_t count = 0;
  uint64_t overflowed = 0;
  std::memcpy(&count, host_results_.data(), sizeof(count));
  std::memcpy(&overflowed, host_results_.data() + 8, sizeof(overflowed));
  const uint64_t stored = std::min<uint64_t>(count, capacity);
  stream_->memcpy_d2h(host_results_.data() + 16, dev_results_.data() + 16,
                      UnpackedResultCodec::bytes_for(stored));
  stream_->synchronize();

  out.reserve(stored);
  for (uint64_t i = 0; i < stored; ++i) {
    ResultPair pair = UnpackedResultCodec::read(host_results_.data() + 16, i);
    out.emplace_back(pair.query, keys_[pair.set_id]);
  }
  if (overflowed != 0) {
    // Exact CPU fallback, as in the main engine.
    out.clear();
    for (uint32_t s = 0; s < n; ++s) {
      for (uint32_t qi = 0; qi < nq; ++qi) {
        if (filters_[s].subset_of(queries[qi])) {
          out.emplace_back(qi, keys_[s]);
        }
      }
    }
  }
  (void)keys;
  return out;
}

std::vector<GpuPlainMatcher::Key> GpuPlainMatcher::match(const BitVector192& q) {
  std::vector<Key> keys;
  for (const auto& [qi, key] : match_batch(std::span(&q, 1))) {
    keys.push_back(key);
  }
  return keys;
}

std::vector<GpuPlainMatcher::Key> GpuPlainMatcher::match_unique(const BitVector192& q) {
  std::vector<Key> keys = match(q);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::vector<GpuBatchedMatcher::Key>> GpuBatchedMatcher::match_batch_queries(
    std::span<const BitVector192> queries) {
  std::vector<std::vector<Key>> per_query(queries.size());
  for (const auto& [qi, key] : match_batch(queries)) {
    per_query[qi].push_back(key);
  }
  return per_query;
}

}  // namespace tagmatch::baselines

// Scan-based baselines for Table 1:
//  * LinearScanMatcher — the trivial CPU O(n)-per-query scan;
//  * GpuPlainMatcher   — "GPU-only, plain": one query per kernel round trip
//    over the whole (unpartitioned) database;
//  * GpuBatchedMatcher — "GPU-only, plain with batching": a batch of queries
//    per kernel over the whole database, amortizing the per-call overhead
//    but doing no CPU-side pre-filtering and no partitioning.
//
// The GPU variants demonstrate the paper's Table 1 point: raw GPU
// parallelism without the CPU-side coarse index is not competitive — every
// query pays the full database scan plus the transfer overheads.
#ifndef TAGMATCH_BASELINES_SCAN_SCAN_MATCHERS_H_
#define TAGMATCH_BASELINES_SCAN_SCAN_MATCHERS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/core/packed_output.h"
#include "src/gpusim/device.h"
#include "src/gpusim/stream.h"

namespace tagmatch::baselines {

class LinearScanMatcher {
 public:
  using Key = uint32_t;

  void add(const BitVector192& filter, Key key) { entries_.emplace_back(filter, key); }
  void build() {}  // Nothing to do; symmetric interface.

  void match(const BitVector192& q, const std::function<void(Key)>& fn) const {
    for (const auto& [f, k] : entries_) {
      if (f.subset_of(q)) {
        fn(k);
      }
    }
  }
  std::vector<Key> match(const BitVector192& q) const;
  std::vector<Key> match_unique(const BitVector192& q) const;

  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<BitVector192, Key>> entries_;
};

struct GpuScanConfig {
  unsigned block_dim = 256;
  unsigned num_sms = 2;
  uint64_t memory_capacity = 12ull << 30;
  uint32_t result_capacity = 1u << 20;  // Result entries per kernel invocation.
  gpusim::CostModel costs;
};

// Shared machinery of the two GPU-only baselines: whole database resident on
// one simulated device, brute-force kernel with no prefix filtering.
class GpuScanMatcherBase {
 public:
  using Key = uint32_t;

  explicit GpuScanMatcherBase(const GpuScanConfig& config);
  ~GpuScanMatcherBase();

  void add(const BitVector192& filter, Key key);
  void build();  // Uploads the database to the device.

 protected:
  // Matches a batch of queries against the whole database synchronously and
  // returns (query index, key) pairs.
  std::vector<std::pair<uint32_t, Key>> match_batch(std::span<const BitVector192> queries);

  GpuScanConfig config_;
  std::vector<BitVector192> filters_;
  std::vector<Key> keys_;
  std::unique_ptr<gpusim::Device> device_;
  std::unique_ptr<gpusim::Stream> stream_;
  gpusim::DeviceBuffer dev_filters_;
  gpusim::DeviceBuffer dev_keys_;
  gpusim::DeviceBuffer dev_queries_;
  gpusim::DeviceBuffer dev_results_;
  std::vector<std::byte> host_results_;
};

// One query per kernel invocation (and per copy round trip).
class GpuPlainMatcher : public GpuScanMatcherBase {
 public:
  using GpuScanMatcherBase::GpuScanMatcherBase;
  std::vector<Key> match(const BitVector192& q);
  std::vector<Key> match_unique(const BitVector192& q);
};

// A batch of up to 256 queries per kernel invocation.
class GpuBatchedMatcher : public GpuScanMatcherBase {
 public:
  using GpuScanMatcherBase::GpuScanMatcherBase;
  // Returns per-query key lists, aligned with `queries`.
  std::vector<std::vector<Key>> match_batch_queries(std::span<const BitVector192> queries);
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_SCAN_SCAN_MATCHERS_H_

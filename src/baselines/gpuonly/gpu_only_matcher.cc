#include "src/baselines/gpuonly/gpu_only_matcher.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/common/check.h"
#include "src/core/partitioner.h"

namespace tagmatch::baselines {

namespace {
constexpr uint32_t kQueueCapacity = 256;  // One batch's worth of query ids.
}

GpuOnlyMatcher::GpuOnlyMatcher(const GpuOnlyConfig& config) : config_(config) {
  gpusim::DeviceConfig dev_config;
  dev_config.name = "SimTITAN-X:gpuonly";
  dev_config.memory_capacity = config.memory_capacity;
  dev_config.num_sms = config.num_sms;
  dev_config.max_streams = 1;
  dev_config.costs = config.costs;
  device_ = std::make_unique<gpusim::Device>(std::move(dev_config));
  stream_ = std::make_unique<gpusim::Stream>(device_.get());
}

GpuOnlyMatcher::~GpuOnlyMatcher() { stream_.reset(); }

void GpuOnlyMatcher::add(const BitVector192& filter, Key key) {
  staged_.emplace_back(filter, key);
}

void GpuOnlyMatcher::build() {
  // Partition exactly like the hybrid engine (Algorithm 1), but keep the
  // masks on the device: the pre-process index lives in GPU global memory.
  std::vector<BitVector192> filters;
  filters.reserve(staged_.size());
  for (const auto& [f, k] : staged_) {
    filters.push_back(f);
  }
  std::vector<tagmatch::Partition> parts =
      tagmatch::balance_partitions(filters, config_.max_partition_size);

  std::vector<BitVector192> flat_filters;
  std::vector<BitVector192> masks;
  keys_by_slot_.clear();
  offsets_.clear();
  offsets_.push_back(0);
  for (auto& p : parts) {
    std::sort(p.members.begin(), p.members.end(),
              [&](uint32_t a, uint32_t b) { return filters[a] < filters[b]; });
    for (uint32_t m : p.members) {
      flat_filters.push_back(filters[m]);
      keys_by_slot_.push_back(staged_[m].second);
    }
    masks.push_back(p.mask);
    offsets_.push_back(static_cast<uint32_t>(flat_filters.size()));
  }
  num_masks_ = masks.size();

  const size_t p = masks.size();
  dev_filters_ = device_->alloc(std::max<size_t>(flat_filters.size() * sizeof(BitVector192), 1));
  dev_masks_ = device_->alloc(std::max<size_t>(p * sizeof(BitVector192), 1));
  dev_offsets_ = device_->alloc((p + 1) * sizeof(uint32_t));
  dev_queries_ = device_->alloc(256 * sizeof(BitVector192));
  // Queue layout: u32 counts[p], then u8 entries[p * kQueueCapacity].
  dev_queues_ = device_->alloc(std::max<size_t>(p * (sizeof(uint32_t) + kQueueCapacity), 1));
  const size_t result_bytes = 16 + tagmatch::UnpackedResultCodec::bytes_for(config_.result_capacity);
  dev_results_ = device_->alloc(result_bytes);
  // The baselines have no degraded mode: device OOM here is fatal, as it was
  // when alloc itself aborted.
  TAGMATCH_CHECK(dev_filters_.valid() && dev_masks_.valid() && dev_offsets_.valid() &&
                 dev_queries_.valid() && dev_queues_.valid() && dev_results_.valid());
  host_results_.resize(result_bytes);

  if (!flat_filters.empty()) {
    stream_->memcpy_h2d(dev_filters_.data(), flat_filters.data(),
                        flat_filters.size() * sizeof(BitVector192));
    stream_->memcpy_h2d(dev_masks_.data(), masks.data(), p * sizeof(BitVector192));
  }
  stream_->memcpy_h2d(dev_offsets_.data(), offsets_.data(), offsets_.size() * sizeof(uint32_t));
  stream_->synchronize();
}

std::vector<std::vector<GpuOnlyMatcher::Key>> GpuOnlyMatcher::match_batch(
    std::span<const BitVector192> queries) {
  TAGMATCH_CHECK(!queries.empty() && queries.size() <= 256);
  std::vector<std::vector<Key>> out(queries.size());
  const uint32_t num_partitions = static_cast<uint32_t>(num_masks_);
  if (num_partitions == 0) {
    return out;
  }
  const uint32_t nq = static_cast<uint32_t>(queries.size());

  stream_->memcpy_h2d(dev_queries_.data(), queries.data(), nq * sizeof(BitVector192));
  stream_->memset_d(dev_queues_.data(), 0, num_partitions * sizeof(uint32_t));
  stream_->memset_d(dev_results_.data(), 0, 16);

  const BitVector192* filters = dev_filters_.as<const BitVector192>();
  const BitVector192* masks = dev_masks_.as<const BitVector192>();
  const uint32_t* offsets = dev_offsets_.as<const uint32_t>();
  const BitVector192* dev_q = dev_queries_.as<const BitVector192>();
  uint32_t* queue_counts = dev_queues_.as<uint32_t>();
  uint8_t* queue_entries =
      reinterpret_cast<uint8_t*>(dev_queues_.data()) + num_partitions * sizeof(uint32_t);
  auto* counter = dev_results_.as<uint64_t>();
  auto* overflow = dev_results_.as<uint64_t>() + 1;
  std::byte* payload = dev_results_.data() + 16;
  const uint64_t capacity = config_.result_capacity;
  const unsigned block_dim = config_.block_dim;

  gpusim::LaunchConfig parent;
  parent.block_dim = block_dim;
  parent.grid_dim = (num_partitions + block_dim - 1) / block_dim;
  // Parent kernel: one thread per partition. Classify the whole batch
  // against this partition's mask, filling the partition queue in global
  // memory (the scattered atomic writes of §4.5), then launch the child
  // subset-match kernel on the filled queue via dynamic parallelism.
  stream_->launch(parent, [=](gpusim::BlockContext& ctx) {
    ctx.threads([&](uint32_t tid) {
      const uint32_t part = ctx.block_first_thread() + tid;
      if (part >= num_partitions) {
        return;
      }
      uint8_t* queue = queue_entries + static_cast<size_t>(part) * kQueueCapacity;
      for (uint32_t qi = 0; qi < nq; ++qi) {
        if (masks[part].subset_of(dev_q[qi])) {
          uint32_t slot = std::atomic_ref<uint32_t>(queue_counts[part])
                              .fetch_add(1, std::memory_order_relaxed);
          queue[slot] = static_cast<uint8_t>(qi);
        }
      }
      const uint32_t queued = queue_counts[part];
      if (queued == 0) {
        return;
      }
      const uint32_t begin = offsets[part];
      const uint32_t size = offsets[part + 1] - begin;
      ctx.launch_child((size + block_dim - 1) / block_dim, block_dim, 0,
                       [&](gpusim::BlockContext& child) {
                         child.threads([&](uint32_t ctid) {
                           const uint32_t s = child.block_first_thread() + ctid;
                           if (s >= size) {
                             return;
                           }
                           const BitVector192& f = filters[begin + s];
                           for (uint32_t j = 0; j < queued; ++j) {
                             const uint8_t qi = queue[j];
                             if (f.subset_of(dev_q[qi])) {
                               uint64_t idx = std::atomic_ref<uint64_t>(*counter).fetch_add(
                                   1, std::memory_order_relaxed);
                               if (idx < capacity) {
                                 tagmatch::UnpackedResultCodec::write(
                                     payload, idx, tagmatch::ResultPair{qi, begin + s});
                               } else {
                                 std::atomic_ref<uint64_t>(*overflow).store(
                                     1, std::memory_order_relaxed);
                               }
                             }
                           }
                         });
                       });
    });
  });

  stream_->memcpy_d2h(host_results_.data(), dev_results_.data(), 16);
  stream_->synchronize();
  uint64_t count = 0;
  uint64_t overflowed = 0;
  std::memcpy(&count, host_results_.data(), sizeof(count));
  std::memcpy(&overflowed, host_results_.data() + 8, sizeof(overflowed));
  const uint64_t stored = std::min<uint64_t>(count, capacity);
  stream_->memcpy_d2h(host_results_.data() + 16, dev_results_.data() + 16,
                      tagmatch::UnpackedResultCodec::bytes_for(stored));
  stream_->synchronize();

  if (overflowed != 0) {
    // Exact CPU fallback: brute force over the staged (filter, key) pairs.
    for (const auto& [f, k] : staged_) {
      for (uint32_t qi = 0; qi < nq; ++qi) {
        if (f.subset_of(queries[qi])) {
          out[qi].push_back(k);
        }
      }
    }
    return out;
  }

  for (uint64_t i = 0; i < stored; ++i) {
    tagmatch::ResultPair pair = tagmatch::UnpackedResultCodec::read(host_results_.data() + 16, i);
    out[pair.query].push_back(keys_by_slot_[pair.set_id]);
  }
  return out;
}

}  // namespace tagmatch::baselines

// The alternative GPU-only architecture of §4.5: both the pre-process stage
// and the subset-match stage run on the GPU, using dynamic parallelism.
//
// A single parent kernel classifies a batch of queries against all partition
// masks, appending query indices to per-partition queues in device global
// memory (atomic appends, scattered writes — the access pattern the paper
// identifies as the design's weakness), and then launches a child
// subset-match kernel per non-empty partition queue from within the GPU.
// Only the final results cross the bus.
//
// The paper found this design competitive only when pre-processing filters
// out most queries; bench_ablation_gpuonly reproduces that selectivity
// crossover against the hybrid pipeline.
#ifndef TAGMATCH_BASELINES_GPUONLY_GPU_ONLY_MATCHER_H_
#define TAGMATCH_BASELINES_GPUONLY_GPU_ONLY_MATCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/bit_vector.h"
#include "src/core/packed_output.h"
#include "src/gpusim/device.h"
#include "src/gpusim/stream.h"

namespace tagmatch::baselines {

struct GpuOnlyConfig {
  uint32_t max_partition_size = 4096;
  unsigned block_dim = 256;
  unsigned num_sms = 2;
  uint64_t memory_capacity = 12ull << 30;
  uint32_t result_capacity = 1u << 20;
  gpusim::CostModel costs;
};

class GpuOnlyMatcher {
 public:
  using Key = uint32_t;

  explicit GpuOnlyMatcher(const GpuOnlyConfig& config);
  ~GpuOnlyMatcher();

  void add(const BitVector192& filter, Key key);
  void build();

  // Matches a batch of up to 256 queries entirely on the device; returns
  // per-query key lists.
  std::vector<std::vector<Key>> match_batch(std::span<const BitVector192> queries);

  size_t partition_count() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

 private:
  GpuOnlyConfig config_;
  std::vector<std::pair<BitVector192, Key>> staged_;
  std::vector<Key> keys_by_slot_;       // Key of tagset-table slot i (host side).
  std::vector<uint32_t> offsets_;       // Partition boundaries.
  size_t num_masks_ = 0;

  std::unique_ptr<gpusim::Device> device_;
  std::unique_ptr<gpusim::Stream> stream_;
  gpusim::DeviceBuffer dev_filters_;
  gpusim::DeviceBuffer dev_masks_;      // One mask per partition.
  gpusim::DeviceBuffer dev_offsets_;
  gpusim::DeviceBuffer dev_queries_;
  gpusim::DeviceBuffer dev_queues_;     // Per-partition query queues.
  gpusim::DeviceBuffer dev_results_;
  std::vector<std::byte> host_results_;
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_GPUONLY_GPU_ONLY_MATCHER_H_

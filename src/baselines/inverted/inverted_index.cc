#include "src/baselines/inverted/inverted_index.h"

namespace tagmatch::baselines {

void InvertedIndexMatcher::add(std::vector<TagId> tags, Key key) {
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  staged_.push_back(Staged{std::move(tags), key});
}

void InvertedIndexMatcher::build() {
  postings_.clear();
  set_sizes_.clear();
  set_keys_.clear();
  empty_sets_.clear();
  set_sizes_.reserve(staged_.size());
  set_keys_.reserve(staged_.size());
  for (uint32_t sid = 0; sid < staged_.size(); ++sid) {
    const Staged& s = staged_[sid];
    set_sizes_.push_back(static_cast<uint16_t>(s.tags.size()));
    set_keys_.push_back(s.key);
    if (s.tags.empty()) {
      empty_sets_.push_back(sid);
      continue;
    }
    for (TagId t : s.tags) {
      postings_[t].push_back(sid);
    }
  }
  counters_.assign(set_sizes_.size(), 0);
  touched_.clear();
}

std::vector<InvertedIndexMatcher::Key> InvertedIndexMatcher::match(
    const std::vector<TagId>& query) const {
  // Deduplicate query tags so a repeated tag cannot double-count.
  std::vector<TagId> q = query;
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());

  std::vector<Key> keys;
  for (uint32_t sid : empty_sets_) {
    keys.push_back(set_keys_[sid]);
  }
  for (TagId t : q) {
    auto it = postings_.find(t);
    if (it == postings_.end()) {
      continue;
    }
    for (uint32_t sid : it->second) {
      if (counters_[sid] == 0) {
        touched_.push_back(sid);
      }
      if (++counters_[sid] == set_sizes_[sid]) {
        keys.push_back(set_keys_[sid]);
      }
    }
  }
  for (uint32_t sid : touched_) {
    counters_[sid] = 0;
  }
  touched_.clear();
  return keys;
}

std::vector<InvertedIndexMatcher::Key> InvertedIndexMatcher::match_unique(
    const std::vector<TagId>& query) const {
  std::vector<Key> keys = match(query);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

uint64_t InvertedIndexMatcher::memory_bytes() const {
  uint64_t total = set_sizes_.capacity() * sizeof(uint16_t) + set_keys_.capacity() * sizeof(Key) +
                   counters_.capacity() * sizeof(uint16_t);
  for (const auto& [tag, list] : postings_) {
    total += sizeof(tag) + list.capacity() * sizeof(uint32_t) + 48;  // Node overhead estimate.
  }
  return total;
}

}  // namespace tagmatch::baselines

// Classic counting-based inverted-index subset matcher (Yan &
// Garcia-Molina's SIFT counting algorithm; see §5 "Related Work"). Operates
// on exact tag ids rather than Bloom signatures, so it doubles as an
// exact-match cross-check for the signature-based engines in tests.
//
// Index: tag -> postings list of set ids. Matching query q: walk the
// postings of every tag in q, counting hits per candidate set; a set with
// |set| tags matches iff its counter reaches |set|. Sets containing any tag
// absent from q are never fully counted. The empty set matches every query.
#ifndef TAGMATCH_BASELINES_INVERTED_INVERTED_INDEX_H_
#define TAGMATCH_BASELINES_INVERTED_INVERTED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/workload/tags.h"

namespace tagmatch::baselines {

class InvertedIndexMatcher {
 public:
  using Key = uint32_t;
  using TagId = workload::TagId;

  // Adds a set (duplicate tags within a set are ignored).
  void add(std::vector<TagId> tags, Key key);
  void build();

  std::vector<Key> match(const std::vector<TagId>& query) const;
  std::vector<Key> match_unique(const std::vector<TagId>& query) const;

  size_t size() const { return set_sizes_.size(); }
  uint64_t memory_bytes() const;

 private:
  struct Staged {
    std::vector<TagId> tags;
    Key key;
  };

  std::vector<Staged> staged_;
  std::unordered_map<TagId, std::vector<uint32_t>> postings_;
  std::vector<uint16_t> set_sizes_;   // Unique tag count per set.
  std::vector<Key> set_keys_;
  std::vector<uint32_t> empty_sets_;  // Sets with no tags match everything.
  // Scratch counters sized to the set count; mutable per-call (the matcher
  // is NOT thread-safe for concurrent match calls, unlike the trie
  // matchers — noted here because the bench drivers clone it per thread).
  mutable std::vector<uint16_t> counters_;
  mutable std::vector<uint32_t> touched_;
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_INVERTED_INVERTED_INDEX_H_

#include "src/baselines/prefix_tree/prefix_tree.h"

#include <algorithm>

#include "src/common/check.h"

namespace tagmatch::baselines {

void PrefixTreeMatcher::add(const BitVector192& filter, Key key) {
  staged_.emplace_back(filter, key);
}

void PrefixTreeMatcher::build() {
  std::sort(staged_.begin(), staged_.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second < b.second;
  });
  filters_.clear();
  key_offsets_.clear();
  keys_.clear();
  key_offsets_.push_back(0);
  for (const auto& [filter, key] : staged_) {
    if (filters_.empty() || filters_.back() != filter) {
      if (!filters_.empty()) {
        key_offsets_.push_back(static_cast<uint32_t>(keys_.size()));
      }
      filters_.push_back(filter);
    }
    keys_.push_back(key);
  }
  if (!filters_.empty()) {
    key_offsets_.push_back(static_cast<uint32_t>(keys_.size()));
  }

  nodes_.clear();
  nodes_.reserve(filters_.size() * 2);
  root_ = filters_.empty() ? -1 : build_node(0, static_cast<uint32_t>(filters_.size()));
}

int32_t PrefixTreeMatcher::build_node(uint32_t lo, uint32_t hi) {
  TAGMATCH_CHECK(lo < hi);
  const unsigned split = BitVector192::common_prefix_len(filters_[lo], filters_[hi - 1]);
  Node node;
  node.prefix = filters_[lo].prefix(split);
  if (hi - lo == 1 || split >= BitVector192::kBits) {
    // Leaf: a single filter, or a range of identical filters (split == 192
    // can only happen for equal filters, which dedup prevents; kept for
    // safety).
    node.range_lo = lo;
    node.range_hi = hi;
    int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(node);
    return id;
  }
  // Binary split on bit `split`: filters are sorted, so those with the bit
  // clear precede those with it set. Both sides are non-empty by the
  // definition of the common prefix length.
  BitVector192 probe = node.prefix;
  probe.set(split);
  auto mid_it = std::lower_bound(filters_.begin() + lo, filters_.begin() + hi, probe);
  uint32_t mid = static_cast<uint32_t>(mid_it - filters_.begin());
  TAGMATCH_CHECK(mid > lo && mid < hi);
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  int32_t left = build_node(lo, mid);
  int32_t right = build_node(mid, hi);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void PrefixTreeMatcher::match_node(int32_t node_id, const BitVector192& q,
                                   const std::function<void(Key)>& fn) const {
  const Node& node = nodes_[node_id];
  // The pruning shortcut: every filter below shares node.prefix; if any of
  // those one-bits is missing from q, no descendant can be a subset of q.
  if (!node.prefix.subset_of(q)) {
    return;
  }
  if (node.left < 0) {
    for (uint32_t i = node.range_lo; i < node.range_hi; ++i) {
      if (filters_[i].subset_of(q)) {
        for (uint32_t k = key_offsets_[i]; k < key_offsets_[i + 1]; ++k) {
          fn(keys_[k]);
        }
      }
    }
    return;
  }
  match_node(node.left, q, fn);
  match_node(node.right, q, fn);
}

void PrefixTreeMatcher::match(const BitVector192& q, const std::function<void(Key)>& fn) const {
  if (root_ >= 0) {
    match_node(root_, q, fn);
  }
}

std::vector<PrefixTreeMatcher::Key> PrefixTreeMatcher::match(const BitVector192& q) const {
  std::vector<Key> keys;
  match(q, [&](Key k) { keys.push_back(k); });
  return keys;
}

std::vector<PrefixTreeMatcher::Key> PrefixTreeMatcher::match_unique(const BitVector192& q) const {
  std::vector<Key> keys = match(q);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

uint64_t PrefixTreeMatcher::memory_bytes() const {
  return nodes_.capacity() * sizeof(Node) + filters_.capacity() * sizeof(BitVector192) +
         key_offsets_.capacity() * sizeof(uint32_t) + keys_.capacity() * sizeof(Key);
}

}  // namespace tagmatch::baselines

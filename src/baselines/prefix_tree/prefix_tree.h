// CPU baseline: subset matching on a compressed (Patricia-style) binary trie
// over 192-bit Bloom-filter signatures — the paper's "prefix tree" subject
// (§4.1), representative of state-of-the-art trie algorithms (Rivest; Luo et
// al.'s PTSJ).
//
// The trie is built over the lexicographically sorted unique signatures. A
// node covers a contiguous range sharing a bit prefix; matching a query q
// walks the trie, pruning any node whose shared one-bits are not all in q —
// the classic shortcut: if the prefix is not a subset of q, no descendant
// can be.
#ifndef TAGMATCH_BASELINES_PREFIX_TREE_PREFIX_TREE_H_
#define TAGMATCH_BASELINES_PREFIX_TREE_PREFIX_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/bit_vector.h"

namespace tagmatch::baselines {

class PrefixTreeMatcher {
 public:
  using Key = uint32_t;

  PrefixTreeMatcher() = default;

  // Staging interface mirroring TagMatch: add entries, then build().
  void add(const BitVector192& filter, Key key);

  // Builds the trie. Invalidates nothing; may be called again after more
  // adds (full rebuild).
  void build();

  // Invokes fn once per (set, key) pair with set ⊆ q — multiset semantics.
  void match(const BitVector192& q, const std::function<void(Key)>& fn) const;

  // Returns the deduplicated, sorted key set (match-unique semantics).
  std::vector<Key> match_unique(const BitVector192& q) const;
  std::vector<Key> match(const BitVector192& q) const;

  size_t unique_sets() const { return filters_.size(); }
  uint64_t memory_bytes() const;

 private:
  struct Node {
    BitVector192 prefix;  // One-bits shared by every filter under this node.
    // Leaves: left == -1, [range_lo, range_hi) indexes filters_.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t range_lo = 0;
    uint32_t range_hi = 0;
  };

  int32_t build_node(uint32_t lo, uint32_t hi);
  void match_node(int32_t node, const BitVector192& q, const std::function<void(Key)>& fn) const;

  std::vector<std::pair<BitVector192, Key>> staged_;
  std::vector<BitVector192> filters_;     // Unique, sorted.
  std::vector<uint32_t> key_offsets_;     // CSR keys per unique filter.
  std::vector<Key> keys_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_PREFIX_TREE_PREFIX_TREE_H_

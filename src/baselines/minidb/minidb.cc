#include "src/baselines/minidb/minidb.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_set>

#include "src/common/check.h"

namespace tagmatch::baselines {

namespace {

void append_u32(std::vector<uint8_t>& out, uint32_t v) {
  uint8_t buf[4];
  std::memcpy(buf, &v, 4);
  out.insert(out.end(), buf, buf + 4);
}

void append_u64(std::vector<uint8_t>& out, uint64_t v) {
  uint8_t buf[8];
  std::memcpy(buf, &v, 8);
  out.insert(out.end(), buf, buf + 8);
}

void append_cstr(std::vector<uint8_t>& out, const char* s) {
  while (*s != '\0') {
    out.push_back(static_cast<uint8_t>(*s++));
  }
  out.push_back(0);
}

uint32_t read_u32(const uint8_t*& p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  p += 4;
  return v;
}

uint64_t read_u64(const uint8_t*& p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  p += 8;
  return v;
}

const uint8_t* skip_cstr(const uint8_t* p) {
  while (*p != 0) {
    ++p;
  }
  return p + 1;
}

}  // namespace

MiniDb::MiniDb(const MiniDbConfig& config) : config_(config) {}

// Record layout (BSON-flavoured: named, typed fields):
//   "_id"  (u64) | "user" (u32) | "tags" (u32 count, then count x u32)
std::vector<uint8_t> MiniDb::encode(DocId id, uint32_t user_key,
                                    const std::vector<TagId>& tags) {
  std::vector<uint8_t> out;
  out.reserve(32 + tags.size() * 4);
  append_cstr(out, "_id");
  append_u64(out, id);
  append_cstr(out, "user");
  append_u32(out, user_key);
  append_cstr(out, "tags");
  append_u32(out, static_cast<uint32_t>(tags.size()));
  for (TagId t : tags) {
    append_u32(out, t);
  }
  return out;
}

MiniDb::Decoded MiniDb::decode(const std::vector<uint8_t>& bson) {
  Decoded d;
  const uint8_t* p = bson.data();
  p = skip_cstr(p);  // "_id"
  d.id = read_u64(p);
  p = skip_cstr(p);  // "user"
  d.user_key = read_u32(p);
  p = skip_cstr(p);  // "tags"
  uint32_t n = read_u32(p);
  d.tags.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    d.tags[i] = read_u32(p);
  }
  return d;
}

MiniDb::DocId MiniDb::insert(uint32_t user_key, const std::vector<TagId>& tags) {
  if (config_.insert_overhead_ns > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(config_.insert_overhead_ns);
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }
  DocId id = next_id_++;
  DocRecord rec{encode(id, user_key, tags)};
  data_bytes_ += rec.bson.size();
  docs_.push_back(std::move(rec));
  if (config_.maintain_tag_index) {
    for (TagId t : tags) {
      tag_index_[t].push_back(id);
    }
  }
  return id;
}

void MiniDb::charge_roundtrip() const {
  if (config_.query_roundtrip_ns <= 0) {
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(config_.query_roundtrip_ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

std::vector<uint32_t> MiniDb::find_subset(const std::vector<TagId>& query_tags) const {
  charge_roundtrip();
  // The subset predicate is not indexable: collection scan with per-document
  // decoding and verification (see header).
  std::unordered_set<TagId> qset(query_tags.begin(), query_tags.end());
  std::vector<uint32_t> out;
  const auto scan_start = std::chrono::steady_clock::now();
  for (const DocRecord& rec : docs_) {
    Decoded d = decode(rec.bson);
    bool all = true;
    for (TagId t : d.tags) {
      if (!qset.count(t)) {
        all = false;
        break;
      }
    }
    if (all) {
      out.push_back(d.user_key);
    }
  }
  if (config_.per_doc_eval_ns > 0) {
    // Charge the modeled matcher-evaluation cost for the whole scan (see
    // MiniDbConfig::per_doc_eval_ns).
    const auto deadline =
        scan_start +
        std::chrono::nanoseconds(config_.per_doc_eval_ns * static_cast<int64_t>(docs_.size()));
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }
  return out;
}

std::vector<uint32_t> MiniDb::find_all(const std::vector<TagId>& tags) const {
  charge_roundtrip();
  TAGMATCH_CHECK(config_.maintain_tag_index);
  if (tags.empty()) {
    // Every document qualifies.
    std::vector<uint32_t> out;
    out.reserve(docs_.size());
    for (const DocRecord& rec : docs_) {
      out.push_back(decode(rec.bson).user_key);
    }
    return out;
  }
  // Pick the rarest tag's postings as candidates (standard $all plan), then
  // verify each candidate document.
  const std::vector<DocId>* candidates = nullptr;
  for (TagId t : tags) {
    auto it = tag_index_.find(t);
    if (it == tag_index_.end()) {
      return {};
    }
    if (candidates == nullptr || it->second.size() < candidates->size()) {
      candidates = &it->second;
    }
  }
  std::vector<uint32_t> out;
  for (DocId id : *candidates) {
    const DocRecord& rec = docs_[id - 1];  // Ids are dense from 1.
    Decoded d = decode(rec.bson);
    bool all = true;
    for (TagId t : tags) {
      if (std::find(d.tags.begin(), d.tags.end(), t) == d.tags.end()) {
        all = false;
        break;
      }
    }
    if (all) {
      out.push_back(d.user_key);
    }
  }
  return out;
}

uint64_t MiniDb::index_bytes() const {
  uint64_t total = 0;
  for (const auto& [tag, list] : tag_index_) {
    total += sizeof(tag) + list.capacity() * sizeof(DocId) + 48;
  }
  return total;
}

ShardedMiniDb::ShardedMiniDb(unsigned num_shards, const MiniDbConfig& config) {
  TAGMATCH_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (unsigned i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<MiniDb>(config));
  }
}

void ShardedMiniDb::insert(uint32_t user_key, const std::vector<TagId>& tags) {
  // Hash sharding on the insertion counter (a synthetic shard key).
  shards_[insert_counter_++ % shards_.size()]->insert(user_key, tags);
}

std::vector<uint32_t> ShardedMiniDb::find_subset(const std::vector<TagId>& query_tags) const {
  std::vector<std::vector<uint32_t>> partials(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back(
        [&, s] { partials[s] = shards_[s]->find_subset(query_tags); });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<uint32_t> out;
  for (auto& p : partials) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

size_t ShardedMiniDb::document_count() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    total += s->document_count();
  }
  return total;
}

}  // namespace tagmatch::baselines

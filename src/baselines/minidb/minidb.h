// MiniDb — a deliberately faithful miniature of how a general-purpose
// document DBMS (the paper's MongoDB 3.2 subject, §4.4) executes subset
// queries, reproducing the architecture tax the paper measures:
//
//  * documents are stored as serialized BSON-like byte records; every scan
//    deserializes the record to inspect its fields (as a MongoDB collection
//    scan does);
//  * a multikey index over the tags array exists and is maintained on insert
//    (making ingestion expensive — the paper's 33 s for 5 M sets), but the
//    subset predicate ("array ⊆ given list", expressed in MongoDB as
//    {tags: {$not: {$elemMatch: {$nin: [...]}}}}) is not indexable, so every
//    query degenerates to a full collection scan with per-document
//    verification — which is why MongoDB's latency in Fig. 10 is linear in
//    the collection size and insensitive to tags-per-set and query size;
//  * every client query pays a fixed round-trip cost (localhost TCP +
//    driver), modeled by a configurable busy-wait.
//
// ShardedMiniDb adds hash sharding with scatter-gather queries (Fig. 11):
// each query is sent to every shard; shards scan in parallel.
#ifndef TAGMATCH_BASELINES_MINIDB_MINIDB_H_
#define TAGMATCH_BASELINES_MINIDB_MINIDB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/workload/tags.h"

namespace tagmatch::baselines {

struct MiniDbConfig {
  // Fixed per-query client/server round-trip cost in nanoseconds (localhost
  // TCP + driver serialization). 0 disables it (unit tests).
  int64_t query_roundtrip_ns = 80'000;
  // Fixed per-insert cost in nanoseconds modeling the parts of a real DBMS
  // insert this miniature elides (journal append, B-tree page maintenance,
  // document validation). MongoDB 3.2 ingested ~150K docs/s in the paper's
  // setting (~33 s for 5M sets), i.e. ~6-7 us/doc. 0 disables it.
  int64_t insert_overhead_ns = 5'000;
  // Per-document cost of evaluating the (non-indexable) subset predicate
  // during a collection scan, beyond the raw decode this miniature performs.
  // MongoDB interprets a {$not:{$elemMatch:{$nin:[...]}}} matcher tree per
  // document, with lock yielding and cursor bookkeeping — ~2 us/doc in the
  // paper's measurements (2 s per query over a 1M-doc collection). 0
  // disables it.
  int64_t per_doc_eval_ns = 1'500;
  bool maintain_tag_index = true;
};

class MiniDb {
 public:
  using DocId = uint64_t;
  using TagId = workload::TagId;

  explicit MiniDb(const MiniDbConfig& config = MiniDbConfig{});

  // Inserts a document {_id, user: key, tags: [...]}; returns its id.
  // Maintains the multikey tag index if enabled.
  DocId insert(uint32_t user_key, const std::vector<TagId>& tags);

  // Subset query: returns the user keys of all documents whose tags array is
  // a subset of `query_tags`. Executes as a collection scan with
  // per-document BSON decoding (see header comment), plus the round-trip
  // cost.
  std::vector<uint32_t> find_subset(const std::vector<TagId>& query_tags) const;

  // $all query (indexed): documents whose tags contain all of `tags`.
  // Included to show the index IS used where MongoDB would use it.
  std::vector<uint32_t> find_all(const std::vector<TagId>& tags) const;

  size_t document_count() const { return docs_.size(); }
  uint64_t data_bytes() const { return data_bytes_; }
  uint64_t index_bytes() const;

 private:
  struct DocRecord {
    std::vector<uint8_t> bson;  // Serialized record.
  };

  static std::vector<uint8_t> encode(DocId id, uint32_t user_key,
                                     const std::vector<TagId>& tags);
  struct Decoded {
    DocId id;
    uint32_t user_key;
    std::vector<TagId> tags;
  };
  static Decoded decode(const std::vector<uint8_t>& bson);

  void charge_roundtrip() const;

  MiniDbConfig config_;
  std::vector<DocRecord> docs_;
  std::map<TagId, std::vector<DocId>> tag_index_;  // Multikey index (B-tree-like).
  uint64_t data_bytes_ = 0;
  DocId next_id_ = 1;
};

class ShardedMiniDb {
 public:
  using TagId = workload::TagId;

  ShardedMiniDb(unsigned num_shards, const MiniDbConfig& config = MiniDbConfig{});

  void insert(uint32_t user_key, const std::vector<TagId>& tags);

  // Scatter-gather subset query: sent to every shard; shards scan in
  // parallel (one thread per shard), results concatenated — MongoDB's
  // behaviour for queries that do not carry the shard key.
  std::vector<uint32_t> find_subset(const std::vector<TagId>& query_tags) const;

  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  size_t document_count() const;

 private:
  std::vector<std::unique_ptr<MiniDb>> shards_;
  uint64_t insert_counter_ = 0;
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_MINIDB_MINIDB_H_

// The second classic family of subset-matching algorithms from §1 of the
// paper (Rivest's hash-table solution): store the database sets in a hash
// table keyed by the (sorted) set itself, and answer a query q by
// enumerating the subsets q_j ⊆ q and probing the table for each — O(1) per
// probe but 2^|q| probes, i.e. exponential in the query size.
//
// Included as the counterpoint to the scan-based family: bench_fig2 shows
// the trie/partition approaches degrade polynomially with query size while
// this one blows up exponentially (the paper's "neither one is ideal in all
// cases" argument).
#ifndef TAGMATCH_BASELINES_SUBSET_ENUM_SUBSET_ENUM_H_
#define TAGMATCH_BASELINES_SUBSET_ENUM_SUBSET_ENUM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/workload/tags.h"

namespace tagmatch::baselines {

class SubsetEnumMatcher {
 public:
  using Key = uint32_t;
  using TagId = workload::TagId;

  // Queries with more than this many distinct tags are refused (2^n probes);
  // match() returns nullopt-equivalent via `ok = false`.
  static constexpr unsigned kMaxQueryTags = 24;

  void add(std::vector<TagId> tags, Key key);
  void build();

  struct Result {
    bool ok = true;  // False if the query exceeded kMaxQueryTags.
    std::vector<Key> keys;
    uint64_t probes = 0;  // Hash probes performed (2^|q|).
  };
  Result match(const std::vector<TagId>& query) const;

  size_t size() const { return table_.size(); }

 private:
  static uint64_t hash_set(const std::vector<TagId>& sorted_tags);

  struct Staged {
    std::vector<TagId> tags;
    Key key;
  };
  std::vector<Staged> staged_;
  // Hash of sorted tag set -> (keys, canonical set for collision check).
  struct Bucket {
    std::vector<TagId> tags;
    std::vector<Key> keys;
  };
  std::unordered_map<uint64_t, std::vector<Bucket>> table_;
};

}  // namespace tagmatch::baselines

#endif  // TAGMATCH_BASELINES_SUBSET_ENUM_SUBSET_ENUM_H_

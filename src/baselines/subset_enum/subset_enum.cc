#include "src/baselines/subset_enum/subset_enum.h"

#include <algorithm>
#include <bit>

#include "src/common/hash.h"

namespace tagmatch::baselines {

uint64_t SubsetEnumMatcher::hash_set(const std::vector<TagId>& sorted_tags) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (TagId t : sorted_tags) {
    h = mix64(h ^ t);
  }
  return h;
}

void SubsetEnumMatcher::add(std::vector<TagId> tags, Key key) {
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  staged_.push_back(Staged{std::move(tags), key});
}

void SubsetEnumMatcher::build() {
  table_.clear();
  table_.reserve(staged_.size() * 2);
  for (const Staged& s : staged_) {
    auto& buckets = table_[hash_set(s.tags)];
    Bucket* bucket = nullptr;
    for (auto& b : buckets) {
      if (b.tags == s.tags) {
        bucket = &b;
        break;
      }
    }
    if (bucket == nullptr) {
      buckets.push_back(Bucket{s.tags, {}});
      bucket = &buckets.back();
    }
    bucket->keys.push_back(s.key);
  }
}

SubsetEnumMatcher::Result SubsetEnumMatcher::match(const std::vector<TagId>& query) const {
  Result result;
  std::vector<TagId> q = query;
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
  const unsigned n = static_cast<unsigned>(q.size());
  if (n > kMaxQueryTags) {
    result.ok = false;
    return result;
  }
  // Enumerate every subset of the query's tags and probe the table — the
  // exponential iteration of §1.
  std::vector<TagId> subset;
  subset.reserve(n);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    subset.clear();
    uint32_t bits = mask;
    while (bits != 0) {
      unsigned i = static_cast<unsigned>(std::countr_zero(bits));
      subset.push_back(q[i]);
      bits &= bits - 1;
    }
    ++result.probes;
    auto it = table_.find(hash_set(subset));
    if (it == table_.end()) {
      continue;
    }
    for (const Bucket& b : it->second) {
      if (b.tags == subset) {
        result.keys.insert(result.keys.end(), b.keys.begin(), b.keys.end());
      }
    }
  }
  return result;
}

}  // namespace tagmatch::baselines

#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace tagmatch::obs {

namespace {

std::string format_us(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // strip control chars
    out.push_back(c);
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(bool pretty) : pretty_(pretty) { out_ << "{\"traceEvents\":["; }

  std::ostringstream& next() {
    if (!first_) out_ << ",";
    first_ = false;
    if (pretty_) out_ << "\n ";
    return out_;
  }

  void slice(const std::string& name, int pid, int tid, int64_t start_ns, int64_t end_ns,
             uint64_t span_id, uint64_t parent_span_id, uint64_t trace_id, uint64_t flow_id) {
    std::ostringstream& out = next();
    out << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":"
        << format_us(start_ns) << ",\"dur\":" << format_us(std::max<int64_t>(end_ns - start_ns, 0))
        << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"args\":{\"span_id\":" << span_id
        << ",\"parent_span_id\":" << parent_span_id << ",\"trace_id\":" << trace_id
        << ",\"id\":" << flow_id << "}}";
  }

  void name_meta(const char* what, const std::string& name, int pid, int tid) {
    std::ostringstream& out = next();
    out << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }

  std::string finish(const std::string& metadata_key = "", const std::string& metadata_json = "") {
    if (pretty_) out_ << "\n";
    out_ << "],\"displayTimeUnit\":\"ns\"";
    if (!metadata_key.empty()) {
      out_ << ",\"" << json_escape(metadata_key) << "\":" << metadata_json;
    }
    out_ << "}";
    if (pretty_) out_ << "\n";
    return out_.str();
  }

 private:
  std::ostringstream out_;
  bool pretty_;
  bool first_ = true;
};

// Base track name for a span: GPU stages split per stream (the span id is
// the submitting stream's id there), everything else shares one per-stage
// track (overlap spills into extra lanes).
std::string track_name(const Span& s) {
  switch (s.stage) {
    case Stage::kH2D:
    case Stage::kKernel:
    case Stage::kD2H:
      return std::string(stage_name(s.stage)) + " stream " + std::to_string(s.id);
    default:
      return stage_name(s.stage);
  }
}

// Emits all spans of one process: assigns each span to the first
// non-overlapping lane of its track, then names every (track, lane) tid.
void emit_spans(EventWriter& w, std::vector<Span> spans, int pid, int first_tid) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) { return a.start_ns < b.start_ns; });
  struct Lane {
    int tid;
    int64_t last_end_ns;
  };
  std::map<std::string, std::vector<Lane>> tracks;
  int next_tid = first_tid;
  for (const Span& s : spans) {
    std::vector<Lane>& lanes = tracks[track_name(s)];
    Lane* lane = nullptr;
    for (Lane& l : lanes) {
      if (l.last_end_ns <= s.start_ns) {
        lane = &l;
        break;
      }
    }
    if (lane == nullptr) {
      lanes.push_back(Lane{next_tid++, INT64_MIN});
      lane = &lanes.back();
    }
    lane->last_end_ns = std::max(s.end_ns, s.start_ns);
    w.slice(stage_name(s.stage), pid, lane->tid, s.start_ns, s.end_ns, s.span_id,
            s.parent_span_id, s.trace_id, s.id);
  }
  for (const auto& [name, lanes] : tracks) {
    for (const Lane& l : lanes) w.name_meta("thread_name", name, pid, l.tid);
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceRecord>& traces, bool pretty) {
  EventWriter w(pretty);
  int pid = 0;
  for (const TraceRecord& rec : traces) {
    ++pid;
    std::string why;
    if (rec.degraded) why += " degraded";
    if (rec.slow) why += " slow";
    if (rec.head_sampled) why += " sampled";
    w.name_meta("process_name", "trace " + std::to_string(rec.trace_id) + why, pid, 0);
    if (rec.root_span_id != 0) {
      w.slice(rec.root_name, pid, 1, rec.start_ns, rec.end_ns, rec.root_span_id, 0, rec.trace_id,
              rec.trace_id);
      w.name_meta("thread_name", rec.root_name, pid, 1);
    }
    emit_spans(w, rec.spans, pid, 2);
  }
  return w.finish();
}

std::string chrome_trace_json(const std::vector<Span>& spans, bool pretty) {
  EventWriter w(pretty);
  w.name_meta("process_name", "tagmatch", 1, 0);
  emit_spans(w, spans, 1, 1);
  return w.finish();
}

std::string chrome_trace_bundle(const std::vector<Span>& spans, const std::string& metadata_key,
                                const std::string& metadata_json, bool pretty) {
  EventWriter w(pretty);
  w.name_meta("process_name", "tagmatch", 1, 0);
  emit_spans(w, spans, 1, 1);
  return w.finish(metadata_key, metadata_json);
}

std::string chrome_span_event(const Span& span, int pid) {
  // Stable per-stage tids: stage index + 1, GPU stages further offset by the
  // submitting stream id so concurrent streams land on distinct tracks.
  int tid = static_cast<int>(span.stage) + 1;
  switch (span.stage) {
    case Stage::kH2D:
    case Stage::kKernel:
    case Stage::kD2H:
      tid += static_cast<int>(kNumStages) * static_cast<int>(span.id + 1);
      break;
    default:
      break;
  }
  std::ostringstream out;
  out << "{\"name\":\"" << stage_name(span.stage) << "\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":"
      << format_us(span.start_ns) << ",\"dur\":"
      << format_us(std::max<int64_t>(span.end_ns - span.start_ns, 0)) << ",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"span_id\":" << span.span_id << ",\"parent_span_id\":"
      << span.parent_span_id << ",\"trace_id\":" << span.trace_id << ",\"id\":" << span.id << "}}";
  return out.str();
}

}  // namespace tagmatch::obs

// Observability: per-query / per-batch trace spans over the pipeline stages
// of the paper's Fig. 3 — enqueue, partition pre-filter (Alg. 2), H2D,
// kernel (Alg. 3-4), D2H, key lookup/reduce, consolidate, shard gather.
//
// A Span is one stage execution for one flow (query, batch, stream cycle or
// consolidation round), stamped with nanosecond monotonic timestamps.
// Spans land in a fixed-capacity ring (Tracer) for the TRACE wire verb, and
// every span also feeds the per-stage "stage.<name>_ns" histogram in the
// metrics registry so percentiles survive after the ring wraps.
//
// On top of the anonymous per-stage spans, a Dapper-style TraceContext can
// ride every hand-off the deadline already travels (publish -> match_async ->
// batch -> shard fan-out -> gpusim stream ops). Spans recorded under a
// context carry a trace id and a parent span id, so one publish can be
// reassembled into a causal tree across layers. The FlightRecorder keeps a
// bounded buffer of *complete* traces, tail-sampled: only the slow, the
// degraded and a 1-in-N head sample survive.
//
// PipelineObs bundles one Registry + one Tracer and pre-resolves the stage
// histograms, making record_stage() lock-free on the metrics side (the ring
// append takes a short mutex; spans are ~8 per query, not per set).
#ifndef TAGMATCH_OBS_TRACE_H_
#define TAGMATCH_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace tagmatch::obs {

// Pipeline stages, in paper order (Fig. 3). kGather is the sharded serving
// layer's merge (src/shard); the others are single-engine stages.
enum class Stage : uint8_t {
  kEnqueue = 0,   // match_async accept -> worker pickup
  kPreFilter,     // partition-table walk + batch append (Alg. 2)
  kH2D,           // query batch host->device copy
  kKernel,        // subset-match kernel (Alg. 3-4)
  kD2H,           // result copy-back (even/odd protocol, §3.3.2)
  kReduce,        // key lookup / reduce / merge (§3.4)
  kConsolidate,   // off-line index rebuild (Alg. 1 + upload)
  kGather,        // shard scatter-gather merge (src/shard)
  kFault,         // injected/observed GPU fault (zero-length marker span)
};
inline constexpr size_t kNumStages = 9;

// "enqueue", "prefilter", ... — stable identifiers used in TRACE output.
const char* stage_name(Stage stage);
// "stage.enqueue_ns", "stage.prefilter_ns", ... — the histogram names.
const char* stage_metric_name(Stage stage);
// Inverse of stage_name; returns false for unknown names.
bool stage_from_name(const std::string& name, Stage* out);

// Causal context threaded through the pipeline alongside the deadline: the
// 64-bit trace id names the end-to-end flow (one publish / one query), the
// parent span id names the immediate causal parent, and `sampled` carries the
// head-sampling decision made at the root. A default-constructed context is
// "not traced" and every propagation site short-circuits on it, so the
// tracing-off cost is one branch plus a 17-byte POD copy.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

// Process-wide monotonic id allocators (relaxed atomics, start at 1).
// Every recorded span gets a span id — traced or not — so `since=<span_id>`
// filtering works over the whole ring; trace ids are only minted at roots.
uint64_t new_trace_id();
uint64_t new_span_id();

// One stage execution. `id` identifies the flow within its stage family:
// the engine's query sequence number for enqueue/prefilter/reduce and
// gather, the submitting stream id for H2D/kernel/D2H, the consolidation
// round for consolidate. Timestamps are tagmatch::now_ns() (monotonic).
//
// The trailing trace fields are zero for spans recorded without a
// TraceContext (span_id excepted — it is always allocated); they are
// appended with defaults so aggregate initialization of the leading fields
// keeps working.
struct Span {
  uint64_t id = 0;
  Stage stage = Stage::kEnqueue;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

// Fixed-capacity ring of the most recent spans. Mutex-guarded: appends are
// rare (per stage execution, not per set) and snapshots copy out. Overwrites
// of not-yet-snapshotted spans are counted as drops so truncated traces are
// detectable rather than silently incomplete.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  // Returns true when the append overwrote (dropped) an older span.
  bool record(const Span& span);
  // Spans in insertion order, oldest first; at most `capacity` entries.
  std::vector<Span> snapshot() const;
  uint64_t total_recorded() const;
  // Spans overwritten by ring wrap-around since construction/clear().
  uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

// JSON renderer for TRACE: [{"id":..,"stage":"kernel","start_ns":..,
// "end_ns":..,"duration_ns":..,"span_id":..},...] on a single line; spans
// recorded under a TraceContext also carry "trace_id" and "parent_span_id".
// With limit > 0 only the most recent `limit` spans are emitted.
std::string spans_to_json(const std::vector<Span>& spans, size_t limit = 0);

// Wire framing for TRACE: {"dropped":..,"total":..,"spans":[...]} on a
// single line, so a reader can tell a truncated ring from a quiet one.
std::string trace_to_json(const std::vector<Span>& spans, uint64_t dropped, uint64_t total,
                          size_t limit = 0);

// TRACE filter: keep spans whose stage matches `stage` (nullptr = any) and
// whose span id is strictly greater than `since_span_id` (0 = all). Span ids
// are allocated monotonically, so `since=` pages forward through the ring.
std::vector<Span> filter_spans(const std::vector<Span>& spans, const Stage* stage,
                               uint64_t since_span_id);

// One fully assembled causal trace, as retained by the FlightRecorder.
struct TraceRecord {
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  std::string root_name = "publish";  // root slice label in the export
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  bool degraded = false;      // SLO-degraded / errored flow
  bool head_sampled = false;  // 1-in-N head sample picked it
  bool slow = false;          // end-to-end latency above the rolling p95
  std::vector<Span> spans;
};

// Tail-sampled bounded buffer of complete traces. The owner of the root
// context (the broker's publish path, or a bench/test harness) calls
// sample_head() when minting the root, and should_retain()+retain() when the
// flow finishes, once every span has landed. Retention policy: keep a trace
// iff it was SLO-degraded/errored, head-sampled, or slower than the rolling
// p95 of the last `latency_window` finishes (armed after `min_samples`).
// Everything else is dropped — the boring traces cost nothing to forget.
class FlightRecorder {
 public:
  struct Config {
    size_t capacity = 16;            // retained traces; oldest evicted first
    uint32_t head_sample_every = 0;  // 0 = off; 1 = keep every trace
    size_t latency_window = 256;     // rolling window feeding the p95
    size_t min_samples = 20;         // finishes before the p95 trigger arms
  };
  struct Decision {
    bool retain = false;
    bool slow = false;
    int64_t threshold_ns = 0;  // rolling p95 at decision time (0 = unarmed)
  };

  FlightRecorder();  // Default Config (out of line: nested-class NSDMI rules).
  explicit FlightRecorder(Config config);

  // Deterministic 1-in-N head sampling: the 1st, (N+1)th, ... roots sample.
  // While force_head_sampling is on (the SLO watchdog's boost, see
  // src/telemetry), every root samples regardless of head_sample_every.
  bool sample_head();
  void set_force_head_sampling(bool on) {
    force_head_sampling_.store(on, std::memory_order_relaxed);
  }
  bool force_head_sampling() const {
    return force_head_sampling_.load(std::memory_order_relaxed);
  }
  // Feeds the rolling latency window and decides retention. The threshold is
  // computed over *prior* finishes, so the decision is reproducible.
  Decision should_retain(int64_t latency_ns, bool degraded, bool head_sampled);
  void retain(TraceRecord record);

  std::vector<TraceRecord> snapshot() const;
  uint64_t finished() const;
  uint64_t retained_total() const;
  int64_t p95_threshold_ns() const;

 private:
  int64_t p95_locked() const;

  Config config_;
  std::atomic<bool> force_head_sampling_{false};
  mutable std::mutex mu_;
  uint64_t roots_ = 0;
  uint64_t finished_ = 0;
  uint64_t retained_total_ = 0;
  std::vector<int64_t> window_;
  size_t window_next_ = 0;
  std::deque<TraceRecord> retained_;
};

// The shared observability handle: one metrics registry + one span ring.
// Constructed once per engine/shard/broker; layers below (GpuEngine, gpusim
// devices) receive the owner's handle so all stages of one pipeline land in
// one registry. Stage histograms are pre-registered here, so every registry
// exports the full stage.* set (zero-count histograms render as empty), and
// ring overwrites feed the pre-registered "trace.dropped" counter.
class PipelineObs {
 public:
  PipelineObs();

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Records the span in the ring and its duration in the stage histogram.
  // When `ctx` is valid the span joins its trace (and stamps the histogram
  // bucket's exemplar); `span_id` 0 means allocate one here — pass a
  // pre-allocated id when children must reference this span before it is
  // recorded (e.g. a batch span whose GPU ops enqueue first). Returns the
  // span id used.
  uint64_t record_stage(Stage stage, uint64_t id, int64_t start_ns, int64_t end_ns,
                        const TraceContext& ctx = {}, uint64_t span_id = 0);

 private:
  Registry registry_;
  Tracer tracer_;
  Counter* trace_dropped_ = nullptr;
  std::array<Histogram*, kNumStages> stage_histograms_{};
};

// RAII stage timer: stamps start at construction, records at stop() or
// destruction. Null obs is a no-op, so call sites stay unconditional.
class StageTimer {
 public:
  StageTimer(PipelineObs* obs, Stage stage, uint64_t id)
      : obs_(obs), stage_(stage), id_(id), start_ns_(obs ? now_ns() : 0) {}
  StageTimer(PipelineObs* obs, Stage stage, uint64_t id, const TraceContext& ctx,
             uint64_t span_id = 0)
      : obs_(obs), stage_(stage), id_(id), start_ns_(obs ? now_ns() : 0), ctx_(ctx),
        span_id_(span_id) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { stop(); }

  void stop() {
    if (obs_ == nullptr) return;
    obs_->record_stage(stage_, id_, start_ns_, now_ns(), ctx_, span_id_);
    obs_ = nullptr;
  }

 private:
  PipelineObs* obs_;
  Stage stage_;
  uint64_t id_;
  int64_t start_ns_;
  TraceContext ctx_;
  uint64_t span_id_ = 0;
};

}  // namespace tagmatch::obs

#endif  // TAGMATCH_OBS_TRACE_H_

// Observability: per-query / per-batch trace spans over the pipeline stages
// of the paper's Fig. 3 — enqueue, partition pre-filter (Alg. 2), H2D,
// kernel (Alg. 3-4), D2H, key lookup/reduce, consolidate, shard gather.
//
// A Span is one stage execution for one flow (query, batch, stream cycle or
// consolidation round), stamped with nanosecond monotonic timestamps.
// Spans land in a fixed-capacity ring (Tracer) for the TRACE wire verb, and
// every span also feeds the per-stage "stage.<name>_ns" histogram in the
// metrics registry so percentiles survive after the ring wraps.
//
// PipelineObs bundles one Registry + one Tracer and pre-resolves the stage
// histograms, making record_stage() lock-free on the metrics side (the ring
// append takes a short mutex; spans are ~8 per query, not per set).
#ifndef TAGMATCH_OBS_TRACE_H_
#define TAGMATCH_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace tagmatch::obs {

// Pipeline stages, in paper order (Fig. 3). kGather is the sharded serving
// layer's merge (src/shard); the others are single-engine stages.
enum class Stage : uint8_t {
  kEnqueue = 0,   // match_async accept -> worker pickup
  kPreFilter,     // partition-table walk + batch append (Alg. 2)
  kH2D,           // query batch host->device copy
  kKernel,        // subset-match kernel (Alg. 3-4)
  kD2H,           // result copy-back (even/odd protocol, §3.3.2)
  kReduce,        // key lookup / reduce / merge (§3.4)
  kConsolidate,   // off-line index rebuild (Alg. 1 + upload)
  kGather,        // shard scatter-gather merge (src/shard)
};
inline constexpr size_t kNumStages = 8;

// "enqueue", "prefilter", ... — stable identifiers used in TRACE output.
const char* stage_name(Stage stage);
// "stage.enqueue_ns", "stage.prefilter_ns", ... — the histogram names.
const char* stage_metric_name(Stage stage);

// One stage execution. `id` identifies the flow within its stage family:
// the engine's query sequence number for enqueue/prefilter/reduce and
// gather, the submitting stream id for H2D/kernel/D2H, the consolidation
// round for consolidate. Timestamps are tagmatch::now_ns() (monotonic).
struct Span {
  uint64_t id = 0;
  Stage stage = Stage::kEnqueue;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

// Fixed-capacity ring of the most recent spans. Mutex-guarded: appends are
// rare (per stage execution, not per set) and snapshots copy out.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  void record(const Span& span);
  // Spans in insertion order, oldest first; at most `capacity` entries.
  std::vector<Span> snapshot() const;
  uint64_t total_recorded() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

// JSON renderer for TRACE: [{"id":..,"stage":"kernel","start_ns":..,
// "end_ns":..,"duration_ns":..},...] on a single line. With limit > 0 only
// the most recent `limit` spans are emitted.
std::string spans_to_json(const std::vector<Span>& spans, size_t limit = 0);

// The shared observability handle: one metrics registry + one span ring.
// Constructed once per engine/shard/broker; layers below (GpuEngine, gpusim
// devices) receive the owner's handle so all stages of one pipeline land in
// one registry. Stage histograms are pre-registered here, so every registry
// exports the full stage.* set (zero-count histograms render as empty).
class PipelineObs {
 public:
  PipelineObs();

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Records the span in the ring and its duration in the stage histogram.
  void record_stage(Stage stage, uint64_t id, int64_t start_ns, int64_t end_ns);

 private:
  Registry registry_;
  Tracer tracer_;
  std::array<Histogram*, kNumStages> stage_histograms_{};
};

// RAII stage timer: stamps start at construction, records at stop() or
// destruction. Null obs is a no-op, so call sites stay unconditional.
class StageTimer {
 public:
  StageTimer(PipelineObs* obs, Stage stage, uint64_t id)
      : obs_(obs), stage_(stage), id_(id), start_ns_(obs ? now_ns() : 0) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { stop(); }

  void stop() {
    if (obs_ == nullptr) return;
    obs_->record_stage(stage_, id_, start_ns_, now_ns());
    obs_ = nullptr;
  }

 private:
  PipelineObs* obs_;
  Stage stage_;
  uint64_t id_;
  int64_t start_ns_;
};

}  // namespace tagmatch::obs

#endif  // TAGMATCH_OBS_TRACE_H_

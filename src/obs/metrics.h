// Observability: a lock-cheap metrics registry shared by every pipeline
// layer (core engine, gpusim devices, shards, broker, net front end).
//
// Three instrument kinds, all safe for concurrent recording:
//
//   * Counter   — monotonic u64, relaxed atomic add. "How many."
//   * Gauge     — last-written i64, relaxed atomic store. "How big right now."
//   * Histogram — fixed 64-bucket power-of-two latency/size histogram with
//                 atomic per-bucket counts; p50/p95/p99 are interpolated from
//                 the bucket boundaries at snapshot time. "How long."
//
// Recording never allocates and never takes a lock: callers resolve
// instrument pointers once (Registry::counter/gauge/histogram lock only a
// registration mutex and return stable pointers) and then hammer the
// atomics. Snapshots are plain structs that merge with operator+= — the
// aggregation path for per-shard registries (src/shard) mirrors
// Matcher::Stats::operator+=.
//
// Metric names are dotted lowercase ("engine.queries_processed",
// "stage.kernel_ns"). Every name registered anywhere in the codebase must be
// documented in docs/OBSERVABILITY.md — tests/obs_test.cc diffs the live
// registry against the doc.
#ifndef TAGMATCH_OBS_METRICS_H_
#define TAGMATCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace tagmatch::obs {

// Monotonic counter. add/inc are relaxed atomic RMWs (~1 ns uncontended).
class Counter {
 public:
  void inc() { add(1); }
  void add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// How a gauge merges across registries (MetricsSnapshot::operator+=):
//   * kSum  — each shard contributes its share of one logical total
//             (subscriber counts, partition counts). The default.
//   * kLast — the gauge is a point-in-time reading where summing is
//             meaningless (device health flags, scheme ids): the merged
//             value is the last operand's reading.
enum class GaugeMode { kSum, kLast };

// Last-written value (table sizes, queue depths). set overwrites; add is for
// split-brain updates (e.g. per-shard contributions to one logical gauge).
class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Histogram bucket layout, shared by Histogram and HistogramSnapshot.
// Bucket 0 holds the value 0; bucket i (1 <= i <= 62) holds values in
// [2^(i-1), 2^i); bucket 63 holds everything >= 2^62. For nanosecond
// latencies that spans 1 ns .. ~146 years with <= 2x relative error per
// bucket, tightened by linear interpolation inside the bucket.
inline constexpr size_t kHistogramBuckets = 64;

inline size_t histogram_bucket_index(uint64_t v) {
  if (v == 0) return 0;
  size_t idx = static_cast<size_t>(std::bit_width(v));  // v in [2^(idx-1), 2^idx)
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
inline uint64_t histogram_bucket_lower(size_t i) {
  return i == 0 ? 0 : (uint64_t{1} << (i - 1));
}

// Exclusive upper bound of bucket i (1, 2, 4, 8, ...); saturates for the
// overflow bucket.
inline uint64_t histogram_bucket_upper(size_t i) {
  if (i + 1 >= kHistogramBuckets) return UINT64_MAX;
  return uint64_t{1} << i;
}

// Point-in-time copy of a histogram; mergeable and cheap to pass around.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // Meaningful only when count > 0.
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};
  // Exemplars: per bucket, the trace id of the last traced sample that landed
  // there (0 = none). Links a percentile outlier to an openable trace.
  std::array<uint64_t, kHistogramBuckets> exemplars{};

  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0; }

  // Nearest-rank percentile (p in [0, 100]) interpolated inside the target
  // bucket and clamped to the observed [min, max]. Returns 0 when empty.
  double percentile(double p) const;

  HistogramSnapshot& operator+=(const HistogramSnapshot& o);
};

// Concurrent fixed-bucket histogram. record() is wait-free: one relaxed add
// on the bucket, count and sum, plus two bounded CAS loops for min/max.
// A nonzero exemplar (trace id) is remembered per bucket, last writer wins.
class Histogram {
 public:
  void record(uint64_t v, uint64_t exemplar = 0);
  HistogramSnapshot snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> exemplars_{};
};

// Point-in-time copy of a whole registry. operator+= is the shard/thread
// aggregation path; to_text/to_json are the renderers shared by the STATS
// wire verb, --stats-json dumps and the benches.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  // Names of gauges registered GaugeMode::kLast: operator+= overwrites these
  // instead of summing them (point-in-time readings, not shares of a total).
  std::set<std::string> point_gauges;

  MetricsSnapshot& operator+=(const MetricsSnapshot& o);

  // Aligned human-readable table: counters/gauges, then histograms with
  // count/mean/p50/p95/p99. Zero-count histograms are elided.
  std::string to_text() const;

  // Single-line JSON (no newlines — it must fit one wire-protocol frame):
  // {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  // "sum":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..,
  // "buckets":[[index,count],...]}}}. Buckets are sparse [index,count]
  // pairs so snapshots can be re-merged from JSON. Histograms with traced
  // samples additionally carry "exemplars":[[index,trace_id],...].
  std::string to_json() const;
};

// Named instruments with stable addresses. Registration (first lookup of a
// name) takes a mutex; recording through the returned pointers is lock-free.
// Instruments live as long as the registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(const std::string& name);
  // `mode` is sticky: the first registration of a name fixes how snapshots
  // of that gauge merge (see GaugeMode); later lookups ignore the argument.
  Gauge* gauge(const std::string& name, GaugeMode mode = GaugeMode::kSum);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  // Sorted names of every registered instrument (the doc-diff test surface).
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, GaugeMode> gauge_modes_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ----------------------------------------------------------- snapshot diffing
// Helpers for windowed telemetry (src/telemetry): the delta of a cumulative
// instrument between two snapshots of the same registry.

// cur - prev for a monotonic counter. A counter that went backwards means the
// underlying registry was replaced (engine reload): the delta restarts at the
// new cumulative value rather than going negative.
inline uint64_t counter_delta(uint64_t cur, uint64_t prev) {
  return cur >= prev ? cur - prev : cur;
}

// Bucket-wise delta of two snapshots of the same histogram: the distribution
// of only the samples recorded in between. count/sum/buckets subtract
// (reset-aware like counter_delta); min/max degrade to the window's bucket
// bounds since cumulative extrema can't be un-merged.
HistogramSnapshot histogram_delta(const HistogramSnapshot& cur, const HistogramSnapshot& prev);

}  // namespace tagmatch::obs

#endif  // TAGMATCH_OBS_METRICS_H_

// Observability: Chrome trace-event JSON exporter for causal traces.
//
// Renders retained FlightRecorder traces (or a raw span list) in the Chrome
// trace-event format — the zero-dependency interchange that both
// chrome://tracing and ui.perfetto.dev load directly. Each trace becomes one
// process (pid); inside it, spans are laid out one track per stage — GPU
// stages get one track per stream, and overlapping executions of the same
// stage (e.g. parallel shard fan-out) spill into extra same-named lanes so
// no two slices on a track overlap. Every slice is a complete event
// (ph:"X", ts/dur in microseconds) carrying span_id/parent_span_id/trace_id
// in args, so the causal tree survives the export.
#ifndef TAGMATCH_OBS_EXPORT_H_
#define TAGMATCH_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace tagmatch::obs {

// {"traceEvents":[...],"displayTimeUnit":"ns"}. With pretty=false the result
// is a single line (it must fit one wire-protocol frame for TRACEX); with
// pretty=true events are newline-separated for on-disk files.
std::string chrome_trace_json(const std::vector<TraceRecord>& traces, bool pretty = false);

// Same rendering for a bare span list (e.g. a bench run's ring snapshot):
// one process, no root slice, untraced spans included.
std::string chrome_trace_json(const std::vector<Span>& spans, bool pretty = false);

}  // namespace tagmatch::obs

#endif  // TAGMATCH_OBS_EXPORT_H_

// Observability: Chrome trace-event JSON exporter for causal traces.
//
// Renders retained FlightRecorder traces (or a raw span list) in the Chrome
// trace-event format — the zero-dependency interchange that both
// chrome://tracing and ui.perfetto.dev load directly. Each trace becomes one
// process (pid); inside it, spans are laid out one track per stage — GPU
// stages get one track per stream, and overlapping executions of the same
// stage (e.g. parallel shard fan-out) spill into extra same-named lanes so
// no two slices on a track overlap. Every slice is a complete event
// (ph:"X", ts/dur in microseconds) carrying span_id/parent_span_id/trace_id
// in args, so the causal tree survives the export.
#ifndef TAGMATCH_OBS_EXPORT_H_
#define TAGMATCH_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace tagmatch::obs {

// {"traceEvents":[...],"displayTimeUnit":"ns"}. With pretty=false the result
// is a single line (it must fit one wire-protocol frame for TRACEX); with
// pretty=true events are newline-separated for on-disk files.
std::string chrome_trace_json(const std::vector<TraceRecord>& traces, bool pretty = false);

// Same rendering for a bare span list (e.g. a bench run's ring snapshot):
// one process, no root slice, untraced spans included.
std::string chrome_trace_json(const std::vector<Span>& spans, bool pretty = false);

// Self-contained retrospective bundle (src/telemetry): the span-list
// rendering plus one extra top-level `"<metadata_key>":<metadata_json>`
// entry. Chrome trace-event JSON is an object format — both chrome://tracing
// and Perfetto ignore unknown top-level keys, so the bundle opens as a trace
// while carrying the watchdog's time-series context alongside.
// `metadata_json` must already be valid JSON.
std::string chrome_trace_bundle(const std::vector<Span>& spans, const std::string& metadata_key,
                                const std::string& metadata_json, bool pretty = false);

// One Chrome trace event (ph:"X") for a single span — the unit of the
// streaming exporter (src/telemetry), which appends events one at a time in
// the Chrome "JSON Array Format" (a bare event array that loaders accept
// even unterminated, so a soak's stream file is openable mid-write). Streams
// can't lane-assign retroactively, so the event's tid is derived from the
// stage (GPU stages offset by the submitting stream id) rather than from
// overlap analysis.
std::string chrome_span_event(const Span& span, int pid = 1);

}  // namespace tagmatch::obs

#endif  // TAGMATCH_OBS_EXPORT_H_

#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <sstream>

namespace tagmatch::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kEnqueue:
      return "enqueue";
    case Stage::kPreFilter:
      return "prefilter";
    case Stage::kH2D:
      return "h2d";
    case Stage::kKernel:
      return "kernel";
    case Stage::kD2H:
      return "d2h";
    case Stage::kReduce:
      return "reduce";
    case Stage::kConsolidate:
      return "consolidate";
    case Stage::kGather:
      return "gather";
    case Stage::kFault:
      return "fault";
  }
  return "unknown";
}

const char* stage_metric_name(Stage stage) {
  switch (stage) {
    case Stage::kEnqueue:
      return "stage.enqueue_ns";
    case Stage::kPreFilter:
      return "stage.prefilter_ns";
    case Stage::kH2D:
      return "stage.h2d_ns";
    case Stage::kKernel:
      return "stage.kernel_ns";
    case Stage::kD2H:
      return "stage.d2h_ns";
    case Stage::kReduce:
      return "stage.reduce_ns";
    case Stage::kConsolidate:
      return "stage.consolidate_ns";
    case Stage::kGather:
      return "stage.gather_ns";
    case Stage::kFault:
      return "stage.fault_ns";
  }
  return "stage.unknown_ns";
}

bool stage_from_name(const std::string& name, Stage* out) {
  for (size_t i = 0; i < kNumStages; ++i) {
    Stage s = static_cast<Stage>(i);
    if (name == stage_name(s)) {
      if (out != nullptr) *out = s;
      return true;
    }
  }
  return false;
}

uint64_t new_trace_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t new_span_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Tracer(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

bool Tracer::record(const Span& span) {
  std::lock_guard<std::mutex> lock(mu_);
  bool overwrote = total_ >= ring_.size();
  if (overwrote) ++dropped_;
  ring_[next_] = span;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
  return overwrote;
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  if (total_ < ring_.size()) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(total_));
  } else {
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

namespace {

void span_to_json(std::ostringstream& out, const Span& s) {
  out << "{\"id\":" << s.id << ",\"stage\":\"" << stage_name(s.stage)
      << "\",\"start_ns\":" << s.start_ns << ",\"end_ns\":" << s.end_ns
      << ",\"duration_ns\":" << (s.end_ns - s.start_ns) << ",\"span_id\":" << s.span_id;
  if (s.trace_id != 0) {
    out << ",\"trace_id\":" << s.trace_id << ",\"parent_span_id\":" << s.parent_span_id;
  }
  out << "}";
}

}  // namespace

std::string spans_to_json(const std::vector<Span>& spans, size_t limit) {
  size_t begin = 0;
  if (limit > 0 && spans.size() > limit) begin = spans.size() - limit;
  std::ostringstream out;
  out << "[";
  for (size_t i = begin; i < spans.size(); ++i) {
    if (i != begin) out << ",";
    span_to_json(out, spans[i]);
  }
  out << "]";
  return out.str();
}

std::string trace_to_json(const std::vector<Span>& spans, uint64_t dropped, uint64_t total,
                          size_t limit) {
  std::ostringstream out;
  out << "{\"dropped\":" << dropped << ",\"total\":" << total
      << ",\"spans\":" << spans_to_json(spans, limit) << "}";
  return out.str();
}

std::vector<Span> filter_spans(const std::vector<Span>& spans, const Stage* stage,
                               uint64_t since_span_id) {
  std::vector<Span> out;
  out.reserve(spans.size());
  for (const Span& s : spans) {
    if (stage != nullptr && s.stage != *stage) continue;
    if (since_span_id != 0 && s.span_id <= since_span_id) continue;
    out.push_back(s);
  }
  return out;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Config()) {}

FlightRecorder::FlightRecorder(Config config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.latency_window == 0) config_.latency_window = 1;
}

bool FlightRecorder::sample_head() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = roots_++;
  if (force_head_sampling_.load(std::memory_order_relaxed)) return true;
  if (config_.head_sample_every == 0) return false;
  return n % config_.head_sample_every == 0;
}

int64_t FlightRecorder::p95_locked() const {
  size_t n = std::min<size_t>(finished_, window_.size());
  if (n < config_.min_samples || n == 0) return 0;
  std::vector<int64_t> sorted(window_.begin(), window_.begin() + static_cast<ptrdiff_t>(n));
  size_t rank = static_cast<size_t>(0.95 * static_cast<double>(n - 1));
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(rank), sorted.end());
  return sorted[rank];
}

FlightRecorder::Decision FlightRecorder::should_retain(int64_t latency_ns, bool degraded,
                                                       bool head_sampled) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision d;
  d.threshold_ns = p95_locked();
  d.slow = d.threshold_ns > 0 && latency_ns > d.threshold_ns;
  d.retain = degraded || head_sampled || d.slow;
  if (window_.size() < config_.latency_window) {
    window_.push_back(latency_ns);
  } else {
    window_[window_next_] = latency_ns;
    window_next_ = (window_next_ + 1) % window_.size();
  }
  ++finished_;
  return d;
}

void FlightRecorder::retain(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  retained_.push_back(std::move(record));
  ++retained_total_;
  while (retained_.size() > config_.capacity) retained_.pop_front();
}

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {retained_.begin(), retained_.end()};
}

uint64_t FlightRecorder::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

uint64_t FlightRecorder::retained_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_total_;
}

int64_t FlightRecorder::p95_threshold_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return p95_locked();
}

PipelineObs::PipelineObs() {
  trace_dropped_ = registry_.counter("trace.dropped");
  for (size_t i = 0; i < kNumStages; ++i) {
    stage_histograms_[i] = registry_.histogram(stage_metric_name(static_cast<Stage>(i)));
  }
}

uint64_t PipelineObs::record_stage(Stage stage, uint64_t id, int64_t start_ns, int64_t end_ns,
                                   const TraceContext& ctx, uint64_t span_id) {
  uint64_t duration =
      end_ns > start_ns ? static_cast<uint64_t>(end_ns - start_ns) : 0;
  stage_histograms_[static_cast<size_t>(stage)]->record(duration, ctx.trace_id);
  if (span_id == 0) span_id = new_span_id();
  if (tracer_.record(Span{id, stage, start_ns, end_ns, ctx.trace_id, span_id,
                          ctx.parent_span_id})) {
    trace_dropped_->inc();
  }
  return span_id;
}

}  // namespace tagmatch::obs

#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

namespace tagmatch::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kEnqueue:
      return "enqueue";
    case Stage::kPreFilter:
      return "prefilter";
    case Stage::kH2D:
      return "h2d";
    case Stage::kKernel:
      return "kernel";
    case Stage::kD2H:
      return "d2h";
    case Stage::kReduce:
      return "reduce";
    case Stage::kConsolidate:
      return "consolidate";
    case Stage::kGather:
      return "gather";
  }
  return "unknown";
}

const char* stage_metric_name(Stage stage) {
  switch (stage) {
    case Stage::kEnqueue:
      return "stage.enqueue_ns";
    case Stage::kPreFilter:
      return "stage.prefilter_ns";
    case Stage::kH2D:
      return "stage.h2d_ns";
    case Stage::kKernel:
      return "stage.kernel_ns";
    case Stage::kD2H:
      return "stage.d2h_ns";
    case Stage::kReduce:
      return "stage.reduce_ns";
    case Stage::kConsolidate:
      return "stage.consolidate_ns";
    case Stage::kGather:
      return "stage.gather_ns";
  }
  return "stage.unknown_ns";
}

Tracer::Tracer(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void Tracer::record(const Span& span) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = span;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  if (total_ < ring_.size()) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(total_));
  } else {
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  total_ = 0;
}

std::string spans_to_json(const std::vector<Span>& spans, size_t limit) {
  size_t begin = 0;
  if (limit > 0 && spans.size() > limit) begin = spans.size() - limit;
  std::ostringstream out;
  out << "[";
  for (size_t i = begin; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != begin) out << ",";
    out << "{\"id\":" << s.id << ",\"stage\":\"" << stage_name(s.stage)
        << "\",\"start_ns\":" << s.start_ns << ",\"end_ns\":" << s.end_ns
        << ",\"duration_ns\":" << (s.end_ns - s.start_ns) << "}";
  }
  out << "]";
  return out.str();
}

PipelineObs::PipelineObs() {
  for (size_t i = 0; i < kNumStages; ++i) {
    stage_histograms_[i] = registry_.histogram(stage_metric_name(static_cast<Stage>(i)));
  }
}

void PipelineObs::record_stage(Stage stage, uint64_t id, int64_t start_ns, int64_t end_ns) {
  uint64_t duration =
      end_ns > start_ns ? static_cast<uint64_t>(end_ns - start_ns) : 0;
  stage_histograms_[static_cast<size_t>(stage)]->record(duration);
  tracer_.record(Span{id, stage, start_ns, end_ns});
}

}  // namespace tagmatch::obs

#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tagmatch::obs {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 0-based, nearest-rank with fractional part
  // resolved by interpolating inside the bucket that holds it.
  double rank = p / 100.0 * static_cast<double>(count - 1);
  uint64_t below = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(below + in_bucket)) {
      // Position of the rank within this bucket, in [0, 1).
      double frac = (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      double lo = static_cast<double>(histogram_bucket_lower(i));
      double hi = static_cast<double>(std::min(histogram_bucket_upper(i), max + 1));
      double v = lo + frac * (hi - lo);
      // The true samples are bounded by the observed extrema; clamping keeps
      // p0 == min and p100 == max exact.
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    below += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramSnapshot& HistogramSnapshot::operator+=(const HistogramSnapshot& o) {
  if (o.count == 0) return *this;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += o.buckets[i];
    if (o.exemplars[i] != 0) exemplars[i] = o.exemplars[i];
  }
  return *this;
}

void Histogram::record(uint64_t v, uint64_t exemplar) {
  size_t bucket = histogram_bucket_index(v);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (exemplar != 0) exemplars_[bucket].store(exemplar, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (mn == UINT64_MAX) ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.exemplars[i] = exemplars_[i].load(std::memory_order_relaxed);
  }
  return s;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& o) {
  for (const auto& [name, v] : o.counters) counters[name] += v;
  point_gauges.insert(o.point_gauges.begin(), o.point_gauges.end());
  for (const auto& [name, v] : o.gauges) {
    if (point_gauges.count(name)) {
      gauges[name] = v;  // Point-in-time reading: last operand wins.
    } else {
      gauges[name] += v;  // Share of one logical total: sum.
    }
  }
  for (const auto& [name, h] : o.histograms) histograms[name] += h;
  return *this;
}

HistogramSnapshot histogram_delta(const HistogramSnapshot& cur, const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  d.count = counter_delta(cur.count, prev.count);
  d.sum = counter_delta(cur.sum, prev.sum);
  bool reset = cur.count < prev.count;
  uint64_t lowest = UINT64_MAX, highest = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] = reset ? cur.buckets[i] : counter_delta(cur.buckets[i], prev.buckets[i]);
    if (d.buckets[i] != 0) {
      lowest = std::min(lowest, histogram_bucket_lower(i));
      highest = std::max(highest, histogram_bucket_upper(i));
    }
    // An exemplar that changed across the window belongs to the window.
    if (cur.exemplars[i] != 0 && cur.exemplars[i] != prev.exemplars[i]) {
      d.exemplars[i] = cur.exemplars[i];
    }
  }
  if (d.count > 0) {
    // Cumulative extrema can't be subtracted; clamp to the window's occupied
    // bucket range, tightened by the lifetime extrema where still valid.
    d.min = std::max(lowest == UINT64_MAX ? 0 : lowest, cur.min);
    d.max = std::min(highest, cur.max);
    if (d.min > d.max) d.min = d.max;
  }
  return d;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  size_t width = 0;
  for (const auto& [name, _] : counters) width = std::max(width, name.size());
  for (const auto& [name, _] : gauges) width = std::max(width, name.size());
  for (const auto& [name, _] : histograms) width = std::max(width, name.size());
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-*s %llu\n", static_cast<int>(width), name.c_str(),
                  static_cast<unsigned long long>(v));
    out << line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-*s %lld\n", static_cast<int>(width), name.c_str(),
                  static_cast<long long>(v));
    out << line;
  }
  for (const auto& [name, h] : histograms) {
    if (h.count == 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-*s count=%llu mean=%.0f p50=%.0f p95=%.0f p99=%.0f max=%llu\n",
                  static_cast<int>(width), name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.percentile(50), h.percentile(95), h.percentile(99),
                  static_cast<unsigned long long>(h.max));
    out << line;
  }
  return out.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"min\":" << h.min << ",\"max\":" << h.max
        << ",\"mean\":" << format_double(h.mean()) << ",\"p50\":" << format_double(h.percentile(50))
        << ",\"p95\":" << format_double(h.percentile(95))
        << ",\"p99\":" << format_double(h.percentile(99)) << ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "[" << i << "," << h.buckets[i] << "]";
    }
    out << "]";
    bool any_exemplar = false;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.exemplars[i] == 0) continue;
      out << (any_exemplar ? "," : ",\"exemplars\":[");
      any_exemplar = true;
      out << "[" << i << "," << h.exemplars[i] << "]";
    }
    if (any_exemplar) out << "]";
    out << "}";
  }
  out << "}}";
  return out.str();
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name, GaugeMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    gauge_modes_[name] = mode;
  }
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, mode] : gauge_modes_) {
    if (mode == GaugeMode::kLast) s.point_gauges.insert(name);
  }
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : counters_) out.push_back(name);
  for (const auto& [name, _] : gauges_) out.push_back(name);
  for (const auto& [name, _] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tagmatch::obs

#include "src/telemetry/stream_export.h"

#include "src/obs/export.h"

namespace tagmatch::telemetry {

SpanStreamer::Flush SpanStreamer::flush(const std::vector<obs::Span>& ring,
                                        uint64_t ring_dropped) {
  Flush out;
  const uint64_t recorded = ring_dropped + ring.size();
  std::unordered_set<uint64_t> cur_ids;
  cur_ids.reserve(ring.size());
  for (const obs::Span& s : ring) {
    cur_ids.insert(s.span_id);
    if (primed_ && prev_ids_.count(s.span_id)) continue;
    out.spans.push_back(s);
  }
  if (primed_) {
    // Everything recorded since the last flush either still sits in the ring
    // (flushed now) or wrapped out unseen (dropped). recorded is monotonic,
    // so the subtraction cannot underflow below the flushed count.
    const uint64_t delta = recorded >= prev_recorded_ ? recorded - prev_recorded_ : 0;
    if (delta > out.spans.size()) out.dropped = delta - out.spans.size();
  }
  primed_ = true;
  prev_ids_ = std::move(cur_ids);
  prev_recorded_ = recorded;
  flushed_total_ += out.spans.size();
  dropped_total_ += out.dropped;
  return out;
}

StreamFileWriter::StreamFileWriter(size_t max_events_per_flush)
    : max_events_per_flush_(max_events_per_flush == 0 ? 1 : max_events_per_flush) {}

StreamFileWriter::~StreamFileWriter() { close(); }

bool StreamFileWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return false;
  std::fputs("[\n", file_);
  first_event_ = true;
  return true;
}

size_t StreamFileWriter::append(const std::vector<obs::Span>& spans) {
  if (file_ == nullptr) return 0;
  size_t begin = 0;
  if (spans.size() > max_events_per_flush_) {
    // Keep the newest events of an oversized flush; the tail is what the
    // next reader wants, and the skipped head is accounted, not silent.
    begin = spans.size() - max_events_per_flush_;
    events_dropped_ += begin;
  }
  for (size_t i = begin; i < spans.size(); ++i) {
    if (!first_event_) std::fputs(",\n", file_);
    first_event_ = false;
    const std::string event = obs::chrome_span_event(spans[i]);
    std::fwrite(event.data(), 1, event.size(), file_);
    ++events_written_;
  }
  std::fflush(file_);
  return spans.size() - begin;
}

void StreamFileWriter::close() {
  if (file_ == nullptr) return;
  // Terminate the array for tidiness; loaders accept the file either way.
  std::fputs("\n]\n", file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace tagmatch::telemetry

// Continuous telemetry: SRE-style dual-window burn-rate rules over the
// rolling time-series store.
//
// A rule names one metric and an objective. Each evaluation aggregates the
// metric over two windows of the ring — a fast window (catches a sharp
// burn quickly) and a slow window (filters one-sample blips) — and trips
// only when BOTH exceed the objective: the fast window must exceed
// threshold × budget (the burn-rate multiplier: how many times faster than
// the sustainable rate the budget is burning) and the slow window must
// exceed threshold. This is the standard error-budget alerting shape: fast
// window for detection latency, slow window for precision.
//
// The metric's windowed value depends on its kind: counters evaluate their
// per-second rate, gauges their latest reading, histograms the windowed
// percentile selected by `p=` (bucket-delta interpolation, timeseries.h).
//
// State machine per rule: armed → (both windows exceed) → TRIPPED, which is
// the only transition that fires the trip action (one retrospective dump +
// sampling boost, telemetry.h). The rule then holds for `holdoff` — the
// boost stays up, no re-trips — and re-arms only once the holdoff has
// passed AND the fast window has dropped back under the threshold, so a
// still-burning SLO never flaps.
//
// The spec grammar mirrors src/inject's FaultPlan — ';'-separated rules,
// each `metric:kv,kv,...` — and parses fail-closed: unknown keys, bad
// durations or a missing threshold reject the whole spec.
#ifndef TAGMATCH_TELEMETRY_SLO_WATCHDOG_H_
#define TAGMATCH_TELEMETRY_SLO_WATCHDOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/telemetry/timeseries.h"

namespace tagmatch::telemetry {

// One burn-rate rule. Spec form:
//   metric:threshold=V[,fast=10s][,slow=60s][,p=99][,budget=2][,holdoff=30s][,name=r]
// Durations take `ms` or `s` suffixes; `p` selects the histogram percentile;
// `name` labels the telemetry.alert.<name> gauge (default: the metric name).
struct SloRule {
  std::string name;
  std::string metric;
  double threshold = 0;
  double budget = 1.0;  // Fast-window burn-rate multiplier.
  double pct = 99;      // Histogram percentile selector.
  int64_t fast_ns = 10'000'000'000;     // 10 s
  int64_t slow_ns = 60'000'000'000;     // 60 s
  int64_t holdoff_ns = 30'000'000'000;  // 30 s

  // Canonical spec string (parse(to_spec(r)) round-trips).
  std::string to_spec() const;
};

// Parses a ';'-separated rule list. nullopt on any violation, with a
// human-readable reason in *error (when non-null). An empty spec is valid
// and yields no rules.
std::optional<std::vector<SloRule>> parse_slo_rules(const std::string& spec,
                                                    std::string* error = nullptr);

class SloWatchdog {
 public:
  struct RuleState {
    bool tripped = false;
    int64_t tripped_at_ns = 0;
    uint64_t trips = 0;  // Lifetime trip transitions (armed -> tripped).
    // Last evaluated aggregates (diagnostics; NaN-free: 0 when no data).
    double fast_value = 0;
    double slow_value = 0;
  };

  explicit SloWatchdog(std::vector<SloRule> rules);

  // Evaluates every rule against the store at `now_ns`. Returns the indices
  // of rules that transitioned armed -> tripped in this evaluation (each is
  // one trip action for the caller).
  std::vector<size_t> evaluate(int64_t now_ns, const TimeSeriesStore& store);

  // True while any rule is tripped (sampling boost stays up).
  bool any_tripped() const;

  const std::vector<SloRule>& rules() const { return rules_; }
  const RuleState& state(size_t i) const { return states_[i]; }

 private:
  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
};

}  // namespace tagmatch::telemetry

#endif  // TAGMATCH_TELEMETRY_SLO_WATCHDOG_H_

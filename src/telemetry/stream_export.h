// Continuous telemetry: incremental Perfetto export for long soaks.
//
// The TRACEX wire verb re-serializes the whole retained set per request —
// fine for a 16-trace flight recorder, hopeless for a multi-hour soak whose
// interesting spans wrap out of the ring between polls. The streaming
// exporter inverts the flow: each flush appends only the spans *retired
// since the last flush* to its sink, so a soak's full span history lands on
// disk (or on a TRACES wire connection) in O(new spans) per flush with no
// re-serialization.
//
// Incremental capture works by snapshot differencing, not by span-id
// watermark: parent spans are recorded with pre-allocated ids *after* their
// children (PipelineObs::record_stage's span_id parameter — a batch span's
// GPU ops enqueue first), so "id greater than the last seen" would lose
// exactly the parents. A flush instead diffs the ring snapshot against the
// previous snapshot's id set. Spans recorded and then overwritten between
// two flushes are genuinely unexportable; they are counted as drops
// (recorded-delta minus flushed), never silently skipped — flush faster or
// grow the ring to drive drops to zero.
//
// The on-disk format is the Chrome "JSON Array Format": a bare `[` followed
// by comma-separated trace events. Loaders (Perfetto, chrome://tracing)
// accept it even unterminated, so the stream file of a crashed or still-
// running soak opens cleanly.
#ifndef TAGMATCH_TELEMETRY_STREAM_EXPORT_H_
#define TAGMATCH_TELEMETRY_STREAM_EXPORT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/obs/trace.h"

namespace tagmatch::telemetry {

// Stateful snapshot differ: feeds each flush the spans new since the
// previous one. One streamer per sink (the file exporter owns one; every
// TRACES wire connection owns its own, so concurrent consumers each see the
// full stream).
class SpanStreamer {
 public:
  struct Flush {
    std::vector<obs::Span> spans;  // New since the previous flush.
    uint64_t dropped = 0;          // Retired unseen in this interval (wrapped out).
  };

  // `ring` is the tracer's current snapshot; `ring_dropped` its lifetime
  // overwrite count (total recorded = ring.size() + ring_dropped, which is
  // how the drop delta is derived).
  Flush flush(const std::vector<obs::Span>& ring, uint64_t ring_dropped);

  uint64_t flushed_total() const { return flushed_total_; }
  uint64_t dropped_total() const { return dropped_total_; }

 private:
  std::unordered_set<uint64_t> prev_ids_;
  uint64_t prev_recorded_ = 0;
  bool primed_ = false;
  uint64_t flushed_total_ = 0;
  uint64_t dropped_total_ = 0;
};

// Appends Chrome trace events to a JSON Array Format file. Writes "[\n" on
// open; append() serializes each span via obs::chrome_span_event. Bounded:
// a flush larger than `max_events_per_flush` keeps the newest events and
// counts the excess as drops, so one pathological interval can't stall the
// sampler on disk I/O.
class StreamFileWriter {
 public:
  explicit StreamFileWriter(size_t max_events_per_flush = 65536);
  ~StreamFileWriter();

  StreamFileWriter(const StreamFileWriter&) = delete;
  StreamFileWriter& operator=(const StreamFileWriter&) = delete;

  bool open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  // Serializes and appends; returns events written. fflush()es so the file
  // is loadable at any moment of the soak.
  size_t append(const std::vector<obs::Span>& spans);
  void close();

  uint64_t events_written() const { return events_written_; }
  uint64_t events_dropped() const { return events_dropped_; }

 private:
  const size_t max_events_per_flush_;
  std::FILE* file_ = nullptr;
  bool first_event_ = true;
  uint64_t events_written_ = 0;
  uint64_t events_dropped_ = 0;
};

}  // namespace tagmatch::telemetry

#endif  // TAGMATCH_TELEMETRY_STREAM_EXPORT_H_

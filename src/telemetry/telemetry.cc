#include "src/telemetry/telemetry.h"

#include <cstdio>
#include <inttypes.h>
#include <sstream>

#include "src/common/stats.h"
#include "src/obs/export.h"

namespace tagmatch::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// tmp + rename so a reader (or a crash) never sees a half-written dump.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)),
      store_(config_.ring_capacity),
      watchdog_(config_.rules) {
  samples_ = registry_.counter("telemetry.samples");
  rule_trips_ = registry_.counter("telemetry.rule_trips");
  retro_dumps_ = registry_.counter("telemetry.retro_dumps");
  stream_flushed_ = registry_.counter("telemetry.stream.flushed");
  stream_dropped_ = registry_.counter("telemetry.stream.dropped");
  rss_gauge_ = registry_.gauge("telemetry.rss_bytes", obs::GaugeMode::kLast);
  for (const SloRule& rule : watchdog_.rules()) {
    alert_gauges_.push_back(
        registry_.gauge("telemetry.alert." + rule.name, obs::GaugeMode::kLast));
  }
  if (!config_.stream_path.empty()) {
    stream_writer_.open(config_.stream_path);
  }
}

Telemetry::~Telemetry() { stop(); }

void Telemetry::start() {
  if (started_ || config_.interval.count() <= 0) return;
  started_ = true;
  stopping_ = false;
  sampler_ = std::thread(&Telemetry::sampler_loop, this);
}

void Telemetry::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  started_ = false;
  stream_writer_.close();
}

void Telemetry::sampler_loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, config_.interval, [this] { return stopping_; })) break;
    lock.unlock();
    tick(now_ns());
    lock.lock();
  }
}

int64_t Telemetry::rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long pages_total = 0, pages_resident = 0;
  const int fields = std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
  std::fclose(f);
  if (fields != 2) return 0;
  // sysconf(_SC_PAGESIZE) without the unistd dependency: Linux x86/arm pages
  // are 4 KiB unless the deployment says otherwise; the soak gate compares
  // ratios, which a constant factor cancels out of.
  return static_cast<int64_t>(pages_resident) * 4096;
}

void Telemetry::tick(int64_t now_ns) {
  // 1. Self-sample, so the ring carries the telemetry.* series too (the soak
  // gate reads its RSS history straight out of a TSQ dump).
  rss_gauge_->set(rss_bytes());
  samples_->inc();

  // 2. Windowed ingest of host + telemetry metrics.
  obs::MetricsSnapshot snap;
  if (config_.snapshot_fn) snap = config_.snapshot_fn();
  snap += registry_.snapshot();
  store_.ingest(now_ns, snap);

  // 3. Burn-rate evaluation; trips dump and boost.
  const std::vector<size_t> tripped = watchdog_.evaluate(now_ns, store_);
  for (size_t i = 0; i < alert_gauges_.size(); ++i) {
    alert_gauges_[i]->set(watchdog_.state(i).tripped ? 1 : 0);
  }
  for (size_t rule_index : tripped) {
    rule_trips_->inc();
    write_retrospective_dump(rule_index, now_ns);
  }
  const bool want_boost = watchdog_.any_tripped();
  if (want_boost != boost_on_) {
    boost_on_ = want_boost;
    if (config_.sampling_boost_fn) config_.sampling_boost_fn(want_boost);
  }

  // 4. Incremental span export.
  if (stream_writer_.is_open() && config_.trace_fn) {
    const uint64_t ring_dropped = config_.trace_dropped_fn ? config_.trace_dropped_fn() : 0;
    SpanStreamer::Flush flush = streamer_.flush(config_.trace_fn(), ring_dropped);
    const size_t written = stream_writer_.append(flush.spans);
    stream_flushed_->add(written);
    stream_dropped_->add(flush.dropped + (flush.spans.size() - written));
  }
}

void Telemetry::write_retrospective_dump(size_t rule_index, int64_t now_ns) {
  retro_dumps_->inc();
  if (config_.telemetry_dir.empty()) return;
  const SloRule& rule = watchdog_.rules()[rule_index];
  const SloWatchdog::RuleState& state = watchdog_.state(rule_index);

  std::ostringstream meta;
  meta << "{\"rule\":\"" << json_escape(rule.to_spec()) << "\",\"name\":\""
       << json_escape(rule.name) << "\",\"tripped_at_ns\":" << now_ns
       << ",\"fast_value\":" << format_double(state.fast_value)
       << ",\"slow_value\":" << format_double(state.slow_value)
       << ",\"threshold\":" << format_double(rule.threshold)
       << ",\"budget\":" << format_double(rule.budget)
       << ",\"timeseries\":" << store_.to_json("*", config_.retro_last_windows)
       << ",\"device_health\":" << store_.to_json("device.health.*", config_.retro_last_windows)
       << "}";

  const std::vector<obs::Span> ring = config_.trace_fn ? config_.trace_fn() : std::vector<obs::Span>{};
  const std::string bundle = obs::chrome_trace_bundle(ring, "telemetry", meta.str(),
                                                      /*pretty=*/true);
  char filename[256];
  std::snprintf(filename, sizeof(filename), "retro-%s-%" PRIu64 ".json", rule.name.c_str(),
                state.trips);
  const std::string path = config_.telemetry_dir + "/" + filename;
  if (write_file_atomic(path, bundle)) {
    std::lock_guard<std::mutex> lock(dump_mu_);
    last_dump_path_ = path;
  }
}

std::string Telemetry::tsq_json(const std::string& metric_glob, size_t last_n) const {
  return store_.to_json(metric_glob, last_n);
}

uint64_t Telemetry::retro_dumps() const { return retro_dumps_->value(); }

std::string Telemetry::last_dump_path() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return last_dump_path_;
}

}  // namespace tagmatch::telemetry

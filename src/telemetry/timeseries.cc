#include "src/telemetry/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tagmatch::telemetry {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void metric_window_json(std::ostringstream& out, const MetricWindow& m) {
  switch (m.kind) {
    case MetricWindow::Kind::kCounter:
      out << "{\"type\":\"counter\",\"delta\":" << m.delta
          << ",\"rate\":" << format_double(m.rate) << "}";
      break;
    case MetricWindow::Kind::kGauge:
      out << "{\"type\":\"gauge\",\"value\":" << m.value << "}";
      break;
    case MetricWindow::Kind::kHistogram:
      out << "{\"type\":\"histogram\",\"count\":" << m.hist.count
          << ",\"mean\":" << format_double(m.hist.mean())
          << ",\"p50\":" << format_double(m.hist.percentile(50))
          << ",\"p95\":" << format_double(m.hist.percentile(95))
          << ",\"p99\":" << format_double(m.hist.percentile(99)) << ",\"max\":" << m.hist.max
          << "}";
      break;
  }
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& name) {
  // Iterative '*' matcher with backtracking to the last star (classic
  // two-pointer form; no other metacharacters).
  size_t p = 0, n = 0;
  size_t star = std::string::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

TimeSeriesStore::TimeSeriesStore(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesStore::ingest(int64_t now_ns, const obs::MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  Sample s;
  s.t_ns = now_ns;
  s.window_ns = has_prev_ ? std::max<int64_t>(now_ns - prev_t_ns_, 1) : 0;
  const double seconds =
      s.window_ns > 0 ? static_cast<double>(s.window_ns) / 1e9 : 0.0;
  for (const auto& [name, cur] : snap.counters) {
    auto prev_it = prev_.counters.find(name);
    const uint64_t prev_v = prev_it != prev_.counters.end() ? prev_it->second : 0;
    MetricWindow m;
    m.kind = MetricWindow::Kind::kCounter;
    m.delta = obs::counter_delta(cur, prev_v);
    m.rate = seconds > 0 ? static_cast<double>(m.delta) / seconds : 0.0;
    s.metrics.emplace(name, std::move(m));
  }
  for (const auto& [name, cur] : snap.gauges) {
    MetricWindow m;
    m.kind = MetricWindow::Kind::kGauge;
    m.value = cur;
    s.metrics.emplace(name, std::move(m));
  }
  for (const auto& [name, cur] : snap.histograms) {
    auto prev_it = prev_.histograms.find(name);
    MetricWindow m;
    m.kind = MetricWindow::Kind::kHistogram;
    m.hist = prev_it != prev_.histograms.end() ? obs::histogram_delta(cur, prev_it->second)
                                               : cur;
    s.metrics.emplace(name, std::move(m));
  }
  ring_.push_back(std::move(s));
  while (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
  has_prev_ = true;
  prev_t_ns_ = now_ns;
  prev_ = snap;
}

size_t TimeSeriesStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TimeSeriesStore::total_ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<Sample> TimeSeriesStore::query(const std::string& metric_glob, size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = (last_n == 0 || last_n > ring_.size()) ? ring_.size() : last_n;
  std::vector<Sample> out;
  out.reserve(n);
  for (size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    const Sample& src = ring_[i];
    Sample filtered;
    filtered.t_ns = src.t_ns;
    filtered.window_ns = src.window_ns;
    for (const auto& [name, m] : src.metrics) {
      if (glob_match(metric_glob, name)) filtered.metrics.emplace(name, m);
    }
    out.push_back(std::move(filtered));
  }
  return out;
}

std::optional<MetricWindow> TimeSeriesStore::aggregate(const std::string& metric,
                                                       int64_t window_ns, int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<MetricWindow> agg;
  int64_t covered_ns = 0;
  for (const Sample& s : ring_) {
    if (s.t_ns <= now_ns - window_ns || s.t_ns > now_ns) continue;
    auto it = s.metrics.find(metric);
    if (it == s.metrics.end()) continue;
    const MetricWindow& m = it->second;
    if (!agg.has_value()) {
      agg = m;
      covered_ns = s.window_ns;
      continue;
    }
    switch (m.kind) {
      case MetricWindow::Kind::kCounter:
        agg->delta += m.delta;
        covered_ns += s.window_ns;
        break;
      case MetricWindow::Kind::kGauge:
        agg->value = m.value;  // Samples iterate oldest-first: newest wins.
        break;
      case MetricWindow::Kind::kHistogram:
        agg->hist += m.hist;
        break;
    }
  }
  if (agg.has_value() && agg->kind == MetricWindow::Kind::kCounter) {
    agg->rate = covered_ns > 0 ? static_cast<double>(agg->delta) * 1e9 /
                                     static_cast<double>(covered_ns)
                               : 0.0;
  }
  return agg;
}

std::string TimeSeriesStore::to_json(const std::string& metric_glob, size_t last_n) const {
  std::vector<Sample> samples = query(metric_glob, last_n);
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out << "{\"capacity\":" << capacity_ << ",\"total\":" << total_ << ",\"samples\":[";
  }
  bool first_sample = true;
  for (const Sample& s : samples) {
    if (!first_sample) out << ",";
    first_sample = false;
    out << "{\"t_ns\":" << s.t_ns << ",\"window_ns\":" << s.window_ns << ",\"metrics\":{";
    bool first_metric = true;
    for (const auto& [name, m] : s.metrics) {
      if (!first_metric) out << ",";
      first_metric = false;
      out << "\"" << name << "\":";
      metric_window_json(out, m);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace tagmatch::telemetry

// Continuous telemetry: the orchestrator wiring the rolling time-series
// store, the SLO burn-rate watchdog and the streaming Perfetto exporter to
// a live broker (or any obs-instrumented host).
//
// One background sampler thread ticks at a configurable interval. Each tick:
//   1. self-samples the process (telemetry.rss_bytes) into its own registry,
//   2. snapshots the host's metrics (snapshot_fn), merges in the telemetry
//      registry, and ingests the union into the ring (timeseries.h),
//   3. evaluates the burn-rate rules on the ring; a rule transitioning to
//      tripped flips its telemetry.alert.<rule> gauge, raises FlightRecorder
//      head sampling to 100% via sampling_boost_fn (dropped again only when
//      every rule has re-armed), and emits ONE retrospective dump,
//   4. flushes spans retired since the last tick to the stream file.
//
// The retrospective dump is the "what was the engine doing" artifact: the
// current trace ring rendered as Chrome trace events plus, under a
// "telemetry" metadata key the viewers ignore, the tripped rule, the last N
// time-series windows and the device-health gauge history. It is written
// atomically (tmp + rename) to telemetry_dir, one self-contained file per
// trip that ui.perfetto.dev opens directly.
//
// tick() is public and takes the clock as a parameter: tests drive the
// whole machine deterministically with a fake clock and never start().
#ifndef TAGMATCH_TELEMETRY_TELEMETRY_H_
#define TAGMATCH_TELEMETRY_TELEMETRY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/telemetry/slo_watchdog.h"
#include "src/telemetry/stream_export.h"
#include "src/telemetry/timeseries.h"

namespace tagmatch::telemetry {

struct TelemetryConfig {
  // Sampling interval of the background thread (start()); <= 0 disables the
  // thread (tick() still works for fake-clock callers).
  std::chrono::milliseconds interval{1000};
  // Ring capacity in windows (default 512 ≈ 8.5 min at 1 s).
  size_t ring_capacity = 512;
  // Burn-rate rules (parse_slo_rules over --slo-rules).
  std::vector<SloRule> rules;
  // Directory for retrospective dumps ("" = dumps off).
  std::string telemetry_dir;
  // Streaming Perfetto file ("" = file streaming off).
  std::string stream_path;
  // Time-series windows embedded in a retrospective dump.
  size_t retro_last_windows = 64;

  // --- Host hooks (all optional; a null hook disables its feature) ---
  // Cumulative metrics of the monitored system (Broker::metrics_snapshot).
  std::function<obs::MetricsSnapshot()> snapshot_fn;
  // Span ring snapshot + its lifetime overwrite count (Broker::trace_snapshot
  // / trace_dropped) — feeds the streaming exporter and the dumps.
  std::function<std::vector<obs::Span>()> trace_fn;
  std::function<uint64_t()> trace_dropped_fn;
  // Watchdog sampling boost (Broker::set_trace_sampling_boost).
  std::function<void(bool)> sampling_boost_fn;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Spawns the sampler thread (no-op when interval <= 0). stop() joins it;
  // both idempotent.
  void start();
  void stop();

  // One sampling tick at `now_ns` — the deterministic core the thread calls
  // with the real clock and tests call with a fake one.
  void tick(int64_t now_ns);

  // TSQ payload: the ring filtered by glob, most recent `last_n` windows.
  std::string tsq_json(const std::string& metric_glob, size_t last_n = 0) const;

  const TimeSeriesStore& store() const { return store_; }
  const SloWatchdog& watchdog() const { return watchdog_; }
  // The telemetry.* registry (merged into STATS by the server).
  obs::Registry& registry() { return registry_; }
  obs::MetricsSnapshot metrics_snapshot() const { return registry_.snapshot(); }

  uint64_t retro_dumps() const;
  // Path of the most recent retrospective dump ("" = none yet).
  std::string last_dump_path() const;
  uint64_t stream_flushed() const { return stream_flushed_->value(); }
  uint64_t stream_dropped() const { return stream_dropped_->value(); }

 private:
  void sampler_loop();
  void write_retrospective_dump(size_t rule_index, int64_t now_ns);
  // Resident set size via /proc/self/statm (0 where unavailable).
  static int64_t rss_bytes();

  TelemetryConfig config_;
  TimeSeriesStore store_;
  SloWatchdog watchdog_;
  SpanStreamer streamer_;
  StreamFileWriter stream_writer_;

  obs::Registry registry_;
  obs::Counter* samples_ = nullptr;
  obs::Counter* rule_trips_ = nullptr;
  obs::Counter* retro_dumps_ = nullptr;
  obs::Counter* stream_flushed_ = nullptr;
  obs::Counter* stream_dropped_ = nullptr;
  obs::Gauge* rss_gauge_ = nullptr;
  std::vector<obs::Gauge*> alert_gauges_;  // One per rule, telemetry.alert.<name>.
  bool boost_on_ = false;

  mutable std::mutex dump_mu_;
  std::string last_dump_path_;

  std::thread sampler_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace tagmatch::telemetry

#endif  // TAGMATCH_TELEMETRY_TELEMETRY_H_

// Continuous telemetry: a rolling time-series store over obs registries.
//
// The lifetime counters and histograms of src/obs answer "how much since
// boot"; sustained operation (the paper's Figs. 5-11 story) needs "how much
// over the last window" — a CPU-fallback storm is invisible in a lifetime
// p99 that has already averaged it away. The store turns cumulative
// snapshots into windowed samples: a sampler calls ingest() at a fixed
// interval, each call diffs the registry snapshot against the previous one,
// and the resulting per-window deltas (counter rates, histogram bucket
// deltas with interpolated windowed percentiles, gauge readings) land in a
// fixed-capacity ring. Memory is O(ring × metrics), independent of uptime.
//
// Diffing is reset-aware: a counter that went backwards means the underlying
// registry was replaced (engine reload via Broker::load), and the window
// restarts at the new cumulative value instead of going negative.
//
// Queries (the TSQ wire verb) select metrics by glob ('*' wildcards) over
// the most recent N windows and render as JSON. The SLO watchdog
// (slo_watchdog.h) aggregates windows over its fast/slow horizons with
// aggregate().
#ifndef TAGMATCH_TELEMETRY_TIMESERIES_H_
#define TAGMATCH_TELEMETRY_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace tagmatch::telemetry {

// Glob match with '*' (any run, including empty) — the TSQ selector.
// No other metacharacters; dots in metric names match literally.
bool glob_match(const std::string& pattern, const std::string& name);

// One metric's delta over one sampling window.
struct MetricWindow {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  // Counter: samples recorded in the window and their per-second rate.
  uint64_t delta = 0;
  double rate = 0;
  // Gauge: the reading at the end of the window.
  int64_t value = 0;
  // Histogram: the window's bucket deltas; percentile() on this snapshot is
  // the *windowed* p50/p95/p99 (bucket-delta interpolation, the same math as
  // the lifetime percentiles but over only this window's samples).
  obs::HistogramSnapshot hist;
};

// One sampling tick: every metric's window, stamped with the tick time and
// the width of the window that produced it.
struct Sample {
  int64_t t_ns = 0;       // Tick timestamp (end of the window).
  int64_t window_ns = 0;  // Width: t_ns minus the previous tick's t_ns.
  std::map<std::string, MetricWindow> metrics;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(size_t capacity = 512);

  // Appends one windowed sample: the delta between `snap` and the previously
  // ingested snapshot. The first call establishes the baseline and records a
  // boot-to-now window. Thread-safe against queries.
  void ingest(int64_t now_ns, const obs::MetricsSnapshot& snap);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Ticks ingested since construction (>= size(); the excess was evicted).
  uint64_t total_ingested() const;

  // The most recent `last_n` samples (0 = all retained), oldest first, with
  // each sample's metric map filtered by `metric_glob`.
  std::vector<Sample> query(const std::string& metric_glob, size_t last_n = 0) const;

  // Merges the windows of `metric` over samples whose tick fell in
  // (now_ns - window_ns, now_ns]: counters sum deltas and re-derive the rate
  // over the covered time, gauges keep the newest reading, histograms merge
  // bucket deltas (so percentile() spans the whole window). nullopt when no
  // retained sample covers the metric in that window.
  std::optional<MetricWindow> aggregate(const std::string& metric, int64_t window_ns,
                                        int64_t now_ns) const;

  // {"capacity":C,"total":T,"samples":[{"t_ns":..,"window_ns":..,
  //  "metrics":{"name":{"type":"counter","delta":D,"rate":R} |
  //             {"type":"gauge","value":V} |
  //             {"type":"histogram","count":N,"mean":..,"p50":..,"p95":..,
  //              "p99":..,"max":..}}},...]} — single line (one wire frame).
  std::string to_json(const std::string& metric_glob, size_t last_n = 0) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Sample> ring_;
  uint64_t total_ = 0;
  bool has_prev_ = false;
  int64_t prev_t_ns_ = 0;
  obs::MetricsSnapshot prev_;
};

}  // namespace tagmatch::telemetry

#endif  // TAGMATCH_TELEMETRY_TIMESERIES_H_

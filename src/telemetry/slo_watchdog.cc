#include "src/telemetry/slo_watchdog.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tagmatch::telemetry {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// "250ms" or "10s" -> nanoseconds; fail-closed on anything else.
bool parse_duration_ns(const std::string& s, int64_t* out) {
  size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') ++digits;
  if (digits == 0) return false;
  const std::string unit = s.substr(digits);
  int64_t scale = 0;
  if (unit == "ms") {
    scale = 1'000'000;
  } else if (unit == "s") {
    scale = 1'000'000'000;
  } else {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || v < 0 || end != s.c_str() + digits) return false;
  *out = static_cast<int64_t>(v) * scale;
  return *out > 0;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// Renders a nanosecond duration with the smallest exact unit (s when whole
// seconds, else ms) so to_spec() round-trips through parse_duration_ns.
std::string duration_spec(int64_t ns) {
  if (ns % 1'000'000'000 == 0) return std::to_string(ns / 1'000'000'000) + "s";
  return std::to_string(ns / 1'000'000) + "ms";
}

std::string format_double_spec(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string SloRule::to_spec() const {
  std::ostringstream out;
  out << metric << ":threshold=" << format_double_spec(threshold)
      << ",fast=" << duration_spec(fast_ns) << ",slow=" << duration_spec(slow_ns)
      << ",p=" << format_double_spec(pct) << ",budget=" << format_double_spec(budget)
      << ",holdoff=" << duration_spec(holdoff_ns);
  if (name != metric) out << ",name=" << name;
  return out.str();
}

std::optional<std::vector<SloRule>> parse_slo_rules(const std::string& spec, std::string* error) {
  std::vector<SloRule> rules;
  std::stringstream rules_in(spec);
  std::string rule_spec;
  while (std::getline(rules_in, rule_spec, ';')) {
    if (rule_spec.empty()) continue;
    const size_t colon = rule_spec.find(':');
    if (colon == std::string::npos || colon == 0) {
      set_error(error, "rule missing 'metric:' prefix: " + rule_spec);
      return std::nullopt;
    }
    SloRule rule;
    rule.metric = rule_spec.substr(0, colon);
    rule.name = rule.metric;
    bool have_threshold = false;
    std::stringstream kvs_in(rule_spec.substr(colon + 1));
    std::string kv;
    while (std::getline(kvs_in, kv, ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size()) {
        set_error(error, "malformed key=value: " + kv);
        return std::nullopt;
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      bool ok = true;
      if (key == "threshold") {
        ok = parse_double(value, &rule.threshold);
        have_threshold = ok;
      } else if (key == "budget") {
        ok = parse_double(value, &rule.budget) && rule.budget > 0;
      } else if (key == "p") {
        ok = parse_double(value, &rule.pct) && rule.pct >= 0 && rule.pct <= 100;
      } else if (key == "fast") {
        ok = parse_duration_ns(value, &rule.fast_ns);
      } else if (key == "slow") {
        ok = parse_duration_ns(value, &rule.slow_ns);
      } else if (key == "holdoff") {
        ok = parse_duration_ns(value, &rule.holdoff_ns);
      } else if (key == "name") {
        rule.name = value;
      } else {
        set_error(error, "unknown key '" + key + "' in rule for " + rule.metric);
        return std::nullopt;
      }
      if (!ok) {
        set_error(error, "bad value for '" + key + "': " + value);
        return std::nullopt;
      }
    }
    if (!have_threshold) {
      set_error(error, "rule for " + rule.metric + " missing threshold=");
      return std::nullopt;
    }
    if (rule.fast_ns > rule.slow_ns) {
      set_error(error, "rule for " + rule.metric + " has fast window wider than slow");
      return std::nullopt;
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

SloWatchdog::SloWatchdog(std::vector<SloRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

namespace {

// The rule's scalar reading of one aggregated window; nullopt when the ring
// held no data for the metric in that window.
std::optional<double> window_value(const TimeSeriesStore& store, const SloRule& rule,
                                   int64_t window_ns, int64_t now_ns) {
  std::optional<MetricWindow> agg = store.aggregate(rule.metric, window_ns, now_ns);
  if (!agg.has_value()) return std::nullopt;
  switch (agg->kind) {
    case MetricWindow::Kind::kCounter:
      return agg->rate;
    case MetricWindow::Kind::kGauge:
      return static_cast<double>(agg->value);
    case MetricWindow::Kind::kHistogram:
      if (agg->hist.count == 0) return std::nullopt;
      return agg->hist.percentile(rule.pct);
  }
  return std::nullopt;
}

}  // namespace

std::vector<size_t> SloWatchdog::evaluate(int64_t now_ns, const TimeSeriesStore& store) {
  std::vector<size_t> newly_tripped;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    const std::optional<double> fast = window_value(store, rule, rule.fast_ns, now_ns);
    const std::optional<double> slow = window_value(store, rule, rule.slow_ns, now_ns);
    state.fast_value = fast.value_or(0);
    state.slow_value = slow.value_or(0);
    const bool burning = fast.has_value() && slow.has_value() &&
                         *fast > rule.threshold * rule.budget && *slow > rule.threshold;
    if (!state.tripped) {
      if (burning) {
        state.tripped = true;
        state.tripped_at_ns = now_ns;
        ++state.trips;
        newly_tripped.push_back(i);
      }
    } else if (now_ns - state.tripped_at_ns >= rule.holdoff_ns) {
      // Holdoff over: re-arm only once the fast window has recovered, so a
      // still-burning rule stays tripped (boost up, no dump storm).
      const bool fast_recovered =
          !fast.has_value() || *fast <= rule.threshold;
      if (fast_recovered && !burning) state.tripped = false;
    }
  }
  return newly_tripped;
}

bool SloWatchdog::any_tripped() const {
  for (const RuleState& s : states_) {
    if (s.tripped) return true;
  }
  return false;
}

}  // namespace tagmatch::telemetry

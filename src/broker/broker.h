// TagBroker — a tag-based publish/subscribe messaging service built on the
// TagMatch engine: the integration the paper's conclusion names as future
// work ("the integration of TagMatch within a full fledged data processing
// or messaging system").
//
// Model (§1-§2 of the paper): subscribers register *subscriptions* — tag
// sets describing their interests; a published message carries a tag set and
// a payload, and is delivered to every subscriber owning at least one
// subscription s with s ⊆ message.tags (match-unique semantics per
// subscriber: overlapping subscriptions yield one delivery).
//
// Engineering around the engine's staging semantics:
//  * new subscriptions take effect immediately (the engine runs with
//    match_staged_adds, scanning the temporary index);
//  * a background thread consolidates periodically, folding churn into the
//    partitioned index so the temporary index stays small;
//  * unsubscriptions take effect at the next consolidation (the engine's
//    remove semantics); the broker additionally filters them out at
//    delivery time so they appear immediate to clients;
//  * per-subscriber delivery queues are bounded; on overflow the broker
//    either drops the message for that subscriber (counted) or blocks the
//    publisher, per configuration.
#ifndef TAGMATCH_BROKER_BROKER_H_
#define TAGMATCH_BROKER_BROKER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/config.h"
#include "src/core/matcher.h"
#include "src/obs/metrics.h"

namespace tagmatch::broker {

using SubscriberId = uint32_t;
using SubscriptionId = uint32_t;

struct Message {
  std::vector<std::string> tags;
  std::string payload;
};

struct BrokerConfig {
  TagMatchConfig engine;  // match_staged_adds is forced on.
  // Number of engine shards behind the broker. 1 = a single TagMatch;
  // >1 = a ShardedTagMatch (src/shard/) with this many independent engines —
  // consolidations then rebuild shards concurrently and only pause
  // publishing once, for the scatter-gather flush.
  unsigned engine_shards = 1;
  // Per-query gather timeout of the sharded engine (engine_shards > 1 only):
  // publishes whose slowest shard misses the budget deliver to the
  // subscribers found so far (degraded delivery, counted by the engine).
  // Zero waits for every shard.
  std::chrono::milliseconds shard_query_timeout{0};
  // Bound on each subscriber's delivery queue.
  size_t max_queue_per_subscriber = 4096;
  // Period of the background consolidation folding subscription churn into
  // the partitioned index. Zero disables it (consolidation then happens
  // only via flush()).
  std::chrono::milliseconds consolidate_interval{250};
  // Staged-subscription count that triggers an early consolidation.
  size_t consolidate_after_churn = 10'000;
  // True: drop messages for subscribers with full queues (counted in
  // stats().dropped); false: block the delivery path until space frees up.
  bool drop_on_overflow = true;

  BrokerConfig() {
    engine.match_staged_adds = true;
    engine.batch_timeout = std::chrono::milliseconds(20);
  }
};

class Broker {
 public:
  explicit Broker(BrokerConfig config = BrokerConfig{});
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // --- Subscriber lifecycle ---
  SubscriberId connect();
  // Drops the subscriber's subscriptions and queue; in-flight deliveries to
  // it are discarded.
  void disconnect(SubscriberId subscriber);

  // --- Subscriptions ---
  // Registers an interest; effective for messages published after this call
  // returns. Returns an id for unsubscribe().
  SubscriptionId subscribe(SubscriberId subscriber, std::vector<std::string> tags);
  // Effective immediately at delivery; the index entry is garbage-collected
  // at the next consolidation.
  void unsubscribe(SubscriberId subscriber, SubscriptionId subscription);

  // --- Publishing ---
  // Asynchronous: routes through the TagMatch pipeline; delivery happens on
  // pipeline threads.
  void publish(Message message);

  // --- Delivery ---
  // Non-blocking pop from the subscriber's queue.
  std::optional<Message> poll(SubscriberId subscriber);
  // Blocking pop with timeout; nullopt on timeout or disconnect.
  std::optional<Message> poll_wait(SubscriberId subscriber, std::chrono::milliseconds timeout);
  size_t pending(SubscriberId subscriber) const;

  // Completes all in-flight publishes and folds pending churn into the
  // index.
  void flush();

  // --- Durable subscriptions ---
  // Saves the consolidated engine index plus the subscription table to
  // `path_prefix` + {".idx", ".subs"}. load() restores both: subscriber ids
  // and subscription ids are preserved, delivery queues start empty
  // (clients reconnect logically by reusing their ids). Returns false on
  // I/O or format errors.
  bool save(const std::string& path_prefix);
  bool load(const std::string& path_prefix);

  struct Stats {
    uint64_t published = 0;
    uint64_t deliveries = 0;
    uint64_t dropped = 0;
    uint64_t consolidations = 0;
    uint64_t subscribers = 0;
    uint64_t subscriptions = 0;  // Live (not unsubscribed).
  };
  Stats stats() const;

  // Merge of the broker's own registry (broker.* counters/gauges, the
  // publish-to-delivery latency histogram) with the engine's full pipeline
  // registry — the payload of the STATS wire verb (src/net).
  obs::MetricsSnapshot metrics_snapshot() const;
  // The engine's pipeline stage spans — the payload of the TRACE wire verb.
  std::vector<obs::Span> trace_snapshot() const;

 private:
  struct Subscriber {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<const Message>> queue;
    bool connected = true;
  };

  struct Subscription {
    SubscriberId subscriber;
    std::vector<std::string> tags;
    bool active = true;   // False after unsubscribe (delivery-time filter).
    bool removed = false; // True once the engine removal has been staged.
  };

  void deliver(const std::shared_ptr<const Message>& message,
               const std::vector<Matcher::Key>& subscription_keys);
  void consolidate_loop();
  void run_consolidation();

  BrokerConfig config_;
  // A TagMatch (engine_shards == 1) or a ShardedTagMatch behind the Matcher
  // interface; the broker is indifferent to which.
  std::unique_ptr<Matcher> engine_;
  // TagMatch forbids matching concurrently with consolidate(); publishers
  // hold this shared, the consolidator exclusive (it flushes first, so no
  // query is in flight while the index is rebuilt).
  std::shared_mutex publish_mu_;

  mutable std::mutex registry_mu_;
  std::unordered_map<SubscriberId, std::shared_ptr<Subscriber>> subscribers_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  SubscriberId next_subscriber_ = 1;
  SubscriptionId next_subscription_ = 1;
  size_t staged_churn_ = 0;

  std::thread consolidator_;
  std::mutex consolidate_mu_;
  std::condition_variable consolidate_cv_;
  bool stopping_ = false;

  // Broker-level observability (src/obs). The engine keeps its own registry
  // (reached through Matcher::metrics_snapshot); this one holds the broker's
  // messaging counters and the publish->delivery latency histogram. Mutable:
  // metrics_snapshot() is const but refreshes the population gauges.
  mutable obs::Registry metrics_;
  obs::Counter* published_ = nullptr;
  obs::Counter* deliveries_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* consolidations_ = nullptr;
  obs::Histogram* publish_latency_ = nullptr;
};

}  // namespace tagmatch::broker

#endif  // TAGMATCH_BROKER_BROKER_H_

// TagBroker — a tag-based publish/subscribe messaging service built on the
// TagMatch engine: the integration the paper's conclusion names as future
// work ("the integration of TagMatch within a full fledged data processing
// or messaging system").
//
// Model (§1-§2 of the paper): subscribers register *subscriptions* — tag
// sets describing their interests; a published message carries a tag set and
// a payload, and is delivered to every subscriber owning at least one
// subscription s with s ⊆ message.tags (match-unique semantics per
// subscriber: overlapping subscriptions yield one delivery).
//
// Engineering around the engine's staging semantics:
//  * new subscriptions take effect immediately (the engine runs with
//    match_staged_adds, scanning the temporary index);
//  * a background thread consolidates periodically, folding churn into the
//    partitioned index so the temporary index stays small;
//  * unsubscriptions take effect at the next consolidation (the engine's
//    remove semantics); the broker additionally filters them out at
//    delivery time so they appear immediate to clients;
//  * per-subscriber delivery queues are bounded; on overflow the broker
//    either drops the message for that subscriber (counted) or blocks the
//    publisher, per configuration.
//
// Publish-latency SLO and load shedding (opt-in via publish_slo): every
// accepted publish carries an absolute deadline = accept time + publish_slo,
// checked at each pipeline hand-off. Three escalating degradation modes
// (each includes the previous):
//  * kSkipBlocked — a delivery that would block on a full subscriber queue
//    waits only until the deadline, then skips that subscriber (counted in
//    dropped and broker.slo.degraded);
//  * kDeliverPartial — sharded engines additionally shed slow shards at the
//    deadline and deliver to the subscribers found so far
//    (MatchResult::partial; counted in broker.slo.partial);
//  * kRejectAdmission — additionally, publishes are rejected at admission
//    (PublishResult::kRejected, counted in broker.slo.rejected) while the
//    recent completion window shows >5% of publishes over the SLO (i.e. the
//    observed p95 of broker.publish_latency_ns breaches the SLO).
// Completions are classified exactly once: broker.slo.met when the full
// delivery finished in budget with nothing shed, broker.slo.degraded
// otherwise; broker.slo.margin_ns records the budget left at completion.
// With publish_slo unset the broker behaves exactly as before.
#ifndef TAGMATCH_BROKER_BROKER_H_
#define TAGMATCH_BROKER_BROKER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/matcher.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tagmatch::shard {
class ShardedTagMatch;
}  // namespace tagmatch::shard

namespace tagmatch::broker {

using SubscriberId = uint32_t;
using SubscriptionId = uint32_t;

struct Message {
  std::vector<std::string> tags;
  std::string payload;
  // Trace id of the publish that produced this message (0 = untraced).
  // Stamped by publish() when tracing is on or the publisher supplied a
  // context, and carried to every delivery so subscribers can join the
  // publisher's trace (the wire layer echoes it as a traceparent).
  uint64_t trace_id = 0;
};

struct BrokerConfig {
  TagMatchConfig engine;  // match_staged_adds is forced on.
  // Number of engine shards behind the broker. 1 = a single TagMatch;
  // >1 = a ShardedTagMatch (src/shard/) with this many independent engines —
  // consolidations then rebuild shards concurrently and only pause
  // publishing once, for the scatter-gather flush.
  unsigned engine_shards = 1;
  // Replicas per engine shard (src/shard/replica_set.h). >1 turns on
  // best-effort replicated writes with anti-entropy repair at consolidate
  // and hard failover around killed/quarantined replicas; the broker then
  // always runs the sharded engine even with engine_shards == 1.
  unsigned engine_replicas = 1;
  // Hedge a shard read to a backup replica when the primary has not answered
  // within this budget (engine_replicas > 1 only; zero disables hedging).
  std::chrono::milliseconds hedge_delay{0};
  // Per-query gather timeout of the sharded engine (engine_shards > 1 only):
  // publishes whose slowest shard misses the budget deliver to the
  // subscribers found so far (degraded delivery, counted by the engine).
  // Zero waits for every shard.
  std::chrono::milliseconds shard_query_timeout{0};
  // Bound on each subscriber's delivery queue.
  size_t max_queue_per_subscriber = 4096;
  // Period of the background consolidation folding subscription churn into
  // the partitioned index. Zero disables it (consolidation then happens
  // only via flush()).
  std::chrono::milliseconds consolidate_interval{250};
  // Staged-subscription count that triggers an early consolidation.
  size_t consolidate_after_churn = 10'000;
  // True: drop messages for subscribers with full queues (counted in
  // stats().dropped); false: block the delivery path until space frees up.
  bool drop_on_overflow = true;

  // End-to-end publish-latency SLO (accept -> last subscriber queue write).
  // Zero disables SLO enforcement entirely: no deadlines are attached and
  // the broker behaves exactly as without this feature. When set, every
  // accepted publish gets an absolute deadline and slo_mode picks how hard
  // the broker degrades to hold it (see the header comment).
  std::chrono::milliseconds publish_slo{0};
  // Escalating degradation modes; each includes the previous.
  enum class SloMode {
    kSkipBlocked = 0,      // Never block past the deadline on a full queue.
    kDeliverPartial = 1,   // + shed slow shards, deliver partial matches.
    kRejectAdmission = 2,  // + reject publishes while p95 breaches the SLO.
  };
  SloMode slo_mode = SloMode::kRejectAdmission;
  // Admission gate (kRejectAdmission): sliding window over recent publish
  // completions; admission closes while at least slo_breach_min_samples
  // completions sit in the window and more than 5% of them finished over
  // the SLO (the observed p95 is then above the SLO).
  std::chrono::milliseconds slo_breach_window{1000};
  size_t slo_breach_min_samples = 32;

  // --- Causal tracing (opt-in) ---
  // Stamps every accepted publish with a TraceContext that rides the same
  // hand-offs as the deadline (match_async -> batch -> shard fan-out -> GPU
  // stream ops), and tail-samples the finished traces into a bounded flight
  // recorder: a trace is retained iff it was SLO-degraded, slower than the
  // rolling p95 of recent publishes, or picked by 1-in-N head sampling.
  // Retained traces are served by trace_records() (the TRACEX wire verb and
  // the server's --trace-out file). Off by default: the publish path then
  // carries no context and records anonymous spans exactly as before.
  bool tracing = false;
  // 1-in-N deterministic head sampling of publishes (0 = tail-only: keep
  // nothing but the slow and the degraded).
  uint32_t trace_head_sample_every = 0;
  // Bound on retained traces; oldest evicted first.
  size_t trace_capacity = 16;

  BrokerConfig() {
    engine.match_staged_adds = true;
    engine.batch_timeout = std::chrono::milliseconds(20);
  }
};

class Broker {
 public:
  explicit Broker(BrokerConfig config = BrokerConfig{});
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // --- Subscriber lifecycle ---
  SubscriberId connect();
  // Drops the subscriber's subscriptions and queue; in-flight deliveries to
  // it are discarded.
  void disconnect(SubscriberId subscriber);

  // --- Subscriptions ---
  // Registers an interest; effective for messages published after this call
  // returns. Returns an id for unsubscribe().
  SubscriptionId subscribe(SubscriberId subscriber, std::vector<std::string> tags);
  // Effective immediately at delivery; the index entry is garbage-collected
  // at the next consolidation.
  void unsubscribe(SubscriberId subscriber, SubscriptionId subscription);

  // --- Publishing ---
  // Asynchronous: routes through the TagMatch pipeline; delivery happens on
  // pipeline threads. kRejected is returned only under an active SLO in
  // kRejectAdmission mode while the admission gate is closed; a rejected
  // message is not enqueued anywhere (counted in broker.slo.rejected, not
  // broker.published).
  enum class PublishResult { kAccepted, kRejected };
  PublishResult publish(Message message);
  // Publish under a caller-supplied trace context (wire-layer trace
  // propagation: the W3C traceparent on PUB lands here). A valid context's
  // trace id is adopted as the publish's trace id — spans and the retained
  // TraceRecord then carry the external id — and a sampled flag forces
  // retention-by-head-sample for this publish. With tracing off the context
  // still stamps Message::trace_id so deliveries echo it, but no spans are
  // recorded. An invalid (default) context behaves exactly like publish().
  PublishResult publish(Message message, const obs::TraceContext& client_ctx);

  // --- Delivery ---
  // Non-blocking pop from the subscriber's queue.
  std::optional<Message> poll(SubscriberId subscriber);
  // Blocking pop with timeout; nullopt on timeout or disconnect.
  std::optional<Message> poll_wait(SubscriberId subscriber, std::chrono::milliseconds timeout);
  size_t pending(SubscriberId subscriber) const;

  // Completes all in-flight publishes and folds pending churn into the
  // index.
  void flush();

  // --- Durable subscriptions ---
  // Saves the consolidated engine index plus the subscription table to
  // `path_prefix` + {".idx", ".subs"}. load() restores both: subscriber ids
  // and subscription ids are preserved, delivery queues start empty
  // (clients reconnect logically by reusing their ids). Returns false on
  // I/O or format errors.
  bool save(const std::string& path_prefix);
  bool load(const std::string& path_prefix);

  struct Stats {
    uint64_t published = 0;
    uint64_t deliveries = 0;
    uint64_t dropped = 0;
    uint64_t consolidations = 0;
    uint64_t subscribers = 0;
    uint64_t subscriptions = 0;  // Live (not unsubscribed).
    // SLO accounting (all zero while publish_slo is unset). met + degraded
    // equals completed SLO-tracked publishes; partial is the subset of
    // degraded whose match results were shed; rejected publishes never enter
    // published.
    uint64_t slo_met = 0;
    uint64_t slo_degraded = 0;
    uint64_t slo_partial = 0;
    uint64_t slo_rejected = 0;
  };
  Stats stats() const;

  // Merge of the broker's own registry (broker.* counters/gauges, the
  // publish-to-delivery latency histogram) with the engine's full pipeline
  // registry — the payload of the STATS wire verb (src/net).
  obs::MetricsSnapshot metrics_snapshot() const;
  // The engine's pipeline stage spans — the payload of the TRACE wire verb.
  std::vector<obs::Span> trace_snapshot() const;
  // Spans lost to ring overwrite, summed over the engine's tracers.
  uint64_t trace_dropped() const;
  // Traces retained by the flight recorder (empty unless config.tracing) —
  // the payload of the TRACEX wire verb and the --trace-out server dump.
  std::vector<obs::TraceRecord> trace_records() const;
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }

  // SLO-watchdog hook (src/telemetry): while on, every publish head-samples
  // into the flight recorder regardless of trace_head_sample_every, so a
  // tripped burn-rate rule captures full traces through its holdoff window.
  void set_trace_sampling_boost(bool on) { recorder_.set_force_head_sampling(on); }

 private:
  struct Subscriber {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<const Message>> queue;
    bool connected = true;
  };

  struct Subscription {
    SubscriberId subscriber;
    std::vector<std::string> tags;
    bool active = true;   // False after unsubscribe (delivery-time filter).
    bool removed = false; // True once the engine removal has been staged.
  };

  // Delivers to the resolved subscribers; with a nonzero deadline a delivery
  // that would block on a full queue waits only until the deadline. Returns
  // the number of subscribers skipped at the deadline (also counted in
  // dropped_).
  uint64_t deliver(const std::shared_ptr<const Message>& message,
                   const std::vector<Matcher::Key>& subscription_keys, int64_t deadline_ns);
  // Completion accounting for one SLO-tracked publish: met/degraded/partial
  // counters, the margin histogram, and (kRejectAdmission) the breach-window
  // sample. deadline_ns == 0 records latency only. A valid `ctx` additionally
  // runs the flight recorder's retention decision and, on retain, assembles
  // the trace from the engine's span ring (every span of this publish has
  // landed by now — stages record before their completion callbacks run).
  void finish_publish(int64_t publish_ns, int64_t deadline_ns, bool partial, uint64_t skipped,
                      const obs::TraceContext& ctx = {}, uint64_t root_span_id = 0);
  // True while the admission gate is closed (see slo_breach_window).
  bool admission_breached(int64_t now);
  void consolidate_loop();
  void run_consolidation();

  BrokerConfig config_;
  // A TagMatch (engine_shards == 1) or a ShardedTagMatch behind the Matcher
  // interface; the broker is indifferent to which.
  std::unique_ptr<Matcher> engine_;
  // Non-owning view of engine_ when it is sharded; the deliver-partial SLO
  // mode needs the partial-result surface the Matcher interface cannot
  // express (match_result_async).
  shard::ShardedTagMatch* sharded_ = nullptr;
  // Publishers, staging, and the consolidator all hold this shared — the
  // engine supports matching concurrently with consolidate() (epoch-published
  // index snapshots). Exclusive is reserved for save()/load(), which swap
  // whole-engine state no snapshot protects.
  std::shared_mutex publish_mu_;

  mutable std::mutex registry_mu_;
  std::unordered_map<SubscriberId, std::shared_ptr<Subscriber>> subscribers_;
  std::unordered_map<SubscriptionId, Subscription> subscriptions_;
  SubscriberId next_subscriber_ = 1;
  SubscriptionId next_subscription_ = 1;
  size_t staged_churn_ = 0;

  std::thread consolidator_;
  std::mutex consolidate_mu_;
  std::condition_variable consolidate_cv_;
  bool stopping_ = false;

  // Broker-level observability (src/obs). The engine keeps its own registry
  // (reached through Matcher::metrics_snapshot); this one holds the broker's
  // messaging counters and the publish->delivery latency histogram. Mutable:
  // metrics_snapshot() is const but refreshes the population gauges.
  mutable obs::Registry metrics_;
  obs::Counter* published_ = nullptr;
  obs::Counter* deliveries_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* consolidations_ = nullptr;
  obs::Histogram* publish_latency_ = nullptr;
  // SLO outcome counters (header comment); margin = budget left at
  // completion, clamped at zero.
  obs::Counter* slo_met_ = nullptr;
  obs::Counter* slo_degraded_ = nullptr;
  obs::Counter* slo_partial_ = nullptr;
  obs::Counter* slo_rejected_ = nullptr;
  obs::Histogram* slo_margin_ = nullptr;

  // Tail-sampled flight recorder (config.tracing); see BrokerConfig.
  obs::FlightRecorder recorder_;
  obs::Counter* traces_retained_ = nullptr;

  // Admission breach window (kRejectAdmission): recent completions as
  // (completion time, finished over SLO) samples.
  std::mutex slo_window_mu_;
  std::deque<std::pair<int64_t, bool>> slo_window_;
  size_t slo_window_breached_ = 0;
};

}  // namespace tagmatch::broker

#endif  // TAGMATCH_BROKER_BROKER_H_

#include "src/broker/broker.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/shard/sharded_tagmatch.h"

namespace tagmatch::broker {

Broker::Broker(BrokerConfig config)
    : config_(std::move(config)),
      recorder_(obs::FlightRecorder::Config{config_.trace_capacity,
                                            config_.trace_head_sample_every}) {
  config_.engine.match_staged_adds = true;  // Immediate subscriptions rely on it.
  published_ = metrics_.counter("broker.published");
  traces_retained_ = metrics_.counter("broker.traces_retained");
  deliveries_ = metrics_.counter("broker.deliveries");
  dropped_ = metrics_.counter("broker.dropped");
  consolidations_ = metrics_.counter("broker.consolidations");
  publish_latency_ = metrics_.histogram("broker.publish_latency_ns");
  slo_met_ = metrics_.counter("broker.slo.met");
  slo_degraded_ = metrics_.counter("broker.slo.degraded");
  slo_partial_ = metrics_.counter("broker.slo.partial");
  slo_rejected_ = metrics_.counter("broker.slo.rejected");
  slo_margin_ = metrics_.histogram("broker.slo.margin_ns");
  if (config_.engine_shards > 1 || config_.engine_replicas > 1) {
    shard::ShardedConfig sharded;
    sharded.num_shards = std::max(1u, config_.engine_shards);
    sharded.num_replicas = config_.engine_replicas;
    sharded.hedge_delay = config_.hedge_delay;
    sharded.shard = config_.engine;
    sharded.query_timeout = config_.shard_query_timeout;
    auto sharded_engine = std::make_unique<shard::ShardedTagMatch>(sharded);
    sharded_ = sharded_engine.get();
    engine_ = std::move(sharded_engine);
  } else {
    engine_ = std::make_unique<TagMatch>(config_.engine);
  }
  if (config_.consolidate_interval.count() > 0) {
    consolidator_ = std::thread([this] { consolidate_loop(); });
  }
}

Broker::~Broker() {
  // Stop the background consolidator before the final flush so the two
  // never touch the engine concurrently.
  {
    std::lock_guard lock(consolidate_mu_);
    stopping_ = true;
  }
  consolidate_cv_.notify_all();
  if (consolidator_.joinable()) {
    consolidator_.join();
  }
  engine_->flush();
  // Wake any blocked consumers.
  std::lock_guard lock(registry_mu_);
  for (auto& [id, sub] : subscribers_) {
    std::lock_guard sub_lock(sub->mu);
    sub->connected = false;
    sub->cv.notify_all();
  }
}

SubscriberId Broker::connect() {
  std::lock_guard lock(registry_mu_);
  SubscriberId id = next_subscriber_++;
  subscribers_.emplace(id, std::make_shared<Subscriber>());
  return id;
}

void Broker::disconnect(SubscriberId subscriber) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard lock(registry_mu_);
    auto it = subscribers_.find(subscriber);
    if (it == subscribers_.end()) {
      return;
    }
    sub = it->second;
    subscribers_.erase(it);
    // Deactivate the subscriber's subscriptions; the consolidator stages
    // their removal from the engine.
    for (auto& [sid, subscription] : subscriptions_) {
      if (subscription.subscriber == subscriber) {
        subscription.active = false;
      }
    }
  }
  std::lock_guard sub_lock(sub->mu);
  sub->connected = false;
  sub->queue.clear();
  sub->cv.notify_all();
}

SubscriptionId Broker::subscribe(SubscriberId subscriber, std::vector<std::string> tags) {
  SubscriptionId id;
  bool trigger_consolidation;
  {
    std::lock_guard lock(registry_mu_);
    TAGMATCH_CHECK(subscribers_.count(subscriber) == 1);
    id = next_subscription_++;
    subscriptions_.emplace(id, Subscription{subscriber, tags, true, false});
    // Capture the trigger decision under the lock; staged_churn_ is
    // registry_mu_ state and the consolidator resets it concurrently.
    trigger_consolidation = ++staged_churn_ >= config_.consolidate_after_churn;
  }
  {
    // The subscription id is the engine key; delivery maps it back to the
    // subscriber. add_set needs the shared gate only against load(), which
    // replaces whole-engine state under the exclusive gate; concurrent
    // consolidation is fine (epoch-published snapshots).
    std::shared_lock gate(publish_mu_);
    engine_->add_set(std::span<const std::string>(tags), id);
  }
  if (trigger_consolidation) {
    consolidate_cv_.notify_one();
  }
  return id;
}

void Broker::unsubscribe(SubscriberId subscriber, SubscriptionId subscription) {
  std::lock_guard lock(registry_mu_);
  auto it = subscriptions_.find(subscription);
  if (it == subscriptions_.end() || it->second.subscriber != subscriber) {
    return;
  }
  it->second.active = false;  // Delivery-time filter; index GC at consolidation.
}

Broker::PublishResult Broker::publish(Message message) {
  return publish(std::move(message), obs::TraceContext{});
}

Broker::PublishResult Broker::publish(Message message, const obs::TraceContext& client_ctx) {
  const int64_t publish_ns = now_ns();
  const bool slo_on = config_.publish_slo.count() > 0;
  const int64_t deadline_ns =
      slo_on ? publish_ns +
                   std::chrono::duration_cast<std::chrono::nanoseconds>(config_.publish_slo).count()
             : 0;
  using SloMode = BrokerConfig::SloMode;
  if (slo_on && config_.slo_mode == SloMode::kRejectAdmission && admission_breached(publish_ns)) {
    slo_rejected_->inc();
    return PublishResult::kRejected;
  }
  published_->inc();
  // Trace root: the publish span covers accept -> completion. Its id is
  // minted here so every downstream span can parent on it; the span itself
  // exists only in the retained TraceRecord (finish_publish), not the ring.
  obs::TraceContext trace_ctx;
  uint64_t root_span_id = 0;
  if (config_.tracing) {
    root_span_id = obs::new_span_id();
    // A client-supplied context joins the external trace: its id replaces a
    // freshly minted one and its sampled flag forces retention (the recorder
    // still counts the root so 1-in-N head sampling stays deterministic).
    const uint64_t trace_id =
        client_ctx.valid() ? client_ctx.trace_id : obs::new_trace_id();
    const bool sampled = recorder_.sample_head() || (client_ctx.valid() && client_ctx.sampled);
    trace_ctx = obs::TraceContext{trace_id, root_span_id, sampled};
  }
  // Deliveries echo the trace id even when server-side tracing is off — the
  // propagation contract is the publisher's, not ours.
  message.trace_id = config_.tracing ? trace_ctx.trace_id : client_ctx.trace_id;
  auto shared_message = std::make_shared<const Message>(std::move(message));
  std::shared_lock gate(publish_mu_);
  const std::span<const std::string> tags(shared_message->tags);
  if (!slo_on) {
    // SLO off: the pre-existing path — no deadline attached, no outcome
    // classification (the context overload is a pass-through when tracing
    // is off).
    engine_->match_async(
        tags, Matcher::MatchKind::kMatchUnique, /*deadline_ns=*/0, trace_ctx,
        [this, shared_message, publish_ns, trace_ctx,
         root_span_id](std::vector<Matcher::Key> subscription_keys) {
          deliver(shared_message, subscription_keys, /*deadline_ns=*/0);
          // Publish-to-queue latency: accept to every subscriber queue
          // written (the full broker-side path; consumer poll time is not
          // included).
          finish_publish(publish_ns, /*deadline_ns=*/0, /*partial=*/false, /*skipped=*/0,
                         trace_ctx, root_span_id);
        });
  } else if (sharded_ != nullptr && config_.slo_mode >= SloMode::kDeliverPartial) {
    // Partial-capable path: the sharded engine sheds shards still
    // outstanding at the deadline and tells us it did.
    sharded_->match_result_async(
        tags, Matcher::MatchKind::kMatchUnique, deadline_ns, trace_ctx,
        [this, shared_message, publish_ns, deadline_ns, trace_ctx,
         root_span_id](shard::ShardedTagMatch::MatchResult result) {
          const uint64_t skipped = deliver(shared_message, result.keys, deadline_ns);
          finish_publish(publish_ns, deadline_ns, result.partial, skipped, trace_ctx,
                         root_span_id);
        });
  } else {
    // Keys-only path (single engine, or sharded under kSkipBlocked): the
    // deadline arms the engine's early batch close but results stay exact.
    engine_->match_async(
        tags, Matcher::MatchKind::kMatchUnique, deadline_ns, trace_ctx,
        [this, shared_message, publish_ns, deadline_ns, trace_ctx,
         root_span_id](std::vector<Matcher::Key> subscription_keys) {
          const uint64_t skipped = deliver(shared_message, subscription_keys, deadline_ns);
          finish_publish(publish_ns, deadline_ns, /*partial=*/false, skipped, trace_ctx,
                         root_span_id);
        });
  }
  return PublishResult::kAccepted;
}

void Broker::finish_publish(int64_t publish_ns, int64_t deadline_ns, bool partial,
                            uint64_t skipped, const obs::TraceContext& ctx,
                            uint64_t root_span_id) {
  const int64_t end_ns = now_ns();
  publish_latency_->record(static_cast<uint64_t>(std::max<int64_t>(0, end_ns - publish_ns)),
                           ctx.trace_id);
  if (ctx.valid()) {
    const bool degraded =
        deadline_ns != 0 && (partial || skipped > 0 || end_ns > deadline_ns);
    const obs::FlightRecorder::Decision decision =
        recorder_.should_retain(end_ns - publish_ns, degraded, ctx.sampled);
    if (decision.retain) {
      obs::TraceRecord record;
      record.trace_id = ctx.trace_id;
      record.root_span_id = root_span_id;
      record.start_ns = publish_ns;
      record.end_ns = end_ns;
      record.degraded = degraded;
      record.head_sampled = ctx.sampled;
      record.slow = decision.slow;
      // Pull-based assembly: by completion time every stage of this publish
      // has recorded (stages record before invoking completion callbacks),
      // so one pass over the ring collects the whole tree.
      for (const obs::Span& span : engine_->trace_snapshot()) {
        if (span.trace_id == ctx.trace_id) {
          record.spans.push_back(span);
        }
      }
      recorder_.retain(std::move(record));
      traces_retained_->inc();
    }
  }
  if (deadline_ns == 0) {
    return;
  }
  const bool late = end_ns > deadline_ns;
  if (partial || skipped > 0 || late) {
    slo_degraded_->inc();
    if (partial) {
      slo_partial_->inc();
    }
  } else {
    slo_met_->inc();
  }
  slo_margin_->record(static_cast<uint64_t>(std::max<int64_t>(0, deadline_ns - end_ns)));
  if (config_.slo_mode == BrokerConfig::SloMode::kRejectAdmission) {
    const int64_t window_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(config_.slo_breach_window).count();
    std::lock_guard lock(slo_window_mu_);
    slo_window_.emplace_back(end_ns, late);
    slo_window_breached_ += late ? 1 : 0;
    while (!slo_window_.empty() && slo_window_.front().first < end_ns - window_ns) {
      slo_window_breached_ -= slo_window_.front().second ? 1 : 0;
      slo_window_.pop_front();
    }
  }
}

bool Broker::admission_breached(int64_t now) {
  const int64_t window_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.slo_breach_window).count();
  std::lock_guard lock(slo_window_mu_);
  while (!slo_window_.empty() && slo_window_.front().first < now - window_ns) {
    slo_window_breached_ -= slo_window_.front().second ? 1 : 0;
    slo_window_.pop_front();
  }
  // >5% of the window over the SLO <=> observed p95 above the SLO.
  return slo_window_.size() >= config_.slo_breach_min_samples &&
         slo_window_breached_ * 20 > slo_window_.size();
}

uint64_t Broker::deliver(const std::shared_ptr<const Message>& message,
                         const std::vector<Matcher::Key>& subscription_keys,
                         int64_t deadline_ns) {
  // Resolve subscriptions to connected subscribers, deduplicating so a
  // subscriber with several matching subscriptions gets one copy.
  std::vector<std::pair<SubscriberId, std::shared_ptr<Subscriber>>> targets;
  {
    std::lock_guard lock(registry_mu_);
    for (Matcher::Key key : subscription_keys) {
      auto it = subscriptions_.find(static_cast<SubscriptionId>(key));
      if (it == subscriptions_.end() || !it->second.active) {
        continue;
      }
      auto sub_it = subscribers_.find(it->second.subscriber);
      if (sub_it == subscribers_.end()) {
        continue;
      }
      targets.emplace_back(it->second.subscriber, sub_it->second);
    }
  }
  std::sort(targets.begin(), targets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  targets.erase(std::unique(targets.begin(), targets.end(),
                            [](const auto& a, const auto& b) { return a.first == b.first; }),
                targets.end());

  uint64_t skipped = 0;
  for (auto& [id, sub] : targets) {
    std::unique_lock lock(sub->mu);
    if (!sub->connected) {
      continue;
    }
    if (sub->queue.size() >= config_.max_queue_per_subscriber) {
      if (config_.drop_on_overflow) {
        dropped_->inc();
        continue;
      }
      auto space = [&] {
        return !sub->connected || sub->queue.size() < config_.max_queue_per_subscriber;
      };
      if (deadline_ns != 0) {
        // Skip-blocked degradation (every SLO mode): wait for queue space
        // only until the publish deadline, then shed this subscriber.
        const auto deadline = std::chrono::steady_clock::time_point(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::nanoseconds(deadline_ns)));
        if (!sub->cv.wait_until(lock, deadline, space)) {
          dropped_->inc();
          ++skipped;
          continue;
        }
      } else {
        sub->cv.wait(lock, space);
      }
      if (!sub->connected) {
        continue;
      }
    }
    sub->queue.push_back(message);
    deliveries_->inc();
    sub->cv.notify_one();
  }
  return skipped;
}

std::optional<Message> Broker::poll(SubscriberId subscriber) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard lock(registry_mu_);
    auto it = subscribers_.find(subscriber);
    if (it == subscribers_.end()) {
      return std::nullopt;
    }
    sub = it->second;
  }
  std::lock_guard sub_lock(sub->mu);
  if (sub->queue.empty()) {
    return std::nullopt;
  }
  Message msg = *sub->queue.front();
  sub->queue.pop_front();
  sub->cv.notify_one();
  return msg;
}

std::optional<Message> Broker::poll_wait(SubscriberId subscriber,
                                         std::chrono::milliseconds timeout) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard lock(registry_mu_);
    auto it = subscribers_.find(subscriber);
    if (it == subscribers_.end()) {
      return std::nullopt;
    }
    sub = it->second;
  }
  std::unique_lock sub_lock(sub->mu);
  sub->cv.wait_for(sub_lock, timeout, [&] { return !sub->queue.empty() || !sub->connected; });
  if (sub->queue.empty()) {
    return std::nullopt;
  }
  Message msg = *sub->queue.front();
  sub->queue.pop_front();
  sub->cv.notify_one();
  return msg;
}

size_t Broker::pending(SubscriberId subscriber) const {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard lock(registry_mu_);
    auto it = subscribers_.find(subscriber);
    if (it == subscribers_.end()) {
      return 0;
    }
    sub = it->second;
  }
  std::lock_guard sub_lock(sub->mu);
  return sub->queue.size();
}

void Broker::run_consolidation() {
  // Shared gate only: the engine publishes its rebuilt index via an epoch
  // snapshot, so publishes and matches flow concurrently with the rebuild.
  // The gate merely keeps a save/load (exclusive) from swapping the whole
  // engine out from under us.
  std::shared_lock gate(publish_mu_);
  // Stage removals of dead subscriptions, then fold everything into the
  // partitioned index.
  {
    std::lock_guard lock(registry_mu_);
    for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
      Subscription& s = it->second;
      if (!s.active && !s.removed) {
        engine_->remove_set(std::span<const std::string>(s.tags),
                            static_cast<Matcher::Key>(it->first));
        s.removed = true;
      }
      if (s.removed) {
        it = subscriptions_.erase(it);
      } else {
        ++it;
      }
    }
    staged_churn_ = 0;
  }
  engine_->consolidate();
  consolidations_->inc();
}

void Broker::consolidate_loop() {
  std::unique_lock lock(consolidate_mu_);
  while (!stopping_) {
    consolidate_cv_.wait_for(lock, config_.consolidate_interval, [&] { return stopping_; });
    if (stopping_) {
      return;
    }
    lock.unlock();
    run_consolidation();
    lock.lock();
  }
}

void Broker::flush() {
  run_consolidation();  // Folds staged churn into the published index.
  // Complete publishes that raced past the consolidation, under a shared
  // gate so a save/load cannot swap the engine mid-flush.
  std::shared_lock gate(publish_mu_);
  engine_->flush();
}

namespace {

constexpr uint32_t kSubsMagic = 0x53425754;  // "TWBS"
constexpr uint32_t kSubsVersion = 1;

void write_string(std::FILE* f, const std::string& s) {
  uint32_t n = static_cast<uint32_t>(s.size());
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(s.data(), 1, n, f);
}

bool read_string(std::FILE* f, std::string& s) {
  uint32_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1 || n > (1u << 20)) {
    return false;
  }
  s.resize(n);
  return n == 0 || std::fread(s.data(), 1, n, f) == n;
}

}  // namespace

bool Broker::save(const std::string& path_prefix) {
  flush();  // Consolidates, so the index file reflects every live subscription.
  std::unique_lock gate(publish_mu_);
  // On any failure below, remove whatever was partially written: a load()
  // must never see a .idx/.subs pair where one half is torn.
  if (!engine_->save_index(path_prefix + ".idx")) {
    std::remove((path_prefix + ".idx").c_str());
    return false;
  }
  std::FILE* f = std::fopen((path_prefix + ".subs").c_str(), "wb");
  if (f == nullptr) {
    std::remove((path_prefix + ".idx").c_str());
    return false;
  }
  std::lock_guard lock(registry_mu_);
  std::fwrite(&kSubsMagic, sizeof(kSubsMagic), 1, f);
  std::fwrite(&kSubsVersion, sizeof(kSubsVersion), 1, f);
  std::fwrite(&next_subscriber_, sizeof(next_subscriber_), 1, f);
  std::fwrite(&next_subscription_, sizeof(next_subscription_), 1, f);
  uint64_t count = 0;
  for (const auto& [id, sub] : subscriptions_) {
    count += sub.active ? 1 : 0;
  }
  std::fwrite(&count, sizeof(count), 1, f);
  for (const auto& [id, sub] : subscriptions_) {
    if (!sub.active) {
      continue;
    }
    std::fwrite(&id, sizeof(id), 1, f);
    std::fwrite(&sub.subscriber, sizeof(sub.subscriber), 1, f);
    uint32_t ntags = static_cast<uint32_t>(sub.tags.size());
    std::fwrite(&ntags, sizeof(ntags), 1, f);
    for (const auto& t : sub.tags) {
      write_string(f, t);
    }
  }
  // fwrite failures above (disk full, EIO) latch the stream error flag;
  // fflush alone can still return 0 when there is nothing left to flush.
  bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove((path_prefix + ".subs").c_str());
    std::remove((path_prefix + ".idx").c_str());
  }
  return ok;
}

bool Broker::load(const std::string& path_prefix) {
  std::unique_lock gate(publish_mu_);
  engine_->flush();
  std::FILE* f = std::fopen((path_prefix + ".subs").c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint32_t magic = 0, version = 0;
  SubscriberId next_subscriber = 0;
  SubscriptionId next_subscription = 0;
  uint64_t count = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&version, sizeof(version), 1, f) == 1 && magic == kSubsMagic &&
            version == kSubsVersion &&
            std::fread(&next_subscriber, sizeof(next_subscriber), 1, f) == 1 &&
            std::fread(&next_subscription, sizeof(next_subscription), 1, f) == 1 &&
            std::fread(&count, sizeof(count), 1, f) == 1;
  std::unordered_map<SubscriptionId, Subscription> loaded;
  for (uint64_t i = 0; ok && i < count; ++i) {
    SubscriptionId id = 0;
    Subscription sub;
    uint32_t ntags = 0;
    ok = std::fread(&id, sizeof(id), 1, f) == 1 &&
         std::fread(&sub.subscriber, sizeof(sub.subscriber), 1, f) == 1 &&
         std::fread(&ntags, sizeof(ntags), 1, f) == 1 && ntags <= (1u << 16);
    for (uint32_t t = 0; ok && t < ntags; ++t) {
      std::string tag;
      ok = read_string(f, tag);
      sub.tags.push_back(std::move(tag));
    }
    if (ok) {
      sub.active = true;
      sub.removed = false;
      loaded.emplace(id, std::move(sub));
    }
  }
  std::fclose(f);
  if (!ok || !engine_->load_index(path_prefix + ".idx")) {
    return false;
  }
  std::lock_guard lock(registry_mu_);
  subscriptions_ = std::move(loaded);
  next_subscriber_ = next_subscriber;
  next_subscription_ = next_subscription;
  // Recreate a (fresh, empty-queue) subscriber record per referenced id.
  subscribers_.clear();
  for (const auto& [id, sub] : subscriptions_) {
    if (!subscribers_.count(sub.subscriber)) {
      subscribers_.emplace(sub.subscriber, std::make_shared<Subscriber>());
    }
  }
  staged_churn_ = 0;
  return true;
}

Broker::Stats Broker::stats() const {
  Stats s;
  s.published = published_->value();
  s.deliveries = deliveries_->value();
  s.dropped = dropped_->value();
  s.consolidations = consolidations_->value();
  s.slo_met = slo_met_->value();
  s.slo_degraded = slo_degraded_->value();
  s.slo_partial = slo_partial_->value();
  s.slo_rejected = slo_rejected_->value();
  std::lock_guard lock(registry_mu_);
  s.subscribers = subscribers_.size();
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.active) {
      ++s.subscriptions;
    }
  }
  return s;
}

obs::MetricsSnapshot Broker::metrics_snapshot() const {
  // Refresh the population gauges at snapshot time (they track the live
  // subscriber registry, not a counter stream).
  Stats s = stats();
  metrics_.gauge("broker.subscribers")->set(static_cast<int64_t>(s.subscribers));
  metrics_.gauge("broker.subscriptions")->set(static_cast<int64_t>(s.subscriptions));
  obs::MetricsSnapshot snap = metrics_.snapshot();
  snap += engine_->metrics_snapshot();
  return snap;
}

std::vector<obs::Span> Broker::trace_snapshot() const { return engine_->trace_snapshot(); }

uint64_t Broker::trace_dropped() const { return engine_->trace_dropped(); }

std::vector<obs::TraceRecord> Broker::trace_records() const { return recorder_.snapshot(); }

}  // namespace tagmatch::broker

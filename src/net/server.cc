#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/common/check.h"
#include "src/net/wire.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace tagmatch::net {

namespace {

// Reads one '\n'-terminated line into `line` using `buffer` as carry-over
// between calls. Returns false on EOF/error with no complete line.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > (1u << 20)) {
      return false;  // Absurd line length: treat as protocol error.
    }
  }
}

bool send_all(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

BrokerServer::BrokerServer(broker::Broker* broker, uint16_t port,
                           telemetry::Telemetry* telemetry)
    : broker_(broker), telemetry_(telemetry) {
  TAGMATCH_CHECK(broker != nullptr);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

BrokerServer::~BrokerServer() { stop(); }

void BrokerServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    close_connection(conn.get());
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
    if (conn->pusher.joinable()) {
      conn->pusher.join();
    }
    ::close(conn->fd);
  }
}

void BrokerServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // Listener closed.
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->subscriber = broker_->connect();
    Connection* raw = conn.get();
    conn->reader = std::thread([this, raw] { reader_loop(raw); });
    conn->pusher = std::thread([this, raw] { pusher_loop(raw); });
    connections_served_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void BrokerServer::send_line(Connection* conn, const std::string& line) {
  std::lock_guard lock(conn->write_mu);
  if (!conn->open.load(std::memory_order_relaxed) || !send_all(conn->fd, line)) {
    conn->open.store(false, std::memory_order_relaxed);
  }
}

void BrokerServer::close_connection(Connection* conn) {
  if (conn->open.exchange(false)) {
    broker_->disconnect(conn->subscriber);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void BrokerServer::reader_loop(Connection* conn) {
  std::string buffer, line;
  while (conn->open.load(std::memory_order_relaxed) && read_line(conn->fd, buffer, line)) {
    auto request = parse_request(line);
    if (!request) {
      send_line(conn, format_err("malformed request"));
      continue;
    }
    switch (request->kind) {
      case Request::Kind::kPing:
        send_line(conn, "PONG\n");
        break;
      case Request::Kind::kSub: {
        broker::SubscriptionId id = broker_->subscribe(conn->subscriber, request->tags);
        send_line(conn, format_ok(id));
        break;
      }
      case Request::Kind::kUnsub:
        broker_->unsubscribe(conn->subscriber, request->subscription);
        send_line(conn, format_ok(request->subscription));
        break;
      case Request::Kind::kPub: {
        // A client traceparent threads into the publish's TraceContext so
        // the external trace id rides the whole pipeline and is echoed to
        // subscribers (wire.h).
        obs::TraceContext client_ctx;
        client_ctx.trace_id = request->pub_trace_id;
        client_ctx.parent_span_id = request->pub_parent_span_id;
        client_ctx.sampled = request->pub_sampled;
        if (broker_->publish(broker::Message{std::move(request->tags),
                                             std::move(request->payload)},
                             client_ctx) == broker::Broker::PublishResult::kAccepted) {
          send_line(conn, format_ok(0));
        } else {
          send_line(conn, format_err("slo rejected"));
        }
        break;
      }
      case Request::Kind::kStats: {
        obs::MetricsSnapshot snapshot = broker_->metrics_snapshot();
        if (telemetry_ != nullptr) {
          snapshot += telemetry_->metrics_snapshot();
        }
        send_line(conn, format_stats(snapshot.to_json()));
        break;
      }
      case Request::Kind::kTrace: {
        std::vector<obs::Span> spans = broker_->trace_snapshot();
        const uint64_t dropped = broker_->trace_dropped();
        // Ring total = what survived plus what the ring overwrote; computed
        // before filtering so the client can size the unfiltered history.
        const uint64_t total = dropped + spans.size();
        obs::Stage stage;
        const bool filtered = !request->trace_stage.empty() &&
                              obs::stage_from_name(request->trace_stage, &stage);
        if (filtered || request->trace_since != 0) {
          spans = obs::filter_spans(spans, filtered ? &stage : nullptr, request->trace_since);
        }
        send_line(conn,
                  format_trace(obs::trace_to_json(spans, dropped, total, request->trace_limit)));
        break;
      }
      case Request::Kind::kTracex:
        // Single-line by construction (pretty=false): the frame is
        // newline-delimited like every other verb.
        send_line(conn, format_tracex(obs::chrome_trace_json(broker_->trace_records(),
                                                             /*pretty=*/false)));
        break;
      case Request::Kind::kTsq:
        if (telemetry_ == nullptr) {
          send_line(conn, format_err("telemetry disabled"));
        } else {
          send_line(conn,
                    format_tsq(telemetry_->tsq_json(request->tsq_glob, request->tsq_last)));
        }
        break;
      case Request::Kind::kTraces: {
        // Incremental export: only spans retired since this connection's
        // previous TRACES call, as Chrome trace events (one line).
        telemetry::SpanStreamer::Flush flush =
            conn->span_streamer.flush(broker_->trace_snapshot(), broker_->trace_dropped());
        std::string json = "{\"flushed\":" + std::to_string(flush.spans.size()) +
                           ",\"dropped\":" + std::to_string(flush.dropped) + ",\"events\":[";
        for (size_t i = 0; i < flush.spans.size(); ++i) {
          if (i > 0) json += ",";
          json += obs::chrome_span_event(flush.spans[i]);
        }
        json += "]}";
        send_line(conn, format_traces(json));
        break;
      }
    }
  }
  close_connection(conn);
}

void BrokerServer::pusher_loop(Connection* conn) {
  while (conn->open.load(std::memory_order_relaxed)) {
    auto msg = broker_->poll_wait(conn->subscriber, std::chrono::milliseconds(50));
    if (!msg) {
      continue;
    }
    send_line(conn, format_msg(msg->tags, msg->payload, msg->trace_id));
  }
}

}  // namespace tagmatch::net

// TCP front end for the TagBroker (src/broker): one connection = one
// subscriber; the wire protocol is defined in src/net/wire.h. Each
// connection runs a reader thread (commands) and a pusher thread (MSG
// deliveries drained from the subscriber's broker queue); writes to the
// socket are serialized per connection.
#ifndef TAGMATCH_NET_SERVER_H_
#define TAGMATCH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/broker/broker.h"
#include "src/telemetry/stream_export.h"
#include "src/telemetry/telemetry.h"

namespace tagmatch::net {

class BrokerServer {
 public:
  // Starts listening on 127.0.0.1:`port` (0 = ephemeral; see port()) and
  // serving `broker` (not owned; must outlive the server). An optional
  // telemetry layer (not owned either) enables the TSQ verb and folds
  // telemetry.* metrics into STATS; without it TSQ answers ERR. TRACES
  // works either way — each connection owns its own incremental streamer
  // over the broker's span ring.
  BrokerServer(broker::Broker* broker, uint16_t port = 0,
               telemetry::Telemetry* telemetry = nullptr);
  ~BrokerServer();

  BrokerServer(const BrokerServer&) = delete;
  BrokerServer& operator=(const BrokerServer&) = delete;

  uint16_t port() const { return port_; }
  bool listening() const { return listen_fd_ >= 0; }
  // Stops accepting, closes every connection, joins all threads. Idempotent.
  void stop();

  uint64_t connections_served() const {
    return connections_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    broker::SubscriberId subscriber = 0;
    std::mutex write_mu;
    std::thread reader;
    std::thread pusher;
    std::atomic<bool> open{true};
    // Per-connection incremental span export state (TRACES): each consumer
    // pages through the ring at its own pace. Reader-thread only.
    telemetry::SpanStreamer span_streamer;
  };

  void accept_loop();
  void reader_loop(Connection* conn);
  void pusher_loop(Connection* conn);
  void send_line(Connection* conn, const std::string& line);
  void close_connection(Connection* conn);

  broker::Broker* broker_;
  telemetry::Telemetry* telemetry_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<uint64_t> connections_served_{0};
};

}  // namespace tagmatch::net

#endif  // TAGMATCH_NET_SERVER_H_

#include "src/net/wire.h"

#include <charconv>

#include "src/obs/trace.h"

namespace tagmatch::net {

bool valid_tag(std::string_view tag) {
  if (tag.empty()) {
    return false;
  }
  for (char c : tag) {
    if (c == ',' || c == ' ' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

namespace {

std::optional<uint32_t> parse_u32(std::string_view s) {
  uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<uint64_t> parse_u64(std::string_view s) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

// TRACE arguments: an optional leading bare integer (the limit), then any
// of `stage=<name>` / `since=<span_id>`, space-separated. Anything else —
// an unknown key, an invalid stage name, a non-numeric value — rejects the
// whole request; filters must never fail open.
bool parse_trace_args(std::string_view rest, Request& req) {
  bool first = true;
  while (!rest.empty()) {
    size_t space = rest.find(' ');
    std::string_view token = space == std::string_view::npos ? rest : rest.substr(0, space);
    rest = space == std::string_view::npos ? std::string_view() : rest.substr(space + 1);
    if (token.empty()) {
      return false;  // Double space.
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      if (!first) {
        return false;  // A bare integer is only valid as the first token.
      }
      auto limit = parse_u32(token);
      if (!limit) {
        return false;
      }
      req.trace_limit = *limit;
    } else {
      std::string_view key = token.substr(0, eq);
      std::string_view value = token.substr(eq + 1);
      if (key == "stage") {
        if (!tagmatch::obs::stage_from_name(std::string(value), nullptr)) {
          return false;
        }
        req.trace_stage.assign(value);
      } else if (key == "since") {
        auto since = parse_u64(value);
        if (!since) {
          return false;
        }
        req.trace_since = *since;
      } else {
        return false;
      }
    }
    first = false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<std::string>> parse_tags(std::string_view csv) {
  std::vector<std::string> tags;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    std::string_view tag =
        comma == std::string_view::npos ? csv.substr(start) : csv.substr(start, comma - start);
    if (!valid_tag(tag)) {
      return std::nullopt;
    }
    tags.emplace_back(tag);
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return tags;
}

std::optional<Request> parse_request(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  Request req;
  if (line == "PING") {
    req.kind = Request::Kind::kPing;
    return req;
  }
  if (line == "STATS") {
    req.kind = Request::Kind::kStats;
    return req;
  }
  if (line == "TRACE") {
    req.kind = Request::Kind::kTrace;
    return req;
  }
  if (line == "TRACEX") {
    req.kind = Request::Kind::kTracex;
    return req;
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view verb = line.substr(0, space);
  std::string_view rest = line.substr(space + 1);
  if (verb == "TRACE") {
    req.kind = Request::Kind::kTrace;
    if (!parse_trace_args(rest, req)) {
      return std::nullopt;
    }
    return req;
  }
  if (verb == "SUB") {
    auto tags = parse_tags(rest);
    if (!tags) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kSub;
    req.tags = std::move(*tags);
    return req;
  }
  if (verb == "UNSUB") {
    auto id = parse_u32(rest);
    if (!id) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kUnsub;
    req.subscription = *id;
    return req;
  }
  if (verb == "PUB") {
    size_t sep = rest.find(' ');
    std::string_view csv = sep == std::string_view::npos ? rest : rest.substr(0, sep);
    auto tags = parse_tags(csv);
    if (!tags) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kPub;
    req.tags = std::move(*tags);
    if (sep != std::string_view::npos) {
      req.payload.assign(rest.substr(sep + 1));
    }
    return req;
  }
  return std::nullopt;
}

std::string format_tags(const std::vector<std::string>& tags) {
  std::string out;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += tags[i];
  }
  return out;
}

std::string format_ok(uint32_t id) { return "OK " + std::to_string(id) + "\n"; }

std::string format_err(std::string_view reason) {
  return "ERR " + std::string(reason) + "\n";
}

std::string format_msg(const std::vector<std::string>& tags, std::string_view payload) {
  return "MSG " + format_tags(tags) + " " + std::string(payload) + "\n";
}

std::string format_stats(std::string_view json) {
  return "STATS " + std::string(json) + "\n";
}

std::string format_trace(std::string_view json) {
  return "TRACE " + std::string(json) + "\n";
}

std::string format_tracex(std::string_view json) {
  return "TRACEX " + std::string(json) + "\n";
}

std::optional<ServerFrame> parse_server_frame(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  ServerFrame frame;
  if (line == "PONG") {
    frame.kind = ServerFrame::Kind::kPong;
    return frame;
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view verb = line.substr(0, space);
  std::string_view rest = line.substr(space + 1);
  if (verb == "OK") {
    auto id = parse_u32(rest);
    if (!id) {
      return std::nullopt;
    }
    frame.kind = ServerFrame::Kind::kOk;
    frame.id = *id;
    return frame;
  }
  if (verb == "ERR") {
    frame.kind = ServerFrame::Kind::kErr;
    frame.error.assign(rest);
    return frame;
  }
  if (verb == "MSG") {
    size_t sep = rest.find(' ');
    std::string_view csv = sep == std::string_view::npos ? rest : rest.substr(0, sep);
    auto tags = parse_tags(csv);
    if (!tags) {
      return std::nullopt;
    }
    frame.kind = ServerFrame::Kind::kMsg;
    frame.tags = std::move(*tags);
    if (sep != std::string_view::npos) {
      frame.payload.assign(rest.substr(sep + 1));
    }
    return frame;
  }
  if (verb == "STATS") {
    frame.kind = ServerFrame::Kind::kStats;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TRACE") {
    frame.kind = ServerFrame::Kind::kTrace;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TRACEX") {
    frame.kind = ServerFrame::Kind::kTracex;
    frame.payload.assign(rest);
    return frame;
  }
  return std::nullopt;
}

}  // namespace tagmatch::net

#include "src/net/wire.h"

#include <charconv>

namespace tagmatch::net {

bool valid_tag(std::string_view tag) {
  if (tag.empty()) {
    return false;
  }
  for (char c : tag) {
    if (c == ',' || c == ' ' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

namespace {

std::optional<uint32_t> parse_u32(std::string_view s) {
  uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::optional<std::vector<std::string>> parse_tags(std::string_view csv) {
  std::vector<std::string> tags;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    std::string_view tag =
        comma == std::string_view::npos ? csv.substr(start) : csv.substr(start, comma - start);
    if (!valid_tag(tag)) {
      return std::nullopt;
    }
    tags.emplace_back(tag);
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return tags;
}

std::optional<Request> parse_request(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  Request req;
  if (line == "PING") {
    req.kind = Request::Kind::kPing;
    return req;
  }
  if (line == "STATS") {
    req.kind = Request::Kind::kStats;
    return req;
  }
  if (line == "TRACE") {
    req.kind = Request::Kind::kTrace;
    return req;
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view verb = line.substr(0, space);
  std::string_view rest = line.substr(space + 1);
  if (verb == "TRACE") {
    auto limit = parse_u32(rest);
    if (!limit) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kTrace;
    req.trace_limit = *limit;
    return req;
  }
  if (verb == "SUB") {
    auto tags = parse_tags(rest);
    if (!tags) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kSub;
    req.tags = std::move(*tags);
    return req;
  }
  if (verb == "UNSUB") {
    auto id = parse_u32(rest);
    if (!id) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kUnsub;
    req.subscription = *id;
    return req;
  }
  if (verb == "PUB") {
    size_t sep = rest.find(' ');
    std::string_view csv = sep == std::string_view::npos ? rest : rest.substr(0, sep);
    auto tags = parse_tags(csv);
    if (!tags) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kPub;
    req.tags = std::move(*tags);
    if (sep != std::string_view::npos) {
      req.payload.assign(rest.substr(sep + 1));
    }
    return req;
  }
  return std::nullopt;
}

std::string format_tags(const std::vector<std::string>& tags) {
  std::string out;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += tags[i];
  }
  return out;
}

std::string format_ok(uint32_t id) { return "OK " + std::to_string(id) + "\n"; }

std::string format_err(std::string_view reason) {
  return "ERR " + std::string(reason) + "\n";
}

std::string format_msg(const std::vector<std::string>& tags, std::string_view payload) {
  return "MSG " + format_tags(tags) + " " + std::string(payload) + "\n";
}

std::string format_stats(std::string_view json) {
  return "STATS " + std::string(json) + "\n";
}

std::string format_trace(std::string_view json) {
  return "TRACE " + std::string(json) + "\n";
}

std::optional<ServerFrame> parse_server_frame(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  ServerFrame frame;
  if (line == "PONG") {
    frame.kind = ServerFrame::Kind::kPong;
    return frame;
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view verb = line.substr(0, space);
  std::string_view rest = line.substr(space + 1);
  if (verb == "OK") {
    auto id = parse_u32(rest);
    if (!id) {
      return std::nullopt;
    }
    frame.kind = ServerFrame::Kind::kOk;
    frame.id = *id;
    return frame;
  }
  if (verb == "ERR") {
    frame.kind = ServerFrame::Kind::kErr;
    frame.error.assign(rest);
    return frame;
  }
  if (verb == "MSG") {
    size_t sep = rest.find(' ');
    std::string_view csv = sep == std::string_view::npos ? rest : rest.substr(0, sep);
    auto tags = parse_tags(csv);
    if (!tags) {
      return std::nullopt;
    }
    frame.kind = ServerFrame::Kind::kMsg;
    frame.tags = std::move(*tags);
    if (sep != std::string_view::npos) {
      frame.payload.assign(rest.substr(sep + 1));
    }
    return frame;
  }
  if (verb == "STATS") {
    frame.kind = ServerFrame::Kind::kStats;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TRACE") {
    frame.kind = ServerFrame::Kind::kTrace;
    frame.payload.assign(rest);
    return frame;
  }
  return std::nullopt;
}

}  // namespace tagmatch::net

#include "src/net/wire.h"

#include <charconv>
#include <cstdio>

#include "src/obs/trace.h"

namespace tagmatch::net {

bool valid_tag(std::string_view tag) {
  if (tag.empty()) {
    return false;
  }
  for (char c : tag) {
    if (c == ',' || c == ' ' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

namespace {

std::optional<uint32_t> parse_u32(std::string_view s) {
  uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<uint64_t> parse_u64(std::string_view s) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

// TRACE arguments: an optional leading bare integer (the limit), then any
// of `stage=<name>` / `since=<span_id>`, space-separated. Anything else —
// an unknown key, an invalid stage name, a non-numeric value — rejects the
// whole request; filters must never fail open.
bool parse_trace_args(std::string_view rest, Request& req) {
  bool first = true;
  while (!rest.empty()) {
    size_t space = rest.find(' ');
    std::string_view token = space == std::string_view::npos ? rest : rest.substr(0, space);
    rest = space == std::string_view::npos ? std::string_view() : rest.substr(space + 1);
    if (token.empty()) {
      return false;  // Double space.
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      if (!first) {
        return false;  // A bare integer is only valid as the first token.
      }
      auto limit = parse_u32(token);
      if (!limit) {
        return false;
      }
      req.trace_limit = *limit;
    } else {
      std::string_view key = token.substr(0, eq);
      std::string_view value = token.substr(eq + 1);
      if (key == "stage") {
        if (!tagmatch::obs::stage_from_name(std::string(value), nullptr)) {
          return false;
        }
        req.trace_stage.assign(value);
      } else if (key == "since") {
        auto since = parse_u64(value);
        if (!since) {
          return false;
        }
        req.trace_since = *since;
      } else {
        return false;
      }
    }
    first = false;
  }
  return true;
}

// TSQ arguments: a mandatory metric glob, then optionally `last=N`.
// Fail-closed like TRACE: unknown keys or extra tokens reject.
bool parse_tsq_args(std::string_view rest, Request& req) {
  size_t space = rest.find(' ');
  std::string_view glob = space == std::string_view::npos ? rest : rest.substr(0, space);
  if (glob.empty() || glob.find('=') != std::string_view::npos) {
    return false;
  }
  req.tsq_glob.assign(glob);
  if (space == std::string_view::npos) {
    return true;
  }
  std::string_view token = rest.substr(space + 1);
  constexpr std::string_view kLastKey = "last=";
  if (token.substr(0, kLastKey.size()) != kLastKey) {
    return false;
  }
  auto last = parse_u32(token.substr(kLastKey.size()));
  if (!last) {
    return false;
  }
  req.tsq_last = *last;
  return true;
}

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

std::optional<uint64_t> parse_hex64(std::string_view s) {
  uint64_t v = 0;
  for (char c : s) {
    if (!is_hex(c)) {
      return std::nullopt;
    }
    v = (v << 4) | static_cast<uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return v;
}

}  // namespace

std::optional<TraceParent> parse_traceparent(std::string_view token) {
  // 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>, lowercase hex
  // only (the W3C wire form). Total length 55.
  if (token.size() != 55 || token.substr(0, 3) != "00-" || token[35] != '-' || token[52] != '-') {
    return std::nullopt;
  }
  auto hi = parse_hex64(token.substr(3, 16));
  auto lo = parse_hex64(token.substr(19, 16));
  auto parent = parse_hex64(token.substr(36, 16));
  auto flags = parse_hex64(token.substr(53, 2));
  if (!hi || !lo || !parent || !flags) {
    return std::nullopt;
  }
  TraceParent tp;
  tp.trace_id = *hi ^ *lo;  // Fold 128 -> 64 bits.
  tp.parent_span_id = *parent;
  tp.sampled = (*flags & 0x1) != 0;
  // Zero ids mean "untraced" in src/obs; a traceparent that folds (or
  // arrives) as zero cannot be threaded, so it rejects rather than silently
  // degrading to an untraced publish.
  if (tp.trace_id == 0 || tp.parent_span_id == 0) {
    return std::nullopt;
  }
  return tp;
}

std::string format_traceparent(uint64_t trace_id, uint64_t parent_span_id, bool sampled) {
  char buf[56];
  std::snprintf(buf, sizeof(buf), "00-%016llx%016llx-%016llx-%02x", 0ull,
                static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(parent_span_id), sampled ? 0x01u : 0x00u);
  return buf;
}

std::optional<std::vector<std::string>> parse_tags(std::string_view csv) {
  std::vector<std::string> tags;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    std::string_view tag =
        comma == std::string_view::npos ? csv.substr(start) : csv.substr(start, comma - start);
    if (!valid_tag(tag)) {
      return std::nullopt;
    }
    tags.emplace_back(tag);
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return tags;
}

std::optional<Request> parse_request(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  Request req;
  if (line == "PING") {
    req.kind = Request::Kind::kPing;
    return req;
  }
  if (line == "STATS") {
    req.kind = Request::Kind::kStats;
    return req;
  }
  if (line == "TRACE") {
    req.kind = Request::Kind::kTrace;
    return req;
  }
  if (line == "TRACEX") {
    req.kind = Request::Kind::kTracex;
    return req;
  }
  if (line == "TRACES") {
    req.kind = Request::Kind::kTraces;
    return req;
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view verb = line.substr(0, space);
  std::string_view rest = line.substr(space + 1);
  if (verb == "TRACE") {
    req.kind = Request::Kind::kTrace;
    if (!parse_trace_args(rest, req)) {
      return std::nullopt;
    }
    return req;
  }
  if (verb == "SUB") {
    auto tags = parse_tags(rest);
    if (!tags) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kSub;
    req.tags = std::move(*tags);
    return req;
  }
  if (verb == "UNSUB") {
    auto id = parse_u32(rest);
    if (!id) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kUnsub;
    req.subscription = *id;
    return req;
  }
  if (verb == "PUB") {
    size_t sep = rest.find(' ');
    std::string_view csv = sep == std::string_view::npos ? rest : rest.substr(0, sep);
    auto tags = parse_tags(csv);
    if (!tags) {
      return std::nullopt;
    }
    req.kind = Request::Kind::kPub;
    req.tags = std::move(*tags);
    if (sep != std::string_view::npos) {
      rest = rest.substr(sep + 1);
      // Optional trace propagation: a `traceparent=` token between the tag
      // list and the payload. Fail-closed: a token that starts like one but
      // doesn't validate rejects the request (see the header caveat about
      // payloads beginning with the literal token).
      constexpr std::string_view kTpKey = "traceparent=";
      if (rest.substr(0, kTpKey.size()) == kTpKey) {
        size_t tp_end = rest.find(' ');
        std::string_view token =
            tp_end == std::string_view::npos ? rest : rest.substr(0, tp_end);
        auto tp = parse_traceparent(token.substr(kTpKey.size()));
        if (!tp) {
          return std::nullopt;
        }
        req.pub_trace_id = tp->trace_id;
        req.pub_parent_span_id = tp->parent_span_id;
        req.pub_sampled = tp->sampled;
        rest = tp_end == std::string_view::npos ? std::string_view() : rest.substr(tp_end + 1);
      }
      req.payload.assign(rest);
    }
    return req;
  }
  if (verb == "TSQ") {
    req.kind = Request::Kind::kTsq;
    if (!parse_tsq_args(rest, req)) {
      return std::nullopt;
    }
    return req;
  }
  return std::nullopt;
}

std::string format_tags(const std::vector<std::string>& tags) {
  std::string out;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += tags[i];
  }
  return out;
}

std::string format_ok(uint32_t id) { return "OK " + std::to_string(id) + "\n"; }

std::string format_err(std::string_view reason) {
  return "ERR " + std::string(reason) + "\n";
}

std::string format_msg(const std::vector<std::string>& tags, std::string_view payload,
                       uint64_t trace_id) {
  std::string out = "MSG " + format_tags(tags) + " ";
  if (trace_id != 0) {
    // Echo the publish's trace id; the parent field repeats it (the true
    // root span id lives server-side — subscribers only need the trace id
    // to join, and a zero parent would be rejected as malformed).
    out += "traceparent=" + format_traceparent(trace_id, trace_id, true) + " ";
  }
  out += std::string(payload) + "\n";
  return out;
}

std::string format_stats(std::string_view json) {
  return "STATS " + std::string(json) + "\n";
}

std::string format_trace(std::string_view json) {
  return "TRACE " + std::string(json) + "\n";
}

std::string format_tracex(std::string_view json) {
  return "TRACEX " + std::string(json) + "\n";
}

std::string format_tsq(std::string_view json) { return "TSQ " + std::string(json) + "\n"; }

std::string format_traces(std::string_view json) {
  return "TRACES " + std::string(json) + "\n";
}

std::optional<ServerFrame> parse_server_frame(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  ServerFrame frame;
  if (line == "PONG") {
    frame.kind = ServerFrame::Kind::kPong;
    return frame;
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view verb = line.substr(0, space);
  std::string_view rest = line.substr(space + 1);
  if (verb == "OK") {
    auto id = parse_u32(rest);
    if (!id) {
      return std::nullopt;
    }
    frame.kind = ServerFrame::Kind::kOk;
    frame.id = *id;
    return frame;
  }
  if (verb == "ERR") {
    frame.kind = ServerFrame::Kind::kErr;
    frame.error.assign(rest);
    return frame;
  }
  if (verb == "MSG") {
    size_t sep = rest.find(' ');
    std::string_view csv = sep == std::string_view::npos ? rest : rest.substr(0, sep);
    auto tags = parse_tags(csv);
    if (!tags) {
      return std::nullopt;
    }
    frame.kind = ServerFrame::Kind::kMsg;
    frame.tags = std::move(*tags);
    if (sep != std::string_view::npos) {
      rest = rest.substr(sep + 1);
      constexpr std::string_view kTpKey = "traceparent=";
      if (rest.substr(0, kTpKey.size()) == kTpKey) {
        size_t tp_end = rest.find(' ');
        std::string_view token =
            tp_end == std::string_view::npos ? rest : rest.substr(0, tp_end);
        auto tp = parse_traceparent(token.substr(kTpKey.size()));
        if (!tp) {
          return std::nullopt;
        }
        frame.trace_id = tp->trace_id;
        rest = tp_end == std::string_view::npos ? std::string_view() : rest.substr(tp_end + 1);
      }
      frame.payload.assign(rest);
    }
    return frame;
  }
  if (verb == "STATS") {
    frame.kind = ServerFrame::Kind::kStats;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TRACE") {
    frame.kind = ServerFrame::Kind::kTrace;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TRACEX") {
    frame.kind = ServerFrame::Kind::kTracex;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TSQ") {
    frame.kind = ServerFrame::Kind::kTsq;
    frame.payload.assign(rest);
    return frame;
  }
  if (verb == "TRACES") {
    frame.kind = ServerFrame::Kind::kTraces;
    frame.payload.assign(rest);
    return frame;
  }
  return std::nullopt;
}

}  // namespace tagmatch::net

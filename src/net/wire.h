// Wire protocol of the broker's TCP front end: newline-delimited text
// frames, human-debuggable (nc-able), in the spirit of classic messaging
// protocols.
//
// Client -> server:
//   SUB <tag,tag,...>            subscribe; reply: OK <subscription-id>
//   UNSUB <subscription-id>      unsubscribe; reply: OK <subscription-id>
//   PUB <tag,tag,...> <payload>  publish; reply: OK 0 (payload = rest of
//                                line), or ERR slo rejected when the broker
//                                sheds the publish at admission (publish-SLO
//                                breach, --publish-slo-ms / --slo-mode)
//   PING                         liveness; reply: PONG
//   STATS                        observability snapshot (broker + engine
//                                registries merged); reply: STATS <json>,
//                                one line of JSON (docs/OBSERVABILITY.md)
//   TRACE [n] [stage=<name>] [since=<span_id>]
//                                pipeline stage spans, newest `n` (all when
//                                omitted or 0), optionally filtered to one
//                                stage ("enqueue".."gather") and/or to spans
//                                with span id > since (span ids are
//                                monotonic, so since= pages forward); reply:
//                                TRACE {"dropped":..,"total":..,"spans":[..]}
//   TRACEX                       retained causal traces (--tracing) as
//                                Chrome/Perfetto trace-event JSON; reply:
//                                TRACEX <json>, one line, loadable in
//                                ui.perfetto.dev after `tagmatch_client
//                                tracex > out.json`
// Server -> client (asynchronous, interleaved with replies):
//   MSG <tag,tag,...> <payload>  a delivery for this connection's subscriber
// Errors: ERR <reason>
//
// Constraints: tags must be non-empty and contain neither ',' nor spaces nor
// newlines; payloads must not contain newlines. One connection = one
// subscriber.
#ifndef TAGMATCH_NET_WIRE_H_
#define TAGMATCH_NET_WIRE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tagmatch::net {

struct Request {
  enum class Kind { kSub, kUnsub, kPub, kPing, kStats, kTrace, kTracex };
  Kind kind;
  std::vector<std::string> tags;  // kSub, kPub.
  uint32_t subscription = 0;      // kUnsub.
  std::string payload;            // kPub.
  uint32_t trace_limit = 0;       // kTrace; 0 = all retained spans.
  // kTrace filters: stage name validated at parse time (empty = any stage);
  // since = strictly-greater span id floor (0 = all).
  std::string trace_stage;
  uint64_t trace_since = 0;
};

// Parses one request line (no trailing newline). nullopt on malformed input.
std::optional<Request> parse_request(std::string_view line);

// Splits a comma-separated tag list, rejecting empty or space-containing
// tags. Empty optional on violation.
std::optional<std::vector<std::string>> parse_tags(std::string_view csv);

// True iff the tag is expressible on the wire (non-empty, no ',', spaces or
// newlines). Clients validate before sending.
bool valid_tag(std::string_view tag);

std::string format_tags(const std::vector<std::string>& tags);
std::string format_ok(uint32_t id);
std::string format_err(std::string_view reason);
std::string format_msg(const std::vector<std::string>& tags, std::string_view payload);
// `json` must be a single line (MetricsSnapshot::to_json / spans_to_json
// already are); the frame is "STATS <json>\n" / "TRACE <json>\n".
std::string format_stats(std::string_view json);
std::string format_trace(std::string_view json);
std::string format_tracex(std::string_view json);

// Parses a server line; returns the frame kind and fields.
struct ServerFrame {
  enum class Kind { kOk, kErr, kMsg, kPong, kStats, kTrace, kTracex };
  Kind kind;
  uint32_t id = 0;                // kOk.
  std::string error;              // kErr.
  std::vector<std::string> tags;  // kMsg.
  std::string payload;            // kMsg, kStats, kTrace, kTracex (JSON).
};
std::optional<ServerFrame> parse_server_frame(std::string_view line);

}  // namespace tagmatch::net

#endif  // TAGMATCH_NET_WIRE_H_

// Wire protocol of the broker's TCP front end: newline-delimited text
// frames, human-debuggable (nc-able), in the spirit of classic messaging
// protocols.
//
// Client -> server:
//   SUB <tag,tag,...>            subscribe; reply: OK <subscription-id>
//   UNSUB <subscription-id>      unsubscribe; reply: OK <subscription-id>
//   PUB <tag,tag,...> [traceparent=<tp>] <payload>
//                                publish; reply: OK 0 (payload = rest of
//                                line), or ERR slo rejected when the broker
//                                sheds the publish at admission (publish-SLO
//                                breach, --publish-slo-ms / --slo-mode).
//                                The optional traceparent token joins the
//                                publish to a caller-owned trace: W3C style
//                                `00-<32 hex trace-id>-<16 hex parent-id>-
//                                <2 hex flags>`, folded to the engine's
//                                64-bit ids (XOR of the trace-id halves).
//                                Malformed traceparents reject the request;
//                                consequently a payload may not *begin* with
//                                the literal token `traceparent=` (prefix
//                                it, e.g. with a space, to publish one).
//   PING                         liveness; reply: PONG
//   STATS                        observability snapshot (broker + engine
//                                registries merged); reply: STATS <json>,
//                                one line of JSON (docs/OBSERVABILITY.md)
//   TRACE [n] [stage=<name>] [since=<span_id>]
//                                pipeline stage spans, newest `n` (all when
//                                omitted or 0), optionally filtered to one
//                                stage ("enqueue".."gather") and/or to spans
//                                with span id > since (span ids are
//                                monotonic, so since= pages forward); reply:
//                                TRACE {"dropped":..,"total":..,"spans":[..]}
//   TRACEX                       retained causal traces (--tracing) as
//                                Chrome/Perfetto trace-event JSON; reply:
//                                TRACEX <json>, one line, loadable in
//                                ui.perfetto.dev after `tagmatch_client
//                                tracex > out.json`
//   TSQ <metric-glob> [last=N]   windowed time-series query against the
//                                server's telemetry ring (src/telemetry;
//                                requires --telemetry-interval): per-window
//                                counter rates, gauge readings and windowed
//                                histogram percentiles for metrics matching
//                                the '*'-glob, newest N windows (0/omitted =
//                                all retained); reply: TSQ <json>
//   TRACES                       incremental span stream: each call returns
//                                only the spans retired since this
//                                connection's previous TRACES call; reply:
//                                TRACES {"flushed":..,"dropped":..,
//                                "events":[..]} where events are Chrome
//                                trace events and dropped counts spans that
//                                wrapped out of the ring unseen between
//                                calls (poll faster to drive it to zero)
// Server -> client (asynchronous, interleaved with replies):
//   MSG <tag,tag,...> [traceparent=<tp>] <payload>
//                                a delivery for this connection's
//                                subscriber; traced publishes (server-side
//                                --tracing, or a client-supplied
//                                traceparent) echo the trace id so
//                                subscribers join the publisher's trace
// Errors: ERR <reason>
//
// Constraints: tags must be non-empty and contain neither ',' nor spaces nor
// newlines; payloads must not contain newlines. One connection = one
// subscriber.
#ifndef TAGMATCH_NET_WIRE_H_
#define TAGMATCH_NET_WIRE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tagmatch::net {

struct Request {
  enum class Kind { kSub, kUnsub, kPub, kPing, kStats, kTrace, kTracex, kTsq, kTraces };
  Kind kind;
  std::vector<std::string> tags;  // kSub, kPub.
  uint32_t subscription = 0;      // kUnsub.
  std::string payload;            // kPub.
  uint32_t trace_limit = 0;       // kTrace; 0 = all retained spans.
  // kTrace filters: stage name validated at parse time (empty = any stage);
  // since = strictly-greater span id floor (0 = all).
  std::string trace_stage;
  uint64_t trace_since = 0;
  // kPub: the client-supplied traceparent, folded to 64-bit ids (0 = none).
  uint64_t pub_trace_id = 0;
  uint64_t pub_parent_span_id = 0;
  bool pub_sampled = false;
  // kTsq.
  std::string tsq_glob;
  uint32_t tsq_last = 0;  // 0 = all retained windows.
};

// Parses one request line (no trailing newline). nullopt on malformed input.
std::optional<Request> parse_request(std::string_view line);

// Splits a comma-separated tag list, rejecting empty or space-containing
// tags. Empty optional on violation.
std::optional<std::vector<std::string>> parse_tags(std::string_view csv);

// True iff the tag is expressible on the wire (non-empty, no ',', spaces or
// newlines). Clients validate before sending.
bool valid_tag(std::string_view tag);

// W3C-traceparent-style context token. parse_traceparent validates the
// `00-<32 hex>-<16 hex>-<2 hex>` shape fail-closed and folds the 128-bit
// trace id to the engine's 64 bits by XOR of its halves (a fold or parent of
// zero rejects — an id of 0 means "untraced" everywhere in src/obs).
// format_traceparent emits the inverse (trace id zero-extended to 128 bits).
struct TraceParent {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;
};
std::optional<TraceParent> parse_traceparent(std::string_view token);
std::string format_traceparent(uint64_t trace_id, uint64_t parent_span_id, bool sampled);

std::string format_tags(const std::vector<std::string>& tags);
std::string format_ok(uint32_t id);
std::string format_err(std::string_view reason);
// With a nonzero trace_id the delivery carries `traceparent=` (see MSG).
std::string format_msg(const std::vector<std::string>& tags, std::string_view payload,
                       uint64_t trace_id = 0);
// `json` must be a single line (MetricsSnapshot::to_json / spans_to_json
// already are); the frame is "STATS <json>\n" / "TRACE <json>\n".
std::string format_stats(std::string_view json);
std::string format_trace(std::string_view json);
std::string format_tracex(std::string_view json);
std::string format_tsq(std::string_view json);
std::string format_traces(std::string_view json);

// Parses a server line; returns the frame kind and fields.
struct ServerFrame {
  enum class Kind { kOk, kErr, kMsg, kPong, kStats, kTrace, kTracex, kTsq, kTraces };
  Kind kind;
  uint32_t id = 0;                // kOk.
  std::string error;              // kErr.
  std::vector<std::string> tags;  // kMsg.
  std::string payload;            // kMsg, kStats, kTrace, kTracex, kTsq, kTraces (JSON).
  uint64_t trace_id = 0;          // kMsg: echoed traceparent (0 = untraced).
};
std::optional<ServerFrame> parse_server_frame(std::string_view line);

}  // namespace tagmatch::net

#endif  // TAGMATCH_NET_WIRE_H_

#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace tagmatch::net {

namespace {

bool send_all(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

BrokerClient::~BrokerClient() { close(); }

bool BrokerClient::connect(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

void BrokerClient::close() {
  if (fd_ < 0) {
    return;
  }
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) {
    reader_.join();
  }
  ::close(fd_);
  fd_ = -1;
  replies_.close();
  messages_.close();
}

void BrokerClient::reader_loop() {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      auto frame = parse_server_frame(line);
      if (!frame) {
        continue;  // Skip garbage; the protocol is line-synchronized.
      }
      if (frame->kind == ServerFrame::Kind::kMsg) {
        messages_.push(broker::Message{std::move(frame->tags), std::move(frame->payload),
                                       frame->trace_id});
      } else {
        replies_.push(std::move(*frame));
      }
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      replies_.close();
      messages_.close();
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

std::optional<ServerFrame> BrokerClient::command(const std::string& line) {
  if (fd_ < 0 || !send_all(fd_, line)) {
    return std::nullopt;
  }
  // Replies arrive in command order (the server handles one command at a
  // time per connection).
  return replies_.pop_for(std::chrono::seconds(10));
}

namespace {
bool all_tags_valid(const std::vector<std::string>& tags) {
  if (tags.empty()) {
    return false;
  }
  for (const auto& t : tags) {
    if (!valid_tag(t)) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::optional<uint32_t> BrokerClient::subscribe(const std::vector<std::string>& tags) {
  if (!all_tags_valid(tags)) {
    return std::nullopt;
  }
  auto reply = command("SUB " + format_tags(tags) + "\n");
  if (!reply || reply->kind != ServerFrame::Kind::kOk) {
    return std::nullopt;
  }
  return reply->id;
}

bool BrokerClient::unsubscribe(uint32_t subscription) {
  auto reply = command("UNSUB " + std::to_string(subscription) + "\n");
  return reply && reply->kind == ServerFrame::Kind::kOk;
}

bool BrokerClient::publish(const std::vector<std::string>& tags, const std::string& payload) {
  if (!all_tags_valid(tags) || payload.find('\n') != std::string::npos) {
    return false;
  }
  auto reply = command("PUB " + format_tags(tags) + " " + payload + "\n");
  return reply && reply->kind == ServerFrame::Kind::kOk;
}

bool BrokerClient::publish_traced(const std::vector<std::string>& tags,
                                  const std::string& payload, uint64_t trace_id,
                                  uint64_t parent_span_id, bool sampled) {
  if (!all_tags_valid(tags) || payload.find('\n') != std::string::npos || trace_id == 0 ||
      parent_span_id == 0) {
    return false;
  }
  auto reply = command("PUB " + format_tags(tags) + " traceparent=" +
                       format_traceparent(trace_id, parent_span_id, sampled) + " " + payload +
                       "\n");
  return reply && reply->kind == ServerFrame::Kind::kOk;
}

bool BrokerClient::ping() {
  auto reply = command("PING\n");
  return reply && reply->kind == ServerFrame::Kind::kPong;
}

std::optional<std::string> BrokerClient::stats_json() {
  auto reply = command("STATS\n");
  if (!reply || reply->kind != ServerFrame::Kind::kStats) {
    return std::nullopt;
  }
  return std::move(reply->payload);
}

std::optional<std::string> BrokerClient::trace_json(uint32_t limit, const std::string& stage,
                                                    uint64_t since) {
  std::string line = "TRACE";
  if (limit != 0) {
    line += " " + std::to_string(limit);
  }
  if (!stage.empty()) {
    line += " stage=" + stage;
  }
  if (since != 0) {
    line += " since=" + std::to_string(since);
  }
  auto reply = command(line + "\n");
  if (!reply || reply->kind != ServerFrame::Kind::kTrace) {
    return std::nullopt;
  }
  return std::move(reply->payload);
}

std::optional<std::string> BrokerClient::tracex_json() {
  auto reply = command("TRACEX\n");
  if (!reply || reply->kind != ServerFrame::Kind::kTracex) {
    return std::nullopt;
  }
  return std::move(reply->payload);
}

std::optional<std::string> BrokerClient::tsq_json(const std::string& metric_glob,
                                                  uint32_t last) {
  std::string line = "TSQ " + metric_glob;
  if (last != 0) {
    line += " last=" + std::to_string(last);
  }
  auto reply = command(line + "\n");
  if (!reply || reply->kind != ServerFrame::Kind::kTsq) {
    return std::nullopt;
  }
  return std::move(reply->payload);
}

std::optional<std::string> BrokerClient::traces_json() {
  auto reply = command("TRACES\n");
  if (!reply || reply->kind != ServerFrame::Kind::kTraces) {
    return std::nullopt;
  }
  return std::move(reply->payload);
}

std::optional<broker::Message> BrokerClient::receive(std::chrono::milliseconds timeout) {
  return messages_.pop_for(timeout);
}

}  // namespace tagmatch::net

// TCP client for the TagBroker server (src/net/server.h). A background
// reader thread demultiplexes the socket: MSG frames go to a delivery queue
// (receive()); command replies (OK/ERR/PONG) go to a reply queue consumed by
// the synchronous command methods.
#ifndef TAGMATCH_NET_CLIENT_H_
#define TAGMATCH_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/broker/broker.h"
#include "src/common/mpmc_queue.h"
#include "src/net/wire.h"

namespace tagmatch::net {

class BrokerClient {
 public:
  BrokerClient() = default;
  ~BrokerClient();

  BrokerClient(const BrokerClient&) = delete;
  BrokerClient& operator=(const BrokerClient&) = delete;

  // Connects to 127.0.0.1:`port`. Returns false on failure.
  bool connect(uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Synchronous commands (nullopt / false on error or disconnect).
  std::optional<uint32_t> subscribe(const std::vector<std::string>& tags);
  bool unsubscribe(uint32_t subscription);
  bool publish(const std::vector<std::string>& tags, const std::string& payload);
  // Publish joined to a caller-owned trace: `trace_id`/`parent_span_id` ride
  // the PUB as a W3C-style traceparent token, thread into the server-side
  // TraceContext, and are echoed on every delivery (Message::trace_id). Both
  // ids must be nonzero (0 means "untraced" on the wire and is rejected).
  bool publish_traced(const std::vector<std::string>& tags, const std::string& payload,
                      uint64_t trace_id, uint64_t parent_span_id, bool sampled = true);
  bool ping();
  // Observability verbs: one line of JSON from the server's merged metrics
  // registries (STATS) / its pipeline trace ring (TRACE, newest `limit`
  // spans, 0 = all; `stage` restricts to one stage name, `since` to span ids
  // strictly greater — see the TRACE grammar in wire.h) / its retained
  // causal traces (TRACEX, Chrome/Perfetto trace-event JSON). See
  // docs/OBSERVABILITY.md for the schemas.
  std::optional<std::string> stats_json();
  std::optional<std::string> trace_json(uint32_t limit = 0, const std::string& stage = "",
                                        uint64_t since = 0);
  std::optional<std::string> tracex_json();
  // Continuous-telemetry verbs (wire.h): TSQ queries the server's rolling
  // time-series ring (windowed rates/percentiles for metrics matching the
  // glob, newest `last` windows, 0 = all); TRACES pops the spans retired
  // since this connection's previous traces_json() call as an incremental
  // Chrome trace-event batch with flushed/dropped accounting.
  std::optional<std::string> tsq_json(const std::string& metric_glob, uint32_t last = 0);
  std::optional<std::string> traces_json();

  // Pops one delivered message, waiting up to `timeout`.
  std::optional<broker::Message> receive(std::chrono::milliseconds timeout);

 private:
  std::optional<ServerFrame> command(const std::string& line);
  void reader_loop();

  int fd_ = -1;
  std::thread reader_;
  tagmatch::MpmcQueue<ServerFrame> replies_;
  tagmatch::MpmcQueue<broker::Message> messages_;
};

}  // namespace tagmatch::net

#endif  // TAGMATCH_NET_CLIENT_H_

file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_net.dir/client.cc.o"
  "CMakeFiles/tagmatch_net.dir/client.cc.o.d"
  "CMakeFiles/tagmatch_net.dir/server.cc.o"
  "CMakeFiles/tagmatch_net.dir/server.cc.o.d"
  "CMakeFiles/tagmatch_net.dir/wire.cc.o"
  "CMakeFiles/tagmatch_net.dir/wire.cc.o.d"
  "libtagmatch_net.a"
  "libtagmatch_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtagmatch_net.a"
)

# Empty compiler generated dependencies file for tagmatch_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gpusim.dir/device.cc.o"
  "CMakeFiles/gpusim.dir/device.cc.o.d"
  "CMakeFiles/gpusim.dir/kernel.cc.o"
  "CMakeFiles/gpusim.dir/kernel.cc.o.d"
  "CMakeFiles/gpusim.dir/profiler.cc.o"
  "CMakeFiles/gpusim.dir/profiler.cc.o.d"
  "CMakeFiles/gpusim.dir/stream.cc.o"
  "CMakeFiles/gpusim.dir/stream.cc.o.d"
  "libgpusim.a"
  "libgpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/kernel.cc" "src/gpusim/CMakeFiles/gpusim.dir/kernel.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/kernel.cc.o.d"
  "/root/repo/src/gpusim/profiler.cc" "src/gpusim/CMakeFiles/gpusim.dir/profiler.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/profiler.cc.o.d"
  "/root/repo/src/gpusim/stream.cc" "src/gpusim/CMakeFiles/gpusim.dir/stream.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tagmatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libtagmatch_core.a"
)

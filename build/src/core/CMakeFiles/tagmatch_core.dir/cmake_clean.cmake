file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_core.dir/gpu_engine.cc.o"
  "CMakeFiles/tagmatch_core.dir/gpu_engine.cc.o.d"
  "CMakeFiles/tagmatch_core.dir/partition_table.cc.o"
  "CMakeFiles/tagmatch_core.dir/partition_table.cc.o.d"
  "CMakeFiles/tagmatch_core.dir/partitioner.cc.o"
  "CMakeFiles/tagmatch_core.dir/partitioner.cc.o.d"
  "CMakeFiles/tagmatch_core.dir/tagmatch.cc.o"
  "CMakeFiles/tagmatch_core.dir/tagmatch.cc.o.d"
  "libtagmatch_core.a"
  "libtagmatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tagmatch_core.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for tagmatch_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_baselines.dir/gpuonly/gpu_only_matcher.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/gpuonly/gpu_only_matcher.cc.o.d"
  "CMakeFiles/tagmatch_baselines.dir/icn/icn_matcher.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/icn/icn_matcher.cc.o.d"
  "CMakeFiles/tagmatch_baselines.dir/inverted/inverted_index.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/inverted/inverted_index.cc.o.d"
  "CMakeFiles/tagmatch_baselines.dir/minidb/minidb.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/minidb/minidb.cc.o.d"
  "CMakeFiles/tagmatch_baselines.dir/prefix_tree/prefix_tree.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/prefix_tree/prefix_tree.cc.o.d"
  "CMakeFiles/tagmatch_baselines.dir/scan/scan_matchers.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/scan/scan_matchers.cc.o.d"
  "CMakeFiles/tagmatch_baselines.dir/subset_enum/subset_enum.cc.o"
  "CMakeFiles/tagmatch_baselines.dir/subset_enum/subset_enum.cc.o.d"
  "libtagmatch_baselines.a"
  "libtagmatch_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

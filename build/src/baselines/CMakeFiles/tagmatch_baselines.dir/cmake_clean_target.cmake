file(REMOVE_RECURSE
  "libtagmatch_baselines.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gpuonly/gpu_only_matcher.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/gpuonly/gpu_only_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/gpuonly/gpu_only_matcher.cc.o.d"
  "/root/repo/src/baselines/icn/icn_matcher.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/icn/icn_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/icn/icn_matcher.cc.o.d"
  "/root/repo/src/baselines/inverted/inverted_index.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/inverted/inverted_index.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/inverted/inverted_index.cc.o.d"
  "/root/repo/src/baselines/minidb/minidb.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/minidb/minidb.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/minidb/minidb.cc.o.d"
  "/root/repo/src/baselines/prefix_tree/prefix_tree.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/prefix_tree/prefix_tree.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/prefix_tree/prefix_tree.cc.o.d"
  "/root/repo/src/baselines/scan/scan_matchers.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/scan/scan_matchers.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/scan/scan_matchers.cc.o.d"
  "/root/repo/src/baselines/subset_enum/subset_enum.cc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/subset_enum/subset_enum.cc.o" "gcc" "src/baselines/CMakeFiles/tagmatch_baselines.dir/subset_enum/subset_enum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tagmatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tagmatch_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tagmatch_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tagmatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_cli.dir/tagmatch_cli.cc.o"
  "CMakeFiles/tagmatch_cli.dir/tagmatch_cli.cc.o.d"
  "tagmatch_cli"
  "tagmatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

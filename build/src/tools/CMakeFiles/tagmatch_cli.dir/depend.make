# Empty dependencies file for tagmatch_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for tagmatch_server.
# This may be replaced when dependencies are built.

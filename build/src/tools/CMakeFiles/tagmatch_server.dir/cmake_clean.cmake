file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_server.dir/tagmatch_server.cc.o"
  "CMakeFiles/tagmatch_server.dir/tagmatch_server.cc.o.d"
  "tagmatch_server"
  "tagmatch_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_broker.dir/broker.cc.o"
  "CMakeFiles/tagmatch_broker.dir/broker.cc.o.d"
  "libtagmatch_broker.a"
  "libtagmatch_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtagmatch_broker.a"
)

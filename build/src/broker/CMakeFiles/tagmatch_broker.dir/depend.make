# Empty dependencies file for tagmatch_broker.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtagmatch_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_workload.dir/twitter_workload.cc.o"
  "CMakeFiles/tagmatch_workload.dir/twitter_workload.cc.o.d"
  "libtagmatch_workload.a"
  "libtagmatch_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tagmatch_workload.
# This may be replaced when dependencies are built.

# Empty dependencies file for tagmatch_common.
# This may be replaced when dependencies are built.

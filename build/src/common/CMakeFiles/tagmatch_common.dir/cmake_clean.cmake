file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_common.dir/bit_vector.cc.o"
  "CMakeFiles/tagmatch_common.dir/bit_vector.cc.o.d"
  "CMakeFiles/tagmatch_common.dir/stats.cc.o"
  "CMakeFiles/tagmatch_common.dir/stats.cc.o.d"
  "libtagmatch_common.a"
  "libtagmatch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtagmatch_common.a"
)

# Empty compiler generated dependencies file for tagmatch_bloom.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtagmatch_bloom.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_bloom.dir/bloom_filter.cc.o"
  "CMakeFiles/tagmatch_bloom.dir/bloom_filter.cc.o.d"
  "libtagmatch_bloom.a"
  "libtagmatch_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

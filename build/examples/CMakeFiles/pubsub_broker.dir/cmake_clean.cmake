file(REMOVE_RECURSE
  "CMakeFiles/pubsub_broker.dir/pubsub_broker.cpp.o"
  "CMakeFiles/pubsub_broker.dir/pubsub_broker.cpp.o.d"
  "pubsub_broker"
  "pubsub_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pubsub_broker.
# This may be replaced when dependencies are built.

# Empty dependencies file for icn_router.
# This may be replaced when dependencies are built.

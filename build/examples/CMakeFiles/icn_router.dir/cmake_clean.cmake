file(REMOVE_RECURSE
  "CMakeFiles/icn_router.dir/icn_router.cpp.o"
  "CMakeFiles/icn_router.dir/icn_router.cpp.o.d"
  "icn_router"
  "icn_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

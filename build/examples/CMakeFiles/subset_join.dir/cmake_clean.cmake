file(REMOVE_RECURSE
  "CMakeFiles/subset_join.dir/subset_join.cpp.o"
  "CMakeFiles/subset_join.dir/subset_join.cpp.o.d"
  "subset_join"
  "subset_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

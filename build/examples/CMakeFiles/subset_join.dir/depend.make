# Empty dependencies file for subset_join.
# This may be replaced when dependencies are built.

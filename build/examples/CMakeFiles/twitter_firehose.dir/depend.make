# Empty dependencies file for twitter_firehose.
# This may be replaced when dependencies are built.

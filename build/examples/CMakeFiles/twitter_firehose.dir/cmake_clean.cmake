file(REMOVE_RECURSE
  "CMakeFiles/twitter_firehose.dir/twitter_firehose.cpp.o"
  "CMakeFiles/twitter_firehose.dir/twitter_firehose.cpp.o.d"
  "twitter_firehose"
  "twitter_firehose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_firehose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/broker_service.dir/broker_service.cpp.o"
  "CMakeFiles/broker_service.dir/broker_service.cpp.o.d"
  "broker_service"
  "broker_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for broker_service.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bit_vector_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_filter_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/partition_table_test[1]_include.cmake")
include("/root/repo/build/tests/packed_output_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tagmatch_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/gpuonly_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_stress_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/subset_enum_test[1]_include.cmake")
include("/root/repo/build/tests/staged_matching_test[1]_include.cmake")
include("/root/repo/build/tests/broker_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_differential_test[1]_include.cmake")
include("/root/repo/build/tests/statistics_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/death_test[1]_include.cmake")
add_test(cli_end_to_end "/usr/bin/cmake" "-DCLI=/root/repo/build/src/tools/tagmatch_cli" "-DWORK=/root/repo/build/tests/cli_scratch" "-P" "/root/repo/tests/cli_test.cmake")
set_tests_properties(cli_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")

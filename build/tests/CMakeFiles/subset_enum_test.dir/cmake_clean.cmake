file(REMOVE_RECURSE
  "CMakeFiles/subset_enum_test.dir/subset_enum_test.cc.o"
  "CMakeFiles/subset_enum_test.dir/subset_enum_test.cc.o.d"
  "subset_enum_test"
  "subset_enum_test.pdb"
  "subset_enum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for subset_enum_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/staged_matching_test.dir/staged_matching_test.cc.o"
  "CMakeFiles/staged_matching_test.dir/staged_matching_test.cc.o.d"
  "staged_matching_test"
  "staged_matching_test.pdb"
  "staged_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staged_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

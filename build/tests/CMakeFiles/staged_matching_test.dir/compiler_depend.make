# Empty compiler generated dependencies file for staged_matching_test.
# This may be replaced when dependencies are built.

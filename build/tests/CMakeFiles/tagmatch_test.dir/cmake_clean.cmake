file(REMOVE_RECURSE
  "CMakeFiles/tagmatch_test.dir/tagmatch_test.cc.o"
  "CMakeFiles/tagmatch_test.dir/tagmatch_test.cc.o.d"
  "tagmatch_test"
  "tagmatch_test.pdb"
  "tagmatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

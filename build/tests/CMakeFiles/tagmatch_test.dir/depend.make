# Empty dependencies file for tagmatch_test.
# This may be replaced when dependencies are built.

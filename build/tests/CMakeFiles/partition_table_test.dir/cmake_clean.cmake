file(REMOVE_RECURSE
  "CMakeFiles/partition_table_test.dir/partition_table_test.cc.o"
  "CMakeFiles/partition_table_test.dir/partition_table_test.cc.o.d"
  "partition_table_test"
  "partition_table_test.pdb"
  "partition_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

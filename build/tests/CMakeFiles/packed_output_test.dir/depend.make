# Empty dependencies file for packed_output_test.
# This may be replaced when dependencies are built.

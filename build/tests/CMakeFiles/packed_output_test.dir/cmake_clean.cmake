file(REMOVE_RECURSE
  "CMakeFiles/packed_output_test.dir/packed_output_test.cc.o"
  "CMakeFiles/packed_output_test.dir/packed_output_test.cc.o.d"
  "packed_output_test"
  "packed_output_test.pdb"
  "packed_output_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_output_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gpuonly_test.
# This may be replaced when dependencies are built.

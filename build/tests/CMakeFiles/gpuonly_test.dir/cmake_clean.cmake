file(REMOVE_RECURSE
  "CMakeFiles/gpuonly_test.dir/gpuonly_test.cc.o"
  "CMakeFiles/gpuonly_test.dir/gpuonly_test.cc.o.d"
  "gpuonly_test"
  "gpuonly_test.pdb"
  "gpuonly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuonly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

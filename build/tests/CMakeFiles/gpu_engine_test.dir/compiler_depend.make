# Empty compiler generated dependencies file for gpu_engine_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gpu_engine_test.dir/gpu_engine_test.cc.o"
  "CMakeFiles/gpu_engine_test.dir/gpu_engine_test.cc.o.d"
  "gpu_engine_test"
  "gpu_engine_test.pdb"
  "gpu_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_threads.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_db_size.
# This may be replaced when dependencies are built.

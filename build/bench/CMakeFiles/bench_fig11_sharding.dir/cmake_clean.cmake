file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sharding.dir/bench_fig11_sharding.cc.o"
  "CMakeFiles/bench_fig11_sharding.dir/bench_fig11_sharding.cc.o.d"
  "bench_fig11_sharding"
  "bench_fig11_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_baseline_families.
# This may be replaced when dependencies are built.

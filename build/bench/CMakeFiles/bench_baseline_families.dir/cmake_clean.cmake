file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_families.dir/bench_baseline_families.cc.o"
  "CMakeFiles/bench_baseline_families.dir/bench_baseline_families.cc.o.d"
  "bench_baseline_families"
  "bench_baseline_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gpuonly.dir/bench_ablation_gpuonly.cc.o"
  "CMakeFiles/bench_ablation_gpuonly.dir/bench_ablation_gpuonly.cc.o.d"
  "bench_ablation_gpuonly"
  "bench_ablation_gpuonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gpuonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

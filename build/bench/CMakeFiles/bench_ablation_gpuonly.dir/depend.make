# Empty dependencies file for bench_ablation_gpuonly.
# This may be replaced when dependencies are built.

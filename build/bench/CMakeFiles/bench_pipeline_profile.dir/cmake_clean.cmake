file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_profile.dir/bench_pipeline_profile.cc.o"
  "CMakeFiles/bench_pipeline_profile.dir/bench_pipeline_profile.cc.o.d"
  "bench_pipeline_profile"
  "bench_pipeline_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_pipeline_profile.
# This may be replaced when dependencies are built.

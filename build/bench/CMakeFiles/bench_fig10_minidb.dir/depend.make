# Empty dependencies file for bench_fig10_minidb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_minidb.dir/bench_fig10_minidb.cc.o"
  "CMakeFiles/bench_fig10_minidb.dir/bench_fig10_minidb.cc.o.d"
  "bench_fig10_minidb"
  "bench_fig10_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

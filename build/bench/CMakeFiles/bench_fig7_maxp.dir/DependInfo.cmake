
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_maxp.cc" "bench/CMakeFiles/bench_fig7_maxp.dir/bench_fig7_maxp.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_maxp.dir/bench_fig7_maxp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tagmatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tagmatch_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tagmatch_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tagmatch_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tagmatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_maxp.dir/bench_fig7_maxp.cc.o"
  "CMakeFiles/bench_fig7_maxp.dir/bench_fig7_maxp.cc.o.d"
  "bench_fig7_maxp"
  "bench_fig7_maxp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_maxp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

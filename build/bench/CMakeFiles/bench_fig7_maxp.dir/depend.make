# Empty dependencies file for bench_fig7_maxp.
# This may be replaced when dependencies are built.

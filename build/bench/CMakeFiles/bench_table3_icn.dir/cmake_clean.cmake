file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_icn.dir/bench_table3_icn.cc.o"
  "CMakeFiles/bench_table3_icn.dir/bench_table3_icn.cc.o.d"
  "bench_table3_icn"
  "bench_table3_icn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_icn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

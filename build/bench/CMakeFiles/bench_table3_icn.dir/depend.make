# Empty dependencies file for bench_table3_icn.
# This may be replaced when dependencies are built.

// Regenerates Figure 11: scalability of MongoDB (MiniDb) with sharding —
// a 3M-set database (scaled: 30K) of 3-tag sets, 6-tag queries, sharded
// over 1..24 instances with scatter-gather queries.
//
// The paper observes linear scaling to 8 instances and ~3x overall at 24 (on
// a 24-core machine); on fewer cores the curve flattens earlier.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/minidb/minidb.h"
#include "src/common/rng.h"

namespace tagmatch::bench {
namespace {

using workload::TagId;

void run() {
  print_header("Figure 11: MongoDB (MiniDb) sharding scalability",
               "Fig. 11 (queries per second)");

  const size_t n_sets = 30'000;  // Represents the paper's 3M.
  const uint32_t vocab = n_sets / 4 + 100;
  Rng rng(123);
  std::vector<std::vector<TagId>> sets;
  for (size_t i = 0; i < n_sets; ++i) {
    std::vector<TagId> tags;
    for (int t = 0; t < 3; ++t) {
      tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(vocab))));
    }
    sets.push_back(tags);
  }
  std::vector<std::vector<TagId>> queries;
  for (int i = 0; i < 40; ++i) {
    std::vector<TagId> q = sets[rng.below(sets.size())];
    while (q.size() < 6) {
      q.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(vocab))));
    }
    queries.push_back(q);
  }

  std::printf("%-8s  %14s  %10s\n", "shards", "queries/s", "speedup");
  double base_qps = 0;
  for (unsigned shards : {1u, 2u, 4u, 8u, 16u, 24u}) {
    baselines::ShardedMiniDb db(shards);
    for (size_t i = 0; i < sets.size(); ++i) {
      db.insert(static_cast<uint32_t>(i), sets[i]);
    }
    StopWatch watch;
    for (const auto& q : queries) {
      db.find_subset(q);
    }
    double qps = queries.size() / watch.elapsed_s();
    if (shards == 1) {
      base_qps = qps;
    }
    std::printf("%-8u  %14.2f  %9.2fx\n", shards, qps, qps / base_qps);
  }
  std::printf("(paper: linear to 8 instances, ~3x overall at 24; even perfectly linear\n"
              " sharding would need tens of thousands of instances to reach TagMatch)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

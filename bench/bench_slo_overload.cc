// bench_slo_overload — the broker's publish-latency SLO under overload.
//
// Drives the pathological case the SLO machinery exists for: slow consumers
// on small bounded queues with drop_on_overflow=false, so without an SLO
// every delivery to a full queue parks a pipeline thread until the consumer
// drains (publish p99 balloons to consumer pace). Reports, per mode, the
// shed/latency trade-off: publish latency percentiles next to the
// broker.slo.* accounting, so the cost of each escalation step (skip
// blocked subscribers -> deliver partial -> reject at admission) is visible
// in one table.
//
// Environment knobs:
//   TAGMATCH_BENCH_SLO_MSGS   publishes per mode        (default 1500)
//   TAGMATCH_BENCH_SLO_MS     the SLO budget in ms      (default 10)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/broker/broker.h"
#include "src/common/stats.h"

namespace {

using tagmatch::broker::Broker;
using tagmatch::broker::BrokerConfig;
using tagmatch::broker::Message;
using tagmatch::broker::SubscriberId;
using Tags = std::vector<std::string>;

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? static_cast<unsigned>(std::strtoul(v, nullptr, 10))
                                      : fallback;
}

struct RunResult {
  std::string label;
  uint64_t attempts = 0;
  uint64_t rejected = 0;
  uint64_t met = 0;
  uint64_t degraded = 0;
  uint64_t partial = 0;
  uint64_t dropped = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double seconds = 0;
};

RunResult run_mode(const std::string& label, std::chrono::milliseconds slo,
                   BrokerConfig::SloMode mode, unsigned shards, unsigned messages) {
  BrokerConfig config;
  config.engine.num_threads = 2;
  config.engine.num_gpus = 1;
  config.engine.streams_per_gpu = 2;
  config.engine.gpu_sms_per_device = 1;
  config.engine.gpu_costs.enforce = false;
  config.engine.batch_size = 8;
  config.engine.batch_timeout = std::chrono::milliseconds(2);
  config.engine_shards = shards;
  config.consolidate_interval = std::chrono::milliseconds(50);
  config.max_queue_per_subscriber = 32;
  config.drop_on_overflow = false;  // The blocking regime the SLO bounds.
  config.publish_slo = slo;
  config.slo_mode = mode;
  Broker broker(config);

  // 8 subscribers over 4 topics: every publish matches exactly 2 of them.
  constexpr unsigned kSubscribers = 8;
  constexpr unsigned kTopics = 4;
  std::vector<SubscriberId> subs;
  for (unsigned i = 0; i < kSubscribers; ++i) {
    SubscriberId id = broker.connect();
    broker.subscribe(id, Tags{"topic" + std::to_string(i % kTopics)});
    subs.push_back(id);
  }

  // Slow consumer: one poll round across all subscribers every 10 ms (0.1
  // msg/ms per subscriber) against ~0.25 msg/ms offered per subscriber, so
  // queues fill and stay full — the sustained-overload regime.
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (SubscriberId id : subs) {
        broker.poll(id);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  // Background churn, as in production: subscriptions come and go while the
  // consolidator folds them in.
  std::thread churner([&] {
    unsigned i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      SubscriberId id = broker.connect();
      broker.subscribe(id, Tags{"ephemeral" + std::to_string(i++ % 16)});
      broker.disconnect(id);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  RunResult r;
  r.label = label;
  tagmatch::StopWatch watch;
  for (unsigned i = 0; i < messages; ++i) {
    ++r.attempts;
    if (broker.publish(Message{Tags{"topic" + std::to_string(i % kTopics), "x"}, "payload"}) ==
        Broker::PublishResult::kRejected) {
      ++r.rejected;
    }
    // Paced offered load (~1k msg/s): still ~2x the drain capacity per
    // matching subscriber, but long enough that completion feedback reaches
    // the admission window — an instantaneous burst would finish publishing
    // before the first completions land.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  broker.flush();
  r.seconds = watch.elapsed_s();
  stop.store(true, std::memory_order_relaxed);
  consumer.join();
  churner.join();

  auto stats = broker.stats();
  r.met = stats.slo_met;
  r.degraded = stats.slo_degraded;
  r.partial = stats.slo_partial;
  r.dropped = stats.dropped;
  auto snap = broker.metrics_snapshot();
  const auto& lat = snap.histograms.at("broker.publish_latency_ns");
  r.p50_ms = lat.percentile(50) / 1e6;
  r.p95_ms = lat.percentile(95) / 1e6;
  r.p99_ms = lat.percentile(99) / 1e6;
  return r;
}

}  // namespace

int main() {
  const unsigned messages = env_unsigned("TAGMATCH_BENCH_SLO_MSGS", 1500);
  const auto slo = std::chrono::milliseconds(env_unsigned("TAGMATCH_BENCH_SLO_MS", 10));

  std::printf("\n=== bench_slo_overload ===\n");
  std::printf(
      "(broker publish path under overload: 8 subscribers on 32-slot blocking "
      "queues, ~1k msg/s drain, %u publishes per mode, SLO %lld ms)\n",
      messages, static_cast<long long>(slo.count()));

  std::vector<RunResult> rows;
  rows.push_back(run_mode("off", std::chrono::milliseconds(0),
                          BrokerConfig::SloMode::kSkipBlocked, 1, messages));
  rows.push_back(run_mode("skip", slo, BrokerConfig::SloMode::kSkipBlocked, 1, messages));
  rows.push_back(run_mode("partial(x2)", slo, BrokerConfig::SloMode::kDeliverPartial, 2, messages));
  rows.push_back(run_mode("reject", slo, BrokerConfig::SloMode::kRejectAdmission, 1, messages));

  std::printf("%-12s %9s %9s %9s %9s %9s %9s %9s %9s %9s %8s\n", "mode", "attempts", "rejected",
              "met", "degraded", "partial", "dropped", "p50_ms", "p95_ms", "p99_ms", "wall_s");
  for (const auto& r : rows) {
    std::printf("%-12s %9llu %9llu %9llu %9llu %9llu %9llu %9.2f %9.2f %9.2f %8.2f\n",
                r.label.c_str(), static_cast<unsigned long long>(r.attempts),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.met),
                static_cast<unsigned long long>(r.degraded),
                static_cast<unsigned long long>(r.partial),
                static_cast<unsigned long long>(r.dropped), r.p50_ms, r.p95_ms, r.p99_ms,
                r.seconds);
  }

  // Accounting check: every attempt is exactly one of rejected or completed
  // (met + degraded) once the flush has drained the pipeline; the SLO-off
  // row keeps all SLO counters at zero.
  bool ok = true;
  for (const auto& r : rows) {
    const bool slo_row = r.label != "off";
    const uint64_t classified = r.met + r.degraded + r.rejected;
    if (slo_row && classified != r.attempts) {
      std::printf("ACCOUNTING MISMATCH in %s: met+degraded+rejected = %llu, attempts = %llu\n",
                  r.label.c_str(), static_cast<unsigned long long>(classified),
                  static_cast<unsigned long long>(r.attempts));
      ok = false;
    }
    if (!slo_row && classified != 0) {
      std::printf("SLO-off row has nonzero SLO counters\n");
      ok = false;
    }
  }
  std::printf("accounting: %s\n", ok ? "every publish classified exactly once" : "MISMATCH");
  return ok ? 0 : 1;
}

// Micro-benchmarks (google-benchmark) for the hot primitives underneath the
// paper's throughput numbers: the three-block subset check, Bloom encoding,
// partition-table lookup, the packed output codec, and Algorithm 1 itself.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/common/rng.h"
#include "src/core/packed_output.h"
#include "src/core/partition_table.h"
#include "src/core/partitioner.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"

namespace tagmatch {
namespace {

std::vector<BitVector192> random_filters(size_t n, unsigned bits, uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector192> out(n);
  for (auto& f : out) {
    for (unsigned i = 0; i < bits; ++i) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
  }
  return out;
}

void BM_SubsetCheck(benchmark::State& state) {
  auto filters = random_filters(1024, 35, 1);
  auto queries = random_filters(1024, 60, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filters[i & 1023].subset_of(queries[(i * 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_SubsetCheck);

void BM_BloomEncodeTagIds(benchmark::State& state) {
  std::vector<workload::TagId> tags;
  for (uint32_t i = 0; i < state.range(0); ++i) {
    tags.push_back(workload::make_hashtag(i % 8, i * 977));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::encode_tags(tags));
  }
}
BENCHMARK(BM_BloomEncodeTagIds)->Arg(5)->Arg(10);

void BM_BloomEncodeStrings(benchmark::State& state) {
  std::vector<std::string> tags;
  for (int i = 0; i < 5; ++i) {
    tags.push_back("hashtag" + std::to_string(i * 977));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BloomFilter192::of(tags));
  }
}
BENCHMARK(BM_BloomEncodeStrings);

// --- Per-scheme primitives (src/sig) ---------------------------------------
// The same hot loops, once per registered signature scheme, so a single run
// shows where the blocked schemes buy their speedup: encode collapses from 7
// scattered mod-192 set()s to one (or two) precomposed 64-bit ORs, and probe
// from 7 bit tests to one (or two) masked compares.

void BM_SchemeEncodeTagIds(benchmark::State& state, const sig::SignatureScheme* scheme) {
  std::vector<workload::TagId> tags;
  for (uint32_t i = 0; i < state.range(0); ++i) {
    tags.push_back(workload::make_hashtag(i % 8, i * 977));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::encode_tags(tags, *scheme));
  }
}
BENCHMARK_CAPTURE(BM_SchemeEncodeTagIds, bloom192, &sig::bloom192_scheme())->Arg(5)->Arg(10);
BENCHMARK_CAPTURE(BM_SchemeEncodeTagIds, blocked64, &sig::blocked64_scheme())->Arg(5)->Arg(10);
BENCHMARK_CAPTURE(BM_SchemeEncodeTagIds, twochoice64, &sig::twochoice64_scheme())
    ->Arg(5)
    ->Arg(10);

void BM_SchemeProbe(benchmark::State& state, const sig::SignatureScheme* scheme) {
  Rng rng(6);
  std::vector<Hash128> hashes(1024);
  BitVector192 bits;
  for (auto& h : hashes) {
    h = workload::tag_id_hash128(static_cast<workload::TagId>(rng.below(1u << 24)));
  }
  for (size_t i = 0; i < 64; ++i) {
    scheme->add_hash(bits, hashes[i * 16]);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->probe(bits, hashes[i & 1023]));
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_SchemeProbe, bloom192, &sig::bloom192_scheme());
BENCHMARK_CAPTURE(BM_SchemeProbe, blocked64, &sig::blocked64_scheme());
BENCHMARK_CAPTURE(BM_SchemeProbe, twochoice64, &sig::twochoice64_scheme());

void BM_SubsetTestVariant(benchmark::State& state, sig::KernelVariant variant) {
  auto filters = random_filters(1024, 35, 1);
  auto queries = random_filters(1024, 60, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sig::subset_test(variant, filters[i & 1023], queries[(i * 7) & 1023]));
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_SubsetTestVariant, branch_chain, sig::KernelVariant::kBranchChain);
BENCHMARK_CAPTURE(BM_SubsetTestVariant, or_reduce, sig::KernelVariant::kOrReduce);

void BM_PrefilterBatch(benchmark::State& state, sig::KernelVariant variant) {
  auto queries = random_filters(256, 60, 7);
  auto masks = random_filters(64, 12, 8);
  uint8_t out[256];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::prefilter_batch(variant, masks[i & 63], queries, out));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(queries.size()));
}
BENCHMARK_CAPTURE(BM_PrefilterBatch, branch_chain, sig::KernelVariant::kBranchChain);
BENCHMARK_CAPTURE(BM_PrefilterBatch, or_reduce, sig::KernelVariant::kOrReduce);

void BM_PartitionTableLookup(benchmark::State& state) {
  auto filters = random_filters(100'000, 35, 3);
  auto partitions = balance_partitions(filters, static_cast<uint32_t>(state.range(0)));
  PartitionTable pt;
  for (PartitionId id = 0; id < partitions.size(); ++id) {
    pt.add(partitions[id].mask, id);
  }
  auto queries = random_filters(1024, 60, 4);
  size_t i = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    pt.find_matches(queries[i & 1023], [&](PartitionId) { ++hits; });
    ++i;
  }
  benchmark::DoNotOptimize(hits);
  state.counters["partitions"] = static_cast<double>(partitions.size());
}
BENCHMARK(BM_PartitionTableLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PackedCodecWrite(benchmark::State& state) {
  std::vector<std::byte> buf(PackedResultCodec::bytes_for(4096));
  size_t i = 0;
  for (auto _ : state) {
    PackedResultCodec::write(buf.data(), i & 4095,
                             ResultPair{static_cast<uint8_t>(i), static_cast<uint32_t>(i)});
    ++i;
  }
  benchmark::DoNotOptimize(buf.data());
}
BENCHMARK(BM_PackedCodecWrite);

void BM_BalancedPartitioning(benchmark::State& state) {
  auto filters = random_filters(static_cast<size_t>(state.range(0)), 35, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance_partitions(filters, 1000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BalancedPartitioning)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tagmatch

BENCHMARK_MAIN();

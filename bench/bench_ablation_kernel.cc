// Ablation for the kernel and workflow optimizations of §3.3.1-§3.3.2:
//  * block-level common-prefix pre-filtering (Algorithm 4) on/off;
//  * packed 4+4 output layout vs naive 8-byte pairs (38% bus waste);
//  * even/odd double-buffered result transfer vs the straightforward
//    length-copy + synchronize + result-copy scheme.
#include <cstdio>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.db.size();
  print_header("Ablation (§3.3): kernel and workflow optimizations",
               "§3.3.1-§3.3.2 (match Kq/s, feature toggles)");

  auto queries = w.encoded_queries(6000, 2, 4);
  struct Case {
    const char* name;
    void (*tweak)(TagMatchConfig&);
  };
  const Case cases[] = {
      {"all optimizations (default)", [](TagMatchConfig&) {}},
      {"no prefix pre-filter", [](TagMatchConfig& c) { c.enable_prefix_filter = false; }},
      {"unpacked (padded) output", [](TagMatchConfig& c) { c.packed_output = false; }},
      {"single-buffered results", [](TagMatchConfig& c) { c.double_buffered_results = false; }},
      {"none of the three",
       [](TagMatchConfig& c) {
         c.enable_prefix_filter = false;
         c.packed_output = false;
         c.double_buffered_results = false;
       }},
  };

  std::printf("%-30s  %12s\n", "configuration", "match Kq/s");
  for (const Case& c : cases) {
    TagMatchConfig config = bench_engine_config(n);
    c.tweak(config);
    TagMatch tm(config);
    populate_tagmatch(tm, w, n);
    auto r = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    std::printf("%-30s  %12.2f\n", c.name, r.kqps());
  }
  std::printf("(the paper reports the prefix filter as the most significant kernel\n"
              " optimization; the packed layout saves 38%% of result bus traffic; the\n"
              " double-buffer scheme removes one round trip and one copy per batch)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

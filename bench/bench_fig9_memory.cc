// Regenerates Figure 9: TagMatch memory usage on the host (dominated by the
// key table, plus the partition table and the CPU<->GPU communication
// buffers) and on the GPUs (dominated by the tagset table) as the database
// grows.
#include <cstdio>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  print_header("Figure 9: memory usage (host vs GPU)", "Fig. 9 (GB in the paper)");

  std::printf("%-10s  %12s  %14s  %14s  %14s  %14s\n", "db size", "sets", "host keytab",
              "host part.tab", "host buffers", "GPU total");
  for (unsigned frac : {20u, 40u, 60u, 80u, 100u}) {
    const size_t n = w.prefix_size(frac);
    TagMatch tm(bench_engine_config(w.db.size()));
    populate_tagmatch(tm, w, n);
    auto s = tm.stats();
    std::printf("%8u%%  %12llu  %14s  %14s  %14s  %14s\n", frac,
                static_cast<unsigned long long>(s.unique_sets),
                format_bytes(s.host_key_table_bytes).c_str(),
                format_bytes(s.host_partition_table_bytes).c_str(),
                format_bytes(s.host_buffer_bytes).c_str(), format_bytes(s.gpu_bytes).c_str());
  }
  std::printf("(paper: host memory almost entirely the key table, growing linearly to\n"
              " ~20 GB at 212M sets; GPU memory dominated by the tagset table, ~6 GB/GPU;\n"
              " partition table and buffers are small constants)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

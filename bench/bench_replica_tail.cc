// Replica tail-latency bench: hedged reads vs plain round-robin when one
// replica of a replicated shard is injected-slow.
//
// Two phases over the same workload, each against a fresh 1-shard x
// 2-replica router whose replica 1 stalls every completion by a fault-plan
// `stall_ns` (default 25 ms — an order of magnitude above healthy service
// time, the "sick but not dead" replica of §2.4's tail discussion):
//
//   * unhedged (hedge_delay = 0): no sweeper, no health tracking — round
//     robin keeps consulting the slow replica, so ~half the queries pay the
//     stall and p99 ~= stall.
//   * hedged (hedge_delay = 2 ms): the sweeper re-dispatches overdue queries
//     to the fast replica, and the slow replica's consecutive hedge misses
//     quarantine it out of rotation entirely; p99 collapses to healthy
//     service time plus at most one hedge delay.
//
// The contract gated in CI (tools/perf_gate.py --replica-baseline) is
// self-relative so machine speed cancels out: hedged p99 must stay below
// max_hedged_over_unhedged_p99 (baseline contract, 0.5 = the issue's ">= 2x
// better") of the SAME build's unhedged p99.
//
// Usage: bench_replica_tail [--json FILE]
//   --json FILE: write the run as a JSON artifact for the perf gate.
// Env: TAGMATCH_BENCH_REPLICA_STALL_MS, TAGMATCH_BENCH_HEDGE_MS.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/inject/fault.h"
#include "src/shard/sharded_tagmatch.h"

namespace tagmatch::bench {
namespace {

using Key = Matcher::Key;
using SteadyClock = std::chrono::steady_clock;
using inject::FaultInjector;
using inject::FaultPlan;
using shard::ShardedConfig;
using shard::ShardedTagMatch;

int64_t percentile_ns(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(idx), v.end());
  return v[idx];
}

struct Phase {
  std::vector<int64_t> latencies_ns;
  double seconds = 0;
  ShardedTagMatch::ShardStats stats;
  double kqps() const { return latencies_ns.size() / seconds / 1e3; }
};

// One shard, two replicas, replica 1 stalled. A fresh router per phase keeps
// the rolling hedge-budget estimator and health history of one phase from
// leaking into the other.
ShardedConfig phase_config(size_t db_size, int64_t stall_ns, unsigned hedge_ms) {
  ShardedConfig c;
  c.num_shards = 1;
  c.num_replicas = 2;
  c.hedge_delay = std::chrono::milliseconds(hedge_ms);
  c.shard = bench_engine_config(db_size, /*threads=*/2);
  c.shard.num_gpus = 1;
  c.shard.streams_per_gpu = 4;
  c.shard.result_buffer_entries = 1u << 14;
  // The windowed driver below holds only a few queries in flight, so batches
  // rarely fill; the flusher must close and drain them for latency to mean
  // service time rather than "wait for the next batch".
  c.shard.batch_timeout = std::chrono::milliseconds(2);
  auto plan =
      FaultPlan::parse("replica:dev=1,after=0,count=0,stall_ns=" + std::to_string(stall_ns));
  c.shard.fault_injector = std::make_shared<FaultInjector>(*plan);
  return c;
}

// Streams `count` queries with a bounded window outstanding and records
// per-query completion latency (the replica layer's callback, i.e. first
// replica to answer — hedged or not).
Phase run_phase(const BenchWorkload& w, const std::vector<BitVector192>& queries,
                size_t count, ShardedConfig config) {
  ShardedTagMatch router(std::move(config));
  const size_t n = w.prefix_size(10);
  for (size_t i = 0; i < n; ++i) {
    router.add_set(BloomFilter192(w.db_filters[i]), w.db[i].key);
  }
  router.consolidate();

  constexpr size_t kWindow = 8;
  Phase r;
  r.latencies_ns.reserve(count);
  std::mutex mu;
  std::condition_variable cv;
  size_t outstanding = 0;
  StopWatch watch;
  for (size_t i = 0; i < count; ++i) {
    {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return outstanding < kWindow; });
      ++outstanding;
    }
    const auto start = SteadyClock::now();
    router.match_async(BloomFilter192(queries[i % queries.size()]),
                       Matcher::MatchKind::kMatchUnique,
                       [start, &mu, &cv, &outstanding, &r](std::vector<Key>) {
                         const auto ns =
                             std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 SteadyClock::now() - start)
                                 .count();
                         {
                           std::lock_guard lock(mu);
                           r.latencies_ns.push_back(ns);
                           --outstanding;
                         }
                         cv.notify_one();
                       });
  }
  {
    // Latency capture ends when the last callback lands; flush() below also
    // waits out the slow replica's still-stalled shadow completions, which
    // would inflate the phase wall time.
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  r.seconds = watch.elapsed_s();
  r.stats = router.shard_stats();
  router.flush();
  return r;
}

void print_phase(const char* name, const Phase& p) {
  std::printf("%-10s  %10.1f  %10.1f  %10.2f  %8llu  %9llu\n", name,
              percentile_ns(p.latencies_ns, 50) / 1e3, percentile_ns(p.latencies_ns, 99) / 1e3,
              p.kqps(), static_cast<unsigned long long>(p.stats.hedged),
              static_cast<unsigned long long>(p.stats.failovers));
}

void write_json(const char* path, size_t db_size, int64_t stall_ns, unsigned hedge_ms,
                const Phase& unhedged, const Phase& hedged) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_replica_tail: cannot write %s\n", path);
    return;
  }
  const double ratio = percentile_ns(unhedged.latencies_ns, 99) > 0
                           ? static_cast<double>(percentile_ns(hedged.latencies_ns, 99)) /
                                 static_cast<double>(percentile_ns(unhedged.latencies_ns, 99))
                           : 0.0;
  std::fprintf(f, "{\n  \"bench\": \"replica_tail\",\n  \"db_size\": %zu,\n", db_size);
  std::fprintf(f, "  \"stall_ns\": %lld,\n  \"hedge_ms\": %u,\n",
               static_cast<long long>(stall_ns), hedge_ms);
  std::fprintf(f,
               "  \"unhedged\": {\"p50_ns\": %lld, \"p99_ns\": %lld, \"queries\": %zu, "
               "\"kqps\": %.3f},\n",
               static_cast<long long>(percentile_ns(unhedged.latencies_ns, 50)),
               static_cast<long long>(percentile_ns(unhedged.latencies_ns, 99)),
               unhedged.latencies_ns.size(), unhedged.kqps());
  std::fprintf(f,
               "  \"hedged\": {\"p50_ns\": %lld, \"p99_ns\": %lld, \"queries\": %zu, "
               "\"kqps\": %.3f, \"hedges\": %llu, \"failovers\": %llu},\n",
               static_cast<long long>(percentile_ns(hedged.latencies_ns, 50)),
               static_cast<long long>(percentile_ns(hedged.latencies_ns, 99)),
               hedged.latencies_ns.size(), hedged.kqps(),
               static_cast<unsigned long long>(hedged.stats.hedged),
               static_cast<unsigned long long>(hedged.stats.failovers));
  std::fprintf(f, "  \"hedged_over_unhedged_p99\": %.4f\n}\n", ratio);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void run(const char* json_path) {
  BenchWorkload& w = shared_workload();
  print_header("Replica tail: hedged reads vs an injected-slow replica",
               "replicated shards (ARCHITECTURE.md section 16); tail tolerance via hedging");

  const int64_t stall_ns =
      static_cast<int64_t>(env_unsigned("TAGMATCH_BENCH_REPLICA_STALL_MS", 25)) * 1'000'000;
  const unsigned hedge_ms = env_unsigned("TAGMATCH_BENCH_HEDGE_MS", 2);
  const size_t db_size = w.prefix_size(10);
  auto queries = w.encoded_queries(512, 2, 4);
  constexpr size_t kQueries = 300;

  std::printf("db %zu sets, 1 shard x 2 replicas, replica 1 stalled %lld ms, "
              "%zu queries per phase\n\n",
              db_size, static_cast<long long>(stall_ns / 1'000'000), kQueries);
  std::printf("%-10s  %10s  %10s  %10s  %8s  %9s\n", "phase", "p50 us", "p99 us", "Kq/s",
              "hedges", "failovers");

  Phase unhedged = run_phase(w, queries, kQueries, phase_config(db_size, stall_ns, 0));
  print_phase("unhedged", unhedged);
  Phase hedged = run_phase(w, queries, kQueries, phase_config(db_size, stall_ns, hedge_ms));
  print_phase("hedged", hedged);

  const double ratio = percentile_ns(unhedged.latencies_ns, 99) > 0
                           ? static_cast<double>(percentile_ns(hedged.latencies_ns, 99)) /
                                 static_cast<double>(percentile_ns(unhedged.latencies_ns, 99))
                           : 0.0;
  std::printf("\nhedged p99 / unhedged p99 = %.3f (gate contract: <= 0.5, i.e. hedging\n"
              " must cut the slow-replica tail at least 2x)\n",
              ratio);

  if (json_path != nullptr) {
    write_json(json_path, db_size, stall_ns, hedge_ms, unhedged, hedged);
  }
}

}  // namespace
}  // namespace tagmatch::bench

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }
  tagmatch::bench::run(json_path);
  return 0;
}

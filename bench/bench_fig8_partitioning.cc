// Regenerates Figure 8: running time of the off-line partitioning
// (consolidate) as a function of the database size — expected linear — plus
// the paper's rough comparison with MongoDB ingestion (33 s for 5M sets vs
// ~2 s of partitioning).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/minidb/minidb.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  print_header("Figure 8: off-line partitioning time", "Fig. 8 (seconds, MAX_P = db/1000)");

  std::printf("%-10s  %12s  %16s\n", "db size", "sets", "consolidate s");
  for (unsigned frac : {20u, 40u, 60u, 80u, 100u}) {
    const size_t n = w.prefix_size(frac);
    TagMatch tm(bench_engine_config(w.db.size()));
    populate_tagmatch(tm, w, n);
    std::printf("%8u%%  %12zu  %16.3f\n", frac, n, tm.stats().last_consolidate_seconds);
  }

  // MongoDB comparison (scaled): ingest the same sets into the document
  // store, with its multikey index maintained.
  const size_t mini_n = w.prefix_size(20);
  baselines::MiniDbConfig mconfig;
  mconfig.query_roundtrip_ns = 0;
  baselines::MiniDb mini(mconfig);
  StopWatch watch;
  for (size_t i = 0; i < mini_n; ++i) {
    mini.insert(w.db[i].key, w.db[i].tags);
  }
  double mini_s = watch.elapsed_s();
  std::printf("\nMiniDb (MongoDB-like) ingestion of %zu sets with multikey index: %.3f s\n",
              mini_n, mini_s);
  std::printf("(paper: partitioning linear in db size, ~50 s for the full 212M sets;\n"
              " MongoDB needs ~33 s for a 5M-set table that TagMatch partitions in ~2 s)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Table 3: TagMatch vs the CPU prefix tree vs the ICN matcher at
// 10% and 20% of the full Twitter database, for match and match-unique.
// (The ICN matcher cannot build beyond ~20% within its construction-memory
// budget — the condition the paper reports on its 64 GB machine.)
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/icn/icn_matcher.h"
#include "src/baselines/prefix_tree/prefix_tree.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  print_header("Table 3: comparison with the prefix tree and the ICN matcher",
               "Table 3 (thousand queries per second)");

  std::printf("%-14s  %12s  %12s  %12s  %12s\n", "system", "10% match", "20% match",
              "10% m-uniq", "20% m-uniq");
  struct Cells {
    double v[4];
  };
  Cells tm_cells{}, pt_cells{}, icn_cells{};

  int col = 0;
  for (unsigned frac : {10u, 20u}) {
    const size_t n = w.prefix_size(frac);
    auto queries = w.encoded_queries(8000, 2, 4);

    TagMatch tm(bench_engine_config(n));
    populate_tagmatch(tm, w, n);
    tm_cells.v[col] = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch).kqps();
    tm_cells.v[col + 2] = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique).kqps();

    baselines::PrefixTreeMatcher tree;
    baselines::IcnMatcher icn;  // Unlimited budget: 20% always fits.
    for (size_t i = 0; i < n; ++i) {
      tree.add(w.db_filters[i], w.db[i].key);
      icn.add(w.db_filters[i], w.db[i].key);
    }
    tree.build();
    icn.build();
    pt_cells.v[col] = run_cpu_matcher(tree, queries, false).kqps();
    pt_cells.v[col + 2] = run_cpu_matcher(tree, queries, true).kqps();
    icn_cells.v[col] = run_cpu_matcher(icn, queries, false).kqps();
    icn_cells.v[col + 2] = run_cpu_matcher(icn, queries, true).kqps();
    ++col;
  }

  auto print_row = [](const char* name, const Cells& c) {
    std::printf("%-14s  %12.2f  %12.2f  %12.2f  %12.2f\n", name, c.v[0], c.v[1], c.v[2], c.v[3]);
  };
  print_row("TagMatch", tm_cells);
  print_row("Prefix tree", pt_cells);
  print_row("ICN matcher", icn_cells);
  std::printf("(paper: TagMatch 268.8/144.4/249.3/133.0; prefix 21.1/14.0/21.0/13.8;\n"
              " ICN 27.6/17.4/27.5/16.8 — ICN above the prefix tree, TagMatch ~10x both)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

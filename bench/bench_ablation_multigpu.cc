// Ablation for §3's multi-GPU table layouts: full replication of the tagset
// table on every device (maximal inter-GPU parallelism — the paper's
// default) vs partitioning the table across devices (halved per-device
// memory with two GPUs, at the cost of binding each partition's batches to
// one device's streams). The paper describes both modes; this bench
// quantifies the memory/throughput trade-off.
#include <cstdio>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.db.size();
  print_header("Ablation (§3): replicated vs partitioned tagset table",
               "§3 'System Implementation' (match Kq/s and device memory)");

  auto queries = w.encoded_queries(6000, 2, 4);
  std::printf("%-24s  %12s  %14s  %16s\n", "table mode", "match Kq/s", "match-uniq Kq/s",
              "GPU memory (all)");
  for (auto mode : {TagMatchConfig::GpuTableMode::kReplicate,
                    TagMatchConfig::GpuTableMode::kPartition}) {
    TagMatchConfig config = bench_engine_config(n);
    config.gpu_table_mode = mode;
    TagMatch tm(config);
    populate_tagmatch(tm, w, n);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    std::printf("%-24s  %12.2f  %14.2f  %16s\n",
                mode == TagMatchConfig::GpuTableMode::kReplicate ? "replicated (default)"
                                                                 : "partitioned",
                r_match.kqps(), r_unique.kqps(), format_bytes(tm.stats().gpu_bytes).c_str());
  }
  std::printf("(expected: partitioning stores each set once instead of once per GPU —\n"
              " roughly half the tagset-table memory with 2 GPUs — while replication\n"
              " retains the most scheduling freedom and peak throughput)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Figure 4: average input throughput for match (left) and
// match-unique (right) as the database grows from 20% to 100% of the full
// workload, TagMatch vs the CPU prefix tree.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/prefix_tree/prefix_tree.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  print_header("Figure 4: throughput vs database size", "Fig. 4 (Kq/s)");

  std::printf("%-10s  %12s  %12s  %14s  %14s\n", "db size", "TM match", "PT match",
              "TM match-uniq", "PT match-uniq");
  for (unsigned frac : {20u, 40u, 60u, 80u, 100u}) {
    const size_t n = w.prefix_size(frac);
    auto queries = w.encoded_queries(6000, 2, 4);

    TagMatch tm(bench_engine_config(n));
    populate_tagmatch(tm, w, n);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);

    baselines::PrefixTreeMatcher tree;
    for (size_t i = 0; i < n; ++i) {
      tree.add(w.db_filters[i], w.db[i].key);
    }
    tree.build();
    std::vector<BitVector192> tq(queries.begin(), queries.begin() + 3000);
    auto p_match = run_cpu_matcher(tree, tq, /*unique=*/false);
    auto p_unique = run_cpu_matcher(tree, tq, /*unique=*/true);

    std::printf("%8u%%  %12.2f  %12.2f  %14.2f  %14.2f\n", frac, r_match.kqps(), p_match.kqps(),
                r_unique.kqps(), p_unique.kqps());
  }
  std::printf("(paper at 100%%: TagMatch >35K match / >30K match-unique q/s vs ~4.4K for\n"
              " the prefix tree; at 20%%: >140K / >130K vs <14K. Expected shape: both\n"
              " systems fall roughly as 1/size; TagMatch above the prefix tree)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// The §1 "two families" experiment (no paper figure; supports the paper's
// introductory argument): scan/index-based subset matching degrades
// polynomially with query size, while Rivest-style subset enumeration (hash
// table + 2^|q| probes) blows up exponentially — "neither one is ideal in
// all cases". Also shows the counting inverted index as the third classic
// approach.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/inverted/inverted_index.h"
#include "src/baselines/prefix_tree/prefix_tree.h"
#include "src/baselines/subset_enum/subset_enum.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(20);
  print_header("Baseline families: trie scan vs subset enumeration vs inverted index",
               "§1's algorithmic dichotomy (queries/s by query size)");

  baselines::PrefixTreeMatcher tree;
  baselines::SubsetEnumMatcher subset_enum;
  baselines::InvertedIndexMatcher inverted;
  for (size_t i = 0; i < n; ++i) {
    tree.add(w.db_filters[i], w.db[i].key);
    subset_enum.add(w.db[i].tags, w.db[i].key);
    inverted.add(w.db[i].tags, w.db[i].key);
  }
  tree.build();
  subset_enum.build();
  inverted.build();

  std::printf("%-12s  %14s  %16s  %14s  %12s\n", "query tags", "prefix tree q/s",
              "subset-enum q/s", "inverted q/s", "enum probes");
  for (unsigned extra : {1u, 3u, 5u, 8u, 12u, 16u}) {
    auto qops = w.generator.generate_queries_exact_extra(w.db, 300, extra);
    // Trie path (signatures).
    std::vector<BitVector192> encoded;
    for (const auto& q : qops) {
      encoded.push_back(workload::encode_tags(q.tags).bits());
    }
    auto tree_r = run_cpu_matcher(tree, encoded, /*unique=*/false);

    // Subset enumeration (exact tags). Fewer queries at large sizes — each
    // costs 2^|q| probes.
    const size_t enum_queries = extra >= 12 ? 20 : 100;
    StopWatch enum_watch;
    uint64_t probes = 0;
    size_t enum_done = 0;
    for (size_t i = 0; i < enum_queries && i < qops.size(); ++i) {
      auto r = subset_enum.match(qops[i].tags);
      if (r.ok) {
        probes += r.probes;
        ++enum_done;
      }
    }
    double enum_qps = enum_done > 0 ? enum_done / enum_watch.elapsed_s() : 0;

    StopWatch inv_watch;
    for (const auto& q : qops) {
      inverted.match(q.tags);
    }
    double inv_qps = qops.size() / inv_watch.elapsed_s();

    std::printf("%-12u  %14.0f  %16.0f  %14.0f  %12.0f\n", extra, tree_r.qps(), enum_qps,
                inv_qps, enum_done > 0 ? static_cast<double>(probes) / enum_done : 0.0);
  }
  std::printf("(expected: the trie declines polynomially; subset enumeration halves\n"
              " its throughput with every added tag — 2^|q| hash probes per query)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

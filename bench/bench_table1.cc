// Regenerates Table 1: summary throughput of TagMatch vs GPU-only and
// CPU-only systems at three database sizes (the paper's 20M/40M/212M sets,
// i.e. ~10%, ~20% and 100% of the full Twitter database; here the same
// fractions of the bench-scale database). Throughput in thousands of
// `match` queries per second.
#include <cstdio>
#include <optional>

#include "bench/bench_common.h"
#include "src/baselines/icn/icn_matcher.h"
#include "src/baselines/prefix_tree/prefix_tree.h"
#include "src/baselines/scan/scan_matchers.h"

namespace tagmatch::bench {
namespace {

using baselines::GpuBatchedMatcher;
using baselines::GpuPlainMatcher;
using baselines::GpuScanConfig;
using baselines::IcnMatcher;
using baselines::PrefixTreeMatcher;

struct Row {
  std::string name;
  std::vector<std::string> cells;
};

std::string kqps_cell(double kqps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.2f", kqps);
  return buf;
}

void run() {
  BenchWorkload& w = shared_workload();
  const std::vector<unsigned> fractions = {10, 20, 100};
  print_header("Table 1: TagMatch vs CPU-only and GPU-only systems",
               "Table 1 (throughput, thousand match-queries/s)");

  // The ICN matcher's construction-phase memory budget is set so that (as on
  // the paper's 64 GB machine) it can index 20% of the database but not
  // 100%.
  uint64_t icn_budget;
  {
    IcnMatcher probe;
    for (size_t i = 0; i < w.prefix_size(40); ++i) {
      probe.add(w.db_filters[i], w.db[i].key);
    }
    icn_budget = probe.estimated_build_bytes();
  }

  std::vector<Row> rows = {{"GPU-only, plain", {}},
                           {"GPU-only, plain with batching", {}},
                           {"CPU-only, fast prefix tree", {}},
                           {"CPU-only, state-of-the-art ICN", {}},
                           {"CPU-only, TagMatch", {}},
                           {"TagMatch", {}}};

  for (unsigned frac : fractions) {
    const size_t n = w.prefix_size(frac);
    auto queries = w.encoded_queries(8000, 2, 4);
    std::vector<BitVector192> few(queries.begin(), queries.begin() + 300);

    // GPU-only, plain: one query per kernel round trip over the whole DB.
    {
      GpuScanConfig config;
      GpuPlainMatcher gpu(config);
      for (size_t i = 0; i < n; ++i) {
        gpu.add(w.db_filters[i], w.db[i].key);
      }
      gpu.build();
      StopWatch watch;
      uint64_t keys = 0;
      for (const auto& q : few) {
        keys += gpu.match(q).size();
      }
      rows[0].cells.push_back(kqps_cell(few.size() / watch.elapsed_s() / 1e3));
      (void)keys;
    }

    // GPU-only, batched: 256 queries per kernel, still whole-DB scans.
    {
      GpuScanConfig config;
      GpuBatchedMatcher gpu(config);
      for (size_t i = 0; i < n; ++i) {
        gpu.add(w.db_filters[i], w.db[i].key);
      }
      gpu.build();
      StopWatch watch;
      for (size_t off = 0; off < queries.size(); off += 256) {
        size_t take = std::min<size_t>(256, queries.size() - off);
        gpu.match_batch_queries(std::span(queries.data() + off, take));
      }
      rows[1].cells.push_back(kqps_cell(queries.size() / watch.elapsed_s() / 1e3));
    }

    // CPU-only, fast prefix tree.
    {
      PrefixTreeMatcher tree;
      for (size_t i = 0; i < n; ++i) {
        tree.add(w.db_filters[i], w.db[i].key);
      }
      tree.build();
      auto r = run_cpu_matcher(tree, queries, /*unique=*/false);
      rows[2].cells.push_back(kqps_cell(r.kqps()));
    }

    // CPU-only, ICN matcher (memory-capped build, as in the paper).
    {
      IcnMatcher icn(icn_budget);
      for (size_t i = 0; i < n; ++i) {
        icn.add(w.db_filters[i], w.db[i].key);
      }
      if (icn.build()) {
        auto r = run_cpu_matcher(icn, queries, /*unique=*/false);
        rows[3].cells.push_back(kqps_cell(r.kqps()));
      } else {
        rows[3].cells.push_back("         -");
      }
    }

    // CPU-only TagMatch: the full pipeline with the subset-match stage on
    // the CPU.
    {
      TagMatchConfig config = bench_engine_config(n);
      config.cpu_only = true;
      TagMatch tm(config);
      populate_tagmatch(tm, w, n);
      auto r = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
      rows[4].cells.push_back(kqps_cell(r.kqps()));
    }

    // TagMatch (hybrid CPU/GPU).
    {
      TagMatch tm(bench_engine_config(n));
      populate_tagmatch(tm, w, n);
      auto r = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
      rows[5].cells.push_back(kqps_cell(r.kqps()));
    }
  }

  std::printf("%-32s", "system \\ database size");
  for (unsigned frac : fractions) {
    std::printf("  %6u%% (%zu)", frac, shared_workload().prefix_size(frac));
  }
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-32s", row.name.c_str());
    for (const auto& cell : row.cells) {
      std::printf("  %s", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("(paper, Kq/s at 20M/40M/212M: plain 0.40/0.20/0.04; batched 11.5/6.3/1.2;\n"
              " prefix 21.1/14.0/4.3; ICN 27.6/17.4/-; CPU-TagMatch 3.9/3.4/0.68;\n"
              " TagMatch 268.8/144.4/35.3)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Figure 10: TagMatch vs MongoDB (MiniDb) on the paper's crafted
// small workloads — databases of 1M/3M/5M sets with 2 or 3 tags each,
// queries with a growing number of tags (the paper plots seconds/query on a
// log scale). Scaled to 1%: 10K/30K/50K documents.
//
// Expected shape: MiniDb's per-query latency is linear in the collection
// size and INSENSITIVE to tags-per-set and query size (collection scan);
// TagMatch is orders of magnitude faster throughout.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/minidb/minidb.h"
#include "src/common/rng.h"

namespace tagmatch::bench {
namespace {

using workload::TagId;

struct Crafted {
  std::vector<std::vector<TagId>> sets;
  std::vector<uint32_t> keys;
};

Crafted craft(size_t n_sets, unsigned tags_per_set, uint64_t seed) {
  // Vocabulary sized for "similar selectivity" to the paper's workload:
  // queries match a handful of documents.
  Rng rng(seed);
  Crafted c;
  const uint32_t vocab = static_cast<uint32_t>(n_sets / 4 + 100);
  for (size_t i = 0; i < n_sets; ++i) {
    std::vector<TagId> tags;
    for (unsigned t = 0; t < tags_per_set; ++t) {
      tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(vocab))));
    }
    c.sets.push_back(tags);
    c.keys.push_back(static_cast<uint32_t>(i));
  }
  return c;
}

std::vector<std::vector<TagId>> craft_queries(const Crafted& c, size_t count, unsigned extra,
                                              uint64_t seed) {
  Rng rng(seed);
  const uint32_t vocab = static_cast<uint32_t>(c.sets.size() / 4 + 100);
  std::vector<std::vector<TagId>> queries;
  for (size_t i = 0; i < count; ++i) {
    std::vector<TagId> q = c.sets[rng.below(c.sets.size())];
    for (unsigned e = 0; e < extra; ++e) {
      q.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(vocab))));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void run() {
  print_header("Figure 10: comparison with MongoDB (MiniDb)",
               "Fig. 10 (seconds per match query, log scale in the paper)");

  std::printf("%-10s %-9s %-11s  %16s  %16s\n", "db sets", "tags/set", "extra tags",
              "MiniDb s/query", "TagMatch Kq/s");
  for (size_t n_sets : {10'000u, 30'000u, 50'000u}) {
    for (unsigned tags_per_set : {2u, 3u}) {
      Crafted c = craft(n_sets, tags_per_set, 7 + n_sets + tags_per_set);

      baselines::MiniDb mini{baselines::MiniDbConfig{}};
      for (size_t i = 0; i < c.sets.size(); ++i) {
        mini.insert(c.keys[i], c.sets[i]);
      }
      TagMatch tm(bench_engine_config(n_sets));
      for (size_t i = 0; i < c.sets.size(); ++i) {
        tm.add_set(workload::encode_tags(c.sets[i]), c.keys[i]);
      }
      tm.consolidate();

      for (unsigned extra : {2u, 6u}) {
        auto queries = craft_queries(c, 2000, extra, 99);
        // MiniDb: few queries suffice (they are slow).
        StopWatch watch;
        const size_t mini_queries = 20;
        for (size_t i = 0; i < mini_queries; ++i) {
          mini.find_subset(queries[i]);
        }
        double mini_spq = watch.elapsed_s() / static_cast<double>(mini_queries);

        std::vector<BitVector192> encoded;
        for (const auto& q : queries) {
          encoded.push_back(workload::encode_tags(q).bits());
        }
        auto r = run_tagmatch(tm, encoded, TagMatch::MatchKind::kMatch);
        std::printf("%-10zu %-9u %-11u  %16.6f  %16.2f\n", n_sets, tags_per_set, extra,
                    mini_spq, r.kqps());
      }
    }
  }
  std::printf("(paper: MongoDB >2 s/query at 1M sets, >10 s at 5M — linear in db size,\n"
              " insensitive to tags/set and query size; TagMatch >32 Kq/s throughout)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

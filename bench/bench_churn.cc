// Churn bench: query latency under sustained index churn, and the
// publish-visibility latency of the epoch-published index (the time from
// staging a new set to a query observing it).
//
// Phase 1 streams match-unique queries against a quiescent index and
// records per-query latency. Phase 2 streams the same queries while a churn
// thread continuously removes/re-adds a sliver of the database and
// consolidates — with epoch-published snapshots the rebuild never blocks the
// query path, so the churn-phase p99 must stay within a small factor of the
// quiescent p99 (gated in CI by tools/perf_gate.py --churn-baseline).
//
// Usage: bench_churn [--json FILE]
//   --json FILE: write the run as a JSON artifact for the perf gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

using Key = TagMatch::Key;
using SteadyClock = std::chrono::steady_clock;

int64_t percentile_ns(std::vector<int64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(idx), v.end());
  return v[idx];
}

struct Phase {
  std::vector<int64_t> latencies_ns;
  double seconds = 0;
  double kqps() const { return latencies_ns.size() / seconds / 1e3; }
};

// Streams queries for `seconds` of wall time with a bounded number
// outstanding, so recorded latencies reflect per-query service time (batch
// fill + match + merge) rather than the depth of a closed burst's queue. A
// rebuild that blocked the query path (the old exclusive-gate design) shows
// up here directly: every in-window query stalls for the rebuild tail.
Phase run_queries(TagMatch& tm, const std::vector<BitVector192>& queries, double seconds) {
  constexpr size_t kWindow = 64;
  Phase r;
  std::mutex mu;
  std::condition_variable cv;
  size_t outstanding = 0;
  StopWatch watch;
  size_t next = 0;
  while (watch.elapsed_s() < seconds) {
    {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return outstanding < kWindow; });
      ++outstanding;
    }
    const auto start = SteadyClock::now();
    tm.match_async(BloomFilter192(queries[next]), TagMatch::MatchKind::kMatchUnique,
                   [start, &mu, &cv, &outstanding, &r](std::vector<Key>) {
                     const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                         SteadyClock::now() - start)
                                         .count();
                     {
                       std::lock_guard lock(mu);
                       r.latencies_ns.push_back(ns);
                       --outstanding;
                     }
                     cv.notify_one();
                   });
    next = (next + 1) % queries.size();
  }
  tm.flush();
  r.seconds = watch.elapsed_s();
  return r;
}

struct ChurnResult {
  uint64_t consolidations = 0;
  std::vector<int64_t> visibility_ns;  // add_set -> first query observing it.
};

// Rolls a window of `pool` removals through the database: each cycle re-adds
// the previous cycle's slice, removes the next one, plants a fresh sentinel
// set, consolidates, then polls until a query sees the sentinel.
void churn_loop(TagMatch& tm, const BenchWorkload& w, std::atomic<bool>& stop,
                ChurnResult& out) {
  const size_t pool = std::max<size_t>(1, w.db.size() / 100);
  uint64_t cycle = 0;
  while (!stop.load(std::memory_order_acquire)) {
    if (cycle > 0) {  // Re-add the slice removed last cycle.
      const size_t prev = ((cycle - 1) * pool) % w.db.size();
      for (size_t i = 0; i < pool; ++i) {
        const size_t j = (prev + i) % w.db.size();
        tm.add_set(BloomFilter192(w.db_filters[j]), w.db[j].key);
      }
    }
    const size_t base = (cycle * pool) % w.db.size();
    for (size_t i = 0; i < pool; ++i) {
      const size_t j = (base + i) % w.db.size();
      tm.remove_set(BloomFilter192(w.db_filters[j]), w.db[j].key);
    }
    // Sentinel under a tag no query or database set carries: its visibility
    // measures staging + rebuild + epoch publication end to end.
    const BitVector192 sentinel =
        workload::encode_tags({workload::make_hashtag(9, static_cast<uint32_t>(cycle))}).bits();
    const Key skey = static_cast<Key>(5'000'000 + cycle);
    const auto t0 = SteadyClock::now();
    tm.add_set(BloomFilter192(sentinel), skey);
    tm.consolidate();
    ++out.consolidations;
    bool visible = false;
    while (!visible && !stop.load(std::memory_order_acquire)) {
      std::promise<bool> seen;
      tm.match_async(BloomFilter192(sentinel), TagMatch::MatchKind::kMatchUnique,
                     [&seen, skey](std::vector<Key> keys) {
                       seen.set_value(std::find(keys.begin(), keys.end(), skey) != keys.end());
                     });
      visible = seen.get_future().get();
    }
    if (visible) {
      out.visibility_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() - t0)
              .count());
    }
    tm.remove_set(BloomFilter192(sentinel), skey);  // Collected next cycle.
    ++cycle;
  }
}

void write_json(const char* path, const BenchWorkload& w, const Phase& nochurn,
                const Phase& churn, const ChurnResult& cr) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_churn: cannot write %s\n", path);
    return;
  }
  const double ratio =
      percentile_ns(nochurn.latencies_ns, 99) > 0
          ? static_cast<double>(percentile_ns(churn.latencies_ns, 99)) /
                static_cast<double>(percentile_ns(nochurn.latencies_ns, 99))
          : 0.0;
  std::fprintf(f, "{\n  \"bench\": \"churn\",\n  \"db_size\": %zu,\n", w.db.size());
  std::fprintf(f,
               "  \"nochurn\": {\"p50_ns\": %lld, \"p99_ns\": %lld, \"queries\": %zu, "
               "\"kqps\": %.3f},\n",
               static_cast<long long>(percentile_ns(nochurn.latencies_ns, 50)),
               static_cast<long long>(percentile_ns(nochurn.latencies_ns, 99)),
               nochurn.latencies_ns.size(), nochurn.kqps());
  std::fprintf(f,
               "  \"churn\": {\"p50_ns\": %lld, \"p99_ns\": %lld, \"queries\": %zu, "
               "\"kqps\": %.3f},\n",
               static_cast<long long>(percentile_ns(churn.latencies_ns, 50)),
               static_cast<long long>(percentile_ns(churn.latencies_ns, 99)),
               churn.latencies_ns.size(), churn.kqps());
  std::fprintf(f, "  \"churn_over_nochurn_p99\": %.4f,\n", ratio);
  std::fprintf(f, "  \"consolidations\": %llu,\n",
               static_cast<unsigned long long>(cr.consolidations));
  std::fprintf(f,
               "  \"publish_visibility_ns\": {\"p50\": %lld, \"p95\": %lld, "
               "\"samples\": %zu}\n}\n",
               static_cast<long long>(percentile_ns(cr.visibility_ns, 50)),
               static_cast<long long>(percentile_ns(cr.visibility_ns, 95)),
               cr.visibility_ns.size());
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void run(const char* json_path) {
  BenchWorkload& w = shared_workload();
  print_header("Churn: query latency under sustained index churn",
               "live mutability (§2.3 staged updates) under the epoch-published index");

  TagMatchConfig config = bench_engine_config(w.db.size());
  // Bound tail latency at light load so the phases compare batch-fill
  // regimes, not starvation; also bounds the sentinel probe wait.
  config.batch_timeout = std::chrono::milliseconds(5);
  TagMatch tm(config);
  populate_tagmatch(tm, w, w.db.size());
  auto queries = w.encoded_queries(4000, 2, 4);
  const double phase_seconds = 2.5;

  Phase nochurn = run_queries(tm, queries, phase_seconds);

  std::atomic<bool> stop{false};
  ChurnResult cr;
  std::thread churner([&] { churn_loop(tm, w, stop, cr); });
  Phase churn = run_queries(tm, queries, phase_seconds);
  stop.store(true, std::memory_order_release);
  churner.join();
  tm.flush();

  std::printf("%-10s  %10s  %10s  %10s  %12s\n", "phase", "p50 us", "p99 us", "Kq/s",
              "consolidates");
  std::printf("%-10s  %10.1f  %10.1f  %10.2f  %12s\n", "quiescent",
              percentile_ns(nochurn.latencies_ns, 50) / 1e3,
              percentile_ns(nochurn.latencies_ns, 99) / 1e3, nochurn.kqps(), "-");
  std::printf("%-10s  %10.1f  %10.1f  %10.2f  %12llu\n", "churn",
              percentile_ns(churn.latencies_ns, 50) / 1e3,
              percentile_ns(churn.latencies_ns, 99) / 1e3, churn.kqps(),
              static_cast<unsigned long long>(cr.consolidations));
  std::printf("publish visibility: p50 %.2f ms, p95 %.2f ms over %zu consolidations\n",
              percentile_ns(cr.visibility_ns, 50) / 1e6,
              percentile_ns(cr.visibility_ns, 95) / 1e6, cr.visibility_ns.size());
  std::printf("(queries never block on a rebuild: the churn-phase p99 should stay\n"
              " within ~1.5x of the quiescent p99; the old exclusive-gate design put\n"
              " entire rebuild wall times into the query tail)\n");

  if (json_path != nullptr) {
    write_json(json_path, w, nochurn, churn, cr);
  }
}

}  // namespace
}  // namespace tagmatch::bench

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  tagmatch::bench::run(json_path);
  return 0;
}

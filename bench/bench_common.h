// Shared support for the evaluation harness: the scaled Twitter workload,
// population helpers, throughput drivers and table printing.
//
// Scale. The paper's full database is 212M unique sets from 300M users on a
// 24-core, 2-GPU testbed. The benches default to a container-friendly scale
// (~0.1%, i.e. a couple hundred thousand sets) and report the scale they ran
// at; set TAGMATCH_BENCH_USERS to change it. Shapes, not absolute numbers,
// are the reproduction target (see EXPERIMENTS.md).
#ifndef TAGMATCH_BENCH_BENCH_COMMON_H_
#define TAGMATCH_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/tagmatch.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

namespace tagmatch::bench {

inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? static_cast<unsigned>(std::strtoul(v, nullptr, 10))
                                      : fallback;
}

// The shared "full Twitter database" of the bench suite. Built once per
// process.
struct BenchWorkload {
  workload::WorkloadConfig config;
  std::vector<workload::AddOp> db;                // 100% database.
  std::vector<BitVector192> db_filters;           // Encoded, aligned with db.
  workload::TwitterWorkload generator;

  explicit BenchWorkload(unsigned users) : generator(make_config(users)) {
    config = generator.config();
    db = generator.generate_database();
    db_filters.reserve(db.size());
    for (const auto& op : db) {
      db_filters.push_back(workload::encode_tags(op.tags).bits());
    }
  }

  static workload::WorkloadConfig make_config(unsigned users) {
    workload::WorkloadConfig c;
    c.seed = 2017;
    c.num_users = users;
    c.num_publishers = std::max(200u, users / 2);
    // A large vocabulary and a flattened Zipf head keep interests selective,
    // as the paper's multi-language TREC-derived corpus does (real hashtag
    // distributions have a much flatter head than ideal Zipf-1: the top
    // hashtag carries ~1-2% of occurrences, not ~10%). A cramped, peaked
    // vocabulary would inflate per-query fan-out far beyond the paper's
    // regime.
    c.vocabulary_size = std::max(1000u, users * 4);
    c.tag_zipf = 0.8;
    return c;
  }

  // Number of database entries in a `percent`% prefix of the database.
  size_t prefix_size(unsigned percent) const { return db.size() * percent / 100; }

  std::vector<BitVector192> encoded_queries(size_t count, unsigned extra_min,
                                            unsigned extra_max) {
    return encoded_queries(count, extra_min, extra_max, sig::bloom192_scheme());
  }

  // Scheme-aware variants: index filters and queries must be encoded under
  // the same scheme the engine matches with (bit placements differ between
  // schemes, so mixing encodings silently returns garbage).
  std::vector<BitVector192> encoded_queries(size_t count, unsigned extra_min,
                                            unsigned extra_max,
                                            const sig::SignatureScheme& scheme) {
    auto queries = generator.generate_queries(db, count, extra_min, extra_max);
    std::vector<BitVector192> out;
    out.reserve(queries.size());
    for (const auto& q : queries) {
      out.push_back(workload::encode_tags(q.tags, scheme).bits());
    }
    return out;
  }

  std::vector<BitVector192> db_filters_under(const sig::SignatureScheme& scheme) const {
    if (scheme.id() == sig::SchemeId::kBloom192) {
      return db_filters;  // Already encoded under the baseline.
    }
    std::vector<BitVector192> out;
    out.reserve(db.size());
    for (const auto& op : db) {
      out.push_back(workload::encode_tags(op.tags, scheme).bits());
    }
    return out;
  }
};

// Scheme a bench run uses: $TAGMATCH_BENCH_SCHEME, else the engine-wide
// $TAGMATCH_SCHEME / bloom192 default (see sig::resolve). Per-scheme sweeps
// (bench_fig7_maxp, the bench_micro captures) iterate all_schemes() instead.
inline const sig::SignatureScheme& bench_scheme() {
  const char* v = std::getenv("TAGMATCH_BENCH_SCHEME");
  if (v != nullptr && *v != '\0') {
    if (const sig::SignatureScheme* s = sig::scheme_by_name(v)) {
      return *s;
    }
    std::fprintf(stderr, "bench: unknown TAGMATCH_BENCH_SCHEME '%s' (valid: %s)\n", v,
                 sig::scheme_names_csv().c_str());
  }
  return sig::resolve(nullptr);
}

inline BenchWorkload& shared_workload() {
  static BenchWorkload w(env_unsigned("TAGMATCH_BENCH_USERS", 50'000));
  return w;
}

// The bench-default engine configuration: the paper's platform (2 GPUs, 10
// streams each) with MAX_P scaled to the bench database. The paper's knee is
// at 200K sets/partition for 212M sets; at bench scale the measured knee
// (bench_fig7_maxp) sits at about db/200, which is the default here.
inline TagMatchConfig bench_engine_config(size_t db_size, unsigned threads = 4) {
  TagMatchConfig c;
  c.num_threads = threads;
  c.max_partition_size = std::max<uint32_t>(256, static_cast<uint32_t>(db_size / 200));
  c.num_gpus = 2;
  c.streams_per_gpu = 10;
  c.gpu_sms_per_device = 2;
  return c;
}

// Populates a TagMatch engine with the first `n` database entries.
inline void populate_tagmatch(TagMatch& tm, const BenchWorkload& w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    tm.add_set(BloomFilter192(w.db_filters[i]), w.db[i].key);
  }
  tm.consolidate();
}

// Same, but from an explicitly (re-)encoded filter column (per-scheme runs).
inline void populate_tagmatch(TagMatch& tm, const BenchWorkload& w, size_t n,
                              const std::vector<BitVector192>& filters) {
  for (size_t i = 0; i < n; ++i) {
    tm.add_set(BloomFilter192(filters[i]), w.db[i].key);
  }
  tm.consolidate();
}

struct ThroughputResult {
  double seconds = 0;
  uint64_t queries = 0;
  uint64_t output_keys = 0;
  double qps() const { return queries / seconds; }
  double kqps() const { return qps() / 1e3; }
  double output_rate() const { return output_keys / seconds; }
};

// Streams queries through TagMatch's async pipeline at full offered load and
// measures input/output throughput.
inline ThroughputResult run_tagmatch(TagMatch& tm, const std::vector<BitVector192>& queries,
                                     TagMatch::MatchKind kind) {
  std::atomic<uint64_t> keys{0};
  StopWatch watch;
  for (const auto& q : queries) {
    tm.match_async(BloomFilter192(q), kind,
                   [&keys](std::vector<TagMatch::Key> k) {
                     keys.fetch_add(k.size(), std::memory_order_relaxed);
                   });
  }
  tm.flush();
  ThroughputResult r;
  r.seconds = watch.elapsed_s();
  r.queries = queries.size();
  r.output_keys = keys.load();
  return r;
}

// Synchronous per-query driver for the CPU baselines (prefix tree, ICN,
// linear scan). `matcher.match(q, fn)` semantics.
template <typename Matcher>
ThroughputResult run_cpu_matcher(const Matcher& matcher, const std::vector<BitVector192>& queries,
                                 bool unique) {
  ThroughputResult r;
  StopWatch watch;
  uint64_t keys = 0;
  for (const auto& q : queries) {
    if (unique) {
      keys += matcher.match_unique(q).size();
    } else {
      matcher.match(q, [&keys](uint32_t) { ++keys; });
    }
  }
  r.seconds = watch.elapsed_s();
  r.queries = queries.size();
  r.output_keys = keys;
  return r;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s; workload: %zu database sets from %u users, seed %llu)\n",
              paper_ref.c_str(), shared_workload().db.size(), shared_workload().config.num_users,
              static_cast<unsigned long long>(shared_workload().config.seed));
}

}  // namespace tagmatch::bench

#endif  // TAGMATCH_BENCH_BENCH_COMMON_H_

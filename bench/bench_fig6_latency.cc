// Regenerates Figure 6: distribution of the end-to-end match-unique latency
// for different batch-timeout settings (no timeout, 100..500 ms), plus the
// corresponding throughput cost of short timeouts (§4.3.4: a 100 ms timeout
// loses ~20% throughput; 200-300 ms recovers it).
//
// Queries are offered at a paced, sustainable rate so that batch fill time —
// not queueing delay — dominates latency, as in the paper's experiment.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

struct LatencyResult {
  SampleSet latencies_ms;
  double kqps = 0;            // Paced (offered-load) throughput.
  double saturated_kqps = 0;  // Full-offered-load throughput at this timeout.
};

LatencyResult measure(const BenchWorkload& w, std::vector<BitVector192>& queries,
                      std::chrono::milliseconds timeout, double offered_qps) {
  TagMatchConfig config = bench_engine_config(w.db.size());
  config.batch_timeout = timeout;
  TagMatch tm(config);
  populate_tagmatch(tm, const_cast<BenchWorkload&>(w), w.db.size());

  LatencyResult result;
  std::mutex mu;
  // Paced submission: a slice of queries every millisecond.
  const double per_ms = offered_qps / 1000.0;
  double credit = 0;
  size_t next = 0;
  auto t0 = Clock::now();
  while (next < queries.size()) {
    credit += per_ms;
    while (credit >= 1.0 && next < queries.size()) {
      credit -= 1.0;
      const auto start = Clock::now();
      tm.match_async(BloomFilter192(queries[next]), TagMatch::MatchKind::kMatchUnique,
                     [start, &mu, &result](std::vector<TagMatch::Key>) {
                       double ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                                       .count();
                       std::lock_guard lock(mu);
                       result.latencies_ms.record(ms);
                     });
      ++next;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tm.flush();
  double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.kqps = queries.size() / seconds / 1e3;
  // Saturated throughput with the same timeout setting (§4.3.4's 20%-loss
  // observation at 100 ms).
  std::vector<BitVector192> burst(queries.begin(),
                                  queries.begin() + std::min<size_t>(6000, queries.size()));
  result.saturated_kqps = run_tagmatch(tm, burst, TagMatch::MatchKind::kMatchUnique).kqps();
  return result;
}

void run() {
  BenchWorkload& w = shared_workload();
  print_header("Figure 6: end-to-end latency distribution vs batch timeout",
               "Fig. 6 (match-unique latency) and §4.3.4 (throughput vs timeout)");

  // Estimate the saturated throughput first, then offer ~50% of it.
  auto probe_queries = w.encoded_queries(3000, 2, 4);
  double max_kqps;
  {
    TagMatch tm(bench_engine_config(w.db.size()));
    populate_tagmatch(tm, w, w.db.size());
    max_kqps = run_tagmatch(tm, probe_queries, TagMatch::MatchKind::kMatchUnique).kqps();
  }
  const double offered = std::max(200.0, max_kqps * 1e3 * 0.5);
  auto queries = w.encoded_queries(static_cast<size_t>(offered * 3), 2, 4);  // ~3 s of traffic.
  std::printf("saturated throughput %.2f Kq/s; offered load %.0f q/s for ~3 s\n", max_kqps,
              offered);

  std::printf("%-12s  %10s  %10s  %10s  %10s  %12s\n", "timeout", "median ms", "p99 ms",
              "max ms", "mean ms", "satur. Kq/s");
  struct Case {
    const char* label;
    std::chrono::milliseconds timeout;
  };
  for (const Case& c : {Case{"none", std::chrono::milliseconds(0)},
                        Case{"100ms", std::chrono::milliseconds(100)},
                        Case{"200ms", std::chrono::milliseconds(200)},
                        Case{"300ms", std::chrono::milliseconds(300)},
                        Case{"500ms", std::chrono::milliseconds(500)}}) {
    LatencyResult r = measure(w, queries, c.timeout, offered);
    std::printf("%-12s  %10.1f  %10.1f  %10.1f  %10.1f  %12.2f\n", c.label,
                r.latencies_ms.percentile(50), r.latencies_ms.percentile(99),
                r.latencies_ms.max(), r.latencies_ms.mean(), r.saturated_kqps);
  }
  std::printf("(paper: without a timeout, median <400 ms, 99%% <2 s, but max latency\n"
              " much higher; a timeout bounds latency near its setting; 100 ms costs\n"
              " ~20%% throughput, 200-300 ms restores it)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Figure 7: average throughput of TagMatch for match and
// match-unique as a function of MAX_P, the maximum partition size — the knob
// balancing CPU pre-processing against GPU subset-match load (§4.3.5).
//
// The paper's knee is at ~200K sets/partition for a 212M-set database, i.e.
// about 1/1000 of the database; the sweep here covers the same relative
// range around that point.
#include <cstdio>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.db.size();
  print_header("Figure 7: throughput vs MAX_P (maximum partition size)", "Fig. 7 (Kq/s)");

  auto queries = w.encoded_queries(6000, 2, 4);
  std::printf("%-12s  %10s  %12s  %14s\n", "MAX_P", "partitions", "match Kq/s",
              "match-uniq Kq/s");
  // Sweep MAX_P from db/5000 to db/20 (paper: 25K..500K on 212M).
  for (uint32_t divisor : {5000u, 2000u, 1000u, 500u, 200u, 100u, 50u, 20u}) {
    uint32_t max_p = std::max<uint32_t>(16, static_cast<uint32_t>(n / divisor));
    TagMatchConfig config = bench_engine_config(n);
    config.max_partition_size = max_p;
    TagMatch tm(config);
    populate_tagmatch(tm, w, n);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    std::printf("%-12u  %10llu  %12.2f  %14.2f\n", max_p,
                static_cast<unsigned long long>(tm.stats().partitions), r_match.kqps(),
                r_unique.kqps());
  }
  std::printf("(paper: throughput climbs with MAX_P, peaks around 200K (=db/1000) and\n"
              " stays stable beyond; match and match-unique nearly coincide)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Figure 7: average throughput of TagMatch for match and
// match-unique as a function of MAX_P, the maximum partition size — the knob
// balancing CPU pre-processing against GPU subset-match load (§4.3.5) — once
// per registered signature scheme (src/sig).
//
// The paper's knee is at ~200K sets/partition for a 212M-set database, i.e.
// about 1/1000 of the database; the sweep here covers the same relative
// range around that point. The knee position depends on the scheme's false-
// positive rate (a leakier filter forwards more sets per partition, shifting
// work GPU-wards), so each scheme's sweep re-derives its own best MAX_P and
// reports the scheme's *measured* FPR next to the model's prediction.
//
// Usage: bench_fig7_maxp [--json FILE]
//   --json FILE: additionally write the per-scheme sweep as a JSON artifact
//                (consumed by tools/perf_gate.py --fig7-baseline in CI).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"

namespace tagmatch::bench {
namespace {

struct SweepPoint {
  uint32_t max_p = 0;
  uint64_t partitions = 0;
  double match_kqps = 0;
  double unique_kqps = 0;
};

struct SchemeResult {
  std::string name;
  double fpr_measured = 0;  // Signature-pass rate over sampled non-subset pairs.
  double fpr_model = 0;     // false_positive_probability at the same shape.
  uint32_t best_max_p = 0;
  double best_kqps = 0;
  std::vector<SweepPoint> sweep;
};

// Measured FPR: sample (database set, query) pairs whose tag sets are NOT in
// the subset relation and count how often the bitwise signature test passes
// anyway. Queries carry 2-4 extra tags, matching the throughput runs.
double measure_fpr(const sig::SignatureScheme& scheme, BenchWorkload& w,
                   const std::vector<BitVector192>& filters, double* model_out) {
  auto queries = w.generator.generate_queries(w.db, 200, 2, 4);
  const sig::KernelVariant variant = scheme.kernel_variant();
  uint64_t sampled = 0, false_pass = 0, extra_sum = 0, qsize_sum = 0;
  for (const auto& q : queries) {
    std::unordered_set<workload::TagId> qtags(q.tags.begin(), q.tags.end());
    const BitVector192 qsig = workload::encode_tags(q.tags, scheme).bits();
    // Stride through the database for a spread sample per query.
    for (size_t i = 0; i < w.db.size(); i += 97) {
      unsigned extra = 0;
      for (workload::TagId t : w.db[i].tags) {
        extra += qtags.count(t) == 0 ? 1 : 0;
      }
      if (extra == 0) {
        continue;  // True subset: not a false-positive candidate.
      }
      ++sampled;
      extra_sum += extra;
      qsize_sum += q.tags.size();
      false_pass += sig::subset_test(variant, filters[i], qsig) ? 1 : 0;
    }
  }
  if (model_out != nullptr && sampled > 0) {
    *model_out = scheme.false_positive_probability(
        static_cast<unsigned>(qsize_sum / sampled), static_cast<unsigned>(extra_sum / sampled));
  }
  return sampled > 0 ? static_cast<double>(false_pass) / static_cast<double>(sampled) : 0.0;
}

SchemeResult run_scheme(const sig::SignatureScheme& scheme, BenchWorkload& w) {
  const size_t n = w.db.size();
  SchemeResult res;
  res.name = std::string(scheme.name());
  const auto filters = w.db_filters_under(scheme);
  res.fpr_measured = measure_fpr(scheme, w, filters, &res.fpr_model);

  auto queries = w.encoded_queries(6000, 2, 4, scheme);
  std::printf("\n--- scheme %s (k=%u, measured FPR %.2e, model %.2e) ---\n",
              res.name.c_str(), scheme.bits_per_tag(), res.fpr_measured, res.fpr_model);
  std::printf("%-12s  %10s  %12s  %14s\n", "MAX_P", "partitions", "match Kq/s",
              "match-uniq Kq/s");
  // Sweep MAX_P from db/5000 to db/20 (paper: 25K..500K on 212M).
  for (uint32_t divisor : {5000u, 2000u, 1000u, 500u, 200u, 100u, 50u, 20u}) {
    uint32_t max_p = std::max<uint32_t>(16, static_cast<uint32_t>(n / divisor));
    TagMatchConfig config = bench_engine_config(n);
    config.max_partition_size = max_p;
    config.signature_scheme = &scheme;
    TagMatch tm(config);
    populate_tagmatch(tm, w, n, filters);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    SweepPoint p{max_p, tm.stats().partitions, r_match.kqps(), r_unique.kqps()};
    res.sweep.push_back(p);
    if (p.match_kqps > res.best_kqps) {
      res.best_kqps = p.match_kqps;
      res.best_max_p = p.max_p;
    }
    std::printf("%-12u  %10llu  %12.2f  %14.2f\n", p.max_p,
                static_cast<unsigned long long>(p.partitions), p.match_kqps, p.unique_kqps);
  }
  std::printf("(best: %.2f Kq/s at MAX_P=%u = db/%zu)\n", res.best_kqps, res.best_max_p,
              res.best_max_p > 0 ? n / res.best_max_p : size_t{0});
  return res;
}

void write_json(const char* path, const BenchWorkload& w,
                const std::vector<SchemeResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fig7_maxp: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig7_maxp\",\n  \"db_size\": %zu,\n  \"schemes\": {\n",
               w.db.size());
  for (size_t s = 0; s < results.size(); ++s) {
    const auto& r = results[s];
    std::fprintf(f,
                 "    \"%s\": {\n      \"best_kqps\": %.3f,\n      \"best_max_p\": %u,\n"
                 "      \"fpr_measured\": %.6e,\n      \"fpr_model\": %.6e,\n"
                 "      \"sweep\": [\n",
                 r.name.c_str(), r.best_kqps, r.best_max_p, r.fpr_measured, r.fpr_model);
    for (size_t i = 0; i < r.sweep.size(); ++i) {
      const auto& p = r.sweep[i];
      std::fprintf(f,
                   "        {\"max_p\": %u, \"partitions\": %llu, \"match_kqps\": %.3f, "
                   "\"unique_kqps\": %.3f}%s\n",
                   p.max_p, static_cast<unsigned long long>(p.partitions), p.match_kqps,
                   p.unique_kqps, i + 1 < r.sweep.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void run(const char* json_path) {
  BenchWorkload& w = shared_workload();
  print_header("Figure 7: throughput vs MAX_P, per signature scheme", "Fig. 7 (Kq/s)");

  std::vector<SchemeResult> results;
  for (const sig::SignatureScheme* scheme : sig::all_schemes()) {
    results.push_back(run_scheme(*scheme, w));
  }

  std::printf("\n%-12s  %12s  %10s  %13s  %12s\n", "scheme", "best Kq/s", "best MAX_P",
              "FPR measured", "FPR model");
  for (const auto& r : results) {
    std::printf("%-12s  %12.2f  %10u  %13.2e  %12.2e\n", r.name.c_str(), r.best_kqps,
                r.best_max_p, r.fpr_measured, r.fpr_model);
  }
  std::printf("(paper: throughput climbs with MAX_P, peaks around 200K (=db/1000) and\n"
              " stays stable beyond; a leakier scheme peaks at a smaller MAX_P because\n"
              " false positives add per-partition GPU work)\n");
  if (json_path != nullptr) {
    write_json(json_path, w, results);
  }
}

}  // namespace
}  // namespace tagmatch::bench

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  tagmatch::bench::run(json_path);
  return 0;
}

// Native sharding scalability: the Fig. 11 sweep run against ShardedTagMatch
// instead of (only) the sharded-MongoDB stand-in.
//
// The paper shards MongoDB over 1..24 instances and observes linear scaling
// to 8 and ~3x overall at 24 — the architecture tax of scatter-gather over a
// store whose per-instance subset query is a full collection scan. This
// bench runs the same deployment shape natively: a ShardedTagMatch with
// 1..N engine shards (each shard modelling one instance: its own GPU and
// streams), reporting per-shard-count input throughput and consolidate
// wall-time (concurrent rebuild vs the sum of per-shard rebuilds, i.e. the
// sequential equivalent), followed by the ShardedMiniDb sweep for a direct
// architecture-tax comparison on one host.
//
// On a many-core host the consolidate wall-time column shows the concurrent
// rebuild win approaching the slowest shard's time; on a single-core
// container both match throughput and rebuild compress toward flat (the
// code paths are real, the parallel hardware is not — see EXPERIMENTS.md).
// Set TAGMATCH_BENCH_MAX_SHARDS=24 to extend the sweep past 8.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/minidb/minidb.h"
#include "src/common/rng.h"
#include "src/shard/sharded_tagmatch.h"

namespace tagmatch::bench {
namespace {

using shard::ShardedConfig;
using shard::ShardedTagMatch;
using workload::TagId;

// One engine shard models one instance of the paper's sharded deployment:
// a single GPU with a few streams, sized for its 1/N slice of the database.
TagMatchConfig shard_engine_config(size_t sets_per_shard) {
  TagMatchConfig c = bench_engine_config(std::max<size_t>(sets_per_shard, 1), /*threads=*/2);
  c.num_gpus = 1;
  c.streams_per_gpu = 4;
  c.result_buffer_entries = 1u << 14;
  return c;
}

ThroughputResult run_sharded(ShardedTagMatch& engine, const std::vector<BitVector192>& queries,
                             Matcher::MatchKind kind) {
  std::atomic<uint64_t> keys{0};
  StopWatch watch;
  for (const auto& q : queries) {
    engine.match_async(BloomFilter192(q), kind,
                       [&keys](std::vector<Matcher::Key> k) {
                         keys.fetch_add(k.size(), std::memory_order_relaxed);
                       });
  }
  engine.flush();
  ThroughputResult r;
  r.seconds = watch.elapsed_s();
  r.queries = queries.size();
  r.output_keys = keys.load();
  return r;
}

std::vector<unsigned> shard_counts() {
  std::vector<unsigned> counts{1, 2, 4, 8};
  if (env_unsigned("TAGMATCH_BENCH_MAX_SHARDS", 8) > 8) {
    counts.push_back(16);
    counts.push_back(24);
  }
  return counts;
}

void run_native() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  auto queries = w.encoded_queries(4000, 2, 4);

  std::printf("\n-- native: ShardedTagMatch (signature-hash policy) --\n");
  std::printf("%-8s  %12s  %10s  %14s  %16s  %12s\n", "shards", "match kq/s", "speedup",
              "uniq kq/s", "rebuild wall s", "sum shard s");
  double base_qps = 0;
  for (unsigned shards : shard_counts()) {
    ShardedConfig config;
    config.num_shards = shards;
    config.shard = shard_engine_config(n / shards);
    ShardedTagMatch engine(config);
    for (size_t i = 0; i < n; ++i) {
      engine.add_set(BloomFilter192(w.db_filters[i]), w.db[i].key);
    }
    engine.consolidate();
    auto r_match = run_sharded(engine, queries, Matcher::MatchKind::kMatch);
    auto r_unique = run_sharded(engine, queries, Matcher::MatchKind::kMatchUnique);
    auto ss = engine.shard_stats();
    double sum_shard_s = 0;
    for (const auto& s : ss.per_shard) {
      sum_shard_s += s.last_consolidate_seconds;
    }
    if (shards == 1) {
      base_qps = r_match.qps();
    }
    std::printf("%-8u  %12.2f  %9.2fx  %14.2f  %16.3f  %12.3f\n", shards, r_match.kqps(),
                r_match.qps() / base_qps, r_unique.kqps(), ss.wall_consolidate_seconds,
                sum_shard_s);
  }
  std::printf("(rebuild wall < sum shard s == concurrent consolidation win; matching on a\n"
              " shard continues while another shard rebuilds)\n");
}

// The Fig. 11 baseline at the same shard counts: hash-sharded MiniDb with
// scatter-gather collection scans (see bench_fig11_sharding for the full
// 1..24 reproduction and bench_fig10_minidb for the single-instance tax).
void run_minidb() {
  const size_t n_sets = 20'000;
  const uint32_t vocab = n_sets / 4 + 100;
  Rng rng(123);
  std::vector<std::vector<TagId>> sets;
  for (size_t i = 0; i < n_sets; ++i) {
    std::vector<TagId> tags;
    for (int t = 0; t < 3; ++t) {
      tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(vocab))));
    }
    sets.push_back(tags);
  }
  std::vector<std::vector<TagId>> queries;
  for (int i = 0; i < 40; ++i) {
    std::vector<TagId> q = sets[rng.below(sets.size())];
    while (q.size() < 6) {
      q.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(vocab))));
    }
    queries.push_back(q);
  }

  std::printf("\n-- baseline: ShardedMiniDb (the paper's sharded MongoDB stand-in) --\n");
  std::printf("%-8s  %14s  %10s\n", "shards", "queries/s", "speedup");
  double base_qps = 0;
  for (unsigned shards : shard_counts()) {
    baselines::ShardedMiniDb db(shards);
    for (size_t i = 0; i < sets.size(); ++i) {
      db.insert(static_cast<uint32_t>(i), sets[i]);
    }
    StopWatch watch;
    for (const auto& q : queries) {
      db.find_subset(q);
    }
    double qps = queries.size() / watch.elapsed_s();
    if (shards == 1) {
      base_qps = qps;
    }
    std::printf("%-8u  %14.2f  %9.2fx\n", shards, qps, qps / base_qps);
  }
}

void run() {
  print_header("Sharding scalability: native ShardedTagMatch vs sharded MiniDb",
               "Fig. 11's sweep, run natively (queries per second)");
  run_native();
  run_minidb();
  std::printf("(paper, Fig. 11: sharded MongoDB is linear to 8 instances and ~3x overall at\n"
              " 24; the native sharded engine starts ~4 orders of magnitude higher per\n"
              " instance, so sharding buys capacity — memory and rebuild time — not\n"
              " survival)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

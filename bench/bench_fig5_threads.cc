// Regenerates Figure 5: average throughput of TagMatch and the CPU prefix
// tree as a function of the number of CPU threads allocated to the
// (CPU-side) processing stages, for match and match-unique.
//
// Note: on a single-core container all curves flatten — the code paths are
// real, the parallel hardware is not (see EXPERIMENTS.md).
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/baselines/prefix_tree/prefix_tree.h"

namespace tagmatch::bench {
namespace {

// Multi-threaded query driver for the prefix tree (the paper gives every
// subject system the same number of threads).
ThroughputResult run_tree_threaded(const baselines::PrefixTreeMatcher& tree,
                                   const std::vector<BitVector192>& queries, unsigned threads,
                                   bool unique) {
  std::vector<std::thread> workers;
  std::atomic<uint64_t> keys{0};
  StopWatch watch;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = t; i < queries.size(); i += threads) {
        if (unique) {
          local += tree.match_unique(queries[i]).size();
        } else {
          tree.match(queries[i], [&local](uint32_t) { ++local; });
        }
      }
      keys.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  ThroughputResult r;
  r.seconds = watch.elapsed_s();
  r.queries = queries.size();
  r.output_keys = keys.load();
  return r;
}

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Figure 5: throughput vs number of CPU threads", "Fig. 5 (Kq/s)");
  std::printf("(host reports %u hardware threads)\n", std::thread::hardware_concurrency());

  baselines::PrefixTreeMatcher tree;
  for (size_t i = 0; i < n; ++i) {
    tree.add(w.db_filters[i], w.db[i].key);
  }
  tree.build();
  auto queries = w.encoded_queries(6000, 2, 4);

  std::printf("%-8s  %12s  %14s  %12s  %14s\n", "threads", "TM match", "TM match-uniq",
              "PT match", "PT match-uniq");
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    TagMatch tm(bench_engine_config(n, threads));
    populate_tagmatch(tm, w, n);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    auto p_match = run_tree_threaded(tree, queries, threads, false);
    auto p_unique = run_tree_threaded(tree, queries, threads, true);
    std::printf("%-8u  %12.2f  %14.2f  %12.2f  %14.2f\n", threads, r_match.kqps(),
                r_unique.kqps(), p_match.kqps(), p_unique.kqps());
  }
  std::printf("(paper on 24 cores: near-linear scaling to ~16 threads — 1.8x from 4 to 8,\n"
              " 3.3x from 4 to 16; match plateaus past 24 threads when the GPUs become\n"
              " the bottleneck, match-unique keeps growing to 40+ threads)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Figure 5: average throughput of TagMatch and the CPU prefix
// tree as a function of the number of CPU threads allocated to the
// (CPU-side) processing stages, for match and match-unique.
//
// A second mode, `--workers [--json FILE]`, sweeps the task-pool worker
// count (`TagMatchConfig::num_workers`, src/task) over the CPU brute-force
// fallback path: all devices are lost through a deterministic fault plan, so
// every batch fans out across the pool via parallel_subset_match. The JSON
// artifact feeds tools/perf_gate.py --fig5-baseline, which gates the scaling
// curve relative to the host's real core count.
//
// Note: on a single-core container all curves flatten — the code paths are
// real, the parallel hardware is not (see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "src/baselines/prefix_tree/prefix_tree.h"
#include "src/inject/fault.h"

namespace tagmatch::bench {
namespace {

// Multi-threaded query driver for the prefix tree (the paper gives every
// subject system the same number of threads).
ThroughputResult run_tree_threaded(const baselines::PrefixTreeMatcher& tree,
                                   const std::vector<BitVector192>& queries, unsigned threads,
                                   bool unique) {
  std::vector<std::thread> workers;
  std::atomic<uint64_t> keys{0};
  StopWatch watch;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = t; i < queries.size(); i += threads) {
        if (unique) {
          local += tree.match_unique(queries[i]).size();
        } else {
          tree.match(queries[i], [&local](uint32_t) { ++local; });
        }
      }
      keys.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  ThroughputResult r;
  r.seconds = watch.elapsed_s();
  r.queries = queries.size();
  r.output_keys = keys.load();
  return r;
}

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Figure 5: throughput vs number of CPU threads", "Fig. 5 (Kq/s)");
  std::printf("(host reports %u hardware threads)\n", std::thread::hardware_concurrency());

  baselines::PrefixTreeMatcher tree;
  for (size_t i = 0; i < n; ++i) {
    tree.add(w.db_filters[i], w.db[i].key);
  }
  tree.build();
  auto queries = w.encoded_queries(6000, 2, 4);

  std::printf("%-8s  %12s  %14s  %12s  %14s\n", "threads", "TM match", "TM match-uniq",
              "PT match", "PT match-uniq");
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    TagMatch tm(bench_engine_config(n, threads));
    populate_tagmatch(tm, w, n);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    auto p_match = run_tree_threaded(tree, queries, threads, false);
    auto p_unique = run_tree_threaded(tree, queries, threads, true);
    std::printf("%-8u  %12.2f  %14.2f  %12.2f  %14.2f\n", threads, r_match.kqps(),
                r_unique.kqps(), p_match.kqps(), p_unique.kqps());
  }
  std::printf("(paper on 24 cores: near-linear scaling to ~16 threads — 1.8x from 4 to 8,\n"
              " 3.3x from 4 to 16; match plateaus past 24 threads when the GPUs become\n"
              " the bottleneck, match-unique keeps growing to 40+ threads)\n");
}

// --workers: CPU-fallback throughput as a function of task-pool workers.
void run_workers_sweep(const char* json_path) {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Figure 5b: CPU-fallback throughput vs task-pool workers", "Kq/s");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("(host reports %u hardware threads; all devices lost via devloss:after=0,\n"
              " so every batch brute-forces on the host mirror over the task pool)\n", hw);
  auto queries = w.encoded_queries(2000, 2, 4);

  std::printf("%-8s  %12s  %14s\n", "workers", "TM match", "TM match-uniq");
  std::string json = "{\n  \"bench\": \"fig5_workers\",\n";
  json += "  \"db_size\": " + std::to_string(n) + ",\n";
  json += "  \"hardware_threads\": " + std::to_string(hw) + ",\n  \"workers\": {\n";
  bool first = true;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    TagMatchConfig config = bench_engine_config(n, /*threads=*/2);
    config.num_workers = workers;
    config.num_gpus = 1;
    config.streams_per_gpu = 1;
    // Lose the only device before its first op and keep it quarantined for
    // the whole run: no probe churn, a pure CPU-fallback measurement.
    config.quarantine_period = std::chrono::seconds(600);
    config.fault_injector =
        std::make_shared<inject::FaultInjector>(*inject::FaultPlan::parse("devloss:after=0"));
    TagMatch tm(config);
    populate_tagmatch(tm, w, n);
    auto r_match = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    auto r_unique = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    std::printf("%-8u  %12.2f  %14.2f\n", workers, r_match.kqps(), r_unique.kqps());
    char entry[160];
    std::snprintf(entry, sizeof(entry),
                  "%s    \"%u\": {\"match_kqps\": %.3f, \"unique_kqps\": %.3f}",
                  first ? "" : ",\n", workers, r_match.kqps(), r_unique.kqps());
    json += entry;
    first = false;
  }
  json += "\n  }\n}\n";
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << json;
    std::printf("(wrote %s)\n", json_path);
  }
  std::printf("(gate: tools/perf_gate.py --fig5-baseline bench/baselines/fig5_workers.json;\n"
              " expected speedup scales with min(workers, hardware threads))\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main(int argc, char** argv) {
  bool workers_mode = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (workers_mode) {
    tagmatch::bench::run_workers_sweep(json_path);
  } else {
    tagmatch::bench::run();
  }
  return 0;
}

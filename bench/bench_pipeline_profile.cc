// Pipeline utilization profile, supporting the §3.3.2 claims: GPUs process
// multiple batches on multiple partitions in parallel, and communication
// overlaps with computation. Runs the GPU engine with profiling enabled and
// reports copy/kernel busy time, transfer volume, and the wall time during
// which at least two device operations ran concurrently. Also dumps a
// chrome://tracing timeline.
//
// With --trace-out FILE, additionally runs a short traced pass (every query
// stamped with a root trace context) and writes the resulting causal spans as
// Chrome/Perfetto trace-event JSON — load FILE in ui.perfetto.dev.
//
// With --fault-plan SPEC (src/inject grammar, e.g. "h2d:after=64,count=2" or
// "devloss:dev=0,after=500"), arms a deterministic fault injector on the
// engine's devices and reports the recovery cost: faults fired, retries,
// re-dispatches and CPU-fallback batches. Results stay exact either way.
//
// With --soak-seconds N, runs a continuous-telemetry soak instead: the engine
// matches at full offered load for N wall seconds with a live telemetry layer
// (src/telemetry) attached — rolling time-series sampler
// (--telemetry-interval MS), burn-rate watchdog (--slo-rules SPEC, dumps to
// --telemetry-dir) and streaming Perfetto export (--telemetry-stream FILE).
// --json FILE writes a machine-readable artifact (throughput, stream
// flushed/dropped accounting, the sampled telemetry.rss_bytes series) that
// tools/telemetry_check.py asserts over in CI. Omitting every telemetry flag
// gives the overhead baseline: the same soak with telemetry off.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/gpu_engine.h"
#include "src/core/partitioner.h"
#include "src/inject/fault.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/telemetry/slo_watchdog.h"
#include "src/telemetry/telemetry.h"

namespace tagmatch::bench {
namespace {

// Traced pass for --trace-out: stamp each query with its own root context so
// the exported file shows per-query causal trees (enqueue -> prefilter ->
// reduce with the inherited h2d/kernel/d2h stream ops).
void write_causal_trace(TagMatch& tm, const std::vector<BitVector192>& queries,
                        const std::string& path) {
  const size_t n = std::min<size_t>(queries.size(), 64);
  std::atomic<uint64_t> done{0};
  for (size_t i = 0; i < n; ++i) {
    obs::TraceContext ctx{obs::new_trace_id(), obs::new_span_id(), true};
    tm.match_async(BloomFilter192(queries[i]), TagMatch::MatchKind::kMatch,
                   /*deadline_ns=*/0, ctx,
                   [&done](std::vector<TagMatch::Key>) {
                     done.fetch_add(1, std::memory_order_relaxed);
                   });
  }
  tm.flush();
  const std::string json = obs::chrome_trace_json(tm.trace_snapshot(), /*pretty=*/true);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("causal trace (%llu traced queries) written to %s (open in ui.perfetto.dev)\n",
              static_cast<unsigned long long>(done.load()), path.c_str());
}

void run(const std::string& trace_out, const std::string& fault_plan_spec) {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Pipeline profile: stream overlap and bus utilization",
               "§3.3.2 (workflow optimizations; no figure)");

  TagMatchConfig config = bench_engine_config(n);
  config.gpu_profiling = true;
  if (!fault_plan_spec.empty()) {
    auto plan = inject::FaultPlan::parse(fault_plan_spec);
    if (!plan) {
      std::printf("malformed --fault-plan \"%s\"\n", fault_plan_spec.c_str());
      return;
    }
    config.fault_injector = std::make_shared<inject::FaultInjector>(*plan);
    std::printf("fault plan armed: %s\n", plan->to_spec().c_str());
  }
  TagMatch tm(config);
  populate_tagmatch(tm, w, n);

  auto queries = w.encoded_queries(8000, 2, 4);
  auto result = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
  std::printf("throughput: %.2f Kq/s over %llu queries\n", result.kqps(),
              static_cast<unsigned long long>(result.queries));
  if (config.fault_injector) {
    auto stats = tm.stats();
    std::printf("faults fired: %llu   retries: %llu   redispatches: %llu   "
                "cpu-fallback batches: %llu\n",
                static_cast<unsigned long long>(config.fault_injector->faults_fired()),
                static_cast<unsigned long long>(stats.engine_retries),
                static_cast<unsigned long long>(stats.engine_redispatches),
                static_cast<unsigned long long>(stats.cpu_fallback_batches));
  }

  // Per-stage latency breakdown from the engine's metrics registry
  // (src/obs) — the same renderer the STATS wire verb and --stats-json use.
  std::printf("\n%s\n", tm.metrics_snapshot().to_text().c_str());

  if (!trace_out.empty()) {
    write_causal_trace(tm, queries, trace_out);
  }

  // Rebuild a bare engine to read its profile (TagMatch owns its engine
  // privately; measure the same traffic directly).
  std::atomic<uint64_t> delivered{0};
  GpuEngine engine(config, [&](void*, std::span<const ResultPair> pairs, bool) {
    delivered += pairs.size();
  });
  // Reuse TagMatch's consolidated layout by re-partitioning here.
  std::vector<BitVector192> filters(w.db_filters.begin(), w.db_filters.begin() + n);
  auto parts = balance_partitions(filters, config.max_partition_size);
  std::vector<BitVector192> flat;
  std::vector<uint32_t> ids, offsets{0};
  for (auto& p : parts) {
    std::sort(p.members.begin(), p.members.end(),
              [&](uint32_t a, uint32_t b) { return filters[a] < filters[b]; });
    for (uint32_t m : p.members) {
      flat.push_back(filters[m]);
      ids.push_back(m);
    }
    offsets.push_back(static_cast<uint32_t>(flat.size()));
  }
  engine.upload(TagsetTableView{flat, ids, offsets});

  StopWatch watch;
  const uint32_t batch = config.batch_size;
  for (size_t off = 0; off + batch <= queries.size(); off += batch) {
    engine.submit(static_cast<PartitionId>((off / batch) % parts.size()),
                  std::span(queries.data() + off, batch), nullptr);
  }
  engine.drain();
  double secs = watch.elapsed_s();

  auto s = engine.profile_summary();
  auto pct = [&](int64_t ns) { return 100.0 * static_cast<double>(ns) / (secs * 1e9); };
  std::printf("\nraw engine run: %zu batches in %.2f s, %llu pairs delivered\n",
              queries.size() / batch, secs, static_cast<unsigned long long>(delivered.load()));
  std::printf("device ops: %zu   span: %.2f s\n", s.op_count, s.span_ns / 1e9);
  std::printf("h2d busy:    %6.1f ms (%.1f%% of wall, %s)\n", s.h2d_ns / 1e6, pct(s.h2d_ns),
              format_bytes(s.h2d_bytes).c_str());
  std::printf("d2h busy:    %6.1f ms (%.1f%% of wall, %s)\n", s.d2h_ns / 1e6, pct(s.d2h_ns),
              format_bytes(s.d2h_bytes).c_str());
  std::printf("kernel busy: %6.1f ms (%.1f%% of wall)\n", s.kernel_ns / 1e6, pct(s.kernel_ns));
  std::printf("overlap (>=2 ops concurrent): %.1f ms (%.1f%% of wall)\n", s.concurrent_ns / 1e6,
              pct(s.concurrent_ns));

  const char* trace_path = "/tmp/gpusim_trace.json";
  if (engine.write_gpu_trace(trace_path)) {
    std::printf("timeline written to %s (open in chrome://tracing)\n", trace_path);
  }
  std::printf("(the overlap figure is the point of §3.3.2: with one stream and\n"
              " synchronous copies it would be ~0)\n");
}

// --soak-seconds / --telemetry-* / --json knobs (see file header).
struct SoakOptions {
  unsigned seconds = 0;  // 0 = no soak; run the profile instead.
  unsigned telemetry_interval_ms = 0;
  std::string slo_rules;
  std::string telemetry_dir;
  std::string stream_path;
  std::string json_out;
  std::string fault_plan;
  bool telemetry_enabled() const {
    return telemetry_interval_ms != 0 || !slo_rules.empty() || !telemetry_dir.empty() ||
           !stream_path.empty();
  }
};

int run_soak(const SoakOptions& opt) {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Continuous-telemetry soak: sustained load with live sampler",
               "src/telemetry acceptance (no figure)");

  TagMatchConfig config = bench_engine_config(n);
  if (!opt.fault_plan.empty()) {
    auto plan = inject::FaultPlan::parse(opt.fault_plan);
    if (!plan) {
      std::printf("malformed --fault-plan \"%s\"\n", opt.fault_plan.c_str());
      return 1;
    }
    config.fault_injector = std::make_shared<inject::FaultInjector>(*plan);
    std::printf("fault plan armed: %s\n", plan->to_spec().c_str());
  }
  TagMatch tm(config);
  populate_tagmatch(tm, w, n);
  auto queries = w.encoded_queries(8000, 2, 4);

  std::unique_ptr<telemetry::Telemetry> tel;
  if (opt.telemetry_enabled()) {
    telemetry::TelemetryConfig tconfig;
    if (opt.telemetry_interval_ms != 0) {
      tconfig.interval = std::chrono::milliseconds(opt.telemetry_interval_ms);
    }
    if (!opt.slo_rules.empty()) {
      std::string error;
      auto rules = telemetry::parse_slo_rules(opt.slo_rules, &error);
      if (!rules) {
        std::printf("malformed --slo-rules \"%s\": %s\n", opt.slo_rules.c_str(), error.c_str());
        return 1;
      }
      tconfig.rules = *rules;
    }
    tconfig.telemetry_dir = opt.telemetry_dir;
    tconfig.stream_path = opt.stream_path;
    tconfig.snapshot_fn = [&tm] { return tm.metrics_snapshot(); };
    tconfig.trace_fn = [&tm] { return tm.trace_snapshot(); };
    tconfig.trace_dropped_fn = [&tm] { return tm.trace_dropped(); };
    tel = std::make_unique<telemetry::Telemetry>(std::move(tconfig));
    tel->start();
    std::printf("telemetry on: interval %u ms, %zu rule(s), stream %s\n",
                opt.telemetry_interval_ms == 0 ? 1000u : opt.telemetry_interval_ms,
                tel->watchdog().rules().size(),
                opt.stream_path.empty() ? "(off)" : opt.stream_path.c_str());
  } else {
    std::printf("telemetry off (overhead baseline)\n");
  }

  // Full offered load until the wall deadline: repeat the query pass and
  // count everything. Each pass ends with a flush so per-pass latency stays
  // representative of the steady-state profile run.
  StopWatch watch;
  uint64_t total_queries = 0;
  const double deadline_s = static_cast<double>(opt.seconds);
  while (watch.elapsed_s() < deadline_s) {
    auto result = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
    total_queries += result.queries;
  }
  const double secs = watch.elapsed_s();
  const double kqps = static_cast<double>(total_queries) / secs / 1e3;
  std::printf("soak: %.2f Kq/s over %llu queries in %.1f s\n", kqps,
              static_cast<unsigned long long>(total_queries), secs);
  if (tel) {
    tel->stop();
    std::printf("telemetry: %llu stream spans flushed, %llu dropped, %llu retro dump(s)%s%s\n",
                static_cast<unsigned long long>(tel->stream_flushed()),
                static_cast<unsigned long long>(tel->stream_dropped()),
                static_cast<unsigned long long>(tel->retro_dumps()),
                tel->retro_dumps() > 0 ? ", last: " : "",
                tel->last_dump_path().c_str());
  }

  if (!opt.json_out.empty()) {
    std::string json = "{\"mode\":\"soak\",\"seconds\":" + std::to_string(secs) +
                       ",\"queries\":" + std::to_string(total_queries) +
                       ",\"kqps\":" + std::to_string(kqps) +
                       ",\"telemetry_enabled\":" + (tel ? "true" : "false");
    if (tel) {
      json += ",\"telemetry\":{\"stream_flushed\":" + std::to_string(tel->stream_flushed()) +
              ",\"stream_dropped\":" + std::to_string(tel->stream_dropped()) +
              ",\"retro_dumps\":" + std::to_string(tel->retro_dumps()) +
              ",\"last_dump\":\"" + tel->last_dump_path() + "\"" +
              ",\"rss\":" + tel->tsq_json("telemetry.rss_bytes") +
              ",\"alerts\":" + tel->tsq_json("telemetry.alert.*") + "}";
    }
    json += "}";
    std::FILE* f = std::fopen(opt.json_out.c_str(), "w");
    if (!f) {
      std::printf("cannot write %s\n", opt.json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("artifact written to %s\n", opt.json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tagmatch::bench

int main(int argc, char** argv) {
  std::string trace_out;
  tagmatch::bench::SoakOptions soak;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      soak.fault_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--soak-seconds") == 0 && i + 1 < argc) {
      soak.seconds = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--telemetry-interval") == 0 && i + 1 < argc) {
      soak.telemetry_interval_ms =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--slo-rules") == 0 && i + 1 < argc) {
      soak.slo_rules = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry-dir") == 0 && i + 1 < argc) {
      soak.telemetry_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry-stream") == 0 && i + 1 < argc) {
      soak.stream_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      soak.json_out = argv[++i];
    }
  }
  if (soak.seconds > 0) {
    return tagmatch::bench::run_soak(soak);
  }
  tagmatch::bench::run(trace_out, soak.fault_plan);
  return 0;
}

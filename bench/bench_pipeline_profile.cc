// Pipeline utilization profile, supporting the §3.3.2 claims: GPUs process
// multiple batches on multiple partitions in parallel, and communication
// overlaps with computation. Runs the GPU engine with profiling enabled and
// reports copy/kernel busy time, transfer volume, and the wall time during
// which at least two device operations ran concurrently. Also dumps a
// chrome://tracing timeline.
//
// With --trace-out FILE, additionally runs a short traced pass (every query
// stamped with a root trace context) and writes the resulting causal spans as
// Chrome/Perfetto trace-event JSON — load FILE in ui.perfetto.dev.
//
// With --fault-plan SPEC (src/inject grammar, e.g. "h2d:after=64,count=2" or
// "devloss:dev=0,after=500"), arms a deterministic fault injector on the
// engine's devices and reports the recovery cost: faults fired, retries,
// re-dispatches and CPU-fallback batches. Results stay exact either way.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/gpu_engine.h"
#include "src/core/partitioner.h"
#include "src/inject/fault.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace tagmatch::bench {
namespace {

// Traced pass for --trace-out: stamp each query with its own root context so
// the exported file shows per-query causal trees (enqueue -> prefilter ->
// reduce with the inherited h2d/kernel/d2h stream ops).
void write_causal_trace(TagMatch& tm, const std::vector<BitVector192>& queries,
                        const std::string& path) {
  const size_t n = std::min<size_t>(queries.size(), 64);
  std::atomic<uint64_t> done{0};
  for (size_t i = 0; i < n; ++i) {
    obs::TraceContext ctx{obs::new_trace_id(), obs::new_span_id(), true};
    tm.match_async(BloomFilter192(queries[i]), TagMatch::MatchKind::kMatch,
                   /*deadline_ns=*/0, ctx,
                   [&done](std::vector<TagMatch::Key>) {
                     done.fetch_add(1, std::memory_order_relaxed);
                   });
  }
  tm.flush();
  const std::string json = obs::chrome_trace_json(tm.trace_snapshot(), /*pretty=*/true);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("causal trace (%llu traced queries) written to %s (open in ui.perfetto.dev)\n",
              static_cast<unsigned long long>(done.load()), path.c_str());
}

void run(const std::string& trace_out, const std::string& fault_plan_spec) {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Pipeline profile: stream overlap and bus utilization",
               "§3.3.2 (workflow optimizations; no figure)");

  TagMatchConfig config = bench_engine_config(n);
  config.gpu_profiling = true;
  if (!fault_plan_spec.empty()) {
    auto plan = inject::FaultPlan::parse(fault_plan_spec);
    if (!plan) {
      std::printf("malformed --fault-plan \"%s\"\n", fault_plan_spec.c_str());
      return;
    }
    config.fault_injector = std::make_shared<inject::FaultInjector>(*plan);
    std::printf("fault plan armed: %s\n", plan->to_spec().c_str());
  }
  TagMatch tm(config);
  populate_tagmatch(tm, w, n);

  auto queries = w.encoded_queries(8000, 2, 4);
  auto result = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatch);
  std::printf("throughput: %.2f Kq/s over %llu queries\n", result.kqps(),
              static_cast<unsigned long long>(result.queries));
  if (config.fault_injector) {
    auto stats = tm.stats();
    std::printf("faults fired: %llu   retries: %llu   redispatches: %llu   "
                "cpu-fallback batches: %llu\n",
                static_cast<unsigned long long>(config.fault_injector->faults_fired()),
                static_cast<unsigned long long>(stats.engine_retries),
                static_cast<unsigned long long>(stats.engine_redispatches),
                static_cast<unsigned long long>(stats.cpu_fallback_batches));
  }

  // Per-stage latency breakdown from the engine's metrics registry
  // (src/obs) — the same renderer the STATS wire verb and --stats-json use.
  std::printf("\n%s\n", tm.metrics_snapshot().to_text().c_str());

  if (!trace_out.empty()) {
    write_causal_trace(tm, queries, trace_out);
  }

  // Rebuild a bare engine to read its profile (TagMatch owns its engine
  // privately; measure the same traffic directly).
  std::atomic<uint64_t> delivered{0};
  GpuEngine engine(config, [&](void*, std::span<const ResultPair> pairs, bool) {
    delivered += pairs.size();
  });
  // Reuse TagMatch's consolidated layout by re-partitioning here.
  std::vector<BitVector192> filters(w.db_filters.begin(), w.db_filters.begin() + n);
  auto parts = balance_partitions(filters, config.max_partition_size);
  std::vector<BitVector192> flat;
  std::vector<uint32_t> ids, offsets{0};
  for (auto& p : parts) {
    std::sort(p.members.begin(), p.members.end(),
              [&](uint32_t a, uint32_t b) { return filters[a] < filters[b]; });
    for (uint32_t m : p.members) {
      flat.push_back(filters[m]);
      ids.push_back(m);
    }
    offsets.push_back(static_cast<uint32_t>(flat.size()));
  }
  engine.upload(TagsetTableView{flat, ids, offsets});

  StopWatch watch;
  const uint32_t batch = config.batch_size;
  for (size_t off = 0; off + batch <= queries.size(); off += batch) {
    engine.submit(static_cast<PartitionId>((off / batch) % parts.size()),
                  std::span(queries.data() + off, batch), nullptr);
  }
  engine.drain();
  double secs = watch.elapsed_s();

  auto s = engine.profile_summary();
  auto pct = [&](int64_t ns) { return 100.0 * static_cast<double>(ns) / (secs * 1e9); };
  std::printf("\nraw engine run: %zu batches in %.2f s, %llu pairs delivered\n",
              queries.size() / batch, secs, static_cast<unsigned long long>(delivered.load()));
  std::printf("device ops: %zu   span: %.2f s\n", s.op_count, s.span_ns / 1e9);
  std::printf("h2d busy:    %6.1f ms (%.1f%% of wall, %s)\n", s.h2d_ns / 1e6, pct(s.h2d_ns),
              format_bytes(s.h2d_bytes).c_str());
  std::printf("d2h busy:    %6.1f ms (%.1f%% of wall, %s)\n", s.d2h_ns / 1e6, pct(s.d2h_ns),
              format_bytes(s.d2h_bytes).c_str());
  std::printf("kernel busy: %6.1f ms (%.1f%% of wall)\n", s.kernel_ns / 1e6, pct(s.kernel_ns));
  std::printf("overlap (>=2 ops concurrent): %.1f ms (%.1f%% of wall)\n", s.concurrent_ns / 1e6,
              pct(s.concurrent_ns));

  const char* trace_path = "/tmp/gpusim_trace.json";
  if (engine.write_gpu_trace(trace_path)) {
    std::printf("timeline written to %s (open in chrome://tracing)\n", trace_path);
  }
  std::printf("(the overlap figure is the point of §3.3.2: with one stream and\n"
              " synchronous copies it would be ~0)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main(int argc, char** argv) {
  std::string trace_out;
  std::string fault_plan;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      fault_plan = argv[++i];
    }
  }
  tagmatch::bench::run(trace_out, fault_plan);
  return 0;
}

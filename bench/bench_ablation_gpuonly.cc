// Ablation for §4.5 ("Experience with an Alternative Design"): the GPU-only
// architecture — pre-process on the GPU with per-partition queues in global
// memory and dynamic-parallelism child kernels — against the hybrid
// CPU/GPU pipeline, across query selectivity regimes.
//
// The paper's finding: the GPU-only design holds up when pre-processing
// filters out most queries (selective regime) but degrades when many queries
// reach the subset-match phase (broad regime), because of the scattered
// atomic queue writes in slow global memory.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/gpuonly/gpu_only_matcher.h"
#include "src/common/rng.h"

namespace tagmatch::bench {
namespace {

// Selective queries: random small tag sets that rarely cover any partition
// mask. Broad queries: the usual db-set + extra tags, which always reach the
// match phase.
std::vector<BitVector192> selective_queries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector192> out;
  for (size_t i = 0; i < count; ++i) {
    std::vector<workload::TagId> tags;
    tags.push_back(workload::make_hashtag(90, static_cast<uint32_t>(rng.below(1u << 22))));
    out.push_back(workload::encode_tags(tags).bits());
  }
  return out;
}

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.prefix_size(50);
  print_header("Ablation (§4.5): hybrid pipeline vs GPU-only architecture",
               "§4.5 (no figure; Kq/s by query selectivity)");

  TagMatch hybrid(bench_engine_config(n));
  populate_tagmatch(hybrid, w, n);

  baselines::GpuOnlyConfig gconfig;
  gconfig.max_partition_size = bench_engine_config(n).max_partition_size;
  baselines::GpuOnlyMatcher gpu_only(gconfig);
  for (size_t i = 0; i < n; ++i) {
    gpu_only.add(w.db_filters[i], w.db[i].key);
  }
  gpu_only.build();

  auto run_gpu_only = [&](const std::vector<BitVector192>& queries) {
    StopWatch watch;
    for (size_t off = 0; off < queries.size(); off += 256) {
      size_t take = std::min<size_t>(256, queries.size() - off);
      gpu_only.match_batch(std::span(queries.data() + off, take));
    }
    return queries.size() / watch.elapsed_s() / 1e3;
  };

  std::printf("%-22s  %14s  %14s\n", "workload", "hybrid Kq/s", "GPU-only Kq/s");
  {
    auto queries = selective_queries(6000, 5);
    auto r = run_tagmatch(hybrid, queries, TagMatch::MatchKind::kMatch);
    std::printf("%-22s  %14.2f  %14.2f\n", "selective (filtered)", r.kqps(),
                run_gpu_only(queries));
  }
  {
    auto queries = w.encoded_queries(6000, 2, 4);
    auto r = run_tagmatch(hybrid, queries, TagMatch::MatchKind::kMatch);
    std::printf("%-22s  %14.2f  %14.2f\n", "broad (db-seeded)", r.kqps(), run_gpu_only(queries));
  }
  std::printf("(paper: GPU-only works well when most packets are filtered in pre-process,\n"
              " degrades when many reach subset-match — scattered atomic queue writes in\n"
              " global memory; the hybrid design wins in the broad regime)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

// Regenerates Figure 2 (average input throughput for match-unique vs number
// of extra tags per query) and Figure 3 (average output rate, matched keys
// per second, for the same sweep), TagMatch vs the CPU prefix tree.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/prefix_tree/prefix_tree.h"

namespace tagmatch::bench {
namespace {

void run() {
  BenchWorkload& w = shared_workload();
  const size_t n = w.db.size();
  print_header("Figures 2 and 3: throughput and output rate vs query size",
               "Fig. 2 (input Kq/s, log scale in the paper) and Fig. 3 (keys/s)");

  TagMatch tm(bench_engine_config(n));
  populate_tagmatch(tm, w, n);
  baselines::PrefixTreeMatcher tree;
  for (size_t i = 0; i < n; ++i) {
    tree.add(w.db_filters[i], w.db[i].key);
  }
  tree.build();

  std::printf("%-12s  %14s  %14s  %16s  %16s\n", "extra tags", "TagMatch Kq/s", "PrefixT Kq/s",
              "TagMatch keys/s", "PrefixT keys/s");
  for (unsigned extra = 1; extra <= 10; ++extra) {
    auto qops = w.generator.generate_queries_exact_extra(w.db, 4000, extra);
    std::vector<BitVector192> queries;
    queries.reserve(qops.size());
    for (const auto& q : qops) {
      queries.push_back(workload::encode_tags(q.tags).bits());
    }
    auto r_tm = run_tagmatch(tm, queries, TagMatch::MatchKind::kMatchUnique);
    std::vector<BitVector192> tree_queries(queries.begin(),
                                           queries.begin() + std::min<size_t>(2000, queries.size()));
    auto r_pt = run_cpu_matcher(tree, tree_queries, /*unique=*/true);
    std::printf("%-12u  %14.2f  %14.2f  %16.0f  %16.0f\n", extra, r_tm.kqps(), r_pt.kqps(),
                r_tm.output_rate(), r_pt.output_rate());
  }
  std::printf("(expected shape: input throughput falls with query size — more one-bits\n"
              " match more partition prefixes; output rate RISES with query size;\n"
              " TagMatch above the prefix tree throughout in the paper)\n");
}

}  // namespace
}  // namespace tagmatch::bench

int main() {
  tagmatch::bench::run();
  return 0;
}

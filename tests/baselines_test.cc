#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/baselines/icn/icn_matcher.h"
#include "src/baselines/inverted/inverted_index.h"
#include "src/baselines/minidb/minidb.h"
#include "src/baselines/prefix_tree/prefix_tree.h"
#include "src/baselines/scan/scan_matchers.h"
#include "src/common/rng.h"
#include "src/workload/tags.h"
#include "src/workload/twitter_workload.h"

namespace tagmatch::baselines {
namespace {

using Key = uint32_t;
using workload::TagId;

std::vector<Key> sorted(std::vector<Key> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Random tag-set corpus over a small universe, so queries hit matches.
struct Corpus {
  std::vector<std::vector<TagId>> sets;
  std::vector<Key> keys;
  std::vector<std::vector<TagId>> queries;
};

Corpus make_corpus(uint64_t seed, size_t n_sets = 400, size_t n_queries = 60) {
  Rng rng(seed);
  Corpus c;
  for (size_t i = 0; i < n_sets; ++i) {
    std::vector<TagId> tags;
    unsigned n = 1 + static_cast<unsigned>(rng.below(4));
    for (unsigned t = 0; t < n; ++t) {
      tags.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(120))));
    }
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
    c.sets.push_back(tags);
    c.keys.push_back(static_cast<Key>(rng.below(100)));
  }
  for (size_t i = 0; i < n_queries; ++i) {
    // Query = a db set + extra tags (same recipe as the paper's workload).
    std::vector<TagId> q = c.sets[rng.below(c.sets.size())];
    unsigned extra = 2 + static_cast<unsigned>(rng.below(3));
    for (unsigned e = 0; e < extra; ++e) {
      q.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(120))));
    }
    c.queries.push_back(q);
  }
  return c;
}

// Exact-set oracle (no Bloom signatures involved).
std::vector<Key> exact_match(const Corpus& c, const std::vector<TagId>& query) {
  std::vector<Key> out;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    bool subset = true;
    for (TagId t : c.sets[i]) {
      if (std::find(query.begin(), query.end(), t) == query.end()) {
        subset = false;
        break;
      }
    }
    if (subset) {
      out.push_back(c.keys[i]);
    }
  }
  return sorted(std::move(out));
}

TEST(PrefixTree, AgreesWithLinearScanOnSignatures) {
  Corpus c = make_corpus(1);
  PrefixTreeMatcher tree;
  LinearScanMatcher scan;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    BitVector192 f = workload::encode_tags(c.sets[i]).bits();
    tree.add(f, c.keys[i]);
    scan.add(f, c.keys[i]);
  }
  tree.build();
  for (const auto& q : c.queries) {
    BitVector192 qf = workload::encode_tags(q).bits();
    EXPECT_EQ(sorted(tree.match(qf)), sorted(scan.match(qf)));
    EXPECT_EQ(tree.match_unique(qf), scan.match_unique(qf));
  }
}

TEST(PrefixTree, SignatureMatchEqualsExactMatchOnThisCorpus) {
  // With 192/7 filters and small sets, Bloom false positives are ~1e-11:
  // the signature-based result must equal the exact result here.
  Corpus c = make_corpus(2);
  PrefixTreeMatcher tree;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    tree.add(workload::encode_tags(c.sets[i]).bits(), c.keys[i]);
  }
  tree.build();
  for (const auto& q : c.queries) {
    EXPECT_EQ(sorted(tree.match(workload::encode_tags(q).bits())), exact_match(c, q));
  }
}

TEST(PrefixTree, EmptyTreeAndEmptyFilter) {
  PrefixTreeMatcher tree;
  tree.build();
  BitVector192 q;
  q.set(3);
  EXPECT_TRUE(tree.match(q).empty());

  tree.add(BitVector192(), 9);  // Empty filter matches everything.
  tree.build();
  EXPECT_EQ(tree.match(q), (std::vector<Key>{9}));
  EXPECT_EQ(tree.match(BitVector192()), (std::vector<Key>{9}));
}

TEST(PrefixTree, DuplicateFiltersKeepAllKeys) {
  PrefixTreeMatcher tree;
  BitVector192 f;
  f.set(10);
  tree.add(f, 1);
  tree.add(f, 2);
  tree.add(f, 1);
  tree.build();
  EXPECT_EQ(tree.unique_sets(), 1u);
  BitVector192 q = f;
  q.set(50);
  EXPECT_EQ(sorted(tree.match(q)), (std::vector<Key>{1, 1, 2}));
  EXPECT_EQ(tree.match_unique(q), (std::vector<Key>{1, 2}));
}

TEST(PrefixTree, MemoryReported) {
  Corpus c = make_corpus(3);
  PrefixTreeMatcher tree;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    tree.add(workload::encode_tags(c.sets[i]).bits(), c.keys[i]);
  }
  tree.build();
  EXPECT_GT(tree.memory_bytes(), 0u);
}

TEST(IcnMatcher, AgreesWithPrefixTree) {
  Corpus c = make_corpus(4);
  IcnMatcher icn;
  PrefixTreeMatcher tree;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    BitVector192 f = workload::encode_tags(c.sets[i]).bits();
    icn.add(f, c.keys[i]);
    tree.add(f, c.keys[i]);
  }
  ASSERT_TRUE(icn.build());
  tree.build();
  for (const auto& q : c.queries) {
    BitVector192 qf = workload::encode_tags(q).bits();
    EXPECT_EQ(sorted(icn.match(qf)), sorted(tree.match(qf)));
    EXPECT_EQ(icn.match_unique(qf), tree.match_unique(qf));
  }
}

TEST(IcnMatcher, BuildMemoryBudgetEnforced) {
  IcnMatcher tight(1024);  // 1 KiB budget: rejects any real database.
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    BitVector192 f;
    for (int b = 0; b < 20; ++b) {
      f.set(static_cast<unsigned>(rng.below(192)));
    }
    tight.add(f, static_cast<Key>(i));
  }
  EXPECT_GT(tight.estimated_build_bytes(), 1024u);
  EXPECT_FALSE(tight.build());

  IcnMatcher roomy(0);  // Unlimited.
  roomy.add(BitVector192(), 1);
  EXPECT_TRUE(roomy.build());
}

TEST(IcnMatcher, BuildMemoryExceedsFinalIndexMemory) {
  // The defining trait: construction transient >> final index.
  Corpus c = make_corpus(6);
  IcnMatcher icn;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    icn.add(workload::encode_tags(c.sets[i]).bits(), c.keys[i]);
  }
  uint64_t build_estimate = icn.estimated_build_bytes();
  ASSERT_TRUE(icn.build());
  EXPECT_GT(build_estimate, 0u);
  EXPECT_GT(icn.memory_bytes(), 0u);
}

TEST(GpuScan, PlainMatcherAgreesWithCpuScan) {
  Corpus c = make_corpus(7, 300, 20);
  GpuScanConfig config;
  config.costs.enforce = false;
  config.num_sms = 1;
  config.memory_capacity = 64 << 20;
  GpuPlainMatcher gpu(config);
  LinearScanMatcher cpu;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    BitVector192 f = workload::encode_tags(c.sets[i]).bits();
    gpu.add(f, c.keys[i]);
    cpu.add(f, c.keys[i]);
  }
  gpu.build();
  for (const auto& q : c.queries) {
    BitVector192 qf = workload::encode_tags(q).bits();
    EXPECT_EQ(sorted(gpu.match(qf)), sorted(cpu.match(qf)));
    EXPECT_EQ(gpu.match_unique(qf), cpu.match_unique(qf));
  }
}

TEST(GpuScan, BatchedMatcherAgreesPerQuery) {
  Corpus c = make_corpus(8, 300, 64);
  GpuScanConfig config;
  config.costs.enforce = false;
  config.num_sms = 1;
  config.memory_capacity = 64 << 20;
  GpuBatchedMatcher gpu(config);
  LinearScanMatcher cpu;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    BitVector192 f = workload::encode_tags(c.sets[i]).bits();
    gpu.add(f, c.keys[i]);
    cpu.add(f, c.keys[i]);
  }
  gpu.build();
  std::vector<BitVector192> batch;
  for (const auto& q : c.queries) {
    batch.push_back(workload::encode_tags(q).bits());
  }
  auto results = gpu.match_batch_queries(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(sorted(std::move(results[i])), sorted(cpu.match(batch[i])));
  }
}

TEST(GpuScan, OverflowFallsBackExactly) {
  GpuScanConfig config;
  config.costs.enforce = false;
  config.num_sms = 1;
  config.result_capacity = 4;
  config.memory_capacity = 64 << 20;
  GpuPlainMatcher gpu(config);
  BitVector192 f;
  f.set(7);
  for (Key k = 0; k < 50; ++k) {
    gpu.add(f, k);
  }
  gpu.build();
  BitVector192 q = f;
  q.set(80);
  EXPECT_EQ(gpu.match(q).size(), 50u);
}

TEST(InvertedIndex, ExactSemanticsAgainstBruteForce) {
  Corpus c = make_corpus(9);
  InvertedIndexMatcher inv;
  for (size_t i = 0; i < c.sets.size(); ++i) {
    inv.add(c.sets[i], c.keys[i]);
  }
  inv.build();
  for (const auto& q : c.queries) {
    EXPECT_EQ(sorted(inv.match(q)), exact_match(c, q));
  }
}

TEST(InvertedIndex, EmptySetAndRepeatedQueryTags) {
  InvertedIndexMatcher inv;
  inv.add({}, 5);
  inv.add({workload::make_hashtag(0, 1)}, 6);
  inv.build();
  std::vector<TagId> q = {workload::make_hashtag(0, 1), workload::make_hashtag(0, 1)};
  EXPECT_EQ(sorted(inv.match(q)), (std::vector<Key>{5, 6}));
  EXPECT_EQ(sorted(inv.match({})), (std::vector<Key>{5}));
  EXPECT_GT(inv.memory_bytes(), 0u);
}

TEST(MiniDb, SubsetQueryMatchesBruteForce) {
  Corpus c = make_corpus(10, 200, 30);
  MiniDbConfig config;
  config.query_roundtrip_ns = 0;
  MiniDb db(config);
  for (size_t i = 0; i < c.sets.size(); ++i) {
    db.insert(c.keys[i], c.sets[i]);
  }
  EXPECT_EQ(db.document_count(), c.sets.size());
  for (const auto& q : c.queries) {
    EXPECT_EQ(sorted(db.find_subset(q)), exact_match(c, q));
  }
}

TEST(MiniDb, FindAllUsesIndexAndVerifies) {
  MiniDbConfig config;
  config.query_roundtrip_ns = 0;
  MiniDb db(config);
  TagId a = workload::make_hashtag(0, 1);
  TagId b = workload::make_hashtag(0, 2);
  TagId z = workload::make_hashtag(0, 99);
  db.insert(1, {a, b});
  db.insert(2, {a});
  db.insert(3, {b});
  EXPECT_EQ(sorted(db.find_all({a})), (std::vector<Key>{1, 2}));
  EXPECT_EQ(sorted(db.find_all({a, b})), (std::vector<Key>{1}));
  EXPECT_TRUE(db.find_all({z}).empty());
  EXPECT_EQ(db.find_all({}).size(), 3u);
  EXPECT_GT(db.index_bytes(), 0u);
  EXPECT_GT(db.data_bytes(), 0u);
}

TEST(MiniDb, RoundTripCostObservable) {
  MiniDbConfig config;
  config.query_roundtrip_ns = 300'000;  // 300us.
  MiniDb db(config);
  db.insert(1, {workload::make_hashtag(0, 1)});
  auto start = std::chrono::steady_clock::now();
  db.find_subset({workload::make_hashtag(0, 1)});
  auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  EXPECT_GE(micros, 250);
}

TEST(ShardedMiniDb, ScatterGatherEqualsSingleInstance) {
  Corpus c = make_corpus(11, 200, 20);
  MiniDbConfig config;
  config.query_roundtrip_ns = 0;
  MiniDb single(config);
  ShardedMiniDb sharded(4, config);
  for (size_t i = 0; i < c.sets.size(); ++i) {
    single.insert(c.keys[i], c.sets[i]);
    sharded.insert(c.keys[i], c.sets[i]);
  }
  EXPECT_EQ(sharded.num_shards(), 4u);
  EXPECT_EQ(sharded.document_count(), c.sets.size());
  for (const auto& q : c.queries) {
    EXPECT_EQ(sorted(sharded.find_subset(q)), sorted(single.find_subset(q)));
  }
}

TEST(AllMatchers, CrossAgreementOnTwitterWorkload) {
  workload::WorkloadConfig wc;
  wc.num_users = 300;
  wc.num_publishers = 80;
  wc.vocabulary_size = 400;
  workload::TwitterWorkload w(wc);
  auto db = w.generate_database();
  auto queries = w.generate_queries(db, 40, 2, 4);

  PrefixTreeMatcher tree;
  IcnMatcher icn;
  LinearScanMatcher scan;
  InvertedIndexMatcher inv;
  for (const auto& op : db) {
    BitVector192 f = workload::encode_tags(op.tags).bits();
    tree.add(f, op.key);
    icn.add(f, op.key);
    scan.add(f, op.key);
    inv.add(op.tags, op.key);
  }
  tree.build();
  ASSERT_TRUE(icn.build());
  inv.build();

  for (const auto& q : queries) {
    BitVector192 qf = workload::encode_tags(q.tags).bits();
    auto expected = sorted(scan.match(qf));
    EXPECT_EQ(sorted(tree.match(qf)), expected);
    EXPECT_EQ(sorted(icn.match(qf)), expected);
    // The inverted index works on exact tags: equal up to Bloom false
    // positives, which do not occur at this scale.
    EXPECT_EQ(sorted(inv.match(q.tags)), expected);
  }
}

}  // namespace
}  // namespace tagmatch::baselines

#include "src/bloom/bloom_filter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/tags.h"

namespace tagmatch {
namespace {

std::vector<std::string> make_tags(std::initializer_list<const char*> names) {
  return std::vector<std::string>(names.begin(), names.end());
}

TEST(BloomFilter192, EmptyFilterIsSubsetOfEverything) {
  BloomFilter192 empty;
  auto tags = make_tags({"a", "b"});
  BloomFilter192 nonempty = BloomFilter192::of(tags);
  EXPECT_TRUE(empty.subset_of(nonempty));
  EXPECT_TRUE(empty.subset_of(empty));
  EXPECT_FALSE(nonempty.subset_of(empty));
}

TEST(BloomFilter192, AddTagSetsAtMostSevenBits) {
  BloomFilter192 f;
  f.add_tag("hello");
  EXPECT_LE(f.popcount(), 7u);
  EXPECT_GE(f.popcount(), 1u);
}

TEST(BloomFilter192, MembershipNoFalseNegatives) {
  Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    BloomFilter192 f;
    std::vector<std::string> tags;
    for (int i = 0; i < 8; ++i) {
      tags.push_back("tag" + std::to_string(rng.below(100000)));
      f.add_tag(tags.back());
    }
    for (const auto& t : tags) {
      EXPECT_TRUE(f.maybe_contains(t));
    }
  }
}

TEST(BloomFilter192, SubsetImpliesBitwiseSubset) {
  // S1 ⊆ S2 must imply B1 ⊆ B2 — never a false negative.
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::string> sub, super;
    unsigned n_sub = 1 + static_cast<unsigned>(rng.below(6));
    unsigned n_extra = static_cast<unsigned>(rng.below(6));
    for (unsigned i = 0; i < n_sub; ++i) {
      sub.push_back("t" + std::to_string(rng.below(1000000)));
    }
    super = sub;
    for (unsigned i = 0; i < n_extra; ++i) {
      super.push_back("x" + std::to_string(rng.below(1000000)));
    }
    EXPECT_TRUE(BloomFilter192::of(sub).subset_of(BloomFilter192::of(super)));
  }
}

TEST(BloomFilter192, DisjointSetsRarelyCollide) {
  // With 192 bits / 7 hashes and small sets, bitwise inclusion between
  // unrelated sets must be extremely rare; on 2000 random disjoint pairs we
  // expect zero.
  Rng rng(17);
  int false_positives = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::string> a, b;
    for (int i = 0; i < 5; ++i) {
      a.push_back("a" + std::to_string(iter) + "_" + std::to_string(i));
      b.push_back("b" + std::to_string(iter) + "_" + std::to_string(i));
    }
    if (BloomFilter192::of(a).subset_of(BloomFilter192::of(b))) {
      ++false_positives;
    }
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(BloomFilter192, FalsePositiveFormulaMatchesPaperFootnote) {
  // Footnote 3: m=192, k=7, |S2|=10, 3 extra tags -> ~1e-11; |S2|=5 and 2
  // extra tags -> roughly the same magnitude.
  double p1 = BloomFilter192::false_positive_probability(10, 3);
  EXPECT_GT(p1, 1e-13);
  EXPECT_LT(p1, 1e-9);
  double p2 = BloomFilter192::false_positive_probability(5, 2);
  EXPECT_GT(p2, 1e-13);
  EXPECT_LT(p2, 1e-9);
}

TEST(BloomFilter192, FalsePositiveProbabilityMonotonic) {
  // More extra tags -> lower FP probability; bigger query -> higher.
  EXPECT_LT(BloomFilter192::false_positive_probability(10, 4),
            BloomFilter192::false_positive_probability(10, 2));
  EXPECT_GT(BloomFilter192::false_positive_probability(20, 2),
            BloomFilter192::false_positive_probability(5, 2));
}

TEST(BloomFilter192, OrderingConsistentWithBits) {
  auto t1 = make_tags({"alpha"});
  auto t2 = make_tags({"beta"});
  BloomFilter192 a = BloomFilter192::of(t1);
  BloomFilter192 b = BloomFilter192::of(t2);
  EXPECT_EQ(a < b, a.bits() < b.bits());
  EXPECT_EQ(a == b, a.bits() == b.bits());
}

TEST(TagIdEncoding, NoFalseNegativesAndDeterministic) {
  using namespace workload;
  std::vector<TagId> sub = {make_hashtag(0, 1), make_hashtag(2, 5)};
  std::vector<TagId> super = sub;
  super.push_back(make_hashtag(1, 9));
  super.push_back(make_publisher_tag(42));
  EXPECT_TRUE(encode_tags(sub).subset_of(encode_tags(super)));
  EXPECT_EQ(encode_tags(sub).bits(), encode_tags(sub).bits());
  // Each tag contributes at most 7 bits.
  EXPECT_LE(encode_tags({make_hashtag(0, 1)}).popcount(), 7u);
}

TEST(TagIdEncoding, DistinctTagsGetDistinctSignatures) {
  using namespace workload;
  Rng rng(5);
  for (int iter = 0; iter < 500; ++iter) {
    TagId a = static_cast<TagId>(rng.next());
    TagId b = static_cast<TagId>(rng.next());
    if (a == b) {
      continue;
    }
    EXPECT_NE(encode_tags({a}).bits(), encode_tags({b}).bits())
        << "tags " << a << " and " << b << " collide";
  }
}

}  // namespace
}  // namespace tagmatch

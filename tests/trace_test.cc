// Causal tracing tests: trace-context propagation through the engine, the
// sharded scatter-gather layer and the broker; flight-recorder sampling
// determinism; histogram exemplars; and the Chrome/Perfetto exporter schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/broker/broker.h"
#include "src/core/tagmatch.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/sharded_tagmatch.h"

namespace tagmatch {
namespace {

using obs::FlightRecorder;
using obs::Span;
using obs::TraceContext;
using obs::TraceRecord;

TagMatchConfig tiny_engine_config() {
  TagMatchConfig config;
  config.num_threads = 1;
  config.num_gpus = 1;
  config.streams_per_gpu = 1;
  config.gpu_sms_per_device = 1;
  config.gpu_memory_capacity = 64ull << 20;
  config.gpu_costs.enforce = false;
  config.batch_size = 4;
  config.max_partition_size = 16;
  return config;
}

// ---------------------------------------------------------------- context

TEST(TraceContext, DefaultIsNotTraced) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  EXPECT_TRUE((TraceContext{obs::new_trace_id(), obs::new_span_id(), false}.valid()));
}

TEST(TraceContext, IdAllocatorsAreMonotonicAndNonZero) {
  uint64_t t1 = obs::new_trace_id();
  uint64_t t2 = obs::new_trace_id();
  EXPECT_NE(t1, 0u);
  EXPECT_LT(t1, t2);
  uint64_t s1 = obs::new_span_id();
  uint64_t s2 = obs::new_span_id();
  EXPECT_NE(s1, 0u);
  EXPECT_LT(s1, s2);
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, HeadSamplingIsDeterministicOneInN) {
  FlightRecorder rec(FlightRecorder::Config{/*capacity=*/4, /*head_sample_every=*/4});
  std::vector<bool> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(rec.sample_head());
  EXPECT_EQ(picks, (std::vector<bool>{true, false, false, false, true, false, false, false}));

  FlightRecorder off(FlightRecorder::Config{/*capacity=*/4, /*head_sample_every=*/0});
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(off.sample_head());
}

TEST(FlightRecorderTest, TailSamplerArmsAfterMinSamplesAndIsDeterministic) {
  FlightRecorder::Config config;
  config.min_samples = 20;
  FlightRecorder rec(config);

  // Unarmed: even a wild outlier is not "slow" before min_samples finishes.
  for (int i = 0; i < 19; ++i) {
    auto d = rec.should_retain(/*latency_ns=*/1000, /*degraded=*/false, /*head_sampled=*/false);
    EXPECT_FALSE(d.retain);
    EXPECT_EQ(d.threshold_ns, 0);
  }
  auto outlier = rec.should_retain(1'000'000, false, false);
  EXPECT_FALSE(outlier.slow);  // 20th finish: threshold still over 19 priors < min_samples.

  // Armed: the threshold is the p95 of *prior* finishes, so a repeat of the
  // same sequence into a fresh recorder makes identical decisions.
  FlightRecorder a(config), b(config);
  std::vector<bool> decisions_a, decisions_b;
  for (int i = 0; i < 60; ++i) {
    int64_t latency = (i % 10 == 9) ? 50'000 : 1000 + i;
    decisions_a.push_back(a.should_retain(latency, false, false).retain);
    decisions_b.push_back(b.should_retain(latency, false, false).retain);
  }
  EXPECT_EQ(decisions_a, decisions_b);
  EXPECT_TRUE(std::any_of(decisions_a.begin() + 20, decisions_a.end(),
                          [](bool v) { return v; }));  // outliers retained once armed
  EXPECT_GT(a.p95_threshold_ns(), 0);

  // Degraded and head-sampled flows are retained regardless of latency.
  EXPECT_TRUE(a.should_retain(1, /*degraded=*/true, false).retain);
  EXPECT_TRUE(a.should_retain(1, false, /*head_sampled=*/true).retain);
}

TEST(FlightRecorderTest, CapacityEvictsOldest) {
  FlightRecorder rec(FlightRecorder::Config{/*capacity=*/2});
  for (uint64_t id = 1; id <= 3; ++id) {
    TraceRecord r;
    r.trace_id = id;
    rec.retain(std::move(r));
  }
  auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].trace_id, 2u);
  EXPECT_EQ(snap[1].trace_id, 3u);
  EXPECT_EQ(rec.retained_total(), 3u);
}

// ------------------------------------------------------------- trace ring

TEST(TracerTest, DroppedCountsRingOverwrites) {
  obs::Tracer tracer(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.record(Span{i, obs::Stage::kEnqueue, 0, 1});
  }
  EXPECT_EQ(tracer.snapshot().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(TracerTest, PipelineObsFeedsTraceDroppedCounter) {
  obs::PipelineObs obs;
  auto snap = obs.registry().snapshot();
  ASSERT_TRUE(snap.counters.count("trace.dropped"));
  EXPECT_EQ(snap.counters.at("trace.dropped"), 0u);
}

TEST(TracerTest, RecordStageAllocatesSpanIdsForUntracedSpans) {
  obs::PipelineObs obs;
  uint64_t first = obs.record_stage(obs::Stage::kEnqueue, 1, 10, 20);
  uint64_t second = obs.record_stage(obs::Stage::kEnqueue, 2, 30, 40);
  EXPECT_NE(first, 0u);
  EXPECT_LT(first, second);  // `since=` pages forward over untraced spans too
  auto spans = obs.tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, first);
  EXPECT_EQ(spans[0].trace_id, 0u);
}

// -------------------------------------------------------------- exemplars

TEST(Exemplars, HistogramJsonCarriesLastTraceIdPerBucket) {
  obs::Registry registry;
  auto* h = registry.histogram("query.latency_ns");
  h->record(1000, /*exemplar=*/0);     // untraced: no exemplar
  h->record(1000, /*exemplar=*/777);   // traced: bucket exemplar set
  h->record(1 << 20, /*exemplar=*/42); // different bucket
  auto json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"exemplars\":["), std::string::npos) << json;
  EXPECT_NE(json.find(",777]"), std::string::npos) << json;
  EXPECT_NE(json.find(",42]"), std::string::npos) << json;

  // A histogram without traced samples emits no exemplars key at all.
  obs::Registry bare;
  bare.histogram("stage.kernel_ns")->record(5);
  EXPECT_EQ(bare.snapshot().to_json().find("exemplars"), std::string::npos);
}

// --------------------------------------------------------------- exporter

TEST(Exporter, ChromeTraceJsonSchema) {
  TraceRecord record;
  record.trace_id = 9;
  record.root_span_id = 100;
  record.start_ns = 1000;
  record.end_ns = 9000;
  record.degraded = true;
  record.spans = {
      Span{1, obs::Stage::kGather, 2000, 3000, 9, 101, 100},
      Span{1, obs::Stage::kEnqueue, 2100, 2500, 9, 102, 101},
      Span{0, obs::Stage::kKernel, 2600, 2900, 9, 103, 102},
  };
  std::string json = obs::chrome_trace_json(std::vector<TraceRecord>{record});

  // Chrome trace-event container and required slice fields.
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one wire frame
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track metadata
  for (const char* key : {"\"name\":", "\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The causal tree survives the export, and the degraded flag is surfaced.
  EXPECT_NE(json.find("\"span_id\":102"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":101"), std::string::npos);
  EXPECT_NE(json.find("degraded"), std::string::npos);
  // Root slice carries the record's own span id.
  EXPECT_NE(json.find("\"publish\""), std::string::npos);

  // Balanced braces/brackets — cheap structural validity without a parser.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // Pretty mode emits the same events, newline-separated for on-disk files.
  std::string pretty = obs::chrome_trace_json(std::vector<TraceRecord>{record}, /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Exporter, SameStageOverlapSpillsIntoExtraLanes) {
  // Two overlapping executions of the same stage must land on different tids
  // (Perfetto draws same-track overlaps on top of each other).
  std::vector<Span> spans = {
      Span{1, obs::Stage::kPreFilter, 1000, 3000, 5, 11, 0},
      Span{2, obs::Stage::kPreFilter, 2000, 4000, 5, 12, 0},
  };
  std::string json = obs::chrome_trace_json(spans);
  auto tid_after = [&](const char* span_key) {
    size_t at = json.find(span_key);
    EXPECT_NE(at, std::string::npos) << span_key;
    size_t ev = json.rfind("{\"name\"", at);
    size_t tid = json.find("\"tid\":", ev);
    return std::stoul(json.substr(tid + 6));
  };
  EXPECT_NE(tid_after("\"span_id\":11"), tid_after("\"span_id\":12"));
}

// ------------------------------------------------- end-to-end propagation

// The acceptance path: a traced match through a 4-shard scatter-gather
// engine yields one *connected* span tree under a single trace id — every
// span's parent chain reaches the root context.
TEST(TracePropagation, ConnectedTreeThroughShardedEngine) {
  shard::ShardedConfig config;
  config.num_shards = 4;
  config.shard = tiny_engine_config();
  shard::ShardedTagMatch sharded(config);
  for (int i = 0; i < 32; ++i) {
    sharded.add_set(std::vector<std::string>{"a", "t" + std::to_string(i)}, i);
  }
  sharded.consolidate();

  TraceContext root{obs::new_trace_id(), obs::new_span_id(), true};
  std::promise<void> done;
  sharded.match_async(std::vector<std::string>{"a", "t3", "t7"}, Matcher::MatchKind::kMatchUnique,
                      /*deadline_ns=*/0, root,
                      [&](std::vector<Matcher::Key>) { done.set_value(); });
  sharded.flush();  // Push the partial batch through; tiny config has no timeout.
  ASSERT_EQ(done.get_future().wait_for(std::chrono::seconds(10)), std::future_status::ready);

  std::vector<Span> all = sharded.trace_snapshot();
  std::vector<Span> traced;
  for (const auto& s : all) {
    if (s.trace_id == root.trace_id) traced.push_back(s);
  }
  ASSERT_GE(traced.size(), 3u);  // gather + at least one shard's enqueue/prefilter

  std::set<obs::Stage> stages;
  std::set<uint64_t> ids{root.parent_span_id};
  for (const auto& s : traced) {
    stages.insert(s.stage);
    EXPECT_NE(s.span_id, 0u);
    ids.insert(s.span_id);
  }
  EXPECT_TRUE(stages.count(obs::Stage::kGather));
  EXPECT_TRUE(stages.count(obs::Stage::kEnqueue));
  EXPECT_TRUE(stages.count(obs::Stage::kPreFilter));

  // Connectivity: every traced span's parent is the root or another traced
  // span; exactly the gather span parents directly on the root.
  size_t root_children = 0;
  for (const auto& s : traced) {
    EXPECT_TRUE(ids.count(s.parent_span_id))
        << obs::stage_name(s.stage) << " span " << s.span_id << " orphaned (parent "
        << s.parent_span_id << ")";
    if (s.parent_span_id == root.parent_span_id) {
      ++root_children;
      EXPECT_EQ(s.stage, obs::Stage::kGather);
    }
  }
  EXPECT_EQ(root_children, 1u);
}

// Full acceptance criterion: publish through a broker over 4 engine shards
// with tracing on; the flight recorder must retain a complete trace whose
// Perfetto export is one connected tree under a single trace id.
TEST(TracePropagation, BrokerFlightRecorderRetainsConnectedTrace) {
  broker::BrokerConfig config;
  config.engine = tiny_engine_config();
  config.engine_shards = 4;
  config.consolidate_interval = std::chrono::milliseconds(0);
  config.tracing = true;
  config.trace_head_sample_every = 1;  // retain every publish
  broker::Broker broker(config);

  auto alice = broker.connect();
  broker.subscribe(alice, std::vector<std::string>{"sports", "football"});
  broker.publish(broker::Message{std::vector<std::string>{"sports", "football", "worldcup"},
                                 "goal!"});
  ASSERT_TRUE(broker.poll_wait(alice, std::chrono::milliseconds(5000)).has_value());

  std::vector<TraceRecord> records;
  for (int i = 0; i < 200 && records.empty(); ++i) {
    records = broker.trace_records();
    if (records.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(records.empty()) << "no trace retained under head_sample_every=1";

  const TraceRecord& r = records.front();
  EXPECT_TRUE(r.head_sampled);
  EXPECT_NE(r.trace_id, 0u);
  EXPECT_NE(r.root_span_id, 0u);
  ASSERT_FALSE(r.spans.empty());

  std::set<uint64_t> ids{r.root_span_id};
  std::set<obs::Stage> stages;
  for (const auto& s : r.spans) {
    EXPECT_EQ(s.trace_id, r.trace_id);  // single trace id end to end
    ids.insert(s.span_id);
    stages.insert(s.stage);
  }
  for (const auto& s : r.spans) {
    EXPECT_TRUE(ids.count(s.parent_span_id))
        << obs::stage_name(s.stage) << " span " << s.span_id << " orphaned";
  }
  // The publish crossed the scatter-gather layer and the per-shard pipeline.
  EXPECT_TRUE(stages.count(obs::Stage::kGather));
  EXPECT_TRUE(stages.count(obs::Stage::kEnqueue));
  EXPECT_TRUE(stages.count(obs::Stage::kPreFilter));

  // And the exported file is loadable Chrome trace-event JSON.
  std::string json = obs::chrome_trace_json(records, /*pretty=*/true);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // trace.dropped is exported through the broker's merged registry.
  auto snap = broker.metrics_snapshot();
  ASSERT_TRUE(snap.counters.count("trace.dropped"));
  ASSERT_TRUE(snap.counters.count("broker.traces_retained"));
  EXPECT_GE(snap.counters.at("broker.traces_retained"), 1u);
}

// Tracing off: the ctx-less publish path must not mint trace ids or retain
// anything — the zero-overhead default.
TEST(TracePropagation, TracingOffRetainsNothing) {
  broker::BrokerConfig config;
  config.engine = tiny_engine_config();
  config.consolidate_interval = std::chrono::milliseconds(0);
  broker::Broker broker(config);

  auto alice = broker.connect();
  broker.subscribe(alice, std::vector<std::string>{"a"});
  broker.publish(broker::Message{std::vector<std::string>{"a", "b"}, "x"});
  ASSERT_TRUE(broker.poll_wait(alice, std::chrono::milliseconds(5000)).has_value());

  EXPECT_TRUE(broker.trace_records().empty());
  for (const auto& s : broker.trace_snapshot()) {
    EXPECT_EQ(s.trace_id, 0u);
  }
}

}  // namespace
}  // namespace tagmatch

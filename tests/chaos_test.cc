// Differential chaos suite for the fault-injection subsystem (src/inject)
// and the engine's recovery machinery (retry / re-dispatch / CPU fallback,
// the per-device health state machine). Every test arms a deterministic
// FaultPlan and requires the delivered results to be identical to a
// fault-free oracle run of the same workload: injected faults may cost
// latency, never correctness. Failures print the seed and the armed plan
// spec, so any red run replays with TAGMATCH_TEST_SEED and --fault-plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/gpu_engine.h"
#include "src/core/tagmatch.h"
#include "src/inject/fault.h"
#include "src/sig/signature_scheme.h"
#include "src/workload/tags.h"
#include "tests/test_seed.h"

namespace tagmatch {
namespace {

using Key = TagMatch::Key;
using inject::FaultInjector;
using inject::FaultPlan;

// ---------------------------------------------------------------------------
// Engine-level differential runs: full TagMatch pipeline, results compared
// against the identical run with no plan armed.

TagMatchConfig chaos_config(unsigned gpus) {
  TagMatchConfig c;
  c.num_threads = 2;
  c.num_gpus = gpus;
  c.streams_per_gpu = 2;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 8;
  c.max_partition_size = 64;
  // Short quarantine so recovery paths run inside the test's lifetime.
  c.quarantine_period = std::chrono::milliseconds(5);
  return c;
}

BloomFilter192 random_filter(Rng& rng, unsigned tags, uint32_t universe = 300) {
  std::vector<workload::TagId> ids;
  for (unsigned i = 0; i < tags; ++i) {
    ids.push_back(workload::make_hashtag(0, static_cast<uint32_t>(rng.below(universe))));
  }
  return workload::encode_tags(ids);
}

struct Workload {
  std::vector<std::pair<BitVector192, Key>> entries;
  std::vector<BitVector192> queries;
};

Workload make_workload(uint64_t seed, int sets, int queries) {
  Rng rng(seed);
  Workload w;
  for (int i = 0; i < sets; ++i) {
    w.entries.emplace_back(random_filter(rng, 2).bits(), static_cast<Key>(i));
  }
  for (int i = 0; i < queries; ++i) {
    w.queries.push_back(random_filter(rng, 5).bits());
  }
  return w;
}

// Runs the workload through a fresh engine and returns per-query sorted key
// multisets (and the engine's stats through `stats_out`, if non-null).
std::vector<std::vector<Key>> run_workload(const TagMatchConfig& config, const Workload& w,
                                           Matcher::Stats* stats_out = nullptr) {
  TagMatch tm(config);
  for (const auto& [f, k] : w.entries) {
    tm.add_set(BloomFilter192(f), k);
  }
  tm.consolidate();
  std::vector<std::vector<Key>> out;
  for (const auto& q : w.queries) {
    auto keys = tm.match(BloomFilter192(q));
    std::sort(keys.begin(), keys.end());
    out.push_back(std::move(keys));
  }
  if (stats_out != nullptr) {
    *stats_out = tm.stats();
  }
  return out;
}

// One fault-free oracle per workload shape, shared across the suite.
const std::vector<std::vector<Key>>& oracle(unsigned gpus, const Workload& w) {
  static std::map<unsigned, std::vector<std::vector<Key>>> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(gpus);
  if (it == cache.end()) {
    it = cache.emplace(gpus, run_workload(chaos_config(gpus), w)).first;
  }
  return it->second;
}

const Workload& shared_workload() {
  static Workload w = make_workload(test::test_seed(7001), 400, 120);
  return w;
}

void expect_oracle_identical(const std::string& spec, unsigned gpus,
                             Matcher::Stats* stats_out = nullptr) {
  SCOPED_TRACE("fault plan: " + spec);
  auto plan = FaultPlan::parse(spec);
  ASSERT_TRUE(plan.has_value()) << spec;
  TagMatchConfig config = chaos_config(gpus);
  config.fault_injector = std::make_shared<FaultInjector>(*plan);
  auto got = run_workload(config, shared_workload(), stats_out);
  ASSERT_EQ(got, oracle(gpus, shared_workload()));
}

TEST(Chaos, TransientH2DFaultsAreInvisible) {
  Matcher::Stats stats;
  expect_oracle_identical("h2d:after=2,count=3", 2, &stats);
  EXPECT_GE(stats.engine_retries, 1u);
}

TEST(Chaos, TransientD2HFaultsAreInvisible) {
  Matcher::Stats stats;
  expect_oracle_identical("d2h:after=1,count=2", 2, &stats);
  EXPECT_GE(stats.engine_retries, 1u);
}

TEST(Chaos, TransientKernelFaultsAreInvisible) {
  Matcher::Stats stats;
  expect_oracle_identical("kernel:after=0,count=3", 2, &stats);
  EXPECT_GE(stats.engine_retries, 1u);
}

TEST(Chaos, ConstructionAllocFaultDegradesGracefully) {
  // The 7th device allocation fails: one stream context (or one device's
  // table upload) is lost before any query runs. The engine must serve the
  // full workload from what survived.
  expect_oracle_identical("alloc:after=6,count=1", 2);
}

TEST(Chaos, StallFaultsOnlyAddLatency) {
  Matcher::Stats stats;
  expect_oracle_identical("h2d:after=0,count=4,stall_ns=200000", 2, &stats);
  // A stall delays the op but does not fail it: nothing to retry.
  EXPECT_EQ(stats.engine_retries, 0u);
}

TEST(Chaos, DeviceLossMidRunRedispatchesToSurvivor) {
  Matcher::Stats stats;
  expect_oracle_identical("devloss:dev=0,after=40", 2, &stats);
  EXPECT_GE(stats.engine_retries, 1u);
}

TEST(Chaos, AllDevicesLostFallsBackToCpu) {
  Matcher::Stats stats;
  expect_oracle_identical("devloss:after=30", 1, &stats);
  EXPECT_GE(stats.cpu_fallback_batches, 1u);
}

TEST(Chaos, CpuFallbackFansOutAcrossWorkers) {
  // All devices quarantined: every batch brute-forces on the host mirror,
  // and the fallback fans the partition scan out over the engine's task
  // pool. Whatever the worker count, results must be byte-identical to the
  // fault-free oracle — the fan-out splits on block_dim boundaries, so it
  // sees exactly the blocks the single-threaded walk sees.
  const Workload w = make_workload(test::test_seed(7101), 1500, 60);
  auto base_config = [] {
    TagMatchConfig c = chaos_config(1);
    c.max_partition_size = 1024;  // Big partitions so the fan-out has chunks.
    c.gpu_block_dim = 64;
    // One long quarantine: no probe churn, all batches stay on the CPU path.
    c.quarantine_period = std::chrono::seconds(10);
    return c;
  };
  const auto want = run_workload(base_config(), w);  // Fault-free oracle.

  struct DegradedRun {
    std::vector<std::vector<Key>> results;
    Matcher::Stats stats;
    uint64_t tasks_executed = 0;
    double seconds = 0;
  };
  auto run_degraded = [&](unsigned workers) {
    TagMatchConfig config = base_config();
    config.num_workers = workers;
    auto plan = FaultPlan::parse("devloss:after=30");
    EXPECT_TRUE(plan.has_value());
    config.fault_injector = std::make_shared<FaultInjector>(*plan);
    DegradedRun run;
    TagMatch tm(config);
    for (const auto& [f, k] : w.entries) {
      tm.add_set(BloomFilter192(f), k);
    }
    tm.consolidate();
    const auto start = std::chrono::steady_clock::now();
    for (const auto& q : w.queries) {
      auto keys = tm.match(BloomFilter192(q));
      std::sort(keys.begin(), keys.end());
      run.results.push_back(std::move(keys));
    }
    run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    run.stats = tm.stats();
    run.tasks_executed = tm.metrics_snapshot().counters.at("task.executed");
    return run;
  };

  const DegradedRun single = run_degraded(1);
  const DegradedRun pooled = run_degraded(4);
  EXPECT_EQ(single.results, want);
  EXPECT_EQ(pooled.results, want);
  EXPECT_GE(single.stats.cpu_fallback_batches, 1u);
  EXPECT_GE(pooled.stats.cpu_fallback_batches, 1u);
  // Fan-out proof by mechanism, not wall clock: with one worker the
  // parallel_for inlines (no helper tasks), with four it submits helpers
  // per fallback batch — so the pooled run must execute strictly more tasks.
  EXPECT_GT(pooled.tasks_executed, single.tasks_executed);
  // Wall-clock scaling is only meaningful with real cores to scale onto;
  // CI containers are often single-core (bench/baselines gates the curve).
  if (std::thread::hardware_concurrency() >= 4) {
    EXPECT_LT(pooled.seconds, single.seconds);
  }
}

// Randomized plan sweep: whatever FaultPlan::random draws — transient
// failures, stalls, device losses in any combination — results must be
// oracle-identical. The nightly chaos job re-runs this with a fresh seed.
class ChaosSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweep, RandomPlansAreInvisible) {
  const uint64_t seed = test::test_seed(GetParam());
  TAGMATCH_SEED_TRACE(seed);
  FaultPlan plan = FaultPlan::random(seed);
  SCOPED_TRACE("fault plan: " + plan.to_spec());
  TagMatchConfig config = chaos_config(2);
  config.fault_injector = std::make_shared<FaultInjector>(plan);
  auto got = run_workload(config, shared_workload());
  ASSERT_EQ(got, oracle(2, shared_workload()));
  EXPECT_GT(config.fault_injector->faults_fired(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Scheme-parameterized chaos: fault recovery must be signature-scheme
// oblivious. The oracle above is deliberately scheme-independent — over the
// same pre-encoded filters every registered scheme must deliver byte-
// identical per-query key multisets, fault-free and under injected faults
// (re-dispatch and the CPU fallback mirror run the scheme's kernel variant).

class ChaosScheme : public ::testing::TestWithParam<size_t> {
 protected:
  const sig::SignatureScheme* scheme() const { return sig::all_schemes()[GetParam()]; }
};

TEST_P(ChaosScheme, FaultFreeRunIsByteIdenticalToOracle) {
  SCOPED_TRACE(std::string("scheme: ") + std::string(scheme()->name()));
  TagMatchConfig config = chaos_config(2);
  config.signature_scheme = scheme();
  ASSERT_EQ(run_workload(config, shared_workload()), oracle(2, shared_workload()));
}

TEST_P(ChaosScheme, InjectedFaultsStayInvisible) {
  SCOPED_TRACE(std::string("scheme: ") + std::string(scheme()->name()));
  auto plan = FaultPlan::parse("h2d:after=2,count=3;devloss:dev=0,after=40");
  ASSERT_TRUE(plan.has_value());
  TagMatchConfig config = chaos_config(2);
  config.signature_scheme = scheme();
  config.fault_injector = std::make_shared<FaultInjector>(*plan);
  Matcher::Stats stats;
  auto got = run_workload(config, shared_workload(), &stats);
  ASSERT_EQ(got, oracle(2, shared_workload()));
  EXPECT_GE(stats.engine_retries, 1u);
  EXPECT_EQ(stats.signature_scheme, scheme()->name());
}

TEST_P(ChaosScheme, AllDevicesLostFallsBackToCpu) {
  SCOPED_TRACE(std::string("scheme: ") + std::string(scheme()->name()));
  auto plan = FaultPlan::parse("devloss:after=30");
  ASSERT_TRUE(plan.has_value());
  TagMatchConfig config = chaos_config(1);
  config.signature_scheme = scheme();
  config.fault_injector = std::make_shared<FaultInjector>(*plan);
  Matcher::Stats stats;
  auto got = run_workload(config, shared_workload(), &stats);
  ASSERT_EQ(got, oracle(1, shared_workload()));
  EXPECT_GE(stats.cpu_fallback_batches, 1u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ChaosScheme, ::testing::Values(0u, 1u, 2u));

// ---------------------------------------------------------------------------
// GpuEngine-level tests: exact health-state transition sequences and
// per-batch result checks through the raw submit/drain interface.

struct Fixture {
  std::vector<BitVector192> filters;
  std::vector<uint32_t> set_ids;
  std::vector<uint32_t> offsets;

  TagsetTableView view() const { return TagsetTableView{filters, set_ids, offsets}; }
};

Fixture make_fixture(size_t sets_per_partition, size_t partitions, uint64_t seed) {
  Rng rng(seed);
  Fixture f;
  f.offsets.push_back(0);
  uint32_t sid = 0;
  for (size_t p = 0; p < partitions; ++p) {
    std::vector<BitVector192> part;
    for (size_t i = 0; i < sets_per_partition; ++i) {
      BitVector192 v;
      for (int b = 0; b < 8; ++b) {
        v.set(static_cast<unsigned>(rng.below(192)));
      }
      part.push_back(v);
    }
    std::sort(part.begin(), part.end());
    for (auto& v : part) {
      f.filters.push_back(v);
      f.set_ids.push_back(sid++);
    }
    f.offsets.push_back(static_cast<uint32_t>(f.filters.size()));
  }
  return f;
}

std::vector<ResultPair> expected_pairs(const Fixture& f, PartitionId part,
                                       std::span<const BitVector192> queries) {
  std::vector<ResultPair> out;
  for (uint32_t i = f.offsets[part]; i < f.offsets[part + 1]; ++i) {
    for (uint32_t q = 0; q < queries.size(); ++q) {
      if (f.filters[i].subset_of(queries[q])) {
        out.push_back(ResultPair{static_cast<uint8_t>(q), f.set_ids[i]});
      }
    }
  }
  return out;
}

bool same_pairs(std::vector<ResultPair> a, std::vector<ResultPair> b) {
  auto key = [](const ResultPair& p) { return (uint64_t{p.query} << 32) | p.set_id; };
  auto cmp = [&](const ResultPair& x, const ResultPair& y) { return key(x) < key(y); };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (key(a[i]) != key(b[i])) {
      return false;
    }
  }
  return true;
}

TagMatchConfig engine_chaos_config(unsigned gpus, const std::string& spec) {
  TagMatchConfig c;
  c.num_gpus = gpus;
  c.streams_per_gpu = 1;
  c.gpu_sms_per_device = 1;
  c.gpu_memory_capacity = 128ull << 20;
  c.gpu_costs.enforce = false;
  c.batch_size = 8;
  auto plan = FaultPlan::parse(spec);
  EXPECT_TRUE(plan.has_value()) << spec;
  if (plan) {
    c.fault_injector = std::make_shared<FaultInjector>(*plan);
  }
  return c;
}

struct Collected {
  std::mutex mu;
  std::map<void*, std::vector<ResultPair>> by_token;
  std::atomic<int> deliveries{0};
};

TEST(ChaosHealth, QuarantineThenCpuFallback) {
  // One device, one injected copy failure, instant quarantine, and a
  // quarantine period longer than the test: the failed batch and every
  // subsequent one must be brute-forced on the host mirror, bit-identical
  // to the kernel's results. (after=2 skips upload()'s two table copies so
  // the fault lands on the first batch's query copy.)
  TagMatchConfig config = engine_chaos_config(1, "h2d:after=2,count=1");
  config.quarantine_failure_threshold = 1;
  config.quarantine_period = std::chrono::seconds(10);
  Collected collected;
  GpuEngine engine(config, [&](void* token, std::span<const ResultPair> pairs, bool overflow) {
    EXPECT_FALSE(overflow);
    std::lock_guard lock(collected.mu);
    collected.by_token[token].assign(pairs.begin(), pairs.end());
    collected.deliveries++;
  });
  Fixture f = make_fixture(32, 1, 11);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[0] | f.filters[1]};
  int t1 = 0, t2 = 0;
  engine.submit(0, queries, &t1);
  engine.drain();
  engine.submit(0, queries, &t2);
  engine.drain();
  EXPECT_EQ(collected.deliveries.load(), 2);
  EXPECT_TRUE(same_pairs(collected.by_token[&t1], expected_pairs(f, 0, queries)));
  EXPECT_TRUE(same_pairs(collected.by_token[&t2], expected_pairs(f, 0, queries)));
  EXPECT_EQ(engine.device_health(0), DeviceHealth::kQuarantined);
  EXPECT_EQ(engine.retries(), 1u);
  EXPECT_EQ(engine.cpu_fallback_batches(), 2u);
  auto history = engine.health_history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0], std::make_pair(0u, DeviceHealth::kQuarantined));
}

TEST(ChaosHealth, QuarantineProbeRecoveryHealthy) {
  // The injected fault is transient (count=1): after the quarantine expires
  // the next submission probes the device, the probe batch succeeds, and the
  // device walks kQuarantined -> kProbing -> kRecovered -> kHealthy.
  // (after=2 skips upload()'s two table copies.)
  TagMatchConfig config = engine_chaos_config(1, "h2d:after=2,count=1");
  config.quarantine_failure_threshold = 1;
  config.quarantine_period = std::chrono::milliseconds(1);
  Collected collected;
  GpuEngine engine(config, [&](void* token, std::span<const ResultPair> pairs, bool) {
    std::lock_guard lock(collected.mu);
    collected.by_token[token].assign(pairs.begin(), pairs.end());
    collected.deliveries++;
  });
  Fixture f = make_fixture(32, 1, 12);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[2] | f.filters[3]};
  int t1 = 0, t2 = 0;
  engine.submit(0, queries, &t1);
  engine.drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.submit(0, queries, &t2);
  engine.drain();
  EXPECT_EQ(collected.deliveries.load(), 2);
  EXPECT_TRUE(same_pairs(collected.by_token[&t1], expected_pairs(f, 0, queries)));
  EXPECT_TRUE(same_pairs(collected.by_token[&t2], expected_pairs(f, 0, queries)));
  EXPECT_EQ(engine.device_health(0), DeviceHealth::kHealthy);
  std::vector<std::pair<unsigned, DeviceHealth>> want = {
      {0u, DeviceHealth::kQuarantined},
      {0u, DeviceHealth::kProbing},
      {0u, DeviceHealth::kRecovered},
      {0u, DeviceHealth::kHealthy},
  };
  EXPECT_EQ(engine.health_history(), want);
}

TEST(ChaosHealth, DeviceLossQuarantinesForever) {
  // The very first device op (a construction-time allocation) loses the
  // device: no stream is usable, upload is skipped, and every batch runs on
  // the host mirror. A lost device never probes back into service.
  TagMatchConfig config = engine_chaos_config(1, "devloss:after=0");
  config.quarantine_period = std::chrono::milliseconds(1);
  Collected collected;
  GpuEngine engine(config, [&](void* token, std::span<const ResultPair> pairs, bool) {
    std::lock_guard lock(collected.mu);
    collected.by_token[token].assign(pairs.begin(), pairs.end());
    collected.deliveries++;
  });
  Fixture f = make_fixture(16, 2, 13);
  engine.upload(f.view());
  std::vector<BitVector192> queries{f.filters[0] | f.filters[5]};
  int t1 = 0, t2 = 0;
  engine.submit(0, queries, &t1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // Past the period.
  engine.submit(1, queries, &t2);
  engine.drain();
  EXPECT_EQ(collected.deliveries.load(), 2);
  EXPECT_TRUE(same_pairs(collected.by_token[&t1], expected_pairs(f, 0, queries)));
  EXPECT_TRUE(same_pairs(collected.by_token[&t2], expected_pairs(f, 1, queries)));
  EXPECT_EQ(engine.device_health(0), DeviceHealth::kQuarantined);
  EXPECT_EQ(engine.cpu_fallback_batches(), 2u);
}

TEST(ChaosHealth, MidRunLossQuarantinesLoserOnly) {
  // Two devices; device 0 is lost mid-run. Its in-flight batches re-dispatch
  // to device 1, device 0 ends quarantined, device 1 stays healthy, and
  // every batch's results are exact.
  TagMatchConfig config = engine_chaos_config(2, "devloss:dev=0,after=20");
  Collected collected;
  GpuEngine engine(config, [&](void* token, std::span<const ResultPair> pairs, bool) {
    std::lock_guard lock(collected.mu);
    collected.by_token[token].assign(pairs.begin(), pairs.end());
    collected.deliveries++;
  });
  Fixture f = make_fixture(32, 2, 14);
  engine.upload(f.view());
  constexpr int kBatches = 24;
  std::vector<std::vector<BitVector192>> batches(kBatches);
  std::vector<int> tokens(kBatches);
  Rng rng(15);
  for (int b = 0; b < kBatches; ++b) {
    BitVector192 q = f.filters[rng.below(f.filters.size())];
    q.set(static_cast<unsigned>(rng.below(192)));
    batches[b].push_back(q);
    engine.submit(static_cast<PartitionId>(b % 2), batches[b], &tokens[b]);
  }
  engine.drain();
  EXPECT_EQ(collected.deliveries.load(), kBatches);
  for (int b = 0; b < kBatches; ++b) {
    EXPECT_TRUE(same_pairs(collected.by_token[&tokens[b]],
                           expected_pairs(f, static_cast<PartitionId>(b % 2), batches[b])))
        << "batch " << b;
  }
  EXPECT_EQ(engine.device_health(0), DeviceHealth::kQuarantined);
  EXPECT_EQ(engine.device_health(1), DeviceHealth::kHealthy);
  EXPECT_GE(engine.retries(), 1u);
  EXPECT_GE(engine.redispatches(), 1u);
}

}  // namespace
}  // namespace tagmatch
